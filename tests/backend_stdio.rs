//! End-to-end tests of the SQL-over-stdio backend: the same oracles and
//! campaign runner that drive the in-process engine drive a
//! `spatter-sdb-server` subprocess, with identical findings — and survive the
//! server process dying mid-session.
//!
//! The binary path comes from `CARGO_BIN_EXE_*`, which Cargo guarantees is
//! built before these tests run.

use spatter_repro::core::backend::{BackendError, EngineBackend, InProcessBackend, StdioBackend};
use spatter_repro::core::campaign::{CampaignConfig, CampaignReport};
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::oracles::OracleOutcome;
use spatter_repro::core::runner::CampaignRunner;
use spatter_repro::core::transform::AffineStrategy;
use spatter_repro::core::FindingKind;
use spatter_repro::sdb::{EngineProfile, FaultId, FaultSet};
use std::sync::Arc;

fn server_path() -> &'static str {
    env!("CARGO_BIN_EXE_spatter-sdb-server")
}

/// The scheduling-independent projection of a report that must not depend on
/// which backend executed it or how many workers ran.
fn fingerprint(report: &CampaignReport) -> Vec<(FindingKind, String, usize, Vec<FaultId>)> {
    report
        .findings
        .iter()
        .map(|f| {
            (
                f.kind,
                f.description.clone(),
                f.iteration,
                f.attributed_faults.clone(),
            )
        })
        .collect()
}

/// The deterministic acceptance campaign of the distance-template suite,
/// parameterised by backend: only the ST_DFullyWithin definition fault is
/// seeded, and the sampled similarity transforms expose it.
fn dfullywithin_config(backend: Arc<dyn EngineBackend>) -> CampaignConfig {
    CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 8,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 8,
            random_shape_probability: 0.5,
        },
        queries_per_run: 20,
        affine: AffineStrategy::SimilarityInteger,
        iterations: 20,
        time_budget: None,
        attribute_findings: true,
        seed: 11,
        ..CampaignConfig::default()
    }
    .with_backend(backend)
}

#[test]
fn stdio_campaign_detects_a_seeded_fault_end_to_end() {
    let faults = FaultSet::with([FaultId::PostgisDFullyWithinSmallCoords]);
    let stdio: Arc<dyn EngineBackend> = Arc::new(StdioBackend::new(
        server_path(),
        EngineProfile::PostgisLike,
        faults.clone(),
    ));
    let report = CampaignRunner::new(dfullywithin_config(stdio)).run();
    assert!(
        report
            .unique_faults
            .contains(&FaultId::PostgisDFullyWithinSmallCoords),
        "the stdio campaign must attribute a finding to the seeded fault; findings: {:#?}",
        report.findings
    );

    // The out-of-process engine is the same engine: the whole report
    // fingerprint (descriptions, iterations, attribution) is byte-equal to
    // the in-process campaign's.
    let in_process: Arc<dyn EngineBackend> =
        Arc::new(InProcessBackend::new(EngineProfile::PostgisLike, faults));
    let reference = CampaignRunner::new(dfullywithin_config(in_process)).run();
    assert_eq!(fingerprint(&report), fingerprint(&reference));
    assert_eq!(report.unique_faults, reference.unique_faults);
    assert_eq!(report.skipped_queries, reference.skipped_queries);
}

#[test]
fn stdio_session_reports_soft_crashes_like_the_in_process_engine() {
    // In the default (soft) mode a simulated crash is a tagged reply: the
    // session surfaces BackendError::Crash with the engine's own message.
    let faults = FaultSet::with([FaultId::GeosCrashRelateShortRing]);
    let backend = StdioBackend::new(server_path(), EngineProfile::MysqlLike, faults);
    let mut session = backend.open_session().expect("open");
    session
        .load(&[
            "CREATE TABLE t (g geometry)".to_string(),
            "INSERT INTO t (g) VALUES ('POLYGON((0 0,1 1,0 0))'), ('POINT(0 0)')".to_string(),
        ])
        .expect("load");
    let error = session
        .run_count("SELECT COUNT(*) FROM t a JOIN t b ON ST_Intersects(a.g, b.g)")
        .expect_err("the relate crash fault must fire");
    match &error {
        BackendError::Crash(message) => {
            assert!(message.contains("ring"), "unexpected message: {message}")
        }
        other => panic!("expected a crash reply, got {other:?}"),
    }
    // The server process survived; the session keeps answering.
    assert_eq!(
        session.run_count("SELECT COUNT(*) FROM t a JOIN t b ON ST_DWithin(a.g, b.g, 100)"),
        Ok(Some(4))
    );

    // Multi-line SQL (legal whitespace for the in-process parser) is
    // flattened onto one wire frame: it executes and — crucially — does not
    // desynchronize the protocol for the statements after it.
    assert_eq!(
        session.run_count("SELECT COUNT(*)\nFROM t a JOIN t b\nON ST_DWithin(a.g, b.g, 100)"),
        Ok(Some(4))
    );
    assert_eq!(session.run_count("SELECT COUNT(*) FROM t a"), Ok(Some(2)));

    // A blank statement is a semantic error like in-process — never a hang
    // (the server skips blank lines without replying) — and leaves the
    // protocol in sync.
    assert!(matches!(
        session.run_count("  \n "),
        Err(BackendError::Semantic(_))
    ));
    assert_eq!(session.run_count("SELECT COUNT(*) FROM t a"), Ok(Some(2)));
}

#[test]
fn killed_server_reports_crash_and_the_session_reopens() {
    // --hard-crash makes the simulated crash terminate the server process
    // mid-iteration, like a real backend dying: the query that hit the dead
    // process reports a transport failure (mapped to a Crash outcome), and
    // the session transparently respawns the server and replays its setup
    // before the next query.
    let faults = FaultSet::with([FaultId::GeosCrashRelateShortRing]);
    let backend =
        StdioBackend::new(server_path(), EngineProfile::MysqlLike, faults).with_hard_crash(true);
    let mut session = backend.open_session().expect("open");
    session
        .load(&[
            "CREATE TABLE t (g geometry)".to_string(),
            "INSERT INTO t (g) VALUES ('POLYGON((0 0,1 1,0 0))'), ('POINT(0 0)')".to_string(),
        ])
        .expect("load");
    let ok_sql = "SELECT COUNT(*) FROM t a JOIN t b ON ST_DWithin(a.g, b.g, 100)";
    assert_eq!(session.run_count(ok_sql), Ok(Some(4)));

    let error = session
        .run_count("SELECT COUNT(*) FROM t a JOIN t b ON ST_Intersects(a.g, b.g)")
        .expect_err("the crash must kill the server");
    assert!(
        matches!(&error, BackendError::Transport(_)),
        "expected a transport failure, got {error:?}"
    );
    let outcome = OracleOutcome::from(error);
    assert!(outcome.is_crash(), "transport failures are crash findings");

    // Recovery: the next query respawns the server, replays the setup, and
    // answers as if nothing happened.
    assert_eq!(session.run_count(ok_sql), Ok(Some(4)));
}

#[test]
fn hard_crash_campaign_is_deterministic_across_worker_counts() {
    // A campaign whose generated scenarios hit crash faults (the stock
    // DuckDB-Spatial-like engine at this seed does) while --hard-crash kills
    // the server at each one. Shards lose processes mid-run, respawn, and
    // the merged ShardReport is still identical at every worker count.
    let config = || {
        CampaignConfig {
            generator: GeneratorConfig {
                num_geometries: 8,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 20,
                random_shape_probability: 0.6,
            },
            queries_per_run: 10,
            affine: AffineStrategy::GeneralInteger,
            iterations: 6,
            time_budget: None,
            attribute_findings: false,
            seed: 1,
            ..CampaignConfig::default()
        }
        .with_backend(Arc::new(
            StdioBackend::stock(server_path(), EngineProfile::DuckdbSpatialLike)
                .with_hard_crash(true),
        ))
    };
    let baseline = CampaignRunner::new(config()).run();
    assert_eq!(baseline.iterations_run, 6);
    let crashes = baseline.findings_of_kind(FindingKind::Crash);
    assert!(crashes > 0, "seed 1 must produce crash findings");
    assert!(
        baseline
            .findings
            .iter()
            .any(|f| f.description.contains("engine process terminated")),
        "hard crashes surface as canonical transport failures: {:#?}",
        baseline.findings
    );
    for n_workers in [2, 4] {
        let parallel = CampaignRunner::new(config()).with_workers(n_workers).run();
        assert_eq!(
            fingerprint(&parallel),
            fingerprint(&baseline),
            "{n_workers} workers"
        );
    }
}
