//! Plan-equivalence guarantees of the distance-join physical plans.
//!
//! The distance-join plans (`sdb.exec.join_distance_index`,
//! `sdb.exec.join_distance_prepared`) are pure optimizations: every per-pair
//! verdict still flows through the one shared kernel
//! (`spatter_sdb::functions::evaluate_distance_predicate`), and the index /
//! envelope prefilters are exactly the kernel's own first rejection test. So
//! no query result may ever depend on which plan ran. These tests pin that
//! end to end:
//!
//! * a seeded sweep of 200+ scenarios where the nested loop, the prepared
//!   plan, and the index plan must return identical rows — including under
//!   the seeded GiST fault and with EMPTY geometries in both tables;
//! * whole campaigns whose reports stay equal with the plan enabled and
//!   disabled, at 1/2/4 workers;
//! * registration of the new probes in the coverage universes.
//!
//! The plan toggle (`engine::plan::set_distance_join_enabled`) is process
//! global, so every test in this binary that flips it or asserts on a plan
//! outcome serializes on [`PLAN_TOGGLE_LOCK`].

use std::sync::{Mutex, MutexGuard};

use spatter_repro::core::campaign::{CampaignConfig, CampaignReport};
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::guidance::{self, GuidanceMode};
use spatter_repro::core::runner::CampaignRunner;
use spatter_repro::core::transform::AffineStrategy;
use spatter_repro::sdb::engine::plan;
use spatter_repro::sdb::{Engine, EngineProfile, FaultId, FaultSet};

static PLAN_TOGGLE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    PLAN_TOGGLE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

use plan::with_distance_join_disabled as with_plan_disabled;

// ---------------------------------------------------------------------------
// Seeded plan-equivalence sweep
// ---------------------------------------------------------------------------

/// Small deterministic LCG, independent of the campaign generator, so the
/// sweep exercises shapes the campaign's own generator may never emit
/// (notably EMPTY components in both join tables).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Non-negative coordinate in `0..30` (kept non-negative so the GiST
    /// fault, which drops negative-x rows from index probes, is inert and
    /// the three plans stay comparable even on the faulty engine; a separate
    /// unit test pins that the fault *does* diverge on negative x).
    fn coord(&mut self) -> i64 {
        self.below(30) as i64
    }

    fn wkt(&mut self) -> String {
        let (x, y) = (self.coord(), self.coord());
        match self.below(6) {
            0 => format!("POINT({x} {y})"),
            1 => format!("LINESTRING({x} {y},{} {})", x + 3, y + 1),
            2 => format!(
                "POLYGON(({x} {y},{} {y},{} {},{x} {},{x} {y}))",
                x + 2,
                x + 2,
                y + 2,
                y + 2
            ),
            3 => "POINT EMPTY".to_string(),
            4 => "LINESTRING EMPTY".to_string(),
            _ => format!("MULTIPOINT(({x} {y}),EMPTY)"),
        }
    }
}

fn fill_tables(engine: &mut Engine, rng: &mut Lcg) {
    engine
        .execute_script("CREATE TABLE a (id int, g geometry); CREATE TABLE b (id int, g geometry);")
        .unwrap();
    for table in ["a", "b"] {
        for id in 0..6 {
            let wkt = rng.wkt();
            engine
                .execute(&format!(
                    "INSERT INTO {table} (id, g) VALUES ({id}, '{wkt}')"
                ))
                .unwrap();
        }
    }
}

#[test]
fn sweep_nested_prepared_and_index_plans_return_identical_rows() {
    let _guard = lock();
    let distances = [0.0, 0.5, 2.0, 5.0, 17.3];
    let mut diverged = Vec::new();
    for sub_seed in 0..216u64 {
        let d = distances[(sub_seed % distances.len() as u64) as usize];
        let function = if sub_seed % 2 == 0 {
            "ST_DWithin"
        } else {
            "ST_DFullyWithin"
        };
        let (first, second) = if sub_seed % 4 < 2 {
            ("a.g", "b.g")
        } else {
            ("b.g", "a.g")
        };
        let faults = if sub_seed % 3 == 0 {
            FaultSet::none()
        } else {
            FaultSet::with([FaultId::PostgisGistIndexDropsRows])
        };
        let queries = [
            format!("SELECT COUNT(*) FROM a JOIN b ON {function}({first}, {second}, {d})"),
            format!(
                "SELECT ST_AsText(a.g), ST_AsText(b.g) FROM a JOIN b \
                 ON {function}({first}, {second}, {d}) \
                 ORDER BY ST_Distance(a.g, b.g) LIMIT 4"
            ),
        ];

        let run_plan = |setup_extra: &str, disable_plan: bool| {
            let mut engine = Engine::with_faults(EngineProfile::PostgisLike, faults.clone());
            fill_tables(
                &mut engine,
                &mut Lcg(sub_seed.wrapping_mul(0x9e3779b97f4a7c15)),
            );
            if !setup_extra.is_empty() {
                engine.execute_script(setup_extra).unwrap();
            }
            let mut exec = || {
                queries
                    .iter()
                    .map(|q| format!("{:?}", engine.execute(q).unwrap()))
                    .collect::<Vec<_>>()
            };
            if disable_plan {
                with_plan_disabled(exec)
            } else {
                exec()
            }
        };

        let nested = run_plan("", true);
        let prepared = run_plan("", false);
        let indexed = run_plan(
            "CREATE INDEX idx_b ON b USING GIST (g); SET enable_seqscan = false;",
            false,
        );
        if prepared != nested {
            diverged.push(format!("seed {sub_seed}: prepared != nested ({queries:?})"));
        }
        if indexed != nested {
            diverged.push(format!("seed {sub_seed}: indexed != nested ({queries:?})"));
        }
    }
    assert!(
        diverged.is_empty(),
        "plan divergence:\n{}",
        diverged.join("\n")
    );
}

// ---------------------------------------------------------------------------
// Campaign-level equivalence
// ---------------------------------------------------------------------------

fn config(guidance: GuidanceMode, seed: u64, iterations: usize) -> CampaignConfig {
    CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 8,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 30,
            random_shape_probability: 0.5,
        },
        queries_per_run: 10,
        affine: AffineStrategy::GeneralInteger,
        iterations,
        time_budget: None,
        attribute_findings: true,
        guidance,
        seed,
        ..CampaignConfig::stock(EngineProfile::PostgisLike)
    }
}

/// The plan-independent projection of a campaign report: everything the
/// fingerprint carries except `probe_coverage`, which by construction differs
/// between plans (that is the point of the plan-path probes).
fn result_projection(report: &CampaignReport) -> String {
    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "{:?}|{}|{}|{:?}",
                f.kind, f.description, f.iteration, f.attributed_faults
            )
        })
        .collect();
    format!(
        "findings={findings:?} unique={:?} skipped={}",
        report.unique_faults, report.skipped_queries
    )
}

#[test]
fn campaign_reports_are_plan_independent_at_every_worker_count() {
    let _guard = lock();
    // Unguided stock campaigns route every range join through the prepared
    // distance plan (they never create an index); with the plan disabled the
    // same queries take the nested loop. Findings, attributed faults, and
    // skipped-query counts must not notice.
    for workers in [1usize, 2, 4] {
        let enabled = CampaignRunner::new(config(GuidanceMode::Off, 11, 12))
            .with_workers(workers)
            .run();
        let disabled = with_plan_disabled(|| {
            CampaignRunner::new(config(GuidanceMode::Off, 11, 12))
                .with_workers(workers)
                .run()
        });
        assert_eq!(
            result_projection(&enabled),
            result_projection(&disabled),
            "{workers} workers"
        );
        assert!(
            enabled
                .probe_coverage
                .contains("sdb.exec.join_distance_prepared"),
            "the stock campaign exercises the prepared distance plan"
        );
        assert!(
            !disabled
                .probe_coverage
                .contains("sdb.exec.join_distance_prepared"),
            "the disabled campaign must not touch the distance plan"
        );
    }
}

#[test]
fn campaigns_with_the_distance_plan_stay_deterministic_across_workers() {
    let _guard = lock();
    // Worker-count byte-identity (full fingerprint, probe coverage included)
    // with the new plan active, guided and unguided.
    for guidance in [GuidanceMode::Off, GuidanceMode::ColdProbe] {
        let baseline = CampaignRunner::new(config(guidance, 3, 12)).run();
        for workers in [2usize, 4] {
            let parallel = CampaignRunner::new(config(guidance, 3, 12))
                .with_workers(workers)
                .run();
            assert_eq!(
                parallel.determinism_fingerprint(),
                baseline.determinism_fingerprint(),
                "{guidance:?} at {workers} workers"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Probe registration
// ---------------------------------------------------------------------------

#[test]
fn distance_plan_probes_are_registered_in_the_coverage_universes() {
    for probe in [
        "sdb.exec.join_distance_index",
        "sdb.exec.join_distance_prepared",
    ] {
        assert!(
            spatter_repro::sdb::coverage::SDB_PROBES.contains(&probe),
            "{probe} missing from SDB_PROBES"
        );
        assert!(
            guidance::probe_universe().contains(&probe),
            "{probe} missing from the guidance probe universe"
        );
        assert!(guidance::is_universe_probe(probe));
    }
}
