//! Determinism and coverage guarantees of coverage-guided campaigns.
//!
//! The guidance design note (see `spatter_core::guidance`): all feedback is
//! frozen into a warm-up snapshot before any worker starts, and every guided
//! decision is a pure function of `(snapshot, seed, iteration)`. These tests
//! pin the two observable consequences: guided campaigns are byte-identical
//! at any worker count, and `GuidanceMode::Off` remains byte-identical to
//! the historical (pre-guidance) runner — the PR 1/2/3 campaign fixtures
//! (`campaign_end_to_end`, `distance_metamorphic`, `backend_stdio`) run
//! unchanged against `..CampaignConfig` defaults and double as the
//! pre-guidance pin.

use spatter_repro::core::campaign::{CampaignConfig, CampaignReport};
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::guidance::GuidanceMode;
use spatter_repro::core::runner::{CampaignRunner, GUIDANCE_WARMUP};
use spatter_repro::core::transform::AffineStrategy;
use spatter_repro::sdb::EngineProfile;

fn config(guidance: GuidanceMode, seed: u64, iterations: usize) -> CampaignConfig {
    CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 8,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 30,
            random_shape_probability: 0.5,
        },
        queries_per_run: 10,
        affine: AffineStrategy::GeneralInteger,
        iterations,
        time_budget: None,
        attribute_findings: true,
        guidance,
        seed,
        ..CampaignConfig::stock(EngineProfile::PostgisLike)
    }
}

/// The scheduling-independent projection of a report (shared with the
/// coverage-guided bench via `CampaignReport::determinism_fingerprint`).
fn fingerprint(report: &CampaignReport) -> String {
    report.determinism_fingerprint()
}

#[test]
fn guided_campaigns_are_byte_identical_across_worker_counts() {
    let baseline = CampaignRunner::new(config(GuidanceMode::ColdProbe, 3, 12)).run();
    assert_eq!(baseline.iterations_run, 12);
    assert!(
        !baseline.findings.is_empty(),
        "the guided stock campaign should produce findings"
    );
    for n_workers in [2, 4] {
        let parallel = CampaignRunner::new(config(GuidanceMode::ColdProbe, 3, 12))
            .with_workers(n_workers)
            .run();
        assert_eq!(parallel.iterations_run, baseline.iterations_run);
        assert_eq!(
            fingerprint(&parallel),
            fingerprint(&baseline),
            "{n_workers} workers"
        );
    }
}

#[test]
fn guidance_off_campaigns_stay_byte_identical_across_worker_counts() {
    let baseline = CampaignRunner::new(config(GuidanceMode::Off, 3, 12)).run();
    for n_workers in [2, 4] {
        let parallel = CampaignRunner::new(config(GuidanceMode::Off, 3, 12))
            .with_workers(n_workers)
            .run();
        assert_eq!(
            fingerprint(&parallel),
            fingerprint(&baseline),
            "{n_workers} workers"
        );
    }
}

#[test]
fn guided_warmup_prefix_is_identical_to_the_unguided_campaign() {
    // A guided campaign that never outlives its warm-up runs every
    // iteration unguided — byte-identical to GuidanceMode::Off. This is the
    // structural pin that the guided runner's warm-up phase takes exactly
    // the historical code path.
    let off = CampaignRunner::new(config(GuidanceMode::Off, 7, GUIDANCE_WARMUP)).run();
    let guided = CampaignRunner::new(config(GuidanceMode::ColdProbe, 7, GUIDANCE_WARMUP)).run();
    assert_eq!(fingerprint(&off), fingerprint(&guided));
}

#[test]
fn guidance_mode_defaults_to_off() {
    assert_eq!(GuidanceMode::default(), GuidanceMode::Off);
    assert_eq!(CampaignConfig::default().guidance, GuidanceMode::Off);
}

#[test]
fn guided_campaign_covers_at_least_the_unguided_probes() {
    // The acceptance bar of the guidance subsystem: per equal iteration
    // budget, guided mode reaches at least as many distinct probes, because
    // the knob bandit steers scenarios onto paths the uniform campaign never
    // touches (the unguided AEI path never creates an index).
    let unguided = CampaignRunner::new(config(GuidanceMode::Off, 5, 16)).run();
    let guided = CampaignRunner::new(config(GuidanceMode::ColdProbe, 5, 16)).run();
    assert!(
        guided.probes_covered() >= unguided.probes_covered(),
        "guided covered {} probes, unguided {}",
        guided.probes_covered(),
        unguided.probes_covered()
    );
    // The index paths are reachable only through guidance.
    assert!(
        guided.probe_coverage.contains("sdb.exec.create_index"),
        "guided campaigns reach the index-build path"
    );
    assert!(
        !unguided.probe_coverage.contains("sdb.exec.create_index"),
        "the unguided AEI scenario never creates an index"
    );
}

#[test]
fn guided_campaign_still_attributes_findings_to_real_faults() {
    // Attribution re-runs replay the per-iteration knobs, so guided
    // findings attribute exactly like unguided ones: every attributed fault
    // belongs to the profile under test.
    let report = CampaignRunner::new(config(GuidanceMode::ColdProbe, 3, 16)).run();
    assert!(report.unique_bug_count() >= 1);
    let stock = EngineProfile::PostgisLike.default_faults();
    for fault in &report.unique_faults {
        assert!(
            stock.is_active(*fault),
            "attributed {fault:?} which the profile does not carry"
        );
    }
}
