//! End-to-end tests of the multi-process distributed campaign subsystem:
//! a `DistRunner` supervisor drives real `spatter-campaign-worker`
//! processes and must produce reports byte-identical (findings,
//! attribution, skip counts, probe coverage — the determinism fingerprint)
//! to the in-process `CampaignRunner`, for every processes × threads
//! split, with coverage guidance on, and across worker crashes.
//!
//! Binary paths come from `CARGO_BIN_EXE_*`, which Cargo guarantees are
//! built before these tests run.

use spatter_repro::core::campaign::{CampaignConfig, CampaignReport};
use spatter_repro::core::dist::{DistConfig, DistRunner};
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::guidance::GuidanceMode;
use spatter_repro::core::runner::CampaignRunner;
use spatter_repro::core::transform::AffineStrategy;
use spatter_repro::sdb::{EngineProfile, FaultId, FaultSet};

fn worker_path() -> &'static str {
    env!("CARGO_BIN_EXE_spatter-campaign-worker")
}

fn server_path() -> &'static str {
    env!("CARGO_BIN_EXE_spatter-sdb-server")
}

/// The procs × threads splits of the acceptance criteria: total
/// parallelism 4, sliced three ways.
const SPLITS: [(usize, usize); 3] = [(1, 4), (2, 2), (4, 1)];

fn campaign(guidance: GuidanceMode, seed: u64, iterations: usize) -> CampaignConfig {
    CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 8,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 30,
            random_shape_probability: 0.5,
        },
        queries_per_run: 10,
        affine: AffineStrategy::GeneralInteger,
        iterations,
        time_budget: None,
        attribute_findings: true,
        guidance,
        seed,
        ..CampaignConfig::stock(EngineProfile::PostgisLike)
    }
}

fn fingerprint(report: &CampaignReport) -> String {
    report.determinism_fingerprint()
}

#[test]
fn distributed_campaign_is_byte_identical_to_in_process() {
    let baseline = CampaignRunner::new(campaign(GuidanceMode::Off, 3, 12)).run();
    assert!(
        !baseline.findings.is_empty() && baseline.unique_bug_count() >= 1,
        "seed 3 must detect seeded faults on the stock engine"
    );
    for (processes, threads) in SPLITS {
        let dist = DistConfig::new(worker_path())
            .with_processes(processes)
            .with_threads_per_worker(threads);
        let report = DistRunner::new(campaign(GuidanceMode::Off, 3, 12), dist)
            .run()
            .expect("distributed campaign");
        assert_eq!(report.iterations_run, baseline.iterations_run);
        assert_eq!(
            fingerprint(&report),
            fingerprint(&baseline),
            "{processes} procs x {threads} threads"
        );
        assert_eq!(report.unique_faults, baseline.unique_faults);
    }
}

#[test]
fn guided_distributed_campaign_matches_the_in_process_runner() {
    // The frozen guidance snapshot ships over the wire: the supervisor runs
    // the warm-up, every worker rebuilds the identical Guidance, and the
    // guided campaign stays byte-identical across process boundaries.
    let baseline = CampaignRunner::new(campaign(GuidanceMode::ColdProbe, 3, 12)).run();
    assert!(!baseline.findings.is_empty());
    for (processes, threads) in SPLITS {
        let dist = DistConfig::new(worker_path())
            .with_processes(processes)
            .with_threads_per_worker(threads);
        let report = DistRunner::new(campaign(GuidanceMode::ColdProbe, 3, 12), dist)
            .run()
            .expect("guided distributed campaign");
        assert_eq!(
            fingerprint(&report),
            fingerprint(&baseline),
            "{processes} procs x {threads} threads"
        );
        assert_eq!(report.probe_coverage, baseline.probe_coverage);
    }
}

#[test]
fn killed_worker_is_respawned_and_the_report_is_byte_identical() {
    // Fault injection: the supervisor hard-kills worker 0 after its second
    // record, mid-lease. The unacknowledged iterations are re-leased, the
    // slot respawns, and the final report is indistinguishable from an
    // uninterrupted run.
    let baseline = CampaignRunner::new(campaign(GuidanceMode::Off, 3, 12)).run();
    let dist = DistConfig::new(worker_path())
        .with_processes(2)
        .with_threads_per_worker(2)
        .with_kill_worker_after_records(0, 2);
    let (report, stats) = DistRunner::new(campaign(GuidanceMode::Off, 3, 12), dist)
        .run_with_stats()
        .expect("crash-surviving campaign");
    assert!(
        stats.respawns >= 1,
        "the killed worker must have been respawned: {stats:?}"
    );
    assert_eq!(report.iterations_run, baseline.iterations_run);
    assert_eq!(fingerprint(&report), fingerprint(&baseline));
}

#[test]
fn killed_worker_under_guidance_still_merges_byte_identically() {
    let baseline = CampaignRunner::new(campaign(GuidanceMode::ColdProbe, 5, 10)).run();
    let dist = DistConfig::new(worker_path())
        .with_processes(2)
        .with_threads_per_worker(2)
        .with_kill_worker_after_records(1, 1);
    let (report, stats) = DistRunner::new(campaign(GuidanceMode::ColdProbe, 5, 10), dist)
        .run_with_stats()
        .expect("crash-surviving guided campaign");
    assert!(stats.respawns >= 1, "{stats:?}");
    assert_eq!(fingerprint(&report), fingerprint(&baseline));
}

#[test]
fn lease_stealing_lets_a_small_fleet_finish_a_lopsided_queue() {
    // More leases than processes, chunk size 1: every worker keeps pulling
    // work, and the merged report still covers every iteration exactly once.
    let dist = DistConfig::new(worker_path())
        .with_processes(2)
        .with_threads_per_worker(1)
        .with_lease_chunk(1);
    let (report, stats) = DistRunner::new(campaign(GuidanceMode::Off, 7, 9), dist)
        .run_with_stats()
        .expect("distributed campaign");
    let baseline = CampaignRunner::new(campaign(GuidanceMode::Off, 7, 9)).run();
    assert_eq!(report.iterations_run, 9);
    assert_eq!(fingerprint(&report), fingerprint(&baseline));
    assert_eq!(
        stats.leases_granted, 9,
        "chunk 1 means one lease per iteration"
    );
    assert_eq!(stats.records_received, 9);
}

#[test]
fn time_budget_stops_lease_granting_without_losing_records() {
    // The supervisor enforces the budget at lease granularity: workers get
    // a budget-erased config and run every granted lease to completion, so
    // a budgeted campaign ends with fully-recorded iterations — fewer than
    // requested, but never a silently truncated lease.
    let mut config = campaign(GuidanceMode::Off, 1, 100_000);
    config.attribute_findings = false;
    config.time_budget = Some(std::time::Duration::from_millis(300));
    let dist = DistConfig::new(worker_path())
        .with_processes(2)
        .with_threads_per_worker(1)
        .with_lease_chunk(2);
    let (report, stats) = DistRunner::new(config, dist)
        .run_with_stats()
        .expect("budgeted campaign");
    assert!(report.iterations_run > 0, "some iterations must run");
    assert!(
        report.iterations_run < 100_000,
        "the budget must stop the campaign early"
    );
    // Every granted lease was fully executed and recorded.
    assert_eq!(stats.records_received, report.iterations_run);
}

#[test]
fn differential_stdio_pair_smokes_the_transport_distributed() {
    // The differential stdio-pair preset pits the in-process engine against
    // its own spatter-sdb-server twin: identical engines, so any finding is
    // a transport bug. Run distributed, the workers themselves spawn the
    // server subprocesses — the full process tree of the subsystem.
    let mut config = CampaignConfig::differential_stdio_pair(
        server_path(),
        EngineProfile::PostgisLike,
        EngineProfile::PostgisLike.default_faults(),
    );
    config.generator = GeneratorConfig {
        num_geometries: 8,
        num_tables: 2,
        strategy: GenerationStrategy::GeometryAware,
        coordinate_range: 30,
        random_shape_probability: 0.5,
    };
    config.queries_per_run = 10;
    config.iterations = 6;
    config.attribute_findings = false;
    config.seed = 11;

    let dist = DistConfig::new(worker_path())
        .with_processes(2)
        .with_threads_per_worker(1);
    let report = DistRunner::new(config, dist)
        .run()
        .expect("differential pair campaign");
    assert_eq!(report.iterations_run, 6);
    assert!(
        report.findings.is_empty(),
        "identical engine twins must never disagree over the stdio transport: {:#?}",
        report.findings
    );
}

#[test]
fn differential_twin_oracle_actually_detects_divergence() {
    // The zero-findings assertion above is meaningful only if the twin
    // oracle can fail: pit the stock (faulty) engine against a fault-free
    // twin and the seeded faults surface as differential findings.
    use spatter_repro::core::backend::BackendSpec;
    use spatter_repro::core::runner::OracleKind;

    let mut config = campaign(GuidanceMode::Off, 3, 8);
    config.attribute_findings = false;
    config.oracles = vec![OracleKind::DifferentialTwin(BackendSpec::InProcess {
        profile: EngineProfile::PostgisLike,
        faults: FaultSet::none(),
    })];
    let report = CampaignRunner::new(config).run();
    assert!(
        !report.findings.is_empty(),
        "stock vs reference twins must diverge"
    );
    assert!(report
        .findings
        .iter()
        .all(|f| f.description.starts_with("[Differential]")));
}

#[test]
fn missing_worker_binary_is_a_structured_error_not_a_panic() {
    // Every spawn attempt fails before a single pipe exists. The supervisor
    // must burn through its (small) respawn budget and return a structured
    // error — the pre-fix code panicked on the unpiped stdin.
    use spatter_repro::core::dist::DistError;

    let dist = DistConfig::new("/nonexistent/spatter-worker-binary").with_max_respawns(2);
    let error = DistRunner::new(campaign(GuidanceMode::Off, 1, 6), dist)
        .run()
        .expect_err("a missing worker binary cannot run a campaign");
    assert!(
        matches!(error, DistError::Io(_) | DistError::Protocol { .. }),
        "{error}"
    );
}

#[cfg(unix)]
#[test]
fn worker_dying_before_the_handshake_is_recovered_by_respawn() {
    // A worker that dies between spawn and pipe takeover (OOM at startup,
    // a crashing dynamic loader) must be routed through the respawn path.
    // The flaky launcher below dies pre-handshake on its first invocation
    // and execs the real worker afterwards: the campaign must complete
    // byte-identically, with the failed start charged to the respawn budget.
    use std::os::unix::fs::PermissionsExt;

    let dir = std::env::temp_dir().join(format!("spatter-flaky-worker-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let marker = dir.join("started-once");
    let script = dir.join("flaky-worker.sh");
    std::fs::write(
        &script,
        format!(
            "#!/bin/sh\nif [ ! -e {marker} ]; then : > {marker}; exit 1; fi\nexec {worker} \"$@\"\n",
            marker = marker.display(),
            worker = worker_path(),
        ),
    )
    .expect("write launcher");
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755))
        .expect("mark executable");

    let baseline = CampaignRunner::new(campaign(GuidanceMode::Off, 3, 12)).run();
    let dist = DistConfig::new(&script)
        .with_processes(2)
        .with_threads_per_worker(2);
    let (report, stats) = DistRunner::new(campaign(GuidanceMode::Off, 3, 12), dist)
        .run_with_stats()
        .expect("the flaky first start must be recovered");
    assert!(
        stats.respawns >= 1,
        "the pre-handshake death must consume respawn budget: {stats:?}"
    );
    assert_eq!(report.iterations_run, baseline.iterations_run);
    assert_eq!(fingerprint(&report), fingerprint(&baseline));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unencodable_campaigns_are_rejected_up_front() {
    // A backend with no wire spec cannot be distributed; the supervisor
    // reports the structured wire error instead of spawning anything.
    use spatter_repro::core::dist::wire::WireError;
    use spatter_repro::core::dist::DistError;

    #[derive(Debug)]
    struct Opaque;
    impl spatter_repro::core::backend::EngineBackend for Opaque {
        fn profile(&self) -> EngineProfile {
            EngineProfile::PostgisLike
        }
        fn open_session(
            &self,
        ) -> Result<
            Box<dyn spatter_repro::core::backend::EngineSession>,
            spatter_repro::core::backend::BackendError,
        > {
            unimplemented!("never opened in this test")
        }
        fn fault_ids(&self) -> Vec<FaultId> {
            Vec::new()
        }
        fn without_fault(
            &self,
            _: FaultId,
        ) -> Box<dyn spatter_repro::core::backend::EngineBackend> {
            Box::new(Opaque)
        }
    }

    let config = campaign(GuidanceMode::Off, 1, 4).with_backend(std::sync::Arc::new(Opaque));
    let error = DistRunner::new(config, DistConfig::new(worker_path()))
        .run()
        .expect_err("opaque backends cannot be distributed");
    assert!(
        matches!(error, DistError::Wire(WireError::UnsupportedBackend(_))),
        "{error}"
    );
}
