//! End-to-end reproduction of the paper's listings: each test runs the
//! listing's statements against the stock (faulty) engine profile and against
//! the patched reference engine, asserting the buggy and the correct result
//! respectively.

use spatter_repro::sdb::{Engine, EngineProfile, SdbError, Value};

fn stock(profile: EngineProfile) -> Engine {
    Engine::new(profile)
}

fn patched(profile: EngineProfile) -> Engine {
    Engine::reference(profile)
}

#[test]
fn listing1_and_2_covers_precision_bug() {
    let setup = "CREATE TABLE t1 (g geometry);
        CREATE TABLE t2 (g geometry);
        INSERT INTO t1 (g) VALUES ('LINESTRING(0 1,2 0)');
        INSERT INTO t2 (g) VALUES ('POINT(0.2 0.9)');";
    let query = "SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Covers(t1.g,t2.g);";

    let mut engine = stock(EngineProfile::PostgisLike);
    engine.execute_script(setup).unwrap();
    assert_eq!(
        engine.execute(query).unwrap().count(),
        Some(0),
        "Listing 1: buggy result"
    );

    let mut engine = patched(EngineProfile::PostgisLike);
    engine.execute_script(setup).unwrap();
    assert_eq!(
        engine.execute(query).unwrap().count(),
        Some(1),
        "Listing 1: correct result"
    );

    // Listing 2 (the affine-equivalent pair) is correct even on the stock engine.
    let setup2 = "CREATE TABLE t1 (g geometry);
        CREATE TABLE t2 (g geometry);
        INSERT INTO t1 (g) VALUES ('LINESTRING(1 1,0 0)');
        INSERT INTO t2 (g) VALUES ('POINT(0.9 0.9)');";
    let mut engine = stock(EngineProfile::PostgisLike);
    engine.execute_script(setup2).unwrap();
    assert_eq!(engine.execute(query).unwrap().count(), Some(1), "Listing 2");
}

#[test]
fn listing3_crosses_after_scaling() {
    let statements = "SET @g1='MULTILINESTRING((990 280,100 20))';
        SET @g2='GEOMETRYCOLLECTION(MULTILINESTRING((990 280, 100 20)),POLYGON((360 60,850 620,850 420,360 60)))';";
    let query = "SELECT ST_Crosses(ST_GeomFromText(@g1), ST_GeomFromText(@g2));";

    let mut engine = stock(EngineProfile::MysqlLike);
    engine.execute_script(statements).unwrap();
    assert_eq!(
        engine.execute(query).unwrap().single_value(),
        Some(&Value::Bool(true)),
        "buggy"
    );

    let mut engine = patched(EngineProfile::MysqlLike);
    engine.execute_script(statements).unwrap();
    assert_eq!(
        engine.execute(query).unwrap().single_value(),
        Some(&Value::Bool(false)),
        "correct"
    );
}

#[test]
fn listing4_overlaps_after_swapping_axes() {
    let statements = "SET @g1 = ST_GeomFromText('POLYGON((614 445,30 26,80 30,614 445))');
        SET @g2 = ST_GeomFromText('GEOMETRYCOLLECTION(POLYGON((614 445,30 26,80 30,614 445)),POLYGON((190 1010,40 90,90 40,190 1010)))');";
    let mut engine = stock(EngineProfile::MysqlLike);
    engine.execute_script(statements).unwrap();
    assert_eq!(
        engine
            .execute("SELECT ST_Overlaps(@g2, @g1);")
            .unwrap()
            .single_value(),
        Some(&Value::Bool(false)),
        "un-swapped result is correct"
    );
    assert_eq!(
        engine
            .execute("SELECT ST_Overlaps(ST_SwapXY(@g2), ST_SwapXY(@g1));")
            .unwrap()
            .single_value(),
        Some(&Value::Bool(true)),
        "swapping the axes triggers the bug"
    );
    // The strict PostGIS-like profile rejects g2 instead (the expected
    // discrepancy that breaks differential testing for this bug).
    let mut engine = stock(EngineProfile::PostgisLike);
    engine.execute("SET @g2 = ST_GeomFromText('GEOMETRYCOLLECTION(POLYGON((614 445,30 26,80 30,614 445)),POLYGON((190 1010,40 90,90 40,190 1010)))');").unwrap();
    engine
        .execute("SET @g1 = ST_GeomFromText('POLYGON((614 445,30 26,80 30,614 445))');")
        .unwrap();
    let err = engine.execute("SELECT ST_Overlaps(@g2, @g1);").unwrap_err();
    assert!(matches!(err, SdbError::InvalidGeometry(_)));
}

#[test]
fn listing5_distance_with_empty_element() {
    let query = "SELECT ST_Distance('MULTIPOINT((1 0),(0 0))'::geometry, 'MULTIPOINT((-2 0),EMPTY)'::geometry);";
    let mut engine = stock(EngineProfile::PostgisLike);
    assert_eq!(
        engine.execute(query).unwrap().single_value(),
        Some(&Value::Double(3.0)),
        "buggy"
    );
    let mut engine = patched(EngineProfile::PostgisLike);
    assert_eq!(
        engine.execute(query).unwrap().single_value(),
        Some(&Value::Double(2.0)),
        "correct"
    );
    // Without the EMPTY element both agree.
    let query = "SELECT ST_Distance('MULTIPOINT((1 0),(0 0))'::geometry, 'POINT(-2 0)'::geometry);";
    let mut engine = stock(EngineProfile::PostgisLike);
    assert_eq!(
        engine.execute(query).unwrap().single_value(),
        Some(&Value::Double(2.0))
    );
}

#[test]
fn listing6_within_collection() {
    let query = "SELECT ST_Within('POINT(0 0)'::geometry, 'GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))'::geometry);";
    let mut engine = stock(EngineProfile::PostgisLike);
    assert_eq!(
        engine.execute(query).unwrap().single_value(),
        Some(&Value::Bool(false)),
        "buggy"
    );
    let mut engine = patched(EngineProfile::PostgisLike);
    assert_eq!(
        engine.execute(query).unwrap().single_value(),
        Some(&Value::Bool(true)),
        "correct"
    );
}

#[test]
fn listing7_prepared_geometry_misses_a_pair() {
    let setup = "CREATE TABLE t (id int, geom geometry);
        INSERT INTO t (id, geom) VALUES
        (1,'GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)))'::geometry),
        (2,'GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)))'::geometry),
        (3,'MULTIPOLYGON(((0 0,5 0,0 5,0 0)))'::geometry);";
    let query = "SELECT a1.id, a2.id FROM t As a1, t As a2 WHERE ST_Contains(a1.geom, a2.geom);";
    let pairs = |engine: &mut Engine| -> Vec<(i64, i64)> {
        engine
            .execute(query)
            .unwrap()
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect()
    };
    let mut engine = stock(EngineProfile::PostgisLike);
    engine.execute_script(setup).unwrap();
    assert_eq!(
        pairs(&mut engine),
        vec![(1, 1), (1, 2), (2, 1), (2, 2), (3, 1), (3, 3)],
        "buggy"
    );
    let mut engine = patched(EngineProfile::PostgisLike);
    engine.execute_script(setup).unwrap();
    assert_eq!(
        pairs(&mut engine),
        vec![(1, 1), (1, 2), (2, 1), (2, 2), (3, 1), (3, 2), (3, 3)],
        "correct"
    );
}

#[test]
fn listing8_gist_index_and_empty_geometry() {
    let setup = "CREATE TABLE t (id int, geom geometry);
        INSERT INTO t (id, geom) VALUES (1, 'POINT EMPTY');
        CREATE INDEX idx ON t USING GIST (geom);
        SET enable_seqscan = false;";
    let query = "SELECT COUNT(*) FROM t WHERE geom ~= 'POINT EMPTY'::geometry;";
    // The stock profile also carries a crash fault on index builds over
    // all-EMPTY columns, so the logic bug is isolated here the way the paper
    // reports it (one bug per report).
    let mut engine = spatter_repro::sdb::Engine::with_faults(
        EngineProfile::PostgisLike,
        spatter_repro::sdb::FaultSet::with([
            spatter_repro::sdb::FaultId::PostgisGistIndexDropsRows,
        ]),
    );
    engine.execute_script(setup).unwrap();
    assert_eq!(engine.execute(query).unwrap().count(), Some(0), "buggy");
    let mut engine = patched(EngineProfile::PostgisLike);
    engine.execute_script(setup).unwrap();
    assert_eq!(engine.execute(query).unwrap().count(), Some(1), "correct");
}

#[test]
fn listing9_dfullywithin() {
    let query = "SELECT ST_DFullyWithin('LINESTRING(0 0,0 1,1 0,0 0)'::geometry,'POLYGON((0 0,0 1,1 0,0 0))'::geometry,100);";
    let mut engine = stock(EngineProfile::PostgisLike);
    assert_eq!(
        engine.execute(query).unwrap().single_value(),
        Some(&Value::Bool(false)),
        "buggy"
    );
    let mut engine = patched(EngineProfile::PostgisLike);
    assert_eq!(
        engine.execute(query).unwrap().single_value(),
        Some(&Value::Bool(true)),
        "correct"
    );
}
