//! Integration test of the whole pipeline: a short campaign against each
//! stock profile must run to completion, and the findings it attributes must
//! be faults that actually belong to that profile.

use spatter_repro::core::campaign::{Campaign, CampaignConfig};
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::transform::AffineStrategy;
use spatter_repro::sdb::EngineProfile;

fn config(profile: EngineProfile, seed: u64) -> CampaignConfig {
    CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 8,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 40,
            random_shape_probability: 0.5,
        },
        queries_per_run: 15,
        affine: AffineStrategy::GeneralInteger,
        iterations: 15,
        time_budget: None,
        attribute_findings: true,
        seed,
        ..CampaignConfig::stock(profile)
    }
}

#[test]
fn campaigns_run_against_every_profile() {
    for profile in EngineProfile::ALL {
        let report = Campaign::new(config(profile, 9)).run();
        assert_eq!(report.iterations_run, 15, "{}", profile.name());
        let stock = profile.default_faults();
        for fault in &report.unique_faults {
            assert!(
                stock.is_active(*fault),
                "{}: attributed {:?} which the profile does not carry",
                profile.name(),
                fault
            );
        }
    }
}

#[test]
fn postgis_campaign_detects_multiple_unique_bugs() {
    let mut cfg = config(EngineProfile::PostgisLike, 31);
    cfg.iterations = 40;
    let report = Campaign::new(cfg).run();
    assert!(
        report.unique_bug_count() >= 2,
        "expected at least two distinct seeded faults, found {:?}",
        report.unique_faults
    );
    // Coverage was exercised.
    let last = report.coverage_timeline.last().unwrap();
    assert!(
        last.1 > 0.2,
        "geometry-library coverage should be non-trivial"
    );
}
