//! Cross-crate property tests of the AEI methodology itself
//! (Proposition 3.3): on the reference engine, the counts of the template
//! queries are identical between a generated database and any of its
//! canonicalized, affine-transformed counterparts.

use proptest::prelude::*;
use spatter_repro::core::campaign::run_aei_iteration;
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig, GeometryGenerator};
use spatter_repro::core::oracles::OracleOutcome;
use spatter_repro::core::queries::random_queries;
use spatter_repro::core::transform::{AffineStrategy, TransformPlan};
use spatter_repro::sdb::{EngineProfile, FaultSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The AEI oracle never reports a discrepancy against the fault-free
    /// reference engine, for random databases, random queries and random
    /// integer affine transformations.
    #[test]
    fn reference_engine_satisfies_the_aei_property(seed in 0u64..5000, plan_seed in 0u64..5000) {
        let mut generator = GeometryGenerator::new(
            GeneratorConfig {
                num_geometries: 8,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 30,
                random_shape_probability: 0.5,
            },
            seed,
        );
        let spec = generator.generate_database();
        let queries = random_queries(&spec, EngineProfile::PostgisLike, 10, seed ^ 0xbeef);
        let plan = TransformPlan::random(AffineStrategy::GeneralInteger, plan_seed);
        let (outcomes, _) = run_aei_iteration(
            EngineProfile::PostgisLike,
            &FaultSet::none(),
            &spec,
            &queries,
            &plan,
        );
        for outcome in outcomes {
            let flagged = matches!(
                outcome,
                OracleOutcome::LogicBug { .. } | OracleOutcome::Crash { .. }
            );
            prop_assert!(
                !flagged,
                "reference engine flagged: {:?} (generator seed {}, plan seed {})",
                outcome, seed, plan_seed
            );
        }
    }

    /// Canonicalization alone also preserves every count on the reference
    /// engine (the identity-matrix special case of §4.3).
    #[test]
    fn canonicalization_preserves_counts(seed in 0u64..5000) {
        let mut generator = GeometryGenerator::new(GeneratorConfig {
            num_geometries: 6,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 20,
            random_shape_probability: 0.4,
        }, seed);
        let spec = generator.generate_database();
        let queries = random_queries(&spec, EngineProfile::MysqlLike, 8, seed);
        let plan = TransformPlan::canonicalization_only();
        let (outcomes, _) = run_aei_iteration(
            EngineProfile::MysqlLike,
            &FaultSet::none(),
            &spec,
            &queries,
            &plan,
        );
        for outcome in outcomes {
            let flagged = matches!(outcome, OracleOutcome::LogicBug { .. });
            prop_assert!(!flagged, "canonicalization changed a count (seed {})", seed);
        }
    }
}
