//! Cross-crate property tests of the AEI methodology itself
//! (Proposition 3.3): on the reference engine, the counts of the template
//! queries are identical between a generated database and any of its
//! canonicalized, affine-transformed counterparts.
//!
//! The properties are exercised over a deterministic sweep of seeds (a
//! hermetic stand-in for proptest, which is unavailable without a crates.io
//! mirror); every failure message carries the seeds needed to replay it.

use spatter_repro::core::backend::InProcessBackend;
use spatter_repro::core::campaign::run_aei_iteration;
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig, GeometryGenerator};
use spatter_repro::core::oracles::OracleOutcome;
use spatter_repro::core::queries::random_queries;
use spatter_repro::core::rng::{split_seed, RngExt, SeedableRng, StdRng};
use spatter_repro::core::transform::{AffineStrategy, TransformPlan};
use spatter_repro::sdb::{Engine, EngineProfile};

/// The number of random cases per property (mirrors the original
/// `ProptestConfig::with_cases(24)`).
const CASES: u64 = 24;

/// Draws `CASES` pseudo-random `(seed, plan_seed)` pairs from `0..5000`.
fn case_seeds(stream: u64) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(split_seed(0xae1_cafe, stream));
    (0..CASES)
        .map(|_| (rng.random_range(0u64..5000), rng.random_range(0u64..5000)))
        .collect()
}

/// The AEI oracle never reports a discrepancy against the fault-free
/// reference engine, for random databases, random queries and random integer
/// affine transformations.
#[test]
fn reference_engine_satisfies_the_aei_property() {
    for (seed, plan_seed) in case_seeds(1) {
        let mut generator = GeometryGenerator::new(
            GeneratorConfig {
                num_geometries: 8,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 30,
                random_shape_probability: 0.5,
            },
            seed,
        );
        let spec = generator.generate_database();
        let queries = random_queries(&spec, EngineProfile::PostgisLike, 10, seed ^ 0xbeef);
        let plan = TransformPlan::random(AffineStrategy::GeneralInteger, plan_seed);
        let (outcomes, _) = run_aei_iteration(
            &InProcessBackend::reference(EngineProfile::PostgisLike),
            &spec,
            &queries,
            &plan,
        );
        for outcome in outcomes {
            let flagged = matches!(
                outcome,
                OracleOutcome::LogicBug { .. } | OracleOutcome::Crash { .. }
            );
            assert!(
                !flagged,
                "reference engine flagged: {:?} (generator seed {}, plan seed {})",
                outcome, seed, plan_seed
            );
        }
    }
}

/// Canonicalization alone also preserves every count on the reference engine
/// (the identity-matrix special case of §4.3).
#[test]
fn canonicalization_preserves_counts() {
    for (seed, _) in case_seeds(2) {
        let mut generator = GeometryGenerator::new(
            GeneratorConfig {
                num_geometries: 6,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 20,
                random_shape_probability: 0.4,
            },
            seed,
        );
        let spec = generator.generate_database();
        let queries = random_queries(&spec, EngineProfile::MysqlLike, 8, seed);
        let plan = TransformPlan::canonicalization_only();
        let (outcomes, _) = run_aei_iteration(
            &InProcessBackend::reference(EngineProfile::MysqlLike),
            &spec,
            &queries,
            &plan,
        );
        for outcome in outcomes {
            let flagged = matches!(outcome, OracleOutcome::LogicBug { .. });
            assert!(!flagged, "canonicalization changed a count (seed {})", seed);
        }
    }
}

/// The two join execution paths of the engine — nested loop over the base
/// tables and the R-tree index scan — return identical counts on
/// affine-equivalent databases: the AEI property holds regardless of the
/// physical plan the engine picks.
#[test]
fn index_scan_and_nested_loop_agree_on_affine_equivalent_databases() {
    for (seed, plan_seed) in case_seeds(3) {
        let mut generator = GeometryGenerator::new(
            GeneratorConfig {
                num_geometries: 8,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 30,
                random_shape_probability: 0.5,
            },
            seed,
        );
        let spec = generator.generate_database();
        let queries = random_queries(&spec, EngineProfile::PostgisLike, 6, seed ^ 0x1d8);
        let plan = TransformPlan::random(AffineStrategy::GeneralInteger, plan_seed);

        for db in [spec.clone(), plan.apply(&spec)] {
            for query in &queries {
                let count_of = |statements: &[String], force_index: bool| -> Option<i64> {
                    let mut engine = Engine::reference(EngineProfile::PostgisLike);
                    for statement in statements {
                        engine.execute(statement).ok()?;
                    }
                    if force_index {
                        engine.execute("SET enable_seqscan = false").ok()?;
                    }
                    engine.execute(&query.to_sql()).ok()?.count()
                };
                let nested_loop = count_of(&db.to_sql(), false);
                let index_scan = count_of(&db.to_sql_with_indexes(), true);
                if let (Some(a), Some(b)) = (nested_loop, index_scan) {
                    assert_eq!(
                        a,
                        b,
                        "join paths disagree for {} (generator seed {seed}, plan seed {plan_seed})",
                        query.to_sql()
                    );
                }
            }
        }
    }
}
