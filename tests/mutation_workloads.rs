//! End-to-end tests of mutation workloads: interleaved DML/DDL campaigns
//! that stay byte-identical across every execution shape, stay sound on the
//! reference engine, and detect the stale-index-maintenance fault class that
//! load-once campaigns structurally cannot reach.

use spatter_repro::core::campaign::{CampaignConfig, FindingKind};
use spatter_repro::core::dist::{DistConfig, DistRunner};
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::mutation::{MutationConfig, MutationScript};
use spatter_repro::core::replay::{ReplayLog, ReplayRecorder, ReplaySink};
use spatter_repro::core::runner::CampaignRunner;
use spatter_repro::core::transform::{AffineStrategy, TransformPlan};
use spatter_repro::sdb::faults::{FaultId, FaultSet};
use spatter_repro::sdb::EngineProfile;
use std::sync::Arc;

fn worker_path() -> &'static str {
    env!("CARGO_BIN_EXE_spatter-campaign-worker")
}

/// The procs × threads splits of the acceptance criteria.
const SPLITS: [(usize, usize); 3] = [(1, 4), (2, 2), (4, 1)];

fn mutation_campaign(seed: u64, iterations: usize) -> CampaignConfig {
    CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 8,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 30,
            random_shape_probability: 0.5,
        },
        queries_per_run: 8,
        affine: AffineStrategy::GeneralInteger,
        iterations,
        mutations: Some(MutationConfig::default()),
        seed,
        ..CampaignConfig::stock(EngineProfile::PostgisLike)
    }
}

fn record_in_process(config: &CampaignConfig, workers: usize) -> (String, ReplayLog) {
    let recorder = Arc::new(ReplayRecorder::new());
    let report = CampaignRunner::new(config.clone())
        .with_workers(workers)
        .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>)
        .run();
    (report.determinism_fingerprint(), recorder.log(config))
}

fn record_distributed(
    config: &CampaignConfig,
    processes: usize,
    threads: usize,
) -> (String, ReplayLog) {
    let recorder = Arc::new(ReplayRecorder::new());
    let dist = DistConfig::new(worker_path())
        .with_processes(processes)
        .with_threads_per_worker(threads);
    let report = DistRunner::new(config.clone(), dist)
        .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>)
        .run()
        .expect("distributed mutation campaign");
    (report.determinism_fingerprint(), recorder.log(config))
}

#[test]
fn mutation_campaigns_are_byte_identical_across_every_execution_shape() {
    // The acceptance criterion: with a mutation-heavy script interleaved
    // into every iteration, both the campaign fingerprint and the encoded
    // replay artifact are the same byte strings at any worker count and any
    // procs × threads split.
    let config = mutation_campaign(3, 12);
    let (reference_fingerprint, reference_log) = record_in_process(&config, 1);
    let reference_artifact = reference_log.encode();
    assert!(!reference_artifact.is_empty());
    for workers in [2, 4] {
        let (fingerprint, log) = record_in_process(&config, workers);
        assert_eq!(fingerprint, reference_fingerprint, "{workers} threads");
        assert_eq!(log.encode(), reference_artifact, "{workers} threads");
    }
    for (processes, threads) in SPLITS {
        let (fingerprint, log) = record_distributed(&config, processes, threads);
        assert_eq!(
            fingerprint, reference_fingerprint,
            "{processes} procs x {threads} threads"
        );
        assert_eq!(
            log.encode(),
            reference_artifact,
            "{processes} procs x {threads} threads"
        );
    }
}

#[test]
fn mutation_schedules_are_mutation_heavy_and_reach_the_setup_hash() {
    // The workload qualifies as mutation-heavy: across the campaign's
    // sub-seeds, the destructive fraction (UPDATE / DELETE / DROP) stays at
    // or above the 30% acceptance floor on average.
    let generator = GeneratorConfig {
        num_geometries: 8,
        num_tables: 2,
        strategy: GenerationStrategy::GeometryAware,
        coordinate_range: 30,
        random_shape_probability: 0.5,
    };
    let config = MutationConfig::default();
    let mut destructive = 0usize;
    let mut total = 0usize;
    for sub_seed in 0..32u64 {
        let mut gen =
            spatter_repro::core::generator::GeometryGenerator::new(generator.clone(), sub_seed);
        let spec = gen.generate_database();
        let plan = TransformPlan::random(AffineStrategy::GeneralInteger, sub_seed ^ 0xaff1e);
        let script = MutationScript::generate(&spec, 8, &plan, &generator, &config, sub_seed);
        destructive += script
            .schedule()
            .filter(|(_, statement)| statement.is_destructive())
            .count();
        total += script.statement_count();
    }
    assert!(total > 0);
    let fraction = destructive as f64 / total as f64;
    assert!(fraction >= 0.3, "destructive fraction {fraction} below 30%");

    // And the schedule is not cosmetic: the same seed with and without
    // mutations must record different setup hashes (the artifact folds the
    // mutation stream into the setup layer).
    let with = record_in_process(&mutation_campaign(3, 4), 1).1;
    let without = record_in_process(
        &CampaignConfig {
            mutations: None,
            ..mutation_campaign(3, 4)
        },
        1,
    )
    .1;
    assert_eq!(with.frames.len(), without.frames.len());
    assert!(
        with.frames
            .iter()
            .zip(&without.frames)
            .all(|(a, b)| a.setup_hash != b.setup_hash),
        "mutation schedules must be folded into every setup hash"
    );
}

#[test]
fn reference_engine_mutation_campaigns_are_sound() {
    // The metamorphic contract extended to mutations: applying the same
    // edits to SDB1 and the affine-mapped edits to SDB2 must keep AEI
    // holding statement by statement on the fully patched engine — any
    // finding here would be an oracle bug, not an engine bug.
    for seed in 0..4u64 {
        let config = CampaignConfig {
            backend: Arc::new(spatter_repro::core::InProcessBackend::reference(
                EngineProfile::PostgisLike,
            )),
            ..mutation_campaign(seed, 8)
        };
        let report = CampaignRunner::new(config).run();
        assert_eq!(report.iterations_run, 8);
        assert!(
            report.findings.is_empty(),
            "seed {seed}: reference engine flagged {:?}",
            report.findings
        );
    }
}

#[test]
fn stale_index_fault_is_detected_by_mutations_and_unreachable_load_once() {
    // The fault class that motivates mutation workloads: an UPDATE whose
    // index maintenance silently skips the reinsert. Load-once campaigns
    // never execute UPDATE maintenance, so the faulty path cannot run at
    // all — the comparison below is structural, not probabilistic.
    let faulty = FaultSet::with([FaultId::PostgisGistStaleOnMutation]);
    let mut detected = false;
    for seed in 0..6u64 {
        let mutated = CampaignConfig {
            backend: Arc::new(spatter_repro::core::InProcessBackend::new(
                EngineProfile::PostgisLike,
                faulty.clone(),
            )),
            ..mutation_campaign(seed, 10)
        };
        let load_once = CampaignConfig {
            mutations: None,
            ..mutated.clone()
        };

        // Load-once: the same faulty engine, the same seeds, zero findings.
        let baseline = CampaignRunner::new(load_once).run();
        assert!(
            baseline.findings.is_empty(),
            "seed {seed}: load-once campaign reached the mutation-only fault: {:?}",
            baseline.findings
        );

        let report = CampaignRunner::new(mutated).run();
        for finding in &report.findings {
            assert_eq!(finding.kind, FindingKind::Logic, "{finding:?}");
            // Attribution re-runs the full mutation prefix on the patched
            // engine and must name the seeded fault.
            assert_eq!(
                finding.attributed_faults,
                vec![FaultId::PostgisGistStaleOnMutation],
                "{finding:?}"
            );
        }
        detected |= report
            .unique_faults
            .contains(&FaultId::PostgisGistStaleOnMutation);
    }
    assert!(
        detected,
        "no mutation campaign in the seed sweep detected the stale-index fault"
    );
}
