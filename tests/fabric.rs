//! End-to-end tests of the campaign fabric: the pluggable transport layer
//! (stdio child processes vs TCP sockets), elastic lease sizing, and the
//! epoch-barrier guidance exchange.
//!
//! The invariant under test is the determinism contract of ISSUE 8: the
//! campaign report *and* the replay artifact are byte-identical across
//! {stdio, TCP} × any processes × threads split × {guided, unguided},
//! including runs that kill and respawn workers over TCP.

use std::sync::Arc;
use std::time::Duration;

use spatter_repro::core::campaign::{CampaignConfig, CampaignReport};
use spatter_repro::core::dist::{DistConfig, DistError, DistRunner};
use spatter_repro::core::fabric::TcpTransport;
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::guidance::GuidanceMode;
use spatter_repro::core::replay::{ReplayRecorder, ReplaySink};
use spatter_repro::core::runner::CampaignRunner;
use spatter_repro::core::transform::AffineStrategy;
use spatter_repro::sdb::EngineProfile;

fn worker_path() -> &'static str {
    env!("CARGO_BIN_EXE_spatter-campaign-worker")
}

/// The procs × threads splits of the acceptance criteria: total
/// parallelism 4, sliced three ways.
const SPLITS: [(usize, usize); 3] = [(1, 4), (2, 2), (4, 1)];

fn campaign(guidance: GuidanceMode, seed: u64, iterations: usize) -> CampaignConfig {
    CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 8,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 30,
            random_shape_probability: 0.5,
        },
        queries_per_run: 10,
        affine: AffineStrategy::GeneralInteger,
        iterations,
        time_budget: None,
        attribute_findings: true,
        guidance,
        seed,
        ..CampaignConfig::stock(EngineProfile::PostgisLike)
    }
}

fn fingerprint(report: &CampaignReport) -> String {
    report.determinism_fingerprint()
}

/// Runs the campaign in-process with a recorder attached, returning the
/// report and the encoded replay artifact.
fn baseline(config: CampaignConfig) -> (CampaignReport, String) {
    let recorder = Arc::new(ReplayRecorder::new());
    let report = CampaignRunner::new(config.clone())
        .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>)
        .run();
    let artifact = recorder.log(&config).encode();
    (report, artifact)
}

/// Runs the campaign through `DistRunner` with a recorder attached, over
/// the given transport ("stdio" → the default child-process transport,
/// "tcp" → a loopback listener that spawns dialing workers).
fn distributed(
    config: CampaignConfig,
    dist: DistConfig,
    transport: &str,
) -> (CampaignReport, String) {
    let recorder = Arc::new(ReplayRecorder::new());
    let mut runner = DistRunner::new(config.clone(), dist)
        .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>);
    if transport == "tcp" {
        let tcp = TcpTransport::loopback()
            .expect("bind loopback listener")
            .with_spawned_workers(worker_path());
        runner = runner.with_transport(Box::new(tcp));
    }
    let report = runner.run().expect("distributed campaign");
    let artifact = recorder.log(&config).encode();
    (report, artifact)
}

#[test]
fn every_transport_and_split_is_byte_identical_unguided() {
    let (reference, reference_artifact) = baseline(campaign(GuidanceMode::Off, 3, 12));
    assert!(!reference.findings.is_empty());
    for transport in ["stdio", "tcp"] {
        for (processes, threads) in SPLITS {
            let dist = DistConfig::new(worker_path())
                .with_processes(processes)
                .with_threads_per_worker(threads);
            let (report, artifact) =
                distributed(campaign(GuidanceMode::Off, 3, 12), dist, transport);
            assert_eq!(
                fingerprint(&report),
                fingerprint(&reference),
                "{transport} {processes}x{threads}"
            );
            assert_eq!(
                artifact, reference_artifact,
                "replay artifact over {transport} {processes}x{threads}"
            );
        }
    }
}

#[test]
fn every_transport_and_split_is_byte_identical_guided() {
    let (reference, reference_artifact) = baseline(campaign(GuidanceMode::ColdProbe, 3, 12));
    assert!(!reference.findings.is_empty());
    for transport in ["stdio", "tcp"] {
        for (processes, threads) in SPLITS {
            let dist = DistConfig::new(worker_path())
                .with_processes(processes)
                .with_threads_per_worker(threads);
            let (report, artifact) =
                distributed(campaign(GuidanceMode::ColdProbe, 3, 12), dist, transport);
            assert_eq!(
                fingerprint(&report),
                fingerprint(&reference),
                "{transport} {processes}x{threads}"
            );
            assert_eq!(report.probe_coverage, reference.probe_coverage);
            assert_eq!(
                artifact, reference_artifact,
                "replay artifact over {transport} {processes}x{threads}"
            );
        }
    }
}

#[test]
fn killed_worker_over_tcp_is_respawned_and_byte_identical() {
    // The TCP variant of the crash-survival test: the supervisor kills the
    // spawned-and-dialing worker 0 after its second record (dropping the
    // socket), re-leases the unacknowledged iterations, and accepts a fresh
    // dialing incarnation — the report must be indistinguishable.
    let (reference, reference_artifact) = baseline(campaign(GuidanceMode::Off, 3, 12));
    let recorder = Arc::new(ReplayRecorder::new());
    let tcp = TcpTransport::loopback()
        .expect("bind loopback listener")
        .with_spawned_workers(worker_path());
    let dist = DistConfig::new(worker_path())
        .with_processes(2)
        .with_threads_per_worker(2)
        .with_kill_worker_after_records(0, 2);
    let (report, stats) = DistRunner::new(campaign(GuidanceMode::Off, 3, 12), dist)
        .with_transport(Box::new(tcp))
        .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>)
        .run_with_stats()
        .expect("crash-surviving TCP campaign");
    assert!(stats.respawns >= 1, "{stats:?}");
    assert_eq!(fingerprint(&report), fingerprint(&reference));
    assert_eq!(
        recorder.log(&campaign(GuidanceMode::Off, 3, 12)).encode(),
        reference_artifact
    );
}

#[test]
fn epoch_barrier_guidance_is_byte_identical_across_the_fabric() {
    // Epoch campaigns re-merge probe coverage every 4 iterations and
    // broadcast the refreshed snapshot at the barrier. The supervisor's
    // epoch loop and the in-process `run_epochs` must agree bytewise, over
    // both transports and every split.
    let mut config = campaign(GuidanceMode::ColdProbe, 3, 12);
    config.guidance_epoch = Some(4);
    let (reference, reference_artifact) = baseline(config.clone());
    for transport in ["stdio", "tcp"] {
        for (processes, threads) in SPLITS {
            let recorder = Arc::new(ReplayRecorder::new());
            let dist = DistConfig::new(worker_path())
                .with_processes(processes)
                .with_threads_per_worker(threads);
            let mut runner = DistRunner::new(config.clone(), dist)
                .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>);
            if transport == "tcp" {
                let tcp = TcpTransport::loopback()
                    .expect("bind loopback listener")
                    .with_spawned_workers(worker_path());
                runner = runner.with_transport(Box::new(tcp));
            }
            let (report, stats) = runner
                .run_with_stats()
                .expect("epoch-barrier distributed campaign");
            assert_eq!(
                fingerprint(&report),
                fingerprint(&reference),
                "{transport} {processes}x{threads}"
            );
            assert_eq!(report.probe_coverage, reference.probe_coverage);
            assert_eq!(recorder.log(&config).encode(), reference_artifact);
            // Warm-up is 2 iterations, so the windows are [2,6) [6,10)
            // [10,12): two barriers broadcast a refreshed snapshot.
            assert_eq!(
                stats.guidance_epochs, 2,
                "{transport} {processes}x{threads}"
            );
        }
    }
}

#[test]
fn adaptive_leases_starve_a_straggler_without_changing_bytes() {
    // Slot 0 is an injected straggler (40ms per iteration); slot 1 runs at
    // full speed. Under the adaptive policy the supervisor's per-slot cost
    // EWMA shrinks the straggler's leases to the minimum and grows the fast
    // slot's toward the maximum — fewer iterations land on the slow slot,
    // and the merged report stays byte-identical to every other shape.
    // Attribution is off so the injected delay dominates the iteration cost.
    let config = || {
        let mut config = campaign(GuidanceMode::Off, 3, 16);
        config.attribute_findings = false;
        config
    };
    let (reference, _) = baseline(config());

    let straggler_args = vec!["--iteration-delay-ms".to_string(), "40".to_string()];
    let fixed = DistConfig::new(worker_path())
        .with_processes(2)
        .with_threads_per_worker(1)
        .with_lease_chunk(1)
        .with_worker_slot_args(0, straggler_args.clone());
    let (fixed_report, fixed_stats) = DistRunner::new(config(), fixed)
        .run_with_stats()
        .expect("fixed-lease straggler campaign");
    assert_eq!(fingerprint(&fixed_report), fingerprint(&reference));
    assert_eq!(fixed_stats.leases_resized, 0, "fixed policy never resizes");

    let adaptive = DistConfig::new(worker_path())
        .with_processes(2)
        .with_threads_per_worker(1)
        .with_adaptive_leases(1, 4, Duration::from_millis(150))
        .with_worker_slot_args(0, straggler_args);
    let (report, stats) = DistRunner::new(config(), adaptive)
        .run_with_stats()
        .expect("adaptive-lease straggler campaign");
    assert_eq!(fingerprint(&report), fingerprint(&reference));
    assert_eq!(stats.records_received, 16);
    assert!(
        stats.records_per_slot[0] < stats.records_per_slot[1],
        "the straggler must execute fewer iterations: {stats:?}"
    );
    assert!(
        stats.leases_resized >= 1,
        "the adaptive policy must have resized at least once: {stats:?}"
    );
}

#[cfg(unix)]
#[test]
fn wire_version_mismatch_is_rejected_with_diagnostics() {
    // A worker speaking an older protocol (a stale binary on a remote
    // machine) must be rejected at the handshake with a structured error
    // carrying the slot's stderr, not silently fed leases.
    use std::os::unix::fs::PermissionsExt;

    let dir = std::env::temp_dir().join(format!("spatter-stale-worker-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let script = dir.join("stale-worker.sh");
    std::fs::write(
        &script,
        "#!/bin/sh\necho 'stale build' >&2\necho 'hello 2'\nexec cat > /dev/null\n",
    )
    .expect("write stale worker");
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755))
        .expect("mark executable");

    let dist = DistConfig::new(&script).with_max_respawns(0);
    let error = DistRunner::new(campaign(GuidanceMode::Off, 1, 4), dist)
        .run()
        .expect_err("a stale wire version cannot join the fleet");
    match &error {
        DistError::WorkerFailed {
            message,
            stderr_tail,
            ..
        } => {
            assert!(
                message.contains("version mismatch"),
                "unexpected failure message: {message}"
            );
            assert!(
                stderr_tail.iter().any(|line| line.contains("stale build")),
                "stderr tail must carry the worker's own words: {stderr_tail:?}"
            );
        }
        other => panic!("expected WorkerFailed, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn crashing_worker_stderr_reaches_the_supervisor_error() {
    // A worker that dies before the handshake leaves only its stderr as
    // evidence; the supervisor must surface it in the structured error
    // instead of discarding the pipe with the corpse.
    use std::os::unix::fs::PermissionsExt;

    let dir = std::env::temp_dir().join(format!("spatter-crashing-worker-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let script = dir.join("crashing-worker.sh");
    std::fs::write(
        &script,
        "#!/bin/sh\necho 'boom: cannot load engine' >&2\nexit 3\n",
    )
    .expect("write crashing worker");
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755))
        .expect("mark executable");

    let dist = DistConfig::new(&script).with_max_respawns(0);
    let error = DistRunner::new(campaign(GuidanceMode::Off, 1, 4), dist)
        .run()
        .expect_err("a crashing worker cannot run a campaign");
    match &error {
        DistError::WorkerFailed { stderr_tail, .. } => {
            assert!(
                stderr_tail.iter().any(|line| line.contains("boom")),
                "stderr tail must carry the crash message: {stderr_tail:?}"
            );
        }
        other => panic!("expected WorkerFailed, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
