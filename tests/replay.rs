//! End-to-end tests of the replay subsystem: artifact byte-identity across
//! every execution shape (threads, processes, guidance), decode robustness
//! against damaged artifacts, divergence bisection, and the
//! `spatter-replay` command line.

use spatter_repro::core::campaign::CampaignConfig;
use spatter_repro::core::dist::{DistConfig, DistRunner};
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::guidance::GuidanceMode;
use spatter_repro::core::replay::bisect::{
    bisect_against_live, compare_logs, max_bisect_executions, ReplayExecutor,
};
use spatter_repro::core::replay::{
    DivergenceLayer, ReplayError, ReplayLog, ReplayRecorder, ReplaySink,
};
use spatter_repro::core::runner::CampaignRunner;
use spatter_repro::core::transform::AffineStrategy;
use spatter_repro::sdb::EngineProfile;
use std::sync::Arc;

fn worker_path() -> &'static str {
    env!("CARGO_BIN_EXE_spatter-campaign-worker")
}

fn replay_path() -> &'static str {
    env!("CARGO_BIN_EXE_spatter-replay")
}

/// The procs × threads splits of the acceptance criteria.
const SPLITS: [(usize, usize); 3] = [(1, 4), (2, 2), (4, 1)];

fn campaign(guidance: GuidanceMode, seed: u64, iterations: usize) -> CampaignConfig {
    CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 8,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 30,
            random_shape_probability: 0.5,
        },
        queries_per_run: 10,
        affine: AffineStrategy::GeneralInteger,
        iterations,
        guidance,
        seed,
        ..CampaignConfig::stock(EngineProfile::PostgisLike)
    }
}

fn record_in_process(config: &CampaignConfig, workers: usize) -> ReplayLog {
    let recorder = Arc::new(ReplayRecorder::new());
    CampaignRunner::new(config.clone())
        .with_workers(workers)
        .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>)
        .run();
    recorder.log(config)
}

fn record_distributed(config: &CampaignConfig, processes: usize, threads: usize) -> ReplayLog {
    let recorder = Arc::new(ReplayRecorder::new());
    let dist = DistConfig::new(worker_path())
        .with_processes(processes)
        .with_threads_per_worker(threads);
    DistRunner::new(config.clone(), dist)
        .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>)
        .run()
        .expect("distributed campaign");
    recorder.log(config)
}

#[test]
fn replay_artifacts_are_byte_identical_across_every_execution_shape() {
    // The acceptance criterion: the encoded artifact — not merely the
    // fingerprint — is the same byte string whether the campaign ran on one
    // thread, four threads, or any procs × threads fleet, guided included.
    for guidance in [GuidanceMode::Off, GuidanceMode::ColdProbe] {
        let config = campaign(guidance, 3, 12);
        let reference = record_in_process(&config, 1).encode();
        assert!(!reference.is_empty());
        assert_eq!(
            record_in_process(&config, 4).encode(),
            reference,
            "{guidance:?}: 4 worker threads"
        );
        for (processes, threads) in SPLITS {
            assert_eq!(
                record_distributed(&config, processes, threads).encode(),
                reference,
                "{guidance:?}: {processes} procs x {threads} threads"
            );
        }
    }
}

#[test]
fn crash_recovered_campaigns_record_the_same_artifact() {
    // A worker killed mid-lease forces re-leases and duplicate records; the
    // recorder's first-wins idempotence must keep the artifact identical.
    let config = campaign(GuidanceMode::Off, 3, 12);
    let reference = record_in_process(&config, 1).encode();
    let recorder = Arc::new(ReplayRecorder::new());
    let dist = DistConfig::new(worker_path())
        .with_processes(2)
        .with_threads_per_worker(2)
        .with_kill_worker_after_records(0, 2);
    let (_, stats) = DistRunner::new(config.clone(), dist)
        .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>)
        .run_with_stats()
        .expect("crash-surviving campaign");
    assert!(stats.respawns >= 1, "{stats:?}");
    assert_eq!(recorder.log(&config).encode(), reference);
}

#[test]
fn every_truncation_prefix_decodes_to_a_structured_error() {
    let config = campaign(GuidanceMode::Off, 5, 6);
    let text = record_in_process(&config, 2).encode();
    assert_eq!(
        ReplayLog::decode(&text)
            .expect("full artifact")
            .frames
            .len(),
        6
    );
    assert!(text.is_ascii(), "artifacts are ASCII; every cut is valid");
    for cut in 0..text.len() {
        // Every strict byte prefix must decode to an error — never panic,
        // and never succeed: the declared frame count catches lost lines,
        // the `end` footer catches a lost tail, and the newline-termination
        // rule catches a cut inside the last token (whose prefix would
        // still parse as a number).
        let result = ReplayLog::decode(&text[..cut]);
        assert!(result.is_err(), "prefix of {cut} bytes decoded: {result:?}");
    }
}

#[test]
fn damaged_artifacts_decode_to_structured_errors_never_panics() {
    let config = campaign(GuidanceMode::Off, 5, 4);
    let good = record_in_process(&config, 1).encode();

    // Garbage corpus: none of these may panic, all must be errors.
    for garbage in [
        "",
        "\n\n",
        "not a replay log",
        "spatter-replay",
        "spatter-replay one seed 2 iterations 3 guidance off frames 0",
        "spatter-replay 1 seed 2 iterations 3 guidance sideways frames 0",
        "spatter-replay 1 seed 2 iterations 3 guidance off frames 1\nframe x 1 2 3 4",
        "spatter-replay 1 seed 2 iterations 3 guidance off frames 1\nframe 0 1 2 3 4 5",
        "spatter-replay 1 seed 2 iterations 3 guidance off frames 2\nframe 1 1 2 3 4\nframe 0 1 2 3 4",
        "spatter-replay 1 seed 2 iterations 3 guidance off frames 18446744073709551615",
    ] {
        assert!(ReplayLog::decode(garbage).is_err(), "{garbage:?}");
    }

    // A version-skewed artifact names both versions.
    let skewed = good.replacen("spatter-replay 1", "spatter-replay 99", 1);
    assert!(matches!(
        ReplayLog::decode(&skewed),
        Err(ReplayError::VersionMismatch { theirs: 99, .. })
    ));

    // Trailing input after the declared frames is rejected, not ignored.
    let trailing = format!("{good}frame 99 1 2 3 4\n");
    assert!(matches!(
        ReplayLog::decode(&trailing),
        Err(ReplayError::TrailingInput { .. })
    ));

    // Garbage appended as a partial line is also trailing input.
    let garbage_tail = format!("{good}???");
    assert!(ReplayLog::decode(&garbage_tail).is_err());
}

#[test]
fn compare_pinpoints_a_seeded_single_iteration_divergence() {
    // The divergence-positive control: flip exactly one iteration's outcome
    // hash in an otherwise identical recording and the comparison must name
    // that iteration, the outcome layer, and its sub-seed.
    let config = campaign(GuidanceMode::Off, 3, 12);
    let log = record_in_process(&config, 2);
    let mut corrupted = log.clone();
    corrupted.frames[7].outcome_hash ^= 1;
    let divergence = compare_logs(&log, &corrupted).expect("must diverge");
    assert_eq!(divergence.iteration, 7);
    assert_eq!(divergence.layer, DivergenceLayer::Outcome);
    assert_eq!(divergence.sub_seed, log.frames[7].sub_seed);
    assert_eq!(compare_logs(&log, &log), None);
}

#[test]
fn live_bisection_finds_a_config_skew_frontier_within_budget() {
    // A recorded-vs-live mismatch from config skew diverges at some
    // iteration and stays diverged. Model it with a hybrid artifact: frames
    // before the frontier from the live-matching config, frames at and past
    // it from a config with two extra queries per run (different query set
    // → setup-layer divergence at every such iteration).
    let config = campaign(GuidanceMode::Off, 3, 12);
    let matching = record_in_process(&config, 2);
    let skewed_config = CampaignConfig {
        queries_per_run: config.queries_per_run + 2,
        ..config.clone()
    };
    let skewed = record_in_process(&skewed_config, 2);

    for frontier in [0, 5, 11] {
        let mut frames = matching.frames[..frontier].to_vec();
        frames.extend_from_slice(&skewed.frames[frontier..]);
        let reference = ReplayLog {
            frames,
            ..matching.clone()
        };

        let executor = ReplayExecutor::new(config.clone());
        let outcome = bisect_against_live(&reference, |iteration| executor.frame(iteration));
        let divergence = outcome.divergence.expect("skew must diverge");
        assert_eq!(divergence.iteration, frontier);
        assert_eq!(divergence.layer, DivergenceLayer::Setup);
        assert!(
            outcome.executions <= max_bisect_executions(reference.frames.len()),
            "frontier {frontier}: {} executions > budget {}",
            outcome.executions,
            max_bisect_executions(reference.frames.len())
        );
    }

    // And the all-matching artifact bisects clean in one execution.
    let executor = ReplayExecutor::new(config.clone());
    let outcome = bisect_against_live(&matching, |iteration| executor.frame(iteration));
    assert_eq!(outcome.divergence, None);
    assert_eq!(outcome.executions, 1);
}

#[test]
fn replay_cli_records_compares_and_bisects() {
    use std::process::Command;

    let dir = std::env::temp_dir().join(format!("spatter-replay-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let a = dir.join("a.replay");
    let b = dir.join("b.replay");

    let record = |path: &std::path::Path, extra: &[&str]| {
        let status = Command::new(replay_path())
            .arg("record")
            .arg(path)
            .args(["--seed", "3", "--iterations", "8", "--queries", "6"])
            .args(extra)
            .status()
            .expect("spawn spatter-replay");
        assert!(status.success(), "record failed: {status}");
    };
    record(&a, &[]);
    record(&b, &["--corrupt-iteration", "5"]);

    // Identical recordings compare clean (exit 0)...
    let clean = Command::new(replay_path())
        .args(["compare"])
        .args([&a, &a])
        .output()
        .expect("compare");
    assert!(clean.status.success(), "{clean:?}");
    assert!(String::from_utf8_lossy(&clean.stdout).contains("identical: 8 frames"));

    // ...while the seeded corruption is reported with exit code 2 and a
    // parseable divergence line naming the corrupted iteration.
    let diverged = Command::new(replay_path())
        .args(["compare"])
        .args([&a, &b])
        .output()
        .expect("compare");
    assert_eq!(diverged.status.code(), Some(2), "{diverged:?}");
    let stdout = String::from_utf8_lossy(&diverged.stdout);
    assert!(
        stdout.contains("divergence: iteration=5 layer=outcome"),
        "{stdout}"
    );

    // A live bisect of the uncorrupted artifact against the same build and
    // flags matches (exit 0).
    let live = Command::new(replay_path())
        .arg("bisect")
        .arg(&a)
        .args(["--seed", "3", "--iterations", "8", "--queries", "6"])
        .output()
        .expect("bisect");
    assert!(live.status.success(), "{live:?}");
    assert!(String::from_utf8_lossy(&live.stdout).contains("no divergence"));

    // A damaged artifact is a structured CLI error (exit 1), not a panic.
    let damaged = dir.join("damaged.replay");
    std::fs::write(&damaged, "spatter-replay 99 nonsense").expect("write damaged");
    let error = Command::new(replay_path())
        .args(["compare"])
        .args([&damaged, &a])
        .output()
        .expect("compare damaged");
    assert_eq!(error.status.code(), Some(1), "{error:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_cli_reduce_shrinks_a_recorded_logic_bug() {
    use spatter_repro::core::campaign::FindingKind;
    use std::process::Command;

    // The flags the CLI will be handed, mirrored as a config so the test can
    // locate an iteration with an AEI logic bug (`CampaignFlags::campaign`
    // overrides exactly these fields over the stock defaults).
    let flags = ["--seed", "3", "--iterations", "8", "--queries", "6"];
    let config = CampaignConfig {
        queries_per_run: 6,
        iterations: 8,
        seed: 3,
        ..CampaignConfig::stock(EngineProfile::PostgisLike)
    };
    let report = CampaignRunner::new(config).run();
    let victim = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::Logic)
        .map(|f| f.iteration)
        .expect("seed 3 must surface an AEI logic bug on the stock engine");
    let clean = (0..8)
        .find(|i| {
            report
                .findings
                .iter()
                .all(|f| f.iteration != *i || f.kind != FindingKind::Logic)
        })
        .expect("some iteration must be bug-free");

    let dir = std::env::temp_dir().join(format!("spatter-reduce-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let artifact = dir.join("campaign.replay");
    let status = Command::new(replay_path())
        .arg("record")
        .arg(&artifact)
        .args(flags)
        .status()
        .expect("spawn spatter-replay");
    assert!(status.success(), "record failed: {status}");

    // Reducing the diverging iteration exits 2 and prints the reduced
    // scenario: a parseable stats line followed by runnable SQL.
    let reduced = Command::new(replay_path())
        .arg("reduce")
        .arg(&artifact)
        .args(["--iteration", &victim.to_string()])
        .args(flags)
        .output()
        .expect("reduce");
    assert_eq!(reduced.status.code(), Some(2), "{reduced:?}");
    let stdout = String::from_utf8_lossy(&reduced.stdout);
    assert!(
        stdout.contains(&format!("reduced: iteration={victim}")),
        "{stdout}"
    );
    assert!(stdout.contains("CREATE TABLE"), "{stdout}");
    assert!(stdout.contains("SELECT"), "{stdout}");

    // Reducing a bug-free iteration reports no divergence (exit 0).
    let no_bug = Command::new(replay_path())
        .arg("reduce")
        .arg(&artifact)
        .args(["--iteration", &clean.to_string()])
        .args(flags)
        .output()
        .expect("reduce clean iteration");
    assert!(no_bug.status.success(), "{no_bug:?}");
    assert!(String::from_utf8_lossy(&no_bug.stdout).contains("no divergence"));

    // A missing --iteration is a usage error (exit 1).
    let usage = Command::new(replay_path())
        .arg("reduce")
        .arg(&artifact)
        .args(flags)
        .output()
        .expect("reduce without iteration");
    assert_eq!(usage.status.code(), Some(1), "{usage:?}");

    std::fs::remove_dir_all(&dir).ok();
}
