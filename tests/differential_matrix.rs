//! End-to-end tests of the differential testing matrix: a hermetic 3×3 grid
//! mixing in-process engines with the generic external-engine adapter
//! (driving `spatter-sdb-server` through its self-test dialect), per-side
//! finding bucketing, byte-identical artifacts at any worker count, adapter
//! crash-recovery parity with the stdio backend, and the `spatter-matrix`
//! CLI's exit-code contract.
//!
//! Binary paths come from `CARGO_BIN_EXE_*`, which Cargo guarantees are
//! built before these tests run.

use spatter_repro::core::backend::{BackendError, BackendSpec, EngineBackend, StdioBackend};
use spatter_repro::core::campaign::CampaignConfig;
use spatter_repro::core::matrix::{
    DialectSpec, ExternalBackend, MatrixConfig, MatrixEntry, MatrixReport, MatrixRunner,
};
use spatter_repro::sdb::{EngineProfile, FaultId, FaultSet};
use std::process::Command;

fn server_path() -> &'static str {
    env!("CARGO_BIN_EXE_spatter-sdb-server")
}

fn matrix_cli() -> &'static str {
    env!("CARGO_BIN_EXE_spatter-matrix")
}

/// The hermetic roster: a fault-free in-process reference, the same
/// reference engine behind the external adapter (so the pair must agree),
/// and the stock engine carrying its default seeded faults.
fn roster() -> Vec<MatrixEntry> {
    vec![
        MatrixEntry::new(
            "reference",
            BackendSpec::InProcess {
                profile: EngineProfile::PostgisLike,
                faults: FaultSet::none(),
            },
        ),
        MatrixEntry::new(
            "adapter-twin",
            BackendSpec::External {
                dialect: DialectSpec::sdb_server(
                    server_path(),
                    EngineProfile::PostgisLike,
                    FaultSet::none(),
                    false,
                ),
            },
        ),
        MatrixEntry::new(
            "stock",
            BackendSpec::InProcess {
                profile: EngineProfile::PostgisLike,
                faults: EngineProfile::PostgisLike.default_faults(),
            },
        ),
    ]
}

fn grid_base() -> CampaignConfig {
    CampaignConfig {
        queries_per_run: 10,
        iterations: 8,
        seed: 3,
        ..CampaignConfig::default()
    }
}

#[test]
fn the_grid_pins_every_finding_on_the_seeded_fault_backend() {
    let report = MatrixRunner::new(MatrixConfig::new(roster(), grid_base())).run();
    assert_eq!(report.backends, vec!["reference", "adapter-twin", "stock"]);
    assert_eq!(report.cells.len(), 6);
    assert!(!report.is_clean(), "the stock backend must diverge");

    // The faulty backend is implicated in every cell it touches (4 of 6);
    // the two clean backends only in their cells against it.
    assert_eq!(report.involvement[2], 4, "{report:#?}");
    assert!(report.involvement[0] < report.involvement[2]);
    assert!(report.involvement[1] < report.involvement[2]);

    for cell in &report.cells {
        let buckets = cell.buckets;
        assert_eq!(cell.iterations_run, 8);
        match (cell.left, cell.right) {
            // Reference vs adapter twin: semantically the same engine on
            // both sides of both the AEI pair and the differential pair —
            // any finding here is a matrix or adapter bug.
            (0, 1) | (1, 0) => assert!(
                buckets.is_clean(),
                "reference/adapter cell must be clean: {report:#?}"
            ),
            // The stock engine as comparison twin: the grid re-buckets the
            // two-sided differential disagreements onto the faulty side.
            (_, 2) => {
                assert!(buckets.right > 0, "{report:#?}");
                assert_eq!((buckets.left, buckets.both), (0, 0), "{report:#?}");
            }
            // The stock engine under test: AEI violations and refined
            // disagreements all land on the left.
            (2, _) => {
                assert!(buckets.left > 0, "{report:#?}");
                assert_eq!((buckets.right, buckets.both), (0, 0), "{report:#?}");
            }
            pair => panic!("unexpected cell {pair:?}"),
        }
    }

    // The artifact round-trips exactly.
    let decoded = MatrixReport::decode(&report.encode()).expect("round trip");
    assert_eq!(decoded, report);
}

#[test]
fn matrix_artifacts_are_byte_identical_at_any_worker_count() {
    // Two backends keep the repetition affordable: the pair that actually
    // diverges, run at 1, 2 and 4 workers per cell.
    let entries = || {
        vec![
            MatrixEntry::new(
                "reference",
                BackendSpec::InProcess {
                    profile: EngineProfile::PostgisLike,
                    faults: FaultSet::none(),
                },
            ),
            MatrixEntry::new(
                "stock",
                BackendSpec::InProcess {
                    profile: EngineProfile::PostgisLike,
                    faults: EngineProfile::PostgisLike.default_faults(),
                },
            ),
        ]
    };
    let baseline = MatrixRunner::new(MatrixConfig::new(entries(), grid_base())).run();
    assert!(!baseline.is_clean(), "seed 3 must produce findings");
    let encoded = baseline.encode();
    for workers in [2, 4] {
        let parallel =
            MatrixRunner::new(MatrixConfig::new(entries(), grid_base()).with_workers(workers))
                .run();
        assert_eq!(parallel.encode(), encoded, "{workers} workers");
    }
}

#[test]
fn external_adapter_recovers_from_a_killed_engine_like_the_stdio_backend() {
    // The same kill-mid-session scenario the stdio backend is tested with:
    // --hard-crash terminates the server process at a simulated crash. The
    // adapter must report the identical canonical transport error and then
    // transparently respawn + replay its setup, in lockstep with
    // StdioBackend.
    let faults = FaultSet::with([FaultId::GeosCrashRelateShortRing]);
    let external: Box<dyn EngineBackend> = Box::new(ExternalBackend::new(DialectSpec::sdb_server(
        server_path(),
        EngineProfile::MysqlLike,
        faults.clone(),
        true,
    )));
    let stdio: Box<dyn EngineBackend> = Box::new(
        StdioBackend::new(server_path(), EngineProfile::MysqlLike, faults).with_hard_crash(true),
    );

    let drive = |backend: &dyn EngineBackend| {
        let mut session = backend.open_session().expect("open");
        session
            .load(&[
                "CREATE TABLE t (g geometry)".to_string(),
                "INSERT INTO t (g) VALUES ('POLYGON((0 0,1 1,0 0))'), ('POINT(0 0)')".to_string(),
            ])
            .expect("load");
        let ok_sql = "SELECT COUNT(*) FROM t a JOIN t b ON ST_DWithin(a.g, b.g, 100)";
        let before = session.run_count(ok_sql);
        let crash = session
            .run_count("SELECT COUNT(*) FROM t a JOIN t b ON ST_Intersects(a.g, b.g)")
            .expect_err("the crash must kill the server");
        // Recovery: respawn + setup replay answers the next query.
        let after = session.run_count(ok_sql);
        (before, crash, after)
    };

    let external_run = drive(external.as_ref());
    let stdio_run = drive(stdio.as_ref());
    assert_eq!(external_run, stdio_run, "adapter/stdio recovery parity");
    let (before, crash, after) = external_run;
    assert_eq!(before, Ok(Some(4)));
    assert_eq!(
        crash,
        BackendError::Transport("engine process terminated".to_string()),
        "dead adapters must surface the canonical transport error"
    );
    assert_eq!(after, Ok(Some(4)));
}

#[test]
fn external_adapter_campaigns_match_the_stdio_backend_byte_for_byte() {
    // The adapter's self-test dialect speaks to the very same server binary
    // the stdio backend drives, so a whole campaign through each must agree
    // on everything deterministic.
    let faults = FaultSet::with([FaultId::PostgisDFullyWithinSmallCoords]);
    let config = |spec: BackendSpec| CampaignConfig {
        queries_per_run: 10,
        iterations: 6,
        seed: 11,
        backend: spec.build(),
        ..CampaignConfig::default()
    };
    let external =
        spatter_repro::core::runner::CampaignRunner::new(config(BackendSpec::External {
            dialect: DialectSpec::sdb_server(
                server_path(),
                EngineProfile::PostgisLike,
                faults.clone(),
                false,
            ),
        }))
        .run();
    let stdio = spatter_repro::core::runner::CampaignRunner::new(config(BackendSpec::Stdio {
        command: server_path().into(),
        profile: EngineProfile::PostgisLike,
        faults,
        hard_crash: false,
    }))
    .run();
    // Attribution differs by design (the adapter reports no fault ids), so
    // compare the pre-attribution projection: kinds, sides, descriptions
    // and iterations.
    let project = |report: &spatter_repro::core::CampaignReport| {
        report
            .findings
            .iter()
            .map(|f| (f.kind, f.side, f.description.clone(), f.iteration))
            .collect::<Vec<_>>()
    };
    assert_eq!(project(&external), project(&stdio));
    assert_eq!(external.skipped_queries, stdio.skipped_queries);
}

#[test]
fn matrix_cli_exit_codes_distinguish_clean_and_divergent_grids() {
    let dir = std::env::temp_dir().join(format!("spatter-matrix-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let artifact = dir.join("grid.matrix");

    // A divergent grid (reference vs stock) exits 2 and writes an artifact.
    let divergent = Command::new(matrix_cli())
        .args([
            "run",
            "--backend",
            "in-process:postgis_like:reference",
            "--backend",
            "in-process:postgis_like:stock",
            "--iterations",
            "8",
            "--queries",
            "10",
            "--seed",
            "3",
            "--out",
            artifact.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("run spatter-matrix");
    assert_eq!(
        divergent.status.code(),
        Some(2),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&divergent.stdout),
        String::from_utf8_lossy(&divergent.stderr)
    );
    let stdout = String::from_utf8_lossy(&divergent.stdout);
    assert!(stdout.contains("verdict: divergent"), "{stdout}");

    // `report` re-renders the artifact with the same exit code.
    let report = Command::new(matrix_cli())
        .args(["report", artifact.to_str().expect("utf-8 path")])
        .output()
        .expect("report spatter-matrix");
    assert_eq!(report.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&report.stdout).contains("verdict: divergent"),
        "{}",
        String::from_utf8_lossy(&report.stdout)
    );

    // A clean grid — the reference engine against its own external-adapter
    // twin — exits 0.
    let clean = Command::new(matrix_cli())
        .args([
            "run",
            "--backend",
            "in-process:postgis_like:reference",
            "--backend",
            &format!("external-sdb:{}:postgis_like:reference", server_path()),
            "--iterations",
            "3",
            "--queries",
            "6",
            "--seed",
            "3",
        ])
        .output()
        .expect("run spatter-matrix");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&clean.stderr)
    );
    assert!(
        String::from_utf8_lossy(&clean.stdout).contains("verdict: clean"),
        "{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    // Usage and I/O errors exit 1.
    let usage = Command::new(matrix_cli())
        .args(["run", "--backend", "in-process:postgis_like"])
        .output()
        .expect("run spatter-matrix");
    assert_eq!(usage.status.code(), Some(1));
    let missing = Command::new(matrix_cli())
        .args(["report", "/nonexistent/grid.matrix"])
        .output()
        .expect("report spatter-matrix");
    assert_eq!(missing.status.code(), Some(1));

    std::fs::remove_dir_all(&dir).ok();
}
