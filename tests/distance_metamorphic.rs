//! Metamorphic property suite for the §7 distance-parameterised query
//! templates (range joins and KNN) under similarity transformations.
//!
//! The equivalence laws pinned down here, as deterministic seed sweeps:
//!
//! * `ST_DWithin(a, b, d)` ⇔ `ST_DWithin(T(a), T(b), s·d)` for a similarity
//!   `T` with uniform scale `s` — range-join counts are invariant;
//! * KNN result *sets* are invariant under isometries (and similarities),
//!   with §7's equal-distance caveat: ties at the k-th distance make the
//!   result set ill-defined and must be excluded, not reported;
//! * under a non-similarity (shearing) transform no distance law holds:
//!   `TransformPlan::scale_distance` returns `None` and the campaign runner
//!   records the template as skipped instead of raising a spurious finding.

use spatter_repro::core::backend::InProcessBackend;
use spatter_repro::core::campaign::{CampaignConfig, CampaignReport};
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::oracles::{AeiOracle, Oracle, OracleOutcome};
use spatter_repro::core::queries::{QueryInstance, RangeFunction};
use spatter_repro::core::runner::CampaignRunner;
use spatter_repro::core::spec::DatabaseSpec;
use spatter_repro::core::transform::{AffineStrategy, TransformPlan};
use spatter_repro::core::GeometryGenerator;
use spatter_repro::geom::wkt::parse_wkt;
use spatter_repro::geom::{AffineMatrix, AffineTransform};
use spatter_repro::sdb::{EngineProfile, FaultId, FaultSet};

fn generated_spec(seed: u64, coordinate_range: i64) -> DatabaseSpec {
    let config = GeneratorConfig {
        num_geometries: 8,
        num_tables: 2,
        strategy: GenerationStrategy::GeometryAware,
        coordinate_range,
        random_shape_probability: 0.5,
    };
    GeometryGenerator::new(config, seed).generate_database()
}

/// An exact integer isometry: quarter-turn rotation plus translation
/// (uniform scale 1), the strictest family of §7.
fn isometry_plan(quarter_turns: i32, tx: f64, ty: f64) -> TransformPlan {
    let matrix =
        AffineMatrix::translation(tx, ty).compose(&AffineMatrix::rotation_quarter(quarter_turns));
    TransformPlan {
        canonicalize: true,
        transform: AffineTransform::new(matrix).expect("isometries are invertible"),
        uniform_scale: Some(1.0),
    }
}

#[test]
fn range_join_counts_invariant_under_similarity_sweep() {
    for seed in 0..12u64 {
        let spec = generated_spec(seed, 30);
        let plan = TransformPlan::random(AffineStrategy::SimilarityInteger, seed ^ 0xd15);
        let queries: Vec<QueryInstance> = (1..=5)
            .flat_map(|i| {
                let d = (i * 7) as f64;
                [
                    QueryInstance::range("t0", "t1", RangeFunction::DWithin, d),
                    QueryInstance::range("t0", "t1", RangeFunction::DFullyWithin, d),
                    QueryInstance::range("t1", "t1", RangeFunction::DWithin, d),
                ]
            })
            .collect();
        let outcomes = AeiOracle::new(plan).check(
            &InProcessBackend::reference(EngineProfile::PostgisLike),
            &spec,
            &queries,
        );
        for (query, outcome) in queries.iter().zip(outcomes.iter()) {
            assert!(
                matches!(outcome, OracleOutcome::Pass | OracleOutcome::Inapplicable),
                "seed {seed}, query {}: {outcome:?}",
                query.to_sql()
            );
        }
    }
}

#[test]
fn knn_result_sets_invariant_under_isometry_sweep() {
    let plans = [
        isometry_plan(0, 13.0, -8.0),
        isometry_plan(1, 0.0, 0.0),
        isometry_plan(2, -40.0, 17.0),
        isometry_plan(3, 5.0, 5.0),
    ];
    for seed in 0..12u64 {
        let spec = generated_spec(seed, 30);
        let queries: Vec<QueryInstance> = (0..4i64)
            .map(|i| {
                let origin = parse_wkt(&format!("POINT({} {})", i * 11 - 20, 9 - i * 6)).unwrap();
                QueryInstance::knn("t0", origin, (i % 3 + 1) as usize)
            })
            .collect();
        for (p, plan) in plans.iter().enumerate() {
            let outcomes = AeiOracle::new(plan.clone()).check(
                &InProcessBackend::reference(EngineProfile::PostgisLike),
                &spec,
                &queries,
            );
            for (query, outcome) in queries.iter().zip(outcomes.iter()) {
                assert!(
                    matches!(outcome, OracleOutcome::Pass | OracleOutcome::Inapplicable),
                    "seed {seed}, plan {p}, query {}: {outcome:?}",
                    query.to_sql()
                );
            }
        }
    }
}

#[test]
fn knn_result_sets_invariant_under_similarity_sweep() {
    for seed in 0..12u64 {
        let spec = generated_spec(seed, 30);
        let plan = TransformPlan::random(AffineStrategy::SimilarityInteger, seed ^ 0x21a);
        let queries = vec![
            QueryInstance::knn("t0", parse_wkt("POINT(3 -4)").unwrap(), 2),
            QueryInstance::knn("t1", parse_wkt("POINT(-17 25)").unwrap(), 3),
        ];
        let outcomes = AeiOracle::new(plan).check(
            &InProcessBackend::reference(EngineProfile::PostgisLike),
            &spec,
            &queries,
        );
        for (query, outcome) in queries.iter().zip(outcomes.iter()) {
            assert!(
                matches!(outcome, OracleOutcome::Pass | OracleOutcome::Inapplicable),
                "seed {seed}, query {}: {outcome:?}",
                query.to_sql()
            );
        }
    }
}

#[test]
fn knn_tie_at_cutoff_is_excluded_not_reported() {
    // Two rows at exactly the same distance from the origin with k = 1: §7's
    // equal-distance caveat — any subset is a valid answer, so the oracle
    // must exclude the query instead of comparing arbitrary choices.
    let mut spec = DatabaseSpec::with_tables(1);
    spec.tables[0]
        .geometries
        .push(parse_wkt("POINT(7 0)").unwrap());
    spec.tables[0]
        .geometries
        .push(parse_wkt("POINT(0 -7)").unwrap());
    let queries = vec![QueryInstance::knn(
        "t0",
        parse_wkt("POINT(0 0)").unwrap(),
        1,
    )];
    for seed in 0..10u64 {
        let plan = TransformPlan::random(AffineStrategy::SimilarityInteger, seed);
        let outcomes = AeiOracle::new(plan).check(
            &InProcessBackend::reference(EngineProfile::PostgisLike),
            &spec,
            &queries,
        );
        assert_eq!(outcomes[0], OracleOutcome::Inapplicable, "seed {seed}");
    }
}

fn reference_campaign(affine: AffineStrategy, seed: u64) -> CampaignConfig {
    CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 8,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 30,
            random_shape_probability: 0.5,
        },
        queries_per_run: 15,
        affine,
        iterations: 12,
        time_budget: None,
        attribute_findings: true,
        seed,
        ..CampaignConfig::in_process(EngineProfile::PostgisLike, FaultSet::none())
    }
}

/// The scheduling-independent projection of a report.
fn fingerprint(report: &CampaignReport) -> (Vec<(String, usize)>, usize) {
    (
        report
            .findings
            .iter()
            .map(|f| (f.description.clone(), f.iteration))
            .collect(),
        report.skipped_queries,
    )
}

#[test]
fn shear_transforms_skip_distance_templates_instead_of_reporting() {
    // General integer matrices do not preserve relative distances, so the
    // runner must record the drawn distance templates as skipped — and a
    // fault-free engine must produce zero findings.
    let baseline = CampaignRunner::new(reference_campaign(AffineStrategy::GeneralInteger, 5)).run();
    assert_eq!(
        baseline.findings.len(),
        0,
        "spurious findings: {:#?}",
        baseline.findings
    );
    assert!(
        baseline.skipped_queries > 0,
        "the biased generator should have drawn distance templates"
    );
    for n_workers in [2, 4] {
        let parallel = CampaignRunner::new(reference_campaign(AffineStrategy::GeneralInteger, 5))
            .with_workers(n_workers)
            .run();
        assert_eq!(
            fingerprint(&parallel),
            fingerprint(&baseline),
            "{n_workers} workers"
        );
    }
}

#[test]
fn similarity_campaign_on_reference_engine_is_quiet_at_any_worker_count() {
    let baseline =
        CampaignRunner::new(reference_campaign(AffineStrategy::SimilarityInteger, 7)).run();
    assert_eq!(
        baseline.findings.len(),
        0,
        "spurious findings: {:#?}",
        baseline.findings
    );
    // Similarity plans never skip: every drawn template is checkable.
    assert_eq!(baseline.skipped_queries, 0);
    for n_workers in [2, 4] {
        let parallel =
            CampaignRunner::new(reference_campaign(AffineStrategy::SimilarityInteger, 7))
                .with_workers(n_workers)
                .run();
        assert_eq!(
            fingerprint(&parallel),
            fingerprint(&baseline),
            "{n_workers} workers"
        );
    }
}

#[test]
fn campaign_detects_dfullywithin_fault_via_range_template_at_any_worker_count() {
    // The acceptance scenario: a deterministic campaign seeded with only the
    // ST_DFullyWithin definition fault. Small generator coordinates keep
    // SDB1 inside the fault's trigger range; the sampled similarity
    // transforms move SDB2 out of it, so an AEI range-join template exposes
    // the discrepancy — identically at every worker count.
    let config = || CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 8,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 8,
            random_shape_probability: 0.5,
        },
        queries_per_run: 20,
        affine: AffineStrategy::SimilarityInteger,
        iterations: 20,
        time_budget: None,
        attribute_findings: true,
        seed: 11,
        ..CampaignConfig::in_process(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::PostgisDFullyWithinSmallCoords]),
        )
    };
    let baseline = CampaignRunner::new(config()).run();
    assert!(
        baseline
            .unique_faults
            .contains(&FaultId::PostgisDFullyWithinSmallCoords),
        "the campaign must attribute a finding to the DFullyWithin fault; findings: {:#?}",
        baseline.findings
    );
    assert!(
        baseline
            .findings
            .iter()
            .any(|f| f.description.contains("ST_DFullyWithin")),
        "the fault must surface through a distance template: {:#?}",
        baseline.findings
    );
    for n_workers in [2, 4] {
        let parallel = CampaignRunner::new(config()).with_workers(n_workers).run();
        assert_eq!(
            fingerprint(&parallel),
            fingerprint(&baseline),
            "{n_workers} workers"
        );
        assert_eq!(parallel.unique_faults, baseline.unique_faults);
    }
}

#[test]
fn knn_template_detects_the_empty_distance_fault_deterministically() {
    // Listing 5's fault through the KNN template: canonicalization strips
    // the EMPTY element from SDB2, so only SDB1's ordering derails.
    let mut spec = DatabaseSpec::with_tables(1);
    spec.tables[0]
        .geometries
        .push(parse_wkt("MULTIPOINT((5 0),EMPTY,(0 0))").unwrap());
    spec.tables[0]
        .geometries
        .push(parse_wkt("POINT(1 0)").unwrap());
    let queries = vec![QueryInstance::knn(
        "t0",
        parse_wkt("POINT(0 0)").unwrap(),
        1,
    )];
    let faults = FaultSet::with([FaultId::GeosEmptyDistanceRecursion]);
    for quarter_turns in 0..4 {
        let plan = isometry_plan(quarter_turns, 20.0, -30.0);
        let outcomes = AeiOracle::new(plan).check(
            &InProcessBackend::new(EngineProfile::PostgisLike, faults.clone()),
            &spec,
            &queries,
        );
        assert!(
            outcomes[0].is_logic_bug(),
            "rotation {quarter_turns}: {:?}",
            outcomes[0]
        );
    }
}

#[test]
fn order_by_limit_conformance_across_profiles() {
    use spatter_repro::sdb::Engine;
    // The KNN template's SQL shape must behave identically on every profile's
    // reference engine: ascending distance, NULL keys (EMPTY geometry) last,
    // LIMIT truncation.
    for profile in EngineProfile::ALL {
        let mut engine = Engine::reference(profile);
        engine
            .execute_script(
                "CREATE TABLE t (id int, g geometry);
                 INSERT INTO t (id, g) VALUES
                 (1, 'POINT(9 0)'), (2, 'POINT EMPTY'), (3, 'POINT(0 1)'), (4, 'POINT(2 2)');",
            )
            .unwrap();
        let ids = |engine: &mut Engine, k: usize| -> Vec<i64> {
            engine
                .execute(&format!(
                    "SELECT a.id FROM t a ORDER BY ST_Distance(a.g, 'POINT(0 0)'::geometry) LIMIT {k}"
                ))
                .unwrap()
                .rows
                .iter()
                .map(|r| r[0].as_int().unwrap())
                .collect()
        };
        assert_eq!(ids(&mut engine, 2), vec![3, 4], "{}", profile.name());
        assert_eq!(ids(&mut engine, 4), vec![3, 4, 1, 2], "{}", profile.name());
    }
    // On the PostGIS-like profile the same query must agree between the
    // sequential sort and the index nearest-neighbour scan.
    let setup = "CREATE TABLE t (id int, g geometry);
        INSERT INTO t (id, g) VALUES
        (1, 'POINT(9 0)'), (2, 'POINT EMPTY'), (3, 'POINT(0 1)'), (4, 'POINT(2 2)');
        CREATE INDEX idx ON t USING GIST (g);";
    let mut seq = Engine::reference(EngineProfile::PostgisLike);
    seq.execute_script(setup).unwrap();
    let mut indexed = Engine::reference(EngineProfile::PostgisLike);
    indexed.execute_script(setup).unwrap();
    indexed.execute("SET enable_seqscan = false").unwrap();
    for k in 1..=4 {
        let sql = format!(
            "SELECT a.id FROM t a ORDER BY ST_Distance(a.g, 'POINT(0 0)'::geometry) LIMIT {k}"
        );
        assert_eq!(
            seq.execute(&sql).unwrap().rows,
            indexed.execute(&sql).unwrap().rows,
            "k = {k}"
        );
    }
}
