//! Umbrella crate for the Spatter / Affine Equivalent Inputs reproduction.
//!
//! This crate only re-exports the workspace members so that the workspace-level
//! integration tests (`tests/`) and examples (`examples/`) have a single,
//! convenient dependency. The actual functionality lives in:
//!
//! * [`spatter_geom`] — geometry model, WKT, affine transforms, canonicalization
//! * [`spatter_topo`] — DE-9IM relate engine, named predicates, editing functions
//! * [`spatter_index`] — R-tree spatial index (GiST analog)
//! * [`spatter_sdb`] — the spatial SQL engine and its four engine profiles
//! * [`spatter_core`] — the Spatter tester: generator, AEI, oracles, campaign

pub use spatter_core as core;
pub use spatter_geom as geom;
pub use spatter_index as index;
pub use spatter_sdb as sdb;
pub use spatter_topo as topo;
