//! `spatter-matrix` — run and inspect differential testing matrices.
//!
//! The command-line face of `spatter_core::matrix`:
//!
//! * `run --backend SPEC --backend SPEC [...]` builds a backend roster from
//!   spec strings, runs the AEI + differential oracle suite over every
//!   ordered pair, prints the bucketed grid, and (with `--out`) writes the
//!   matrix artifact.
//! * `report <FILE>` decodes a previously written artifact and renders the
//!   same grid without re-running anything.
//!
//! Backend spec strings:
//!
//! * `in-process:<profile>[:stock|reference|<fault,list>]` — the in-process
//!   engine (default `stock`).
//! * `stdio:<path>:<profile>[:stock|reference|<fault,list>][:hard-crash]` —
//!   a `spatter-sdb-server` binary over the native stdio backend.
//! * `external-sdb:<path>[:<profile>][:stock|reference|<fault,list>]` — the
//!   same server driven through the generic external-engine adapter (the
//!   hermetic self-test dialect).
//! * `postgis` — a real PostGIS behind `psql`, gated on the
//!   `SPATTER_PG_CMD` environment variable (an error when unset: CI ships
//!   no PostGIS).
//!
//! Exit codes: 0 — every cell clean; 2 — at least one divergent cell;
//! 1 — usage, spec, I/O or decode error.

use spatter_repro::core::backend::BackendSpec;
use spatter_repro::core::campaign::CampaignConfig;
use spatter_repro::core::matrix::{
    DialectSpec, MatrixConfig, MatrixEntry, MatrixReport, MatrixRunner,
};
use spatter_repro::sdb::{EngineProfile, FaultSet};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  spatter-matrix run --backend SPEC --backend SPEC [--backend SPEC ...]
                     [--seed N] [--iterations N] [--queries N] [--workers N]
                     [--out FILE]
  spatter-matrix report <FILE>

backend specs:
  in-process:<profile>[:stock|reference|<fault,list>]
  stdio:<path>:<profile>[:stock|reference|<fault,list>][:hard-crash]
  external-sdb:<path>[:<profile>][:stock|reference|<fault,list>]
  postgis        (requires SPATTER_PG_CMD)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("report") => report(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("spatter-matrix: {message}");
            ExitCode::from(1)
        }
    }
}

fn parse<T: std::str::FromStr>(token: &str) -> Result<T, String> {
    token
        .parse()
        .map_err(|_| format!("invalid number {token:?}"))
}

fn parse_profile(token: &str) -> Result<EngineProfile, String> {
    EngineProfile::from_name(token).ok_or_else(|| format!("unknown profile {token:?}"))
}

/// `stock` / `reference` (or `none`) / a comma-separated fault-name list.
fn parse_faults(token: &str, profile: EngineProfile) -> Result<FaultSet, String> {
    match token {
        "stock" => Ok(profile.default_faults()),
        "reference" | "none" => Ok(FaultSet::none()),
        names => FaultSet::parse_names(names).map_err(|_| format!("unknown fault in {names:?}")),
    }
}

/// Parses one `--backend` spec string into a roster entry; the spec string
/// itself is the entry's label.
fn parse_backend(spec: &str) -> Result<MatrixEntry, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let built = match parts.as_slice() {
        ["in-process", profile, rest @ ..] => {
            let profile = parse_profile(profile)?;
            let faults = match rest {
                [] => profile.default_faults(),
                [faults] => parse_faults(faults, profile)?,
                _ => return Err(format!("too many fields in {spec:?}\n{USAGE}")),
            };
            BackendSpec::InProcess { profile, faults }
        }
        ["stdio", path, profile, rest @ ..] => {
            let profile = parse_profile(profile)?;
            let (faults, hard_crash) = match rest {
                [] => (profile.default_faults(), false),
                ["hard-crash"] => (profile.default_faults(), true),
                [faults] => (parse_faults(faults, profile)?, false),
                [faults, "hard-crash"] => (parse_faults(faults, profile)?, true),
                _ => return Err(format!("too many fields in {spec:?}\n{USAGE}")),
            };
            BackendSpec::Stdio {
                command: PathBuf::from(path),
                profile,
                faults,
                hard_crash,
            }
        }
        ["external-sdb", path, rest @ ..] => {
            let (profile, faults) = match rest {
                [] => (EngineProfile::PostgisLike, FaultSet::none()),
                [profile] => (parse_profile(profile)?, FaultSet::none()),
                [profile, faults] => {
                    let profile = parse_profile(profile)?;
                    (profile, parse_faults(faults, profile)?)
                }
                _ => return Err(format!("too many fields in {spec:?}\n{USAGE}")),
            };
            BackendSpec::External {
                dialect: DialectSpec::sdb_server(path, profile, faults, false),
            }
        }
        ["postgis"] | ["pg"] => {
            let dialect = DialectSpec::postgis_from_env().ok_or_else(|| {
                "backend \"postgis\" needs SPATTER_PG_CMD (a psql command line); \
                 it is unset or empty"
                    .to_string()
            })?;
            BackendSpec::External { dialect }
        }
        _ => return Err(format!("unknown backend spec {spec:?}\n{USAGE}")),
    };
    Ok(MatrixEntry::new(spec, built))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut specs: Vec<String> = Vec::new();
    let mut seed: u64 = 3;
    let mut iterations: usize = 8;
    let mut queries: usize = 10;
    let mut workers: usize = 1;
    let mut out: Option<String> = None;
    let mut args = args.iter();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--backend" => specs.push(value("--backend")?.clone()),
            "--seed" => seed = parse(value("--seed")?)?,
            "--iterations" => iterations = parse(value("--iterations")?)?,
            "--queries" => queries = parse(value("--queries")?)?,
            "--workers" => workers = parse(value("--workers")?)?,
            "--out" => out = Some(value("--out")?.clone()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if specs.len() < 2 {
        return Err(format!("run needs at least two --backend specs\n{USAGE}"));
    }
    let entries = specs
        .iter()
        .map(|spec| parse_backend(spec))
        .collect::<Result<Vec<_>, _>>()?;
    let base = CampaignConfig {
        queries_per_run: queries,
        iterations,
        seed,
        ..CampaignConfig::default()
    };
    let matrix = MatrixRunner::new(MatrixConfig::new(entries, base).with_workers(workers)).run();
    if let Some(path) = out {
        std::fs::write(&path, matrix.encode()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("artifact: {path}");
    }
    print_report(&matrix);
    Ok(verdict(&matrix))
}

fn report(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        return Err(USAGE.to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let matrix = MatrixReport::decode(&text).map_err(|e| format!("decoding {path}: {e}"))?;
    print_report(&matrix);
    Ok(verdict(&matrix))
}

fn print_report(matrix: &MatrixReport) {
    println!(
        "matrix: {} backends, {} cells, seed {}",
        matrix.backends.len(),
        matrix.cells.len(),
        matrix.seed
    );
    for (index, label) in matrix.backends.iter().enumerate() {
        println!(
            "  [{index}] {label} (implicated in {} cells)",
            matrix.involvement[index]
        );
    }
    for cell in &matrix.cells {
        let buckets = cell.buckets;
        if buckets.is_clean() {
            println!(
                "cell {}x{}: clean ({} iterations)",
                cell.left, cell.right, cell.iterations_run
            );
        } else {
            println!(
                "cell {}x{}: left={} right={} both={} crash={} ({} iterations)",
                cell.left,
                cell.right,
                buckets.left,
                buckets.right,
                buckets.both,
                buckets.crash,
                cell.iterations_run
            );
        }
    }
    if matrix.is_clean() {
        println!("verdict: clean");
    } else {
        println!(
            "verdict: divergent ({} of {} cells)",
            matrix.divergent_cells().len(),
            matrix.cells.len()
        );
    }
}

fn verdict(matrix: &MatrixReport) -> ExitCode {
    if matrix.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
