//! `spatter-replay` — record, compare, and bisect replay artifacts.
//!
//! The command-line face of `spatter_core::replay`:
//!
//! * `record <out> [flags]` runs a campaign in-process with a
//!   [`spatter_repro::core::ReplayRecorder`] attached and writes the replay
//!   artifact. `--corrupt-iteration K` flips the recorded outcome hash of
//!   iteration `K` before writing — a seeded single-iteration divergence
//!   used by the CI bisection smoke test.
//! * `compare <a> <b>` decodes two artifacts and reports the first
//!   diverging iteration (exact, zero re-executions).
//! * `bisect <artifact> [flags]` re-runs iterations of the *current* build
//!   against a recorded artifact, binary-searching the divergence frontier
//!   in at most ⌈log₂ N⌉ + 1 re-executions.
//! * `reduce <artifact> --iteration K [flags]` rebuilds iteration `K`'s
//!   scenario (under the exact guidance the campaign gave it, including
//!   epoch-barrier campaigns), finds its first logic-bug query, and shrinks
//!   the database coverage-preservingly
//!   ([`spatter_repro::core::replay::reduce`]): the reduced witness still
//!   diverges *and* still hits every probe the full iteration hit.
//!
//! Exit codes: 0 — identical / no divergence; 2 — a divergence was found
//! (printed as a parseable `divergence: iteration=.. layer=.. sub_seed=..`
//! line) or a reduction was produced; 1 — usage or I/O or decode error.

use spatter_repro::core::campaign::CampaignConfig;
use spatter_repro::core::guidance::GuidanceMode;
use spatter_repro::core::oracles::{AeiOracle, Oracle};
use spatter_repro::core::replay::bisect::{
    bisect_against_live, compare_logs, max_bisect_executions, ReplayExecutor,
};
use spatter_repro::core::replay::reduce::reduce_preserving_probes;
use spatter_repro::core::replay::{ReplayLog, ReplayRecorder, ReplaySink};
use spatter_repro::core::runner::CampaignRunner;
use spatter_repro::sdb::EngineProfile;
use spatter_repro::topo::coverage::local;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage:
  spatter-replay record <out> [--seed N] [--iterations N] [--queries N]
                       [--guidance off|cold-probe] [--epoch N] [--profile NAME]
                       [--threads N] [--corrupt-iteration K]
  spatter-replay compare <a> <b>
  spatter-replay bisect <artifact> [--seed N] [--iterations N] [--queries N]
                       [--guidance off|cold-probe] [--epoch N] [--profile NAME]
  spatter-replay reduce <artifact> --iteration K [--seed N] [--iterations N]
                       [--queries N] [--guidance off|cold-probe] [--epoch N]
                       [--profile NAME]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("compare") => compare(&args[1..]),
        Some("bisect") => bisect(&args[1..]),
        Some("reduce") => reduce(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("spatter-replay: {message}");
            ExitCode::from(1)
        }
    }
}

/// The campaign flags shared by `record` and `bisect`. Both sides of a
/// comparison must be built from the same flags — the campaign identity is
/// stamped into the artifact header for exactly that check.
struct CampaignFlags {
    seed: u64,
    iterations: usize,
    queries: usize,
    guidance: GuidanceMode,
    guidance_epoch: Option<usize>,
    profile: EngineProfile,
    threads: usize,
    corrupt_iteration: Option<usize>,
    iteration: Option<usize>,
}

impl CampaignFlags {
    fn parse(args: &[String]) -> Result<CampaignFlags, String> {
        let mut flags = CampaignFlags {
            seed: 3,
            iterations: 16,
            queries: 10,
            guidance: GuidanceMode::Off,
            guidance_epoch: None,
            profile: EngineProfile::PostgisLike,
            threads: 1,
            corrupt_iteration: None,
            iteration: None,
        };
        let mut args = args.iter();
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
            };
            match flag.as_str() {
                "--seed" => flags.seed = parse(value("--seed")?)?,
                "--iterations" => flags.iterations = parse(value("--iterations")?)?,
                "--queries" => flags.queries = parse(value("--queries")?)?,
                "--threads" => flags.threads = parse(value("--threads")?)?,
                "--corrupt-iteration" => {
                    flags.corrupt_iteration = Some(parse(value("--corrupt-iteration")?)?)
                }
                "--epoch" => flags.guidance_epoch = Some(parse(value("--epoch")?)?),
                "--iteration" => flags.iteration = Some(parse(value("--iteration")?)?),
                "--guidance" => {
                    flags.guidance = match value("--guidance")?.as_str() {
                        "off" => GuidanceMode::Off,
                        "cold-probe" => GuidanceMode::ColdProbe,
                        other => return Err(format!("unknown guidance mode {other:?}")),
                    }
                }
                "--profile" => {
                    let name = value("--profile")?;
                    flags.profile = EngineProfile::from_name(name)
                        .ok_or_else(|| format!("unknown profile {name:?}"))?;
                }
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        Ok(flags)
    }

    fn campaign(&self) -> CampaignConfig {
        CampaignConfig {
            queries_per_run: self.queries,
            iterations: self.iterations,
            guidance: self.guidance,
            guidance_epoch: self.guidance_epoch,
            seed: self.seed,
            ..CampaignConfig::stock(self.profile)
        }
    }
}

fn parse<T: std::str::FromStr>(token: &str) -> Result<T, String> {
    token
        .parse()
        .map_err(|_| format!("invalid number {token:?}"))
}

fn record(args: &[String]) -> Result<ExitCode, String> {
    let out = args.first().ok_or_else(|| USAGE.to_string())?;
    let flags = CampaignFlags::parse(&args[1..])?;
    let config = flags.campaign();
    let recorder = Arc::new(ReplayRecorder::new());
    CampaignRunner::new(config.clone())
        .with_workers(flags.threads)
        .with_replay_sink(recorder.clone() as Arc<dyn ReplaySink>)
        .run();
    let mut log = recorder.log(&config);
    if let Some(victim) = flags.corrupt_iteration {
        let frame = log
            .frames
            .iter_mut()
            .find(|f| f.iteration == victim)
            .ok_or_else(|| format!("--corrupt-iteration {victim}: no such recorded iteration"))?;
        frame.outcome_hash ^= 1;
        eprintln!("spatter-replay: corrupted the outcome hash of iteration {victim}");
    }
    std::fs::write(out, log.encode()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("recorded: {} frames to {out}", log.frames.len());
    Ok(ExitCode::SUCCESS)
}

fn load(path: &str) -> Result<ReplayLog, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    ReplayLog::decode(&text).map_err(|e| format!("decoding {path}: {e}"))
}

fn compare(args: &[String]) -> Result<ExitCode, String> {
    let [a, b] = args else {
        return Err(USAGE.to_string());
    };
    let left = load(a)?;
    let right = load(b)?;
    match compare_logs(&left, &right) {
        None => {
            println!("identical: {} frames", left.frames.len());
            Ok(ExitCode::SUCCESS)
        }
        Some(divergence) => {
            println!("divergence: {divergence}");
            Ok(ExitCode::from(2))
        }
    }
}

fn bisect(args: &[String]) -> Result<ExitCode, String> {
    let artifact = args.first().ok_or_else(|| USAGE.to_string())?;
    let flags = CampaignFlags::parse(&args[1..])?;
    let reference = load(artifact)?;
    if reference.seed != flags.seed || reference.guidance != flags.guidance {
        return Err(format!(
            "artifact campaign (seed {}, guidance {:?}) does not match the flags \
             (seed {}, guidance {:?})",
            reference.seed, reference.guidance, flags.seed, flags.guidance
        ));
    }
    let executor = ReplayExecutor::new(flags.campaign());
    let outcome = bisect_against_live(&reference, |iteration| executor.frame(iteration));
    let budget = max_bisect_executions(reference.frames.len());
    match outcome.divergence {
        None => {
            println!(
                "no divergence: live run matches ({} executions, budget {budget})",
                outcome.executions
            );
            Ok(ExitCode::SUCCESS)
        }
        Some(divergence) => {
            println!(
                "divergence: {divergence} (executions={} budget={budget})",
                outcome.executions
            );
            Ok(ExitCode::from(2))
        }
    }
}

fn reduce(args: &[String]) -> Result<ExitCode, String> {
    let artifact = args.first().ok_or_else(|| USAGE.to_string())?;
    let flags = CampaignFlags::parse(&args[1..])?;
    let victim = flags
        .iteration
        .ok_or_else(|| format!("reduce needs --iteration K\n{USAGE}"))?;
    let reference = load(artifact)?;
    if reference.seed != flags.seed || reference.guidance != flags.guidance {
        return Err(format!(
            "artifact campaign (seed {}, guidance {:?}) does not match the flags \
             (seed {}, guidance {:?})",
            reference.seed, reference.guidance, flags.seed, flags.guidance
        ));
    }
    let frame = reference
        .frames
        .iter()
        .find(|frame| frame.iteration == victim)
        .ok_or_else(|| format!("--iteration {victim}: no such recorded iteration"))?;

    // Rebuild the iteration's exact inputs under the exact guidance the
    // campaign gave it (epoch-aware: the executor replays the campaign once
    // to reconstruct every window's snapshot).
    let executor = ReplayExecutor::new(flags.campaign());
    let parts = executor.scenario(victim);
    if parts.sub_seed != frame.sub_seed {
        return Err(format!(
            "iteration {victim} rebuilds with sub-seed {:#x}, artifact recorded {:#x} \
             — the campaigns differ at the generation layer; bisect first",
            parts.sub_seed, frame.sub_seed
        ));
    }

    let backend = executor.config().backend.clone();
    let oracle = AeiOracle::new(parts.plan.clone()).with_knobs(parts.knobs.clone());

    // One full-batch check measures the reference probe delta and names the
    // first diverging query — the witness the reduction shrinks around.
    local::start();
    let outcomes = oracle.check(backend.as_ref(), &parts.spec, &parts.queries);
    let reference_delta = local::take();
    let Some(query) = parts
        .queries
        .iter()
        .zip(outcomes.iter())
        .find(|(_, outcome)| outcome.is_logic_bug())
        .map(|(query, _)| query.clone())
    else {
        println!("no divergence: iteration {victim} has no AEI logic bug under the current build");
        return Ok(ExitCode::SUCCESS);
    };

    let mut diverges = |spec: &spatter_repro::core::DatabaseSpec,
                        query: &spatter_repro::core::QueryInstance| {
        oracle
            .check(backend.as_ref(), spec, std::slice::from_ref(query))
            .iter()
            .any(|outcome| outcome.is_logic_bug())
    };
    let Some(reduction) =
        reduce_preserving_probes(&mut diverges, &reference_delta, &parts.spec, &query)
    else {
        println!("no divergence: the witness query stopped diverging in isolation");
        return Ok(ExitCode::SUCCESS);
    };

    println!(
        "reduced: iteration={victim} sub_seed={:#x} geometries {} -> {} \
         statements={} checks={} preserved_probes={}",
        parts.sub_seed,
        parts.spec.geometry_count(),
        reduction.spec.geometry_count(),
        reduction.statement_count,
        reduction.checks,
        reduction.preserved_probes.len(),
    );
    for statement in parts.knobs.setup_sql(&reduction.spec) {
        println!("{statement}");
    }
    println!("{}", reduction.query.to_sql());
    Ok(ExitCode::from(2))
}
