//! `spatter-sdb-server` — the in-process spatial SQL engine exposed as a
//! standalone process speaking line-delimited SQL over stdio.
//!
//! The protocol and serve loop live in [`spatter_repro::sdb::server`]; this
//! binary only parses the command line and wires up the standard streams.
//! It is driven by `spatter_core::backend::StdioBackend`, which uses it to
//! prove the `EngineBackend` trait supports out-of-process engines.
//!
//! ```sh
//! spatter-sdb-server --profile postgis_like --faults stock [--hard-crash]
//! ```

use spatter_repro::sdb::server::{serve, ServerConfig};

fn main() {
    let config = match ServerConfig::from_args(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("spatter-sdb-server: {message}");
            eprintln!(
                "usage: spatter-sdb-server [--profile <name>] \
                 [--faults stock|none|<FaultId,...>] [--hard-crash]"
            );
            std::process::exit(2);
        }
    };
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    if let Err(error) = serve(&config, stdin, stdout) {
        // A broken pipe just means the client went away; anything else is
        // worth a diagnostic before exiting non-zero.
        if error.kind() != std::io::ErrorKind::BrokenPipe {
            eprintln!("spatter-sdb-server: {error}");
            std::process::exit(1);
        }
    }
}
