//! `spatter-campaign-worker` — one shared-nothing campaign worker process.
//!
//! Spawned and driven by `spatter_core::dist::DistRunner` over a framed
//! line stream: the worker announces the wire version, receives its
//! campaign configuration (backend spec, oracle suite, optional frozen
//! guidance snapshot) and then executes iteration leases across its own
//! thread pool, streaming each iteration's record back as it completes.
//! The serve loop lives in [`spatter_repro::core::dist::worker`]; this
//! binary only wires up the transport endpoints.
//!
//! Two transports:
//!
//! - default — line-delimited stdio, for supervisors that spawn the worker
//!   as a child process;
//! - `--connect host:port` — the worker dials the supervisor's TCP
//!   listener and speaks the identical protocol over the socket, which is
//!   how remote machines join a campaign fleet.
//!
//! `--iteration-delay-ms N` injects a fixed delay before every iteration;
//! it exists for straggler experiments (elastic-lease tests and benches)
//! and has no effect on results, only on timing.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use spatter_repro::core::dist::worker::{serve_with_options, ServeOptions};

fn usage() -> ! {
    eprintln!("usage: spatter-campaign-worker [--connect host:port] [--iteration-delay-ms N]");
    std::process::exit(2);
}

fn main() {
    let mut connect: Option<String> = None;
    let mut options = ServeOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next() {
                Some(addr) => connect = Some(addr),
                None => usage(),
            },
            "--iteration-delay-ms" => match args.next().and_then(|raw| raw.parse::<u64>().ok()) {
                Some(millis) => options.iteration_delay = Some(Duration::from_millis(millis)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let outcome = match connect {
        Some(address) => match TcpStream::connect(&address) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                match stream.try_clone() {
                    Ok(reader) => serve_with_options(BufReader::new(reader), stream, options),
                    Err(error) => Err(error.into()),
                }
            }
            Err(error) => {
                eprintln!("spatter-campaign-worker: connect {address}: {error}");
                std::process::exit(1);
            }
        },
        None => {
            let stdin = std::io::stdin().lock();
            // Unlocked stdout: the worker writes record lines from several
            // threads under its own mutex, and `StdoutLock` is not `Send`.
            let stdout = std::io::stdout();
            serve_with_options(stdin, stdout, options)
        }
    };
    if let Err(error) = outcome {
        eprintln!("spatter-campaign-worker: {error}");
        std::process::exit(1);
    }
}
