//! `spatter-campaign-worker` — one shared-nothing campaign worker process.
//!
//! Spawned and driven by `spatter_core::dist::DistRunner` over
//! line-delimited stdio: the worker announces the wire version, receives
//! its campaign configuration (backend spec, oracle suite, optional frozen
//! guidance snapshot) and then executes iteration leases across its own
//! thread pool, streaming each iteration's record back as it completes.
//! The serve loop lives in [`spatter_repro::core::dist::worker`]; this
//! binary only wires up the standard streams.
//!
//! The protocol carries everything the worker needs, so there is no
//! command line beyond the program name.

use spatter_repro::core::dist::worker::serve;

fn main() {
    let stdin = std::io::stdin().lock();
    // Unlocked stdout: the worker writes record lines from several threads
    // under its own mutex, and `StdoutLock` is not `Send`.
    let stdout = std::io::stdout();
    if let Err(error) = serve(stdin, stdout) {
        eprintln!("spatter-campaign-worker: {error}");
        std::process::exit(1);
    }
}
