//! Compares the paper's oracles on the reduced bug-inducing scenarios of the
//! 20 confirmed logic faults (the per-bug view behind Table 4).
//!
//! Run with: `cargo run --example oracle_comparison --release`

use spatter_repro::core::backend::InProcessBackend;
use spatter_repro::core::oracles::{AeiOracle, DifferentialOracle, IndexOracle, Oracle, TlpOracle};
use spatter_repro::core::scenarios::{confirmed_logic_scenarios, distance_template_scenarios};
use spatter_repro::core::transform::{AffineStrategy, TransformPlan};
use spatter_repro::sdb::{EngineProfile, FaultCatalog, FaultSet};

fn main() {
    println!("Baseline-oracle detection of the 20 confirmed logic faults:\n");
    for scenario in confirmed_logic_scenarios() {
        let info = FaultCatalog::info(scenario.fault);
        let profile = match info.system {
            spatter_repro::sdb::faults::FaultySystem::MySql => EngineProfile::MysqlLike,
            _ => EngineProfile::PostgisLike,
        };
        let backend = InProcessBackend::new(profile, FaultSet::with([scenario.fault]));
        let queries = std::slice::from_ref(&scenario.query);

        let differential =
            DifferentialOracle::against_stock(if profile == EngineProfile::MysqlLike {
                EngineProfile::PostgisLike
            } else {
                EngineProfile::MysqlLike
            });
        let diff_hit = differential
            .check(&backend, &scenario.spec, queries)
            .iter()
            .any(|o| o.is_logic_bug());
        let index_hit = IndexOracle
            .check(&backend, &scenario.spec, queries)
            .iter()
            .any(|o| o.is_logic_bug());
        let tlp_hit = TlpOracle
            .check(&backend, &scenario.spec, queries)
            .iter()
            .any(|o| o.is_logic_bug());
        println!(
            "  {:<45} differential:{} index:{} tlp:{}",
            format!("{:?}", scenario.fault),
            if diff_hit { "Y" } else { "-" },
            if index_hit { "Y" } else { "-" },
            if tlp_hit { "Y" } else { "-" },
        );
    }
    println!("\nMost faults are invisible to every baseline — the gap AEI closes (Table 4).");

    // The §7 distance-parameterised templates: the same faults checked
    // through an actual ST_DFullyWithin range join and a KNN query, under
    // sampled similarity transformations.
    println!("\nDistance-template (range join / KNN) AEI detection under similarity transforms:\n");
    for scenario in distance_template_scenarios() {
        let backend =
            InProcessBackend::new(EngineProfile::PostgisLike, FaultSet::with([scenario.fault]));
        let queries = std::slice::from_ref(&scenario.query);
        let detected = (0..20).any(|seed| {
            AeiOracle::new(TransformPlan::random(
                AffineStrategy::SimilarityInteger,
                seed,
            ))
            .check(&backend, &scenario.spec, queries)
            .iter()
            .any(|o| o.is_logic_bug())
        });
        // Under a general (shearing) transform the template is skipped, not
        // falsely reported.
        let skipped = AeiOracle::new(TransformPlan::random(AffineStrategy::GeneralInteger, 0))
            .check(&backend, &scenario.spec, queries)
            .iter()
            .all(|o| o.is_skipped());
        println!(
            "  {:<45} {} aei:{} skipped-under-shear:{}",
            format!("{:?}", scenario.fault),
            scenario.query.template.function_name(),
            if detected { "Y" } else { "-" },
            if skipped { "Y" } else { "-" },
        );
    }
}
