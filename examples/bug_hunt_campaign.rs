//! A miniature Spatter testing campaign against the stock PostGIS-like
//! engine: generate databases with the geometry-aware generator, build their
//! affine-equivalent counterparts, compare query counts, and attribute every
//! discrepancy to the seeded fault that causes it.
//!
//! Run with: `cargo run --example bug_hunt_campaign --release`

use spatter_repro::core::campaign::{Campaign, CampaignConfig};
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::transform::AffineStrategy;
use spatter_repro::sdb::{EngineProfile, FaultCatalog};
use std::time::Duration;

fn main() {
    let config = CampaignConfig {
        profile: EngineProfile::PostgisLike,
        faults: None, // the stock engine with all of the profile's seeded bugs
        generator: GeneratorConfig {
            num_geometries: 10,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 50,
            random_shape_probability: 0.5,
        },
        queries_per_run: 25,
        affine: AffineStrategy::GeneralInteger,
        iterations: usize::MAX / 2,
        time_budget: Some(Duration::from_secs(10)),
        attribute_findings: true,
        seed: 42,
    };
    println!(
        "Running a 10 second Spatter campaign against {} ...",
        config.profile.name()
    );
    let report = Campaign::new(config).run();

    println!(
        "iterations: {}, findings: {}, unique seeded bugs detected: {}",
        report.iterations_run,
        report.findings.len(),
        report.unique_bug_count()
    );
    println!(
        "time split: generation {:.1} ms, engine execution {:.1} ms",
        report.generation_time.as_secs_f64() * 1000.0,
        report.engine_time.as_secs_f64() * 1000.0
    );
    println!("\nDetected bugs (deduplicated by root cause):");
    for fault in &report.unique_faults {
        let info = FaultCatalog::info(*fault);
        println!("  - [{}] {}", info.system.name(), info.description);
    }
}
