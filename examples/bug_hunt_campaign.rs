//! A miniature Spatter testing campaign against the stock PostGIS-like
//! engine: generate databases with the geometry-aware generator, build their
//! affine-equivalent counterparts, compare query results, and attribute
//! every discrepancy to the seeded fault that causes it.
//!
//! Two campaigns run back to back: one over general integer matrices (the
//! Figure 5 topological workload; distance templates are skipped there) and
//! one over similarity matrices, which unlocks the §7 range-join and KNN
//! templates.
//!
//! Run with: `cargo run --example bug_hunt_campaign --release`

use spatter_repro::core::campaign::{Campaign, CampaignConfig, CampaignReport};
use spatter_repro::core::generator::{GenerationStrategy, GeneratorConfig};
use spatter_repro::core::transform::AffineStrategy;
use spatter_repro::sdb::{EngineProfile, FaultCatalog};
use std::time::Duration;

fn run(affine: AffineStrategy, coordinate_range: i64) -> CampaignReport {
    // The stock engine with all of the profile's seeded bugs, behind the
    // in-process backend (swap in a StdioBackend via `.with_backend` to hunt
    // out of process).
    let config = CampaignConfig {
        generator: GeneratorConfig {
            num_geometries: 10,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range,
            random_shape_probability: 0.5,
        },
        queries_per_run: 25,
        affine,
        iterations: usize::MAX / 2,
        time_budget: Some(Duration::from_secs(5)),
        attribute_findings: true,
        seed: 42,
        ..CampaignConfig::stock(EngineProfile::PostgisLike)
    };
    println!(
        "Running a 5 second Spatter campaign against {} with {affine:?} transforms ...",
        config.backend.name()
    );
    let report = Campaign::new(config).run();
    println!(
        "  iterations: {}, findings: {}, unique seeded bugs: {}, distance templates skipped: {}",
        report.iterations_run,
        report.findings.len(),
        report.unique_bug_count(),
        report.skipped_queries
    );
    println!(
        "  time split: generation {:.1} ms, engine execution {:.1} ms",
        report.generation_time.as_secs_f64() * 1000.0,
        report.engine_time.as_secs_f64() * 1000.0
    );
    report
}

fn main() {
    let general = run(AffineStrategy::GeneralInteger, 50);
    // Small coordinates keep the generated geometries inside the
    // small-magnitude trigger range of the ST_DFullyWithin fault; the
    // similarity transforms move SDB2 out of it.
    let similarity = run(AffineStrategy::SimilarityInteger, 8);

    let mut unique = general.unique_faults.clone();
    unique.extend(similarity.unique_faults.iter().copied());
    println!("\nDetected bugs across both campaigns (deduplicated by root cause):");
    for fault in &unique {
        let info = FaultCatalog::info(*fault);
        println!("  - [{}] {}", info.system.name(), info.description);
    }
}
