//! Quickstart: load a spatial database into the PostGIS-like engine, run the
//! paper's Listing 1 scenario, and let the AEI oracle expose the seeded
//! precision bug that the stock engine carries.
//!
//! Run with: `cargo run --example quickstart`

use spatter_repro::core::backend::InProcessBackend;
use spatter_repro::core::oracles::{AeiOracle, Oracle};
use spatter_repro::core::queries::QueryInstance;
use spatter_repro::core::spec::DatabaseSpec;
use spatter_repro::core::transform::{AffineStrategy, TransformPlan};
use spatter_repro::geom::wkt::parse_wkt;
use spatter_repro::sdb::{Engine, EngineProfile};
use spatter_repro::topo::predicates::NamedPredicate;

fn main() {
    // 1. Drive the engine directly with SQL, exactly like Listing 1.
    let mut engine = Engine::new(EngineProfile::PostgisLike);
    engine
        .execute_script(
            "CREATE TABLE t1 (g geometry);
             CREATE TABLE t2 (g geometry);
             INSERT INTO t1 (g) VALUES ('LINESTRING(0 1,2 0)');
             INSERT INTO t2 (g) VALUES ('POINT(0.2 0.9)');",
        )
        .expect("loading Listing 1");
    let count = engine
        .execute("SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Covers(t1.g,t2.g);")
        .expect("count query")
        .count()
        .expect("count value");
    println!("Listing 1 on the stock PostGIS-like engine returns {count} (correct answer: 1)");

    // 2. The same scenario through Spatter's AEI oracle: the affine-equivalent
    //    database disagrees, exposing the bug without knowing the ground truth.
    let mut spec = DatabaseSpec::with_tables(2);
    spec.tables[0]
        .geometries
        .push(parse_wkt("LINESTRING(0 1,2 0)").unwrap());
    spec.tables[1]
        .geometries
        .push(parse_wkt("POINT(0.2 0.9)").unwrap());
    let query = QueryInstance::topo("t0", "t1", NamedPredicate::Covers);
    // The oracle runs through an `EngineBackend`: here the stock in-process
    // engine; a `StdioBackend` pointed at `spatter-sdb-server` would work
    // identically out of process.
    let stock = InProcessBackend::stock(EngineProfile::PostgisLike);
    for seed in 0..50u64 {
        let oracle = AeiOracle::new(TransformPlan::random(AffineStrategy::GeneralInteger, seed));
        let outcomes = oracle.check(&stock, &spec, std::slice::from_ref(&query));
        if let Some(outcome) = outcomes.iter().find(|o| o.is_logic_bug()) {
            println!("AEI found a discrepancy with transformation seed {seed}: {outcome:?}");
            break;
        }
    }

    // 3. The patched (reference) engine answers correctly and AEI stays quiet.
    let mut fixed = Engine::reference(EngineProfile::PostgisLike);
    fixed
        .execute_script(
            "CREATE TABLE t1 (g geometry);
             CREATE TABLE t2 (g geometry);
             INSERT INTO t1 (g) VALUES ('LINESTRING(0 1,2 0)');
             INSERT INTO t2 (g) VALUES ('POINT(0.2 0.9)');",
        )
        .expect("loading Listing 1");
    let count = fixed
        .execute("SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Covers(t1.g,t2.g);")
        .unwrap()
        .count()
        .unwrap();
    println!("The patched engine returns {count}");
    let oracle = AeiOracle::new(TransformPlan::canonicalization_only());
    let outcomes = oracle.check(
        &InProcessBackend::reference(EngineProfile::PostgisLike),
        &spec,
        &[query],
    );
    println!("AEI outcome on the patched engine: {:?}", outcomes[0]);
}
