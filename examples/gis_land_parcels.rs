//! A domain-style example: a miniature land-parcel GIS workload (parcels,
//! roads and survey markers) queried with spatial joins on the engine's
//! public SQL API, then cross-checked on an affine-equivalent copy of the
//! database — the end-to-end usage the paper's introduction motivates.
//!
//! Run with: `cargo run --example gis_land_parcels`

use spatter_repro::core::transform::{AffineStrategy, TransformPlan};
use spatter_repro::geom::wkt::{parse_wkt, write_wkt};
use spatter_repro::sdb::{Engine, EngineProfile};

fn load(engine: &mut Engine, parcels: &[&str], roads: &[&str], markers: &[&str]) {
    engine
        .execute_script(
            "CREATE TABLE parcels (g geometry);
             CREATE TABLE roads (g geometry);
             CREATE TABLE markers (g geometry);",
        )
        .expect("schema");
    for (table, rows) in [("parcels", parcels), ("roads", roads), ("markers", markers)] {
        for wkt in rows {
            engine
                .execute(&format!("INSERT INTO {table} (g) VALUES ('{wkt}')"))
                .expect("insert");
        }
    }
}

fn main() {
    let parcels = [
        "POLYGON((0 0,40 0,40 30,0 30,0 0))",
        "POLYGON((40 0,80 0,80 30,40 30,40 0))",
        "POLYGON((0 30,40 30,40 60,0 60,0 30))",
    ];
    let roads = [
        "LINESTRING(-10 15,90 15)",
        "LINESTRING(40 -10,40 70)",
        "LINESTRING(0 60,80 60)",
    ];
    let markers = [
        "POINT(20 15)",
        "POINT(40 30)",
        "POINT(75 29)",
        "POINT(100 100)",
    ];

    let mut engine = Engine::reference(EngineProfile::PostgisLike);
    load(&mut engine, &parcels, &roads, &markers);

    let queries = [
        (
            "parcels crossed by a road",
            "SELECT COUNT(*) FROM parcels p JOIN roads r ON ST_Crosses(r.g, p.g)",
        ),
        (
            "markers inside a parcel",
            "SELECT COUNT(*) FROM parcels p JOIN markers m ON ST_Contains(p.g, m.g)",
        ),
        (
            "parcels touching each other",
            "SELECT COUNT(*) FROM parcels a JOIN parcels b ON ST_Touches(a.g, b.g)",
        ),
        (
            "markers covered by a road",
            "SELECT COUNT(*) FROM roads r JOIN markers m ON ST_Covers(r.g, m.g)",
        ),
    ];
    println!("Original survey frame:");
    let mut original_counts = Vec::new();
    for (label, sql) in &queries {
        let count = engine.execute(sql).expect("query").count().unwrap();
        original_counts.push(count);
        println!("  {label:<28} {count}");
    }

    // Re-project the whole dataset into a different (affine) survey frame and
    // check that every answer is preserved — the AEI property that Spatter
    // uses as its oracle.
    let plan = TransformPlan::random(AffineStrategy::GeneralInteger, 7);
    let transform = |wkt: &str| write_wkt(&plan.apply_geometry(&parse_wkt(wkt).unwrap()));
    let parcels2: Vec<String> = parcels.iter().map(|w| transform(w)).collect();
    let roads2: Vec<String> = roads.iter().map(|w| transform(w)).collect();
    let markers2: Vec<String> = markers.iter().map(|w| transform(w)).collect();

    let mut reprojected = Engine::reference(EngineProfile::PostgisLike);
    load(
        &mut reprojected,
        &parcels2.iter().map(String::as_str).collect::<Vec<_>>(),
        &roads2.iter().map(String::as_str).collect::<Vec<_>>(),
        &markers2.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    println!("\nAffine-equivalent survey frame:");
    for ((label, sql), original) in queries.iter().zip(original_counts) {
        let count = reprojected.execute(sql).expect("query").count().unwrap();
        let status = if count == original {
            "consistent"
        } else {
            "DISCREPANCY"
        };
        println!("  {label:<28} {count}  [{status}]");
    }
}
