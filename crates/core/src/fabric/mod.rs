//! The campaign fabric: pluggable worker transports for the distributed
//! supervisor.
//!
//! [`crate::dist::DistRunner`] drives `spatter-campaign-worker` executors
//! over a line-delimited wire protocol ([`crate::dist::wire`]). Until this
//! module existed the only way to reach a worker was a child process over
//! inherited stdio pipes — one box, by construction. A [`Transport`]
//! abstracts the *plumbing* (how bytes reach a worker and how its lifecycle
//! is controlled) away from the *protocol* (which is transport-agnostic:
//! single lines in both directions, opened by the `hello <WIRE_VERSION>`
//! handshake), so the same supervisor event loop drives local pipes and
//! remote sockets through one code path, and replay frames ride either
//! transport verbatim.
//!
//! Two implementations ship:
//!
//! * [`StdioTransport`] — the historical child-process launcher, now with
//!   the worker's stderr captured into a bounded per-slot tail instead of
//!   inherited (and lost) — the supervisor surfaces it when a worker dies.
//! * [`TcpTransport`] — a std-only socket transport: the supervisor binds a
//!   `TcpListener` (loopback by default; binding a routable address is an
//!   explicit opt-in, the protocol is unauthenticated) and each
//!   [`Transport::connect`] call accepts one inbound worker within a
//!   bounded accept window. Workers dial in with
//!   `spatter-campaign-worker --connect host:port`. For single-box use
//!   (tests, CI smoke, respawn after a crash) the transport can also spawn
//!   the dialing worker itself.
//!
//! # Timeouts
//!
//! A socket peer can stall forever where a dead child closes its pipes, so
//! the TCP transport arms a read timeout for the handshake phase and the
//! supervisor calls [`ChannelControl::handshake_complete`] once the version
//! exchange is done — after which the stream must block indefinitely again
//! (a campaign iteration may legitimately take minutes, and a timeout
//! firing mid-line would corrupt the framing).

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lines of worker stderr kept per slot (a bounded tail: the newest lines
/// are the ones that explain a death).
const STDERR_TAIL_LINES: usize = 32;

/// How a worker behind a channel is killed, reaped and diagnosed. The
/// supervisor owns one per slot, next to the channel's reader and writer.
pub trait ChannelControl: Send {
    /// Hard-kills the worker (the fault-injection path and the cleanup path
    /// for protocol violations). Must make the channel's reader observe end
    /// of stream. Idempotent; errors are irrelevant because the caller is
    /// already tearing the slot down.
    fn kill(&mut self);

    /// Releases the worker's resources (waits on a child process, joins the
    /// stderr drain) and returns the captured stderr tail, oldest line
    /// first. Empty when the transport has no stderr to observe (a remote
    /// socket peer). Idempotent: later calls return an empty tail.
    fn reap(&mut self) -> Vec<String>;

    /// Signals that the wire handshake completed: transports with a
    /// handshake read deadline (TCP) clear it here so streaming reads block
    /// indefinitely. A no-op for pipe transports.
    fn handshake_complete(&mut self);
}

/// A live framed line stream to one worker. The reader yields the worker's
/// protocol lines; the writer accepts the supervisor's. Both halves are
/// independently `Send` so the supervisor can move the reader onto its
/// per-slot reader thread while writing leases from the event loop.
pub struct WorkerChannel {
    /// Supervisor-to-worker lines.
    pub writer: Box<dyn Write + Send>,
    /// Worker-to-supervisor lines.
    pub reader: Box<dyn BufRead + Send>,
    /// Lifecycle control and diagnostics.
    pub control: Box<dyn ChannelControl>,
}

/// A way of reaching campaign workers. Object-safe: the supervisor holds a
/// `&dyn Transport` and never knows whether its fleet is pipes or sockets.
pub trait Transport: Send + Sync {
    /// The transport's display name (used in logs and bench labels).
    fn name(&self) -> &'static str;

    /// Establishes the channel for worker slot `index` — spawning a child,
    /// accepting an inbound socket, or both. Called again with the same
    /// index when a slot is respawned after a death; every call must
    /// produce a fresh worker that will open with the wire handshake.
    fn connect(&self, index: usize) -> io::Result<WorkerChannel>;
}

// ---------------------------------------------------------------------------
// Shared stderr capture
// ---------------------------------------------------------------------------

/// A bounded stderr tail filled by a drain thread. Shared between the drain
/// and the control that reports it.
type StderrTail = Arc<Mutex<VecDeque<String>>>;

/// Spawns the drain thread for a child's piped stderr. Keeps only the last
/// [`STDERR_TAIL_LINES`] lines so a chatty worker cannot balloon the
/// supervisor.
fn drain_stderr(stderr: impl Read + Send + 'static) -> (StderrTail, JoinHandle<()>) {
    let tail: StderrTail = Arc::new(Mutex::new(VecDeque::new()));
    let sink = Arc::clone(&tail);
    let handle = std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            let mut tail = sink.lock().expect("stderr tail poisoned");
            if tail.len() == STDERR_TAIL_LINES {
                tail.pop_front();
            }
            tail.push_back(line);
        }
    });
    (tail, handle)
}

/// The child-process half shared by both transports: the process handle,
/// its stderr tail and the drain thread to join on reap.
struct ChildHandle {
    child: Child,
    tail: StderrTail,
    drain: Option<JoinHandle<()>>,
}

impl ChildHandle {
    fn kill(&mut self) {
        let _ = self.child.kill();
    }

    fn reap(&mut self) -> Vec<String> {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(drain) = self.drain.take() {
            let _ = drain.join();
        }
        std::mem::take(&mut *self.tail.lock().expect("stderr tail poisoned")).into()
    }
}

/// Spawns a worker child with piped stderr and the per-slot argument set.
fn spawn_child(
    command: &PathBuf,
    args: impl IntoIterator<Item = String>,
) -> io::Result<(Child, StderrTail, JoinHandle<()>)> {
    let mut child = Command::new(command)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()?;
    let stderr = child.stderr.take().ok_or_else(|| {
        let _ = child.kill();
        let _ = child.wait();
        io::Error::other("worker spawned without a piped stderr")
    })?;
    let (tail, drain) = drain_stderr(stderr);
    Ok((child, tail, drain))
}

// ---------------------------------------------------------------------------
// Stdio transport
// ---------------------------------------------------------------------------

/// The child-process transport: one local `spatter-campaign-worker` per
/// slot, spoken to over its stdin/stdout pipes, with stderr captured into
/// the per-slot diagnostic tail.
pub struct StdioTransport {
    command: PathBuf,
    /// Extra command-line arguments for specific slots (e.g. an iteration
    /// delay that turns one slot into a deliberate straggler in tests).
    slot_args: Vec<(usize, Vec<String>)>,
}

impl StdioTransport {
    /// A transport launching `command` for every slot.
    pub fn new(command: impl Into<PathBuf>) -> Self {
        StdioTransport {
            command: command.into(),
            slot_args: Vec::new(),
        }
    }

    /// Appends extra arguments to the command of one slot.
    pub fn with_slot_args(mut self, slot: usize, args: Vec<String>) -> Self {
        self.slot_args.push((slot, args));
        self
    }

    fn args_for(&self, index: usize) -> Vec<String> {
        self.slot_args
            .iter()
            .filter(|(slot, _)| *slot == index)
            .flat_map(|(_, args)| args.iter().cloned())
            .collect()
    }
}

struct StdioControl {
    child: ChildHandle,
}

impl ChannelControl for StdioControl {
    fn kill(&mut self) {
        self.child.kill();
    }

    fn reap(&mut self) -> Vec<String> {
        self.child.reap()
    }

    fn handshake_complete(&mut self) {}
}

impl Transport for StdioTransport {
    fn name(&self) -> &'static str {
        "stdio"
    }

    fn connect(&self, index: usize) -> io::Result<WorkerChannel> {
        let (mut child, tail, drain) = spawn_child(&self.command, self.args_for(index))?;
        let Some(stdin) = child.stdin.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::other("worker spawned without a piped stdin"));
        };
        let Some(stdout) = child.stdout.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::other("worker spawned without a piped stdout"));
        };
        Ok(WorkerChannel {
            writer: Box::new(stdin),
            reader: Box::new(BufReader::new(stdout)),
            control: Box::new(StdioControl {
                child: ChildHandle {
                    child,
                    tail,
                    drain: Some(drain),
                },
            }),
        })
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// The socket transport: the supervisor listens, workers dial in with
/// `spatter-campaign-worker --connect <addr>`.
///
/// Binds loopback by default ([`TcpTransport::loopback`]): the protocol is
/// unauthenticated line framing, so exposing it beyond the host must be a
/// deliberate choice ([`TcpTransport::bind`] with an explicit address on a
/// trusted network, or an SSH tunnel per worker).
pub struct TcpTransport {
    listener: TcpListener,
    address: SocketAddr,
    /// How long one [`Transport::connect`] call waits for an inbound worker.
    accept_window: Duration,
    /// Read deadline covering the handshake phase of a fresh stream.
    handshake_timeout: Duration,
    /// When set, `connect` spawns this command locally with
    /// `--connect <addr>` appended — the single-box (and respawn-capable)
    /// mode used by tests, CI and benches. When `None`, `connect` only
    /// accepts: the fleet is launched externally.
    spawn_command: Option<PathBuf>,
    slot_args: Vec<(usize, Vec<String>)>,
}

impl TcpTransport {
    /// Binds a listener on `127.0.0.1` (port chosen by the OS) — the
    /// default, host-local fabric.
    pub fn loopback() -> io::Result<Self> {
        TcpTransport::bind("127.0.0.1:0")
    }

    /// Binds a listener on an explicit address. Anything other than
    /// loopback exposes the unauthenticated campaign protocol to that
    /// network — see the type-level security note.
    pub fn bind(address: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(address)?;
        // Non-blocking accept + polling gives the bounded accept window;
        // std's blocking `accept` has no deadline.
        listener.set_nonblocking(true)?;
        let address = listener.local_addr()?;
        Ok(TcpTransport {
            listener,
            address,
            accept_window: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(10),
            spawn_command: None,
            slot_args: Vec::new(),
        })
    }

    /// The bound address workers must dial (`--connect <this>`).
    pub fn address(&self) -> SocketAddr {
        self.address
    }

    /// Sets the bounded accept window.
    pub fn with_accept_window(mut self, window: Duration) -> Self {
        self.accept_window = window;
        self
    }

    /// Sets the handshake-phase read deadline.
    pub fn with_handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = timeout;
        self
    }

    /// Makes `connect` spawn the dialing worker itself (single-box mode).
    pub fn with_spawned_workers(mut self, command: impl Into<PathBuf>) -> Self {
        self.spawn_command = Some(command.into());
        self
    }

    /// Appends extra arguments to the spawned command of one slot.
    pub fn with_slot_args(mut self, slot: usize, args: Vec<String>) -> Self {
        self.slot_args.push((slot, args));
        self
    }

    /// Accepts one inbound connection within the accept window.
    fn accept_within_window(&self) -> io::Result<TcpStream> {
        let deadline = Instant::now() + self.accept_window;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => return Ok(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("no worker dialed in within {:?}", self.accept_window),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

struct TcpControl {
    stream: TcpStream,
    /// The locally spawned worker, in single-box mode.
    child: Option<ChildHandle>,
}

impl ChannelControl for TcpControl {
    fn kill(&mut self) {
        if let Some(child) = &mut self.child {
            child.kill();
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    fn reap(&mut self) -> Vec<String> {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        match &mut self.child {
            Some(child) => child.reap(),
            None => Vec::new(),
        }
    }

    fn handshake_complete(&mut self) {
        // From here on a silent stream means a slow iteration, not a dead
        // peer: clear the deadline so streaming reads block indefinitely.
        let _ = self.stream.set_read_timeout(None);
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn connect(&self, index: usize) -> io::Result<WorkerChannel> {
        let child = match &self.spawn_command {
            None => None,
            Some(command) => {
                let mut args = vec!["--connect".to_string(), self.address.to_string()];
                args.extend(
                    self.slot_args
                        .iter()
                        .filter(|(slot, _)| *slot == index)
                        .flat_map(|(_, extra)| extra.iter().cloned()),
                );
                let (child, tail, drain) = spawn_child(command, args)?;
                Some(ChildHandle {
                    child,
                    tail,
                    drain: Some(drain),
                })
            }
        };
        let stream = match self.accept_within_window() {
            Ok(stream) => stream,
            Err(error) => {
                if let Some(mut child) = child {
                    child.reap();
                }
                return Err(error);
            }
        };
        // The listener is non-blocking for the accept poll; the accepted
        // stream must block (with the handshake deadline armed) so the
        // reader thread parks on it instead of spinning.
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(self.handshake_timeout))?;
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone()?;
        let writer = stream.try_clone()?;
        Ok(WorkerChannel {
            writer: Box::new(writer),
            reader: Box::new(BufReader::new(reader)),
            control: Box::new(TcpControl { stream, child }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_transport_binds_the_loopback_interface_only() {
        let transport = TcpTransport::loopback().expect("bind loopback");
        assert!(transport.address().ip().is_loopback());
        assert_ne!(transport.address().port(), 0);
    }

    #[test]
    fn tcp_accept_window_is_bounded() {
        let transport = TcpTransport::loopback()
            .expect("bind loopback")
            .with_accept_window(Duration::from_millis(50));
        let start = Instant::now();
        let error = match transport.connect(0) {
            Err(error) => error,
            Ok(_) => panic!("nobody dials in"),
        };
        assert_eq!(error.kind(), io::ErrorKind::TimedOut);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the accept window must bound the wait"
        );
    }

    #[test]
    fn tcp_channel_round_trips_lines_and_clears_the_handshake_deadline() {
        let transport = TcpTransport::loopback().expect("bind loopback");
        let address = transport.address();
        let peer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(address).expect("dial");
            stream.write_all(b"hello-from-worker\n").expect("write");
            let mut reply = String::new();
            BufReader::new(stream.try_clone().expect("clone"))
                .read_line(&mut reply)
                .expect("read");
            reply
        });
        let mut channel = transport.connect(0).expect("accept");
        let mut line = String::new();
        channel.reader.read_line(&mut line).expect("read");
        assert_eq!(line, "hello-from-worker\n");
        channel.control.handshake_complete();
        channel.writer.write_all(b"lease 0 0 1\n").expect("write");
        channel.writer.flush().expect("flush");
        assert_eq!(peer.join().expect("peer"), "lease 0 0 1\n");
        // A remote peer has no stderr to report.
        assert!(channel.control.reap().is_empty());
    }

    #[test]
    fn stderr_tail_is_bounded() {
        let lines: Vec<String> = (0..100).map(|i| format!("line {i}")).collect();
        let (tail, handle) = drain_stderr(std::io::Cursor::new(lines.join("\n")));
        handle.join().expect("drain");
        let tail = tail.lock().expect("tail");
        assert_eq!(tail.len(), STDERR_TAIL_LINES);
        assert_eq!(tail.back().map(String::as_str), Some("line 99"));
        assert_eq!(
            tail.front().map(String::as_str),
            Some(&*format!("line {}", 100 - STDERR_TAIL_LINES))
        );
    }
}
