//! The external-engine adapter: an [`EngineBackend`] over any SQL-speaking
//! subprocess, described entirely by plain data.
//!
//! [`StdioBackend`](crate::backend::StdioBackend) already proved the backend
//! traits support out-of-process engines — but it is hard-wired to the
//! `spatter-sdb-server` protocol. The differential matrix needs to point the
//! same oracle suite at engines the harness does not control (a real PostGIS
//! behind `psql`, say), so this module factors the "drive a subprocess over
//! line-delimited SQL" pattern into a [`DialectSpec`]: how to launch the
//! process, how to know it is ready, how statements are terminated, and how
//! replies are parsed ([`ReplyGrammar`]). Two grammars ship:
//!
//! * [`ReplyGrammar::SdbServer`] — the native `spatter-sdb-server` reply
//!   protocol, reusing the server crate's own parser. This is the hermetic
//!   self-test dialect: an [`ExternalBackend`] wrapping the server binary
//!   must behave exactly like a [`StdioBackend`](crate::backend::StdioBackend)
//!   of the same configuration, which the matrix tests assert.
//! * [`ReplyGrammar::Sentinel`] — the `psql`-shaped grammar: after each
//!   statement an echo command is sent whose output (the *done marker*)
//!   delimits the reply; any reply line starting with a configured error
//!   prefix classifies the statement as failed (and optionally as a crash).
//!   [`DialectSpec::postgis_from_env`] builds this dialect from the
//!   `SPATTER_PG_CMD` environment variable — CI ships no PostGIS, so the
//!   real-engine cell is env-gated and absent by default.
//!
//! An external engine's faults are unknown by definition, so
//! [`ExternalBackend::fault_ids`] is empty: campaign attribution is disabled
//! for external cells (real-engine semantics), exactly as documented on
//! [`EngineBackend::fault_ids`]. Dead subprocesses surface the same canonical
//! transport error as the stdio backend and are lazily respawned with their
//! setup script replayed — kill-mid-cell recovery parity is part of the
//! matrix test suite.

use crate::backend::{transport_lost, BackendError, BackendSpec, EngineBackend, EngineSession};
use spatter_sdb::server::{sanitize_line, Response};
use spatter_sdb::{EngineProfile, FaultId, FaultSet};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

/// How an external engine's replies are parsed back into the backend
/// taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyGrammar {
    /// The native `spatter-sdb-server` reply protocol (`OK` / `ROWS` /
    /// `ERR`), parsed by the server crate's own [`Response::read_from`].
    SdbServer,
    /// A sentinel-delimited grammar for engines whose shells echo on
    /// request (`psql`-shaped): after every statement, `echo_command` is
    /// sent and reply lines are collected until `done_marker` appears on a
    /// line of its own.
    Sentinel {
        /// The shell command whose output is the done marker (for `psql`:
        /// `\echo SPATTER_DONE`).
        echo_command: String,
        /// The exact line that terminates a reply.
        done_marker: String,
        /// Prefixes classifying a reply line as an error; the flag marks
        /// prefixes that indicate a crashed/broken session rather than a
        /// semantic rejection.
        error_prefixes: Vec<(String, bool)>,
    },
}

/// A plain-data description of an external SQL-speaking engine: how to
/// launch it, how to detect readiness, and how to talk to it. The
/// serializable heart of [`ExternalBackend`] — specs travel over the
/// distributed wire codec so matrix cells can ride the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DialectSpec {
    /// Display name used in finding descriptions and matrix reports.
    pub name: String,
    /// The engine executable.
    pub command: PathBuf,
    /// Arguments passed at launch.
    pub args: Vec<String>,
    /// The profile documenting the engine's `ST_*` surface (drives query
    /// generation for campaigns using this backend as the engine under
    /// test).
    pub profile: EngineProfile,
    /// When `Some`, startup lines are consumed until one starts with this
    /// prefix; the engine is not spoken to before then. `None` means the
    /// engine is ready as soon as it is spawned.
    pub ready_prefix: Option<String>,
    /// Appended to statements that do not already end with it (empty for
    /// engines that take one bare statement per line).
    pub terminator: String,
    /// The reply grammar.
    pub grammar: ReplyGrammar,
}

impl DialectSpec {
    /// The hermetic self-test dialect: drives a `spatter-sdb-server` binary
    /// through the generic adapter. Behaviourally equivalent to a
    /// [`crate::backend::StdioBackend`] of the same configuration, which is
    /// exactly what makes it useful — matrix plumbing is exercised with no
    /// external engine installed.
    pub fn sdb_server(
        command: impl Into<PathBuf>,
        profile: EngineProfile,
        faults: FaultSet,
        hard_crash: bool,
    ) -> Self {
        let mut args = vec![
            "--profile".to_string(),
            profile.name().to_string(),
            "--faults".to_string(),
            if faults.is_empty() {
                "none".to_string()
            } else {
                faults.to_names()
            },
        ];
        if hard_crash {
            args.push("--hard-crash".to_string());
        }
        DialectSpec {
            name: format!("sdb-server:{}", profile.name()),
            command: command.into(),
            args,
            profile,
            ready_prefix: Some("READY".to_string()),
            terminator: String::new(),
            grammar: ReplyGrammar::SdbServer,
        }
    }

    /// The real-PostGIS dialect, gated on the `SPATTER_PG_CMD` environment
    /// variable (a `psql` command line with connection flags, split on
    /// whitespace). Returns `None` when the variable is unset or empty — CI
    /// ships no PostGIS, so the matrix simply has no real-engine cell there.
    pub fn postgis_from_env() -> Option<Self> {
        let raw = std::env::var("SPATTER_PG_CMD").ok()?;
        let mut tokens = raw.split_whitespace().map(str::to_string);
        let command = PathBuf::from(tokens.next()?);
        let mut args: Vec<String> = tokens.collect();
        // Quiet, tuples-only, unaligned, no psqlrc: replies are bare value
        // lines, which is what the sentinel grammar parses.
        args.extend(["-q", "-t", "-A", "-X"].map(str::to_string));
        Some(DialectSpec {
            name: "postgis".to_string(),
            command,
            args,
            profile: EngineProfile::PostgisLike,
            ready_prefix: None,
            terminator: ";".to_string(),
            grammar: ReplyGrammar::Sentinel {
                echo_command: "\\echo SPATTER_DONE".to_string(),
                done_marker: "SPATTER_DONE".to_string(),
                error_prefixes: vec![
                    ("ERROR:".to_string(), false),
                    ("FATAL:".to_string(), true),
                    ("PANIC:".to_string(), true),
                    ("server closed the connection".to_string(), true),
                ],
            },
        })
    }
}

/// An [`EngineBackend`] over the subprocess a [`DialectSpec`] describes.
#[derive(Debug, Clone)]
pub struct ExternalBackend {
    dialect: DialectSpec,
}

impl ExternalBackend {
    /// A backend speaking the given dialect.
    pub fn new(dialect: DialectSpec) -> Self {
        ExternalBackend { dialect }
    }

    /// The dialect this backend speaks.
    pub fn dialect(&self) -> &DialectSpec {
        &self.dialect
    }

    fn spawn(&self) -> Result<ExternalHandle, BackendError> {
        let mut command = Command::new(&self.dialect.command);
        command
            .args(&self.dialect.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        // Same taxonomy as StdioBackend::spawn: an unspawnable binary is a
        // harness misconfiguration and aborts loudly; everything else is the
        // canonical transport error so the respawn path can retry and
        // finding descriptions stay byte-identical.
        let mut child = match command.spawn() {
            Ok(child) => child,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::NotFound | std::io::ErrorKind::PermissionDenied
                ) =>
            {
                panic!(
                    "cannot spawn external engine {}: {e} — ExternalBackend misconfigured \
                     (check the dialect's command path)",
                    self.dialect.command.display()
                )
            }
            Err(_) => return Err(transport_lost()),
        };
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut handle = ExternalHandle {
            child,
            stdin,
            stdout,
        };
        if let Some(prefix) = &self.dialect.ready_prefix {
            loop {
                match handle.read_line() {
                    Some(line) if line.starts_with(prefix.as_str()) => break,
                    Some(_) => continue,
                    None => {
                        handle.shutdown();
                        return Err(transport_lost());
                    }
                }
            }
        }
        Ok(handle)
    }
}

impl EngineBackend for ExternalBackend {
    fn profile(&self) -> EngineProfile {
        self.dialect.profile
    }

    fn open_session(&self) -> Result<Box<dyn EngineSession>, BackendError> {
        let handle = self.spawn()?;
        Ok(Box::new(ExternalSession {
            backend: self.clone(),
            handle: Some(handle),
            setup: Vec::new(),
            engine_time: Duration::ZERO,
        }))
    }

    /// Empty: an external engine's faults are unknown, so campaign
    /// attribution is a no-op for cells driven through this adapter.
    fn fault_ids(&self) -> Vec<FaultId> {
        Vec::new()
    }

    /// With no known faults there is nothing to disable; attribution never
    /// calls this (it iterates [`EngineBackend::fault_ids`]), but the
    /// contract still wants an equivalent backend.
    fn without_fault(&self, _fault: FaultId) -> Box<dyn EngineBackend> {
        Box::new(self.clone())
    }

    fn name(&self) -> String {
        self.dialect.name.clone()
    }

    fn wire_spec(&self) -> Option<BackendSpec> {
        Some(BackendSpec::External {
            dialect: self.dialect.clone(),
        })
    }
}

/// One live subprocess: pipes plus the child handle.
struct ExternalHandle {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ExternalHandle {
    /// Reads one line, `None` on EOF or I/O failure (both mean the process
    /// is gone for our purposes).
    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.stdout.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                Some(line)
            }
        }
    }

    fn send_line(&mut self, line: &str) -> Result<(), BackendError> {
        writeln!(self.stdin, "{line}")
            .and_then(|()| self.stdin.flush())
            .map_err(|_| transport_lost())
    }

    /// One request/response round trip under the dialect's grammar. Any I/O
    /// or framing failure is the canonical transport error; the caller
    /// discards the handle.
    fn request(&mut self, dialect: &DialectSpec, sql: &str) -> Result<Response, BackendError> {
        let mut line = sanitize_line(sql);
        if line.trim().is_empty() {
            // Engines ignore blank input without replying (the sdb server
            // documents this; a bare terminator is a no-op for psql too), so
            // blocking for a reply would hang. Answer locally with the same
            // reply the in-process engine gives an empty statement.
            return Ok(Response::Error {
                crash: false,
                message: "parse error: empty statement".into(),
            });
        }
        if !dialect.terminator.is_empty() && !line.trim_end().ends_with(&dialect.terminator) {
            line.push_str(&dialect.terminator);
        }
        self.send_line(&line)?;
        match &dialect.grammar {
            ReplyGrammar::SdbServer => {
                Response::read_from(&mut self.stdout).map_err(|_| transport_lost())
            }
            ReplyGrammar::Sentinel {
                echo_command,
                done_marker,
                error_prefixes,
            } => {
                self.send_line(echo_command)?;
                let mut rows = Vec::new();
                let mut error: Option<(bool, String)> = None;
                loop {
                    let Some(reply) = self.read_line() else {
                        return Err(transport_lost());
                    };
                    if reply == *done_marker {
                        break;
                    }
                    if error.is_none() {
                        if let Some((_, crash)) = error_prefixes
                            .iter()
                            .find(|(prefix, _)| reply.starts_with(prefix.as_str()))
                        {
                            error = Some((*crash, reply.clone()));
                            continue;
                        }
                    }
                    rows.push(reply);
                }
                match error {
                    Some((crash, message)) => Ok(Response::Error { crash, message }),
                    // A single numeric line is how count queries come back
                    // through tuples-only shells; anything else is a plain
                    // row set with no scalar count.
                    None => {
                        let count = match rows.as_slice() {
                            [single] => single.trim().parse::<i64>().ok(),
                            _ => None,
                        };
                        Ok(Response::Rows { rows, count })
                    }
                }
            }
        }
    }

    fn shutdown(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ExternalHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A session over one external process. The respawn discipline is the stdio
/// backend's, verbatim: the setup script is recorded statement by statement
/// *before* each send and recording stops at the first failure, so a
/// respawned process replays exactly what the dead one was asked to execute.
struct ExternalSession {
    backend: ExternalBackend,
    handle: Option<ExternalHandle>,
    setup: Vec<String>,
    engine_time: Duration,
}

impl ExternalSession {
    fn request(&mut self, sql: &str) -> Result<Response, BackendError> {
        let started = Instant::now();
        let result = self.request_inner(sql);
        self.engine_time += started.elapsed();
        result
    }

    fn request_inner(&mut self, sql: &str) -> Result<Response, BackendError> {
        if self.handle.is_none() {
            let mut handle = self.backend.spawn()?;
            for statement in &self.setup {
                handle.request(&self.backend.dialect, statement)?;
            }
            self.handle = Some(handle);
        }
        let handle = self.handle.as_mut().expect("respawned above");
        match handle.request(&self.backend.dialect, sql) {
            Ok(response) => Ok(response),
            Err(error) => {
                if let Some(mut dead) = self.handle.take() {
                    dead.shutdown();
                }
                Err(error)
            }
        }
    }

    fn check(response: Response) -> Result<Response, BackendError> {
        match response {
            Response::Error {
                crash: true,
                message,
            } => Err(BackendError::Crash(message)),
            Response::Error {
                crash: false,
                message,
            } => Err(BackendError::Semantic(message)),
            other => Ok(other),
        }
    }
}

impl EngineSession for ExternalSession {
    fn load(&mut self, statements: &[String]) -> Result<(), BackendError> {
        for statement in statements {
            self.setup.push(statement.clone());
            Self::check(self.request(statement)?)?;
        }
        Ok(())
    }

    fn run_count(&mut self, sql: &str) -> Result<Option<i64>, BackendError> {
        match Self::check(self.request(sql)?)? {
            Response::Rows { count, .. } => Ok(count),
            _ => Ok(None),
        }
    }

    fn run_rows(&mut self, sql: &str) -> Result<Vec<String>, BackendError> {
        match Self::check(self.request(sql)?)? {
            Response::Rows { rows, .. } => Ok(rows),
            Response::None | Response::Effect(_) => Ok(Vec::new()),
            Response::Error { .. } => unreachable!("check() filtered errors"),
        }
    }

    fn engine_time(&self) -> Duration {
        self.engine_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdb_server_dialect_mirrors_the_stdio_launch_configuration() {
        let spec = DialectSpec::sdb_server(
            "/bin/server",
            EngineProfile::MysqlLike,
            FaultSet::none(),
            true,
        );
        assert_eq!(
            spec.args,
            vec![
                "--profile",
                "mysql_like",
                "--faults",
                "none",
                "--hard-crash"
            ]
        );
        assert_eq!(spec.ready_prefix.as_deref(), Some("READY"));
        assert_eq!(spec.grammar, ReplyGrammar::SdbServer);
        assert!(spec.terminator.is_empty());
        let without = DialectSpec::sdb_server(
            "/bin/server",
            EngineProfile::MysqlLike,
            EngineProfile::MysqlLike.default_faults(),
            false,
        );
        assert!(!without.args.contains(&"--hard-crash".to_string()));
        assert!(!without.args.contains(&"none".to_string()));
    }

    #[test]
    fn external_backends_report_no_faults_and_a_wire_spec() {
        let dialect = DialectSpec::sdb_server(
            "/bin/server",
            EngineProfile::PostgisLike,
            FaultSet::none(),
            false,
        );
        let backend = ExternalBackend::new(dialect.clone());
        assert!(backend.fault_ids().is_empty());
        assert_eq!(backend.name(), "sdb-server:postgis_like");
        assert_eq!(backend.profile(), EngineProfile::PostgisLike);
        assert_eq!(backend.wire_spec(), Some(BackendSpec::External { dialect }));
        // without_fault yields an equivalent backend, never panics.
        let same = backend.without_fault(FaultId::GeosCoversPrecisionLoss);
        assert_eq!(same.wire_spec(), backend.wire_spec());
    }

    #[test]
    #[should_panic(expected = "ExternalBackend misconfigured")]
    fn missing_command_is_a_misconfiguration_panic() {
        let dialect = DialectSpec::sdb_server(
            "/nonexistent/engine",
            EngineProfile::PostgisLike,
            FaultSet::none(),
            false,
        );
        let _ = ExternalBackend::new(dialect).open_session();
    }
}
