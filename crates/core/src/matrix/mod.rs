//! The differential testing matrix: N backends, N×(N−1) ordered-pair
//! campaigns, findings bucketed by which side diverged.
//!
//! One differential campaign answers "do these two engines agree?"; it
//! cannot say *which* engine is wrong when they don't. The matrix runs the
//! AEI + differential oracle suite over **every ordered pair** of a backend
//! roster — in-process profiles, `spatter-sdb-server` twins, external
//! adapters ([`ExternalBackend`]) — on the existing campaign substrate, then
//! merges the per-cell [`CampaignReport`]s into one [`MatrixReport`] whose
//! findings are bucketed per cell:
//!
//! * **left** — the engine under test diverged (AEI violations, left-side
//!   crashes re-run cleanly elsewhere, and `both`-sided disagreements the
//!   grid pins on the left engine);
//! * **right** — the comparison engine failed fatally mid-comparison, or a
//!   two-sided disagreement the grid pins on the right engine;
//! * **both** — a disagreement the grid cannot attribute (both engines
//!   equally implicated across the matrix);
//! * **crash** — crash findings (either side), kept separate because a
//!   crash is actionable without attribution.
//!
//! The pinning works by *involvement counting*: every cell implicates its
//! left backend when it holds a logic finding sided left-or-both, and its
//! right backend when sided right-or-both. A backend that is genuinely buggy
//! is implicated in every cell it touches (2(N−1) of them), while its
//! innocent partners are implicated only in their cells against it — so for
//! a `both`-sided finding in cell (i, j), strictly greater involvement of
//! one side re-buckets the finding onto that side, and a tie leaves it
//! `both`. The whole grid runs under one seed and the campaign determinism
//! contract, so a [`MatrixReport`] is byte-identical at any worker count.

pub mod external;

pub use external::{DialectSpec, ExternalBackend, ReplyGrammar};

use crate::backend::BackendSpec;
use crate::campaign::{CampaignConfig, CampaignReport, FindingKind};
use crate::oracles::DivergenceSide;
use crate::replay::ReplayHasher;
use crate::runner::{CampaignRunner, OracleKind};
use std::cmp::Ordering;
use std::fmt;

/// The matrix artifact format version. Bumped whenever the header or line
/// layout changes; decoding any other version is a structured error.
pub const MATRIX_VERSION: u32 = 1;

/// One backend of the roster: a serializable spec plus the label it carries
/// in reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixEntry {
    /// Display label used in matrix reports and the CLI grid.
    pub label: String,
    /// The backend the cell campaigns build.
    pub spec: BackendSpec,
}

impl MatrixEntry {
    /// An entry with an explicit label.
    pub fn new(label: impl Into<String>, spec: BackendSpec) -> Self {
        MatrixEntry {
            label: label.into(),
            spec,
        }
    }
}

/// Configuration of a matrix run: the backend roster and the per-cell
/// campaign template.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// The backend roster; every ordered pair of distinct entries becomes
    /// one cell.
    pub entries: Vec<MatrixEntry>,
    /// The campaign template each cell instantiates. Its `backend` and
    /// `oracles` fields are overwritten per cell; everything else —
    /// generator, iterations, affine strategy and above all the `seed` —
    /// is shared by the whole grid.
    pub base: CampaignConfig,
    /// Worker threads per cell campaign. The grid's cells run sequentially
    /// (determinism needs no more: each cell is deterministic by the
    /// campaign contract); parallelism lives inside the cells.
    pub workers: usize,
}

impl MatrixConfig {
    /// A matrix over the given roster with a default single-worker campaign
    /// template.
    pub fn new(entries: Vec<MatrixEntry>, base: CampaignConfig) -> Self {
        MatrixConfig {
            entries,
            base,
            workers: 1,
        }
    }

    /// Sets the per-cell worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Per-cell finding buckets, after grid refinement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BucketCounts {
    /// Logic findings attributed to the cell's left backend.
    pub left: usize,
    /// Logic findings attributed to the cell's right backend.
    pub right: usize,
    /// Logic findings the grid could not attribute to one side.
    pub both: usize,
    /// Crash findings (kept apart from the attribution question).
    pub crash: usize,
}

impl BucketCounts {
    /// Total findings in the cell.
    pub fn total(&self) -> usize {
        self.left + self.right + self.both + self.crash
    }

    /// Whether the cell holds no findings at all.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

/// One cell of the matrix: the campaign of `entries[left]` under test with
/// `entries[right]` as the differential comparison engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellReport {
    /// Roster index of the engine under test.
    pub left: usize,
    /// Roster index of the comparison engine.
    pub right: usize,
    /// Iterations the cell campaign executed.
    pub iterations_run: usize,
    /// The cell's findings, bucketed by attributed side.
    pub buckets: BucketCounts,
    /// Digest of the cell campaign's [`CampaignReport::determinism_fingerprint`]
    /// — the scheduling-independent identity of everything the cell found.
    pub fingerprint: u64,
}

/// The merged result of a matrix run. Deterministic: two runs of the same
/// [`MatrixConfig`] produce identical reports at any worker count, which
/// [`MatrixReport::encode`] turns into a byte-comparable artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixReport {
    /// The grid's shared campaign seed.
    pub seed: u64,
    /// Roster labels, in roster order.
    pub backends: Vec<String>,
    /// All N×(N−1) cells, in row-major (left-index, then right-index) order.
    pub cells: Vec<CellReport>,
    /// Per-backend involvement counts the `both`-refinement used: in how
    /// many cells the backend was implicated by a logic finding.
    pub involvement: Vec<usize>,
}

impl MatrixReport {
    /// Whether every cell of the grid is clean.
    pub fn is_clean(&self) -> bool {
        self.cells.iter().all(|cell| cell.buckets.is_clean())
    }

    /// The cells holding at least one finding.
    pub fn divergent_cells(&self) -> Vec<&CellReport> {
        self.cells
            .iter()
            .filter(|cell| !cell.buckets.is_clean())
            .collect()
    }

    /// Renders the report as a line-delimited artifact, newline-terminated.
    /// Also the report's determinism fingerprint: no wall-clock field is
    /// encoded, so two runs of the same configuration must produce
    /// byte-identical artifacts.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64 + self.cells.len() * 80);
        out.push_str(&format!(
            "spatter-matrix {MATRIX_VERSION} seed {} backends {} cells {}\n",
            self.seed,
            self.backends.len(),
            self.cells.len(),
        ));
        for (index, label) in self.backends.iter().enumerate() {
            out.push_str(&format!(
                "backend {index} {}\n",
                crate::dist::wire::escape(label)
            ));
        }
        for cell in &self.cells {
            out.push_str(&format!(
                "cell {} {} iterations {} left {} right {} both {} crash {} fingerprint {}\n",
                cell.left,
                cell.right,
                cell.iterations_run,
                cell.buckets.left,
                cell.buckets.right,
                cell.buckets.both,
                cell.buckets.crash,
                cell.fingerprint,
            ));
        }
        out.push_str("involvement");
        for count in &self.involvement {
            out.push_str(&format!(" {count}"));
        }
        out.push_str("\nend\n");
        out
    }

    /// Decodes an [`encode`](MatrixReport::encode)d artifact; every
    /// deviation is a structured [`MatrixError`].
    pub fn decode(text: &str) -> Result<MatrixReport, MatrixError> {
        let mut lines = text.lines().enumerate();
        let (line_no, header) = lines.next().ok_or(MatrixError::MissingHeader)?;
        let mut tokens = header.split_ascii_whitespace();
        if tokens.next() != Some("spatter-matrix") {
            return Err(MatrixError::MissingHeader);
        }
        let version = parse_u64(line_no + 1, "format version", tokens.next())? as u32;
        if version != MATRIX_VERSION {
            return Err(MatrixError::VersionMismatch {
                ours: MATRIX_VERSION,
                theirs: version,
            });
        }
        expect_token(line_no + 1, "seed", tokens.next())?;
        let seed = parse_u64(line_no + 1, "seed", tokens.next())?;
        expect_token(line_no + 1, "backends", tokens.next())?;
        let n_backends = parse_usize(line_no + 1, "backend count", tokens.next())?;
        expect_token(line_no + 1, "cells", tokens.next())?;
        let n_cells = parse_usize(line_no + 1, "cell count", tokens.next())?;
        end_of_line(line_no + 1, tokens.next())?;

        let mut backends = Vec::with_capacity(n_backends.min(64));
        for index in 0..n_backends {
            let (line_no, line) = lines.next().ok_or(MatrixError::Truncated)?;
            let mut tokens = line.split_ascii_whitespace();
            expect_token(line_no + 1, "backend", tokens.next())?;
            let declared = parse_usize(line_no + 1, "backend index", tokens.next())?;
            if declared != index {
                return Err(MatrixError::Malformed {
                    line: line_no + 1,
                    expected: "backend index in roster order",
                    got: declared.to_string(),
                });
            }
            let label = tokens.next().ok_or(MatrixError::Truncated)?;
            backends.push(crate::dist::wire::unescape(label).map_err(|_| {
                MatrixError::Malformed {
                    line: line_no + 1,
                    expected: "backend label",
                    got: label.to_string(),
                }
            })?);
            end_of_line(line_no + 1, tokens.next())?;
        }

        let mut cells = Vec::with_capacity(n_cells.min(4096));
        for _ in 0..n_cells {
            let (line_no, line) = lines.next().ok_or(MatrixError::Truncated)?;
            let mut tokens = line.split_ascii_whitespace();
            expect_token(line_no + 1, "cell", tokens.next())?;
            let left = parse_usize(line_no + 1, "cell left index", tokens.next())?;
            let right = parse_usize(line_no + 1, "cell right index", tokens.next())?;
            expect_token(line_no + 1, "iterations", tokens.next())?;
            let iterations_run = parse_usize(line_no + 1, "cell iterations", tokens.next())?;
            expect_token(line_no + 1, "left", tokens.next())?;
            let bucket_left = parse_usize(line_no + 1, "left bucket", tokens.next())?;
            expect_token(line_no + 1, "right", tokens.next())?;
            let bucket_right = parse_usize(line_no + 1, "right bucket", tokens.next())?;
            expect_token(line_no + 1, "both", tokens.next())?;
            let bucket_both = parse_usize(line_no + 1, "both bucket", tokens.next())?;
            expect_token(line_no + 1, "crash", tokens.next())?;
            let bucket_crash = parse_usize(line_no + 1, "crash bucket", tokens.next())?;
            expect_token(line_no + 1, "fingerprint", tokens.next())?;
            let fingerprint = parse_u64(line_no + 1, "cell fingerprint", tokens.next())?;
            end_of_line(line_no + 1, tokens.next())?;
            if left >= n_backends || right >= n_backends {
                return Err(MatrixError::Malformed {
                    line: line_no + 1,
                    expected: "cell indexes within the roster",
                    got: format!("{left}x{right}"),
                });
            }
            cells.push(CellReport {
                left,
                right,
                iterations_run,
                buckets: BucketCounts {
                    left: bucket_left,
                    right: bucket_right,
                    both: bucket_both,
                    crash: bucket_crash,
                },
                fingerprint,
            });
        }

        let (line_no, line) = lines.next().ok_or(MatrixError::Truncated)?;
        let mut tokens = line.split_ascii_whitespace();
        expect_token(line_no + 1, "involvement", tokens.next())?;
        let mut involvement = Vec::with_capacity(n_backends.min(64));
        for _ in 0..n_backends {
            involvement.push(parse_usize(
                line_no + 1,
                "involvement count",
                tokens.next(),
            )?);
        }
        end_of_line(line_no + 1, tokens.next())?;

        let (line_no, line) = lines.next().ok_or(MatrixError::Truncated)?;
        if line.trim() != "end" {
            return Err(MatrixError::Malformed {
                line: line_no + 1,
                expected: "end footer",
                got: line.to_string(),
            });
        }
        if let Some((line_no, line)) = lines.find(|(_, line)| !line.trim().is_empty()) {
            return Err(MatrixError::Malformed {
                line: line_no + 1,
                expected: "end of artifact",
                got: line.to_string(),
            });
        }
        Ok(MatrixReport {
            seed,
            backends,
            cells,
            involvement,
        })
    }
}

fn expect_token(
    line: usize,
    expected: &'static str,
    token: Option<&str>,
) -> Result<(), MatrixError> {
    match token {
        Some(token) if token == expected => Ok(()),
        Some(other) => Err(MatrixError::Malformed {
            line,
            expected,
            got: other.to_string(),
        }),
        None => Err(MatrixError::Truncated),
    }
}

fn parse_u64(line: usize, expected: &'static str, token: Option<&str>) -> Result<u64, MatrixError> {
    let token = token.ok_or(MatrixError::Truncated)?;
    token.parse().map_err(|_| MatrixError::Malformed {
        line,
        expected,
        got: token.to_string(),
    })
}

fn parse_usize(
    line: usize,
    expected: &'static str,
    token: Option<&str>,
) -> Result<usize, MatrixError> {
    let value = parse_u64(line, expected, token)?;
    usize::try_from(value).map_err(|_| MatrixError::Malformed {
        line,
        expected,
        got: value.to_string(),
    })
}

fn end_of_line(line: usize, token: Option<&str>) -> Result<(), MatrixError> {
    match token {
        None => Ok(()),
        Some(extra) => Err(MatrixError::Malformed {
            line,
            expected: "end of line",
            got: extra.to_string(),
        }),
    }
}

/// Why a matrix artifact could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The input does not start with a `spatter-matrix` header line.
    MissingHeader,
    /// The artifact was written by a different format version.
    VersionMismatch {
        /// Our [`MATRIX_VERSION`].
        ours: u32,
        /// The version the artifact announces.
        theirs: u32,
    },
    /// The input ended before the declared line count was reached.
    Truncated,
    /// A line did not have the expected shape.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What the decoder was trying to read.
        expected: &'static str,
        /// The offending token (or a description of it).
        got: String,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::MissingHeader => write!(f, "missing spatter-matrix header"),
            MatrixError::VersionMismatch { ours, theirs } => {
                write!(f, "matrix version mismatch: ours {ours}, artifact {theirs}")
            }
            MatrixError::Truncated => write!(f, "artifact truncated"),
            MatrixError::Malformed {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected}, got {got:?}"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// The matrix driver: instantiates and runs every cell campaign, then
/// merges and buckets.
pub struct MatrixRunner {
    config: MatrixConfig,
}

impl MatrixRunner {
    /// A runner over a matrix configuration.
    pub fn new(config: MatrixConfig) -> Self {
        MatrixRunner { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MatrixConfig {
        &self.config
    }

    /// The campaign cell (left, right) runs: the template with
    /// `entries[left]` as the engine under test and the AEI +
    /// differential-twin-of-`entries[right]` oracle suite.
    pub fn cell_campaign(&self, left: usize, right: usize) -> CampaignConfig {
        let mut config = self.config.base.clone();
        config.backend = self.config.entries[left].spec.build();
        config.oracles = vec![
            OracleKind::Aei,
            OracleKind::DifferentialTwin(self.config.entries[right].spec.clone()),
        ];
        config
    }

    /// Runs the whole grid and merges the per-cell reports.
    pub fn run(&self) -> MatrixReport {
        let n = self.config.entries.len();
        let mut raw: Vec<(usize, usize, CampaignReport)> = Vec::with_capacity(n * n);
        for left in 0..n {
            for right in 0..n {
                if left == right {
                    continue;
                }
                let campaign = self.cell_campaign(left, right);
                let report = CampaignRunner::new(campaign)
                    .with_workers(self.config.workers)
                    .run();
                raw.push((left, right, report));
            }
        }
        merge_cells(
            self.config.base.seed,
            self.config
                .entries
                .iter()
                .map(|entry| entry.label.clone())
                .collect(),
            raw,
        )
    }
}

/// Merges raw cell reports into a [`MatrixReport`]: involvement counting
/// first, then per-cell bucketing with `both`-refinement. Pure, so the
/// bucketing semantics are unit-testable without running campaigns.
pub(crate) fn merge_cells(
    seed: u64,
    backends: Vec<String>,
    raw: Vec<(usize, usize, CampaignReport)>,
) -> MatrixReport {
    let mut involvement = vec![0usize; backends.len()];
    for (left, right, report) in &raw {
        let implicates_left = report.findings.iter().any(|f| {
            f.kind == FindingKind::Logic
                && matches!(f.side, DivergenceSide::Left | DivergenceSide::Both)
        });
        let implicates_right = report.findings.iter().any(|f| {
            f.kind == FindingKind::Logic
                && matches!(f.side, DivergenceSide::Right | DivergenceSide::Both)
        });
        if implicates_left {
            involvement[*left] += 1;
        }
        if implicates_right {
            involvement[*right] += 1;
        }
    }
    let cells = raw
        .into_iter()
        .map(|(left, right, report)| {
            let mut buckets = BucketCounts::default();
            for finding in &report.findings {
                match finding.kind {
                    FindingKind::Crash => buckets.crash += 1,
                    FindingKind::Logic => match finding.side {
                        DivergenceSide::Left => buckets.left += 1,
                        DivergenceSide::Right => buckets.right += 1,
                        // A two-sided disagreement: blame the backend the
                        // rest of the grid implicates more often; a tie
                        // stays unattributed.
                        DivergenceSide::Both => match involvement[left].cmp(&involvement[right]) {
                            Ordering::Greater => buckets.left += 1,
                            Ordering::Less => buckets.right += 1,
                            Ordering::Equal => buckets.both += 1,
                        },
                    },
                }
            }
            let mut hasher = ReplayHasher::new();
            hasher.write_str(&report.determinism_fingerprint());
            CellReport {
                left,
                right,
                iterations_run: report.iterations_run,
                buckets,
                fingerprint: hasher.finish(),
            }
        })
        .collect();
    MatrixReport {
        seed,
        backends,
        cells,
        involvement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Finding;
    use std::time::Duration;

    fn logic(side: DivergenceSide) -> Finding {
        Finding {
            kind: FindingKind::Logic,
            side,
            description: format!("disagreement ({})", side.name()),
            iteration: 0,
            elapsed: Duration::ZERO,
            attributed_faults: Vec::new(),
        }
    }

    fn crash() -> Finding {
        Finding {
            kind: FindingKind::Crash,
            side: DivergenceSide::Left,
            description: "boom".to_string(),
            iteration: 0,
            elapsed: Duration::ZERO,
            attributed_faults: Vec::new(),
        }
    }

    fn report_with(findings: Vec<Finding>) -> CampaignReport {
        CampaignReport {
            findings,
            iterations_run: 4,
            ..CampaignReport::default()
        }
    }

    /// The canonical refinement scenario: backends A and B agree with each
    /// other, C disagrees with both. Every C-touching cell holds a
    /// `both`-sided differential finding; involvement counting must pin all
    /// of them on C.
    #[test]
    fn involvement_counting_pins_both_sided_findings_on_the_odd_one_out() {
        let labels = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let both = || report_with(vec![logic(DivergenceSide::Both)]);
        let clean = || report_with(Vec::new());
        let raw = vec![
            (0, 1, clean()),
            (0, 2, both()),
            (1, 0, clean()),
            (1, 2, both()),
            (2, 0, both()),
            (2, 1, both()),
        ];
        let report = merge_cells(7, labels, raw);
        // C is implicated in all four of its cells; A and B in two each.
        assert_eq!(report.involvement, vec![2, 2, 4]);
        for cell in &report.cells {
            let buckets = cell.buckets;
            match (cell.left, cell.right) {
                (0, 1) | (1, 0) => assert!(buckets.is_clean()),
                (_, 2) => assert_eq!((buckets.left, buckets.right, buckets.both), (0, 1, 0)),
                (2, _) => assert_eq!((buckets.left, buckets.right, buckets.both), (1, 0, 0)),
                pair => panic!("unexpected cell {pair:?}"),
            }
        }
        assert!(!report.is_clean());
        assert_eq!(report.divergent_cells().len(), 4);
    }

    #[test]
    fn sided_findings_and_crashes_bucket_directly() {
        let labels = vec!["x".to_string(), "y".to_string()];
        let raw = vec![
            (
                0,
                1,
                report_with(vec![
                    logic(DivergenceSide::Left),
                    logic(DivergenceSide::Right),
                    crash(),
                ]),
            ),
            // A symmetric two-sided tie stays in the `both` bucket.
            (1, 0, report_with(vec![logic(DivergenceSide::Both)])),
        ];
        let report = merge_cells(0, labels, raw);
        assert_eq!(report.cells[0].buckets.left, 1);
        assert_eq!(report.cells[0].buckets.right, 1);
        assert_eq!(report.cells[0].buckets.crash, 1);
        assert_eq!(report.cells[0].buckets.total(), 3);
        assert_eq!(report.cells[1].buckets.both, 1);
    }

    #[test]
    fn artifacts_round_trip_and_reject_malformed_input() {
        let labels = vec!["in-process".to_string(), "a label with spaces".to_string()];
        let raw = vec![
            (0, 1, report_with(vec![logic(DivergenceSide::Left)])),
            (1, 0, report_with(Vec::new())),
        ];
        let report = merge_cells(42, labels, raw);
        let encoded = report.encode();
        assert_eq!(MatrixReport::decode(&encoded), Ok(report.clone()));
        // Deterministic: re-encoding the decoded report is the identity.
        assert_eq!(MatrixReport::decode(&encoded).unwrap().encode(), encoded);

        assert_eq!(
            MatrixReport::decode("not-an-artifact\n"),
            Err(MatrixError::MissingHeader)
        );
        assert_eq!(
            MatrixReport::decode("spatter-matrix 99 seed 0 backends 0 cells 0\ninvolvement\nend\n"),
            Err(MatrixError::VersionMismatch {
                ours: 1,
                theirs: 99
            })
        );
        // Truncation after the header is structured, not a panic.
        let header_only: String = encoded.lines().take(1).map(|l| format!("{l}\n")).collect();
        assert_eq!(
            MatrixReport::decode(&header_only),
            Err(MatrixError::Truncated)
        );
        // Trailing garbage is rejected.
        assert!(matches!(
            MatrixReport::decode(&format!("{encoded}surprise\n")),
            Err(MatrixError::Malformed { .. })
        ));
        // A corrupted bucket count is a structured error naming the line.
        let corrupted = encoded.replace("left 1", "left eel");
        assert!(matches!(
            MatrixReport::decode(&corrupted),
            Err(MatrixError::Malformed {
                expected: "left bucket",
                ..
            })
        ));
    }
}
