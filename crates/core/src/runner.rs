//! The sharded, multi-worker campaign runner.
//!
//! The paper's testing campaigns are throughput-bound (§5.1, Figure 7):
//! Spatter finds bugs by running as many AEI iterations as the wall clock
//! allows. Iterations are mutually independent — each one generates its own
//! database, queries and transformation plan from a per-iteration sub-seed —
//! so the runner partitions them across `n_workers` OS threads, each worker
//! owning its own [`spatter_sdb::Engine`] instances, and merges the
//! per-worker [`ShardReport`]s into one [`CampaignReport`] afterwards.
//!
//! # Determinism
//!
//! Every iteration derives its generator, query and transform seeds from
//! [`crate::rng::split_seed`]`(config.seed, iteration)` — a pure function of
//! the campaign seed and the iteration index. Which worker executes an
//! iteration therefore never affects what that iteration does, and the merge
//! step orders iteration records by index, so the findings, their
//! attribution and the unique-fault set of a report are identical for any
//! worker count (asserted by `identical_findings_for_any_worker_count`
//! below). Only wall-clock fields (`elapsed`, timelines, timing totals)
//! depend on scheduling.
//!
//! # Coverage guidance
//!
//! With [`GuidanceMode::ColdProbe`] the first [`GUIDANCE_WARMUP`] iterations
//! run unguided on the coordinating thread; their probe deltas — measured
//! thread-locally, so concurrent activity elsewhere in the process cannot
//! leak in — are frozen into one [`CoverageSnapshot`], and every remaining
//! iteration derives its generation bias (editing functions, template
//! families, scenario knobs) purely from that snapshot plus its own
//! sub-seed. Guidance never reads the live counters, which is what keeps
//! guided findings byte-identical at any worker count: the snapshot is fixed
//! before the workers start, and everything after it is a pure function of
//! `(snapshot, config.seed, iteration)`.
//!
//! With [`CampaignConfig::guidance_epoch`] the snapshot is additionally
//! *refreshed* every E iterations behind a barrier: each window's records
//! are absorbed in iteration-index order before the next window starts, so
//! the guidance of every iteration is still a pure function of the seed —
//! and the distributed supervisor ([`crate::dist`]) reproduces the same
//! barrier over the wire, byte-identically.

use crate::backend::{BackendSpec, EngineBackend};
use crate::campaign::{check_mutated_aei_query, run_aei_iteration_with_mutations};
use crate::campaign::{
    run_aei_iteration_with_knobs, CampaignConfig, CampaignReport, Finding, FindingKind,
};
use crate::generator::GeometryGenerator;
use crate::guidance::{self, Guidance, GuidanceMode, ScenarioKnobs};
use crate::mutation::MutationScript;
use crate::oracles::{
    AeiOracle, DifferentialOracle, IndexOracle, Oracle, OracleOutcome, TlpOracle,
};
use crate::queries::{random_queries_weighted, QueryInstance};
use crate::replay::{ReplayFrame, ReplayHasher, ReplaySink};
use crate::rng::split_seed;
use crate::spec::DatabaseSpec;
use crate::transform::TransformPlan;
use spatter_sdb::{EngineProfile, FaultId};
use spatter_topo::coverage::{self, local, CoverageSnapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of unguided warm-up iterations a [`GuidanceMode::ColdProbe`]
/// campaign runs to build its frozen coverage snapshot. Deliberately small:
/// a couple of default scenarios warm every common probe, leaving exactly
/// the rarely-reached paths (index scans, crash paths, exotic editing
/// functions) cold for guidance to steer towards.
pub const GUIDANCE_WARMUP: usize = 2;

/// The oracles a campaign can run per iteration, in addition to — or instead
/// of — the paper's AEI oracle (Table 4's compared methodologies).
///
/// Plain data (backends appear as [`BackendSpec`]s, never as live trait
/// objects), so a campaign's oracle suite can travel in its
/// [`CampaignConfig`] — including over the distributed subsystem's wire
/// protocol ([`crate::dist::wire`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleKind {
    /// Affine Equivalent Inputs (the paper's contribution; the default).
    Aei,
    /// Differential testing against a stock engine of another profile.
    Differential(EngineProfile),
    /// Differential testing against an explicit backend twin (e.g. the
    /// stdio-driven server twin of the engine under test — the transport
    /// smoke-test preset of
    /// [`CampaignConfig::differential_stdio_pair`]).
    DifferentialTwin(BackendSpec),
    /// Sequential scan vs index scan on the same engine.
    Index,
    /// Ternary Logic Partitioning over the join-count template.
    Tlp,
}

impl OracleKind {
    /// Display name used when labelling findings of non-AEI oracles.
    fn name(&self) -> &'static str {
        match self {
            OracleKind::Aei => "AEI",
            OracleKind::Differential(_) | OracleKind::DifferentialTwin(_) => "Differential",
            OracleKind::Index => "Index",
            OracleKind::Tlp => "TLP",
        }
    }
}

/// Everything one iteration produced. Wall-clock fields are measured on the
/// executing worker; all other fields are pure functions of the sub-seed.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// The iteration index within the campaign.
    pub iteration: usize,
    /// Findings of this iteration, in oracle-suite then query order.
    pub findings: Vec<Finding>,
    /// Time spent generating the database, queries and plan.
    pub generation_time: Duration,
    /// Time spent executing statements inside engines.
    pub engine_time: Duration,
    /// `(elapsed, topo fraction, engine fraction)` coverage snapshot taken
    /// when the iteration finished.
    pub coverage: (Duration, f64, f64),
    /// Query checks skipped because a distance-parameterised template met a
    /// non-similarity transformation (§7).
    pub skipped: usize,
    /// The universe probes this iteration hit, with counts — measured by the
    /// thread-local recorder around exactly this iteration's work (scenario
    /// execution, oracle suite, attribution re-runs), sorted by probe name.
    /// A pure function of the iteration's sub-seed, so it is identical no
    /// matter which worker ran the iteration.
    pub probe_delta: Vec<(&'static str, u64)>,
    /// The iteration's replay frame: the four per-iteration state hashes
    /// ([`crate::replay`]), computed on the executing thread. Like
    /// `probe_delta`, a pure function of the sub-seed — distributed workers
    /// ship it verbatim, so replay artifacts are byte-identical across fleet
    /// shapes by construction.
    pub replay: ReplayFrame,
}

/// The generated inputs of one iteration, before anything executes: the
/// scenario knobs, database spec, query set and transformation plan —
/// a pure function of `(config.seed, iteration)` and the guidance.
/// Produced by [`CampaignRunner::build_scenario`].
pub struct ScenarioParts {
    /// The iteration's sub-seed, `split_seed(config.seed, iteration)`.
    pub sub_seed: u64,
    /// The scenario knobs (guided campaigns draw them from the snapshot).
    pub knobs: ScenarioKnobs,
    /// The generated database.
    pub spec: DatabaseSpec,
    /// The instantiated query set.
    pub queries: Vec<QueryInstance>,
    /// The affine transformation plan.
    pub plan: TransformPlan,
    /// The iteration's mutation script (`None` for load-once campaigns) —
    /// like everything else here, a pure function of the sub-seed.
    pub script: Option<MutationScript>,
    /// Wall time spent generating (scheduling-dependent; everything else
    /// here is deterministic).
    pub generation_time: Duration,
}

/// The mergeable per-worker slice of a campaign: the iteration records one
/// worker executed, in execution order.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Records of the iterations this shard ran.
    pub records: Vec<IterationRecord>,
}

impl ShardReport {
    /// The probes this shard's iterations covered (union over its records).
    /// A sorted set, so merging shard coverages is order-independent.
    pub fn probe_coverage(&self) -> std::collections::BTreeSet<&'static str> {
        self.records
            .iter()
            .flat_map(|r| r.probe_delta.iter())
            .filter(|(_, count)| *count > 0)
            .map(|(name, _)| *name)
            .collect()
    }

    /// Merges shard reports into an aggregate report. Records are ordered by
    /// iteration index first, so the merged findings and unique-fault
    /// attribution are independent of how iterations were scheduled. The two
    /// timelines are then re-sorted along their wall-clock axis: with
    /// multiple workers, iteration order and completion-time order diverge
    /// (worker A can finish iteration 10 before worker B finishes iteration
    /// 2), and a bugs-over-time curve must not run backwards in time.
    pub fn merge(shards: Vec<ShardReport>, total_time: Duration) -> CampaignReport {
        let mut report = CampaignReport {
            total_time,
            ..CampaignReport::default()
        };
        // Per-shard coverage deltas merge first (a union of sorted sets, so
        // shard order cannot matter), then the records flatten for the
        // order-sensitive finding/timeline merge.
        for shard in &shards {
            report.probe_coverage.extend(shard.probe_coverage());
        }
        let mut records: Vec<IterationRecord> =
            shards.into_iter().flat_map(|s| s.records).collect();
        records.sort_by_key(|r| r.iteration);
        let mut new_fault_times = Vec::new();
        for record in records {
            report.generation_time += record.generation_time;
            report.engine_time += record.engine_time;
            report.skipped_queries += record.skipped;
            for finding in record.findings {
                for fault in &finding.attributed_faults {
                    if report.unique_faults.insert(*fault) {
                        new_fault_times.push(finding.elapsed);
                    }
                }
                report.findings.push(finding);
            }
            report.coverage_timeline.push(record.coverage);
            report.iterations_run += 1;
        }
        new_fault_times.sort_unstable();
        report.unique_bug_timeline = new_fault_times
            .into_iter()
            .enumerate()
            .map(|(i, elapsed)| (elapsed, i + 1))
            .collect();
        report
            .coverage_timeline
            .sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        report
    }
}

/// The sharded campaign runner. [`crate::campaign::Campaign`] is the
/// single-worker facade over this type.
pub struct CampaignRunner {
    config: CampaignConfig,
    n_workers: usize,
    replay_sink: Option<Arc<dyn ReplaySink>>,
}

impl CampaignRunner {
    /// Creates a runner with one worker. The oracle suite comes from the
    /// configuration ([`CampaignConfig::oracles`], AEI by default).
    pub fn new(config: CampaignConfig) -> Self {
        assert!(!config.oracles.is_empty(), "oracle suite cannot be empty");
        CampaignRunner {
            config,
            n_workers: 1,
            replay_sink: None,
        }
    }

    /// Sets the number of worker threads (clamped to at least 1).
    pub fn with_workers(mut self, n_workers: usize) -> Self {
        self.n_workers = n_workers.max(1);
        self
    }

    /// Attaches a replay sink: every executed iteration delivers its
    /// [`ReplayFrame`] to it, from whichever worker thread ran it. The sink
    /// only *observes* frames that are computed regardless, so attaching
    /// one can never perturb the campaign's results.
    pub fn with_replay_sink(mut self, sink: Arc<dyn ReplaySink>) -> Self {
        self.replay_sink = Some(sink);
        self
    }

    /// Replaces the oracle suite run on every iteration (a convenience for
    /// writing into [`CampaignConfig::oracles`]).
    pub fn with_oracles(mut self, oracles: Vec<OracleKind>) -> Self {
        assert!(!oracles.is_empty(), "oracle suite cannot be empty");
        self.config.oracles = oracles;
        self
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The configured worker count.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Runs the campaign and merges the shards into an aggregate report.
    pub fn run(&self) -> CampaignReport {
        let start = Instant::now();
        let (warmup, snapshot) = self.warmup_phase(start);
        let first_iteration = warmup.records.len();
        let mut shards = match (snapshot, self.config.guidance_epoch) {
            (Some(snapshot), Some(epoch_len)) if epoch_len > 0 => {
                self.run_epochs(start, first_iteration, snapshot, epoch_len)
            }
            (snapshot, _) => {
                let guidance = snapshot.as_ref().map(Guidance::from_snapshot);
                self.run_sharded(
                    start,
                    first_iteration,
                    self.config.iterations,
                    guidance.as_ref(),
                )
            }
        };
        shards.push(warmup);
        ShardReport::merge(shards, start.elapsed())
    }

    /// The epoch-barrier loop of a guided campaign with
    /// [`CampaignConfig::guidance_epoch`]: each window of `epoch_len`
    /// iterations runs under guidance rebuilt from the cumulative snapshot
    /// of everything before it, then the window's probe deltas are absorbed
    /// in iteration-index order behind the barrier. The distributed
    /// supervisor replays exactly this loop over the wire, so epoch
    /// campaigns merge byte-identically at any fleet shape.
    fn run_epochs(
        &self,
        start: Instant,
        first_iteration: usize,
        mut snapshot: CoverageSnapshot,
        epoch_len: usize,
    ) -> Vec<ShardReport> {
        let mut shards = Vec::new();
        let mut base = first_iteration;
        while base < self.config.iterations {
            if let Some(budget) = self.config.time_budget {
                if start.elapsed() >= budget {
                    break;
                }
            }
            let end = self.config.iterations.min(base + epoch_len);
            let guidance = Guidance::from_snapshot(&snapshot);
            let mut window = self.run_sharded(start, base, end, Some(&guidance));
            let mut records: Vec<&IterationRecord> =
                window.iter().flat_map(|s| s.records.iter()).collect();
            records.sort_by_key(|r| r.iteration);
            for record in records {
                snapshot.absorb(&record.probe_delta);
            }
            shards.append(&mut window);
            base = end;
        }
        shards
    }

    /// The guidance warm-up: with [`GuidanceMode::ColdProbe`], runs the
    /// first [`GUIDANCE_WARMUP`] iterations unguided on the calling thread
    /// and freezes their thread-locally-recorded probe deltas into the
    /// campaign's coverage snapshot. Runs nothing (and produces no snapshot)
    /// in [`GuidanceMode::Off`]. The raw snapshot — rather than the
    /// [`Guidance`] built from it — is returned so the distributed
    /// supervisor ([`crate::dist`]) can ship it to worker processes, which
    /// rebuild the identical guidance on their side.
    pub(crate) fn warmup_phase(&self, start: Instant) -> (ShardReport, Option<CoverageSnapshot>) {
        let mut shard = ShardReport::default();
        if self.config.guidance == GuidanceMode::Off {
            return (shard, None);
        }
        let mut snapshot = CoverageSnapshot::new();
        for iteration in 0..GUIDANCE_WARMUP.min(self.config.iterations) {
            if let Some(budget) = self.config.time_budget {
                if start.elapsed() >= budget {
                    break;
                }
            }
            let record = self.run_iteration(iteration, start, None);
            snapshot.absorb(&record.probe_delta);
            shard.records.push(record);
        }
        (shard, Some(snapshot))
    }

    /// Runs the iteration range `[first_iteration, end)`, returning the raw
    /// per-worker shard reports.
    fn run_sharded(
        &self,
        start: Instant,
        first_iteration: usize,
        end: usize,
        guidance: Option<&Guidance>,
    ) -> Vec<ShardReport> {
        let next_iteration = AtomicUsize::new(first_iteration);

        if self.n_workers == 1 {
            return vec![self.worker(start, &next_iteration, end, guidance)];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.n_workers)
                .map(|_| scope.spawn(|| self.worker(start, &next_iteration, end, guidance)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        })
    }

    /// One worker: claims iteration indices from the shared counter until
    /// the range is exhausted or the time budget is spent.
    fn worker(
        &self,
        start: Instant,
        next_iteration: &AtomicUsize,
        end: usize,
        guidance: Option<&Guidance>,
    ) -> ShardReport {
        let mut shard = ShardReport::default();
        loop {
            if let Some(budget) = self.config.time_budget {
                if start.elapsed() >= budget {
                    break;
                }
            }
            let iteration = next_iteration.fetch_add(1, Ordering::Relaxed);
            if iteration >= end {
                break;
            }
            shard
                .records
                .push(self.run_iteration(iteration, start, guidance));
        }
        shard
    }

    /// Executes one iteration end to end: generation (optionally biased by
    /// the frozen guidance), the oracle suite, and attribution of every
    /// flagged query. The whole iteration runs on the calling thread, so the
    /// thread-local probe recorder measures exactly its delta. Crate-visible
    /// so the distributed worker ([`crate::dist::worker`]) executes leased
    /// iterations through exactly this code path.
    pub(crate) fn run_iteration(
        &self,
        iteration: usize,
        start: Instant,
        guidance: Option<&Guidance>,
    ) -> IterationRecord {
        let backend = self.config.backend.as_ref();
        local::start();
        let ScenarioParts {
            sub_seed,
            knobs,
            spec,
            queries,
            plan,
            script,
            generation_time,
        } = self.build_scenario(iteration, guidance);

        // The setup layer of the replay frame: the scenario exactly as the
        // engines will see it — setup SQL, the plan's bit-exact coefficients,
        // and every query's SQL. Hashing the *inputs* (rather than the
        // transformed database, which is a pure function of them) keeps
        // recording off the iteration's hot path.
        let mut setup_hasher = ReplayHasher::new();
        for statement in knobs.setup_sql(&spec) {
            setup_hasher.write_str(&statement);
        }
        setup_hasher.write_u64(u64::from(plan.canonicalize));
        let matrix = plan.transform.matrix();
        for coefficient in [matrix.a, matrix.b, matrix.c, matrix.d, matrix.tx, matrix.ty] {
            setup_hasher.write_f64(coefficient);
        }
        match plan.uniform_scale {
            None => setup_hasher.write_u64(0),
            Some(scale) => {
                setup_hasher.write_u64(1);
                setup_hasher.write_f64(scale);
            }
        }
        for query in &queries {
            setup_hasher.write_str(&query.to_sql());
        }
        // The mutation schedule folds in after the historical block, and an
        // absent-or-empty script contributes nothing: load-once campaigns
        // keep their pre-mutation setup hashes byte for byte.
        if let Some(script) = &script {
            for (query_index, statement) in script.schedule() {
                setup_hasher.write_usize(query_index);
                setup_hasher.write_str(&statement.sql1());
            }
        }

        // --- Execution + validation --------------------------------------
        let mut engine_time = Duration::ZERO;
        let mut findings = Vec::new();
        let mut skipped = 0;
        let mut outcome_hasher = ReplayHasher::new();
        // One hasher per query index, fed the same (oracle, outcome,
        // attribution) stream as the iteration-wide outcome hasher: the
        // finished digests let a replay bisection name the *query* whose
        // outcome diverged, not just the iteration.
        let mut query_hashers: Vec<ReplayHasher> =
            queries.iter().map(|_| ReplayHasher::new()).collect();
        for (oracle_index, kind) in self.config.oracles.iter().enumerate() {
            let (outcomes, oracle_time) =
                self.run_oracle(kind, &spec, &queries, &plan, &knobs, script.as_ref());
            engine_time += oracle_time;
            for (query_index, (_query, outcome)) in queries.iter().zip(outcomes.iter()).enumerate()
            {
                outcome_hasher.write_usize(oracle_index);
                outcome_hasher.write_usize(query_index);
                outcome.absorb_into(&mut outcome_hasher);
                query_hashers[query_index].write_usize(oracle_index);
                outcome.absorb_into(&mut query_hashers[query_index]);
                let finding_kind = match outcome {
                    OracleOutcome::LogicBug { .. } => FindingKind::Logic,
                    OracleOutcome::Crash { .. } => FindingKind::Crash,
                    OracleOutcome::Skipped => {
                        skipped += 1;
                        continue;
                    }
                    _ => continue,
                };
                let (description, side) = match outcome {
                    OracleOutcome::LogicBug { description, side } => (description.clone(), *side),
                    OracleOutcome::Crash { message, side } => (message.clone(), *side),
                    _ => unreachable!("filtered above"),
                };
                // AEI findings keep their historical unprefixed descriptions;
                // suite findings say which oracle produced them.
                let description = match kind {
                    OracleKind::Aei => description,
                    other => format!("[{}] {description}", other.name()),
                };
                let attributed = if self.config.attribute_findings {
                    attribute(
                        kind,
                        backend,
                        &spec,
                        &queries,
                        query_index,
                        &plan,
                        finding_kind,
                        &knobs,
                        script.as_ref(),
                    )
                } else {
                    Vec::new()
                };
                outcome_hasher.write_usize(attributed.len());
                query_hashers[query_index].write_usize(attributed.len());
                for fault in &attributed {
                    outcome_hasher.write_str(&fault.name());
                    query_hashers[query_index].write_str(&fault.name());
                }
                findings.push(Finding {
                    kind: finding_kind,
                    side,
                    description,
                    iteration,
                    elapsed: start.elapsed(),
                    attributed_faults: attributed,
                });
            }
        }

        let probe_delta: Vec<(&'static str, u64)> = local::take()
            .into_iter()
            .filter(|(name, _)| guidance::is_universe_probe(name))
            .collect();
        let mut probe_hasher = ReplayHasher::new();
        for (name, count) in &probe_delta {
            probe_hasher.write_str(name);
            probe_hasher.write_u64(*count);
        }
        let replay = ReplayFrame {
            iteration,
            sub_seed,
            setup_hash: setup_hasher.finish(),
            outcome_hash: outcome_hasher.finish(),
            probe_hash: probe_hasher.finish(),
            query_digests: query_hashers.into_iter().map(|h| h.finish()).collect(),
        };
        if let Some(sink) = &self.replay_sink {
            sink.record_frame(&replay);
        }
        let (topo_hit, topo_total, _) = coverage::topo_coverage();
        let (sdb_hit, sdb_total, _) = spatter_sdb::coverage::sdb_coverage();
        IterationRecord {
            iteration,
            findings,
            generation_time,
            engine_time,
            coverage: (
                start.elapsed(),
                topo_hit as f64 / topo_total as f64,
                sdb_hit as f64 / sdb_total as f64,
            ),
            skipped,
            probe_delta,
            replay,
        }
    }

    /// Generates one iteration's scenario — knobs, database, queries and
    /// transformation plan — exactly as [`CampaignRunner::run_iteration`]
    /// does, without executing anything. A pure function of
    /// `(config.seed, iteration)` and the guidance, reusing the runner's
    /// exact RNG streams; the replay tooling uses it to rebuild the inputs
    /// of a recorded iteration for reduction.
    pub fn build_scenario(&self, iteration: usize, guidance: Option<&Guidance>) -> ScenarioParts {
        let sub_seed = split_seed(self.config.seed, iteration as u64);
        let generation_start = Instant::now();
        // Guided iterations draw their scenario knobs first (a pure function
        // of the snapshot and this iteration's sub-seed), then let the knobs
        // and biases steer generation; unguided iterations take exactly the
        // historical path.
        let knobs = match guidance {
            Some(g) => g.pick_knobs(sub_seed),
            None => ScenarioKnobs::baseline(),
        };
        let mut generator_config = self.config.generator.clone();
        knobs.apply_generator(&mut generator_config);
        let mut generator = GeometryGenerator::new(generator_config.clone(), sub_seed);
        if let Some(g) = guidance {
            generator = generator.with_edit_bias(g.edit_bias());
        }
        let spec = generator.generate_database();
        let weights = match guidance {
            Some(g) => g.template_weights(),
            None => crate::guidance::TemplateWeights::baseline(),
        };
        let queries = random_queries_weighted(
            &spec,
            self.config.backend.profile(),
            self.config.queries_per_run,
            sub_seed ^ 0x5eed,
            &weights,
        );
        let plan = TransformPlan::random(self.config.affine, sub_seed ^ 0xaff1e);
        // The mutation stream is independent of every other stream, so
        // enabling mutations never perturbs the generated database, queries
        // or plan of an iteration.
        let script = self.config.mutations.as_ref().map(|mutation_config| {
            MutationScript::generate(
                &spec,
                queries.len(),
                &plan,
                &generator_config,
                mutation_config,
                sub_seed ^ 0xed17,
            )
        });
        ScenarioParts {
            sub_seed,
            knobs,
            spec,
            queries,
            plan,
            script,
            generation_time: generation_start.elapsed(),
        }
    }

    /// Runs one oracle of the suite over the scenario, returning outcomes
    /// plus the time spent in engines. The AEI path reports exact in-engine
    /// time; the baseline oracles report the wall time of their check. The
    /// scenario knobs apply to the AEI path only — the baseline oracles
    /// define their own scan configurations (the Index oracle *is* an
    /// index-on/off comparison).
    fn run_oracle(
        &self,
        kind: &OracleKind,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
        plan: &TransformPlan,
        knobs: &ScenarioKnobs,
        script: Option<&MutationScript>,
    ) -> (Vec<OracleOutcome>, Duration) {
        let backend = self.config.backend.as_ref();
        match (kind, script) {
            (OracleKind::Aei, Some(script)) => {
                run_aei_iteration_with_mutations(backend, spec, queries, plan, knobs, script)
            }
            (OracleKind::Aei, None) => {
                run_aei_iteration_with_knobs(backend, spec, queries, plan, knobs)
            }
            // The baseline oracles define their own scan configurations and
            // check the load-once database; the mutation workload is an AEI
            // concern (the frames must stay equivalent statement by
            // statement, which only the AEI path maintains).
            (other, _) => {
                let oracle = build_oracle(other, plan, knobs);
                let check_start = Instant::now();
                let outcomes = oracle.check(backend, spec, queries);
                (outcomes, check_start.elapsed())
            }
        }
    }
}

/// Instantiates the oracle for a suite entry. The AEI oracle is bound to the
/// iteration's transformation plan and scenario knobs (so attribution
/// re-runs replay the exact scenario); the baselines are stateless.
fn build_oracle(kind: &OracleKind, plan: &TransformPlan, knobs: &ScenarioKnobs) -> Box<dyn Oracle> {
    match kind {
        OracleKind::Aei => Box::new(AeiOracle::new(plan.clone()).with_knobs(knobs.clone())),
        OracleKind::Differential(profile) => Box::new(DifferentialOracle::against_stock(*profile)),
        OracleKind::DifferentialTwin(spec) => {
            Box::new(DifferentialOracle::against(spec.build_boxed()))
        }
        OracleKind::Index => Box::new(IndexOracle),
        OracleKind::Tlp => Box::new(TlpOracle),
    }
}

/// Attributes a finding to the seeded fault(s) whose individual removal makes
/// it disappear — the campaign's stand-in for the paper's fix-based
/// deduplication ("we determined whether the bug was fixed by updating
/// PostGIS and GEOS to their latest versions", §5.4). The finding is
/// re-checked with the oracle that produced it, against the backend's
/// `without_fault` variants; backends with no known fault set (e.g. real
/// engines) report nothing, which leaves the finding unattributed. AEI
/// findings of a mutation campaign replay the full mutation prefix up to the
/// flagged query, so the re-run observes the same evolved database state.
#[allow(clippy::too_many_arguments)]
fn attribute(
    oracle_kind: &OracleKind,
    backend: &dyn EngineBackend,
    spec: &DatabaseSpec,
    queries: &[QueryInstance],
    query_index: usize,
    plan: &TransformPlan,
    kind: FindingKind,
    knobs: &ScenarioKnobs,
    script: Option<&MutationScript>,
) -> Vec<FaultId> {
    let still_fails = |outcome: &OracleOutcome| match kind {
        FindingKind::Logic => outcome.is_logic_bug(),
        FindingKind::Crash => outcome.is_crash(),
    };
    let mut attributed = Vec::new();
    if let (OracleKind::Aei, Some(script)) = (oracle_kind, script) {
        for fault in backend.fault_ids() {
            let reduced = backend.without_fault(fault);
            let outcome = check_mutated_aei_query(
                reduced.as_ref(),
                spec,
                queries,
                plan,
                knobs,
                script,
                query_index,
            );
            if !still_fails(&outcome) {
                attributed.push(fault);
            }
        }
        return attributed;
    }
    let oracle = build_oracle(oracle_kind, plan, knobs);
    let single = std::slice::from_ref(&queries[query_index]);
    for fault in backend.fault_ids() {
        let reduced = backend.without_fault(fault);
        let outcomes = oracle.check(reduced.as_ref(), spec, single);
        if !outcomes.iter().any(still_fails) {
            attributed.push(fault);
        }
    }
    attributed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GenerationStrategy, GeneratorConfig};
    use crate::transform::AffineStrategy;

    fn config(seed: u64, iterations: usize) -> CampaignConfig {
        CampaignConfig {
            generator: GeneratorConfig {
                num_geometries: 8,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 30,
                random_shape_probability: 0.5,
            },
            queries_per_run: 10,
            affine: AffineStrategy::GeneralInteger,
            iterations,
            time_budget: None,
            attribute_findings: true,
            seed,
            ..CampaignConfig::stock(EngineProfile::PostgisLike)
        }
    }

    /// The seed-independent projection of a report that must be identical
    /// across worker counts.
    fn fingerprint(report: &CampaignReport) -> Vec<(FindingKind, String, usize, Vec<FaultId>)> {
        report
            .findings
            .iter()
            .map(|f| {
                (
                    f.kind,
                    f.description.clone(),
                    f.iteration,
                    f.attributed_faults.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn identical_findings_for_any_worker_count() {
        let baseline = CampaignRunner::new(config(3, 12)).run();
        assert!(
            !baseline.findings.is_empty(),
            "seed 3 should produce findings on the stock engine"
        );
        for n_workers in [2, 4] {
            let parallel = CampaignRunner::new(config(3, 12))
                .with_workers(n_workers)
                .run();
            assert_eq!(parallel.iterations_run, baseline.iterations_run);
            assert_eq!(
                fingerprint(&parallel),
                fingerprint(&baseline),
                "{n_workers} workers"
            );
            assert_eq!(
                parallel.unique_faults, baseline.unique_faults,
                "{n_workers} workers"
            );
        }
    }

    #[test]
    fn epoch_guided_campaigns_are_identical_for_any_worker_count() {
        let epoch_config = |seed, iterations| {
            let mut cfg = config(seed, iterations);
            cfg.guidance = GuidanceMode::ColdProbe;
            cfg.guidance_epoch = Some(4);
            cfg
        };
        let baseline = CampaignRunner::new(epoch_config(3, 12)).run();
        assert_eq!(baseline.iterations_run, 12);
        for n_workers in [2, 4] {
            let parallel = CampaignRunner::new(epoch_config(3, 12))
                .with_workers(n_workers)
                .run();
            assert_eq!(
                fingerprint(&parallel),
                fingerprint(&baseline),
                "{n_workers} workers"
            );
            assert_eq!(parallel.unique_faults, baseline.unique_faults);
            assert_eq!(parallel.probe_coverage, baseline.probe_coverage);
        }
    }

    #[test]
    fn facade_and_runner_agree() {
        let via_campaign = crate::campaign::Campaign::new(config(7, 6)).run();
        let via_runner = CampaignRunner::new(config(7, 6)).run();
        assert_eq!(fingerprint(&via_campaign), fingerprint(&via_runner));
    }

    #[test]
    fn merge_orders_records_by_iteration() {
        let record = |iteration: usize| IterationRecord {
            iteration,
            findings: Vec::new(),
            generation_time: Duration::from_millis(1),
            engine_time: Duration::from_millis(2),
            coverage: (Duration::ZERO, 0.0, 0.0),
            skipped: 1,
            probe_delta: vec![("topo.predicate.intersects", iteration as u64)],
            replay: ReplayFrame {
                iteration,
                sub_seed: iteration as u64,
                setup_hash: 0,
                outcome_hash: 0,
                probe_hash: 0,
                query_digests: Vec::new(),
            },
        };
        let shards = vec![
            ShardReport {
                records: vec![record(3), record(0)],
            },
            ShardReport {
                records: vec![record(2), record(1)],
            },
        ];
        let report = ShardReport::merge(shards, Duration::from_secs(1));
        assert_eq!(report.iterations_run, 4);
        assert_eq!(report.generation_time, Duration::from_millis(4));
        assert_eq!(report.engine_time, Duration::from_millis(8));
        assert_eq!(report.coverage_timeline.len(), 4);
        assert_eq!(report.skipped_queries, 4);
        // Probe coverage is the union over records with non-zero counts
        // (iteration 0's zero-count delta contributes nothing).
        assert_eq!(report.probes_covered(), 1);
        assert!(report.probe_coverage.contains("topo.predicate.intersects"));
    }

    #[test]
    fn oracle_suite_runs_baselines_per_shard() {
        let mut cfg = config(11, 4);
        cfg.attribute_findings = false;
        let report = CampaignRunner::new(cfg)
            .with_workers(2)
            .with_oracles(vec![
                OracleKind::Aei,
                OracleKind::Index,
                OracleKind::Tlp,
                OracleKind::Differential(EngineProfile::MysqlLike),
            ])
            .run();
        assert_eq!(report.iterations_run, 4);
    }

    #[test]
    fn oracle_trait_objects_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Oracle>();
        assert_send_sync::<spatter_sdb::Engine>();
        assert_send_sync::<spatter_index::RTree<usize>>();
    }

    #[test]
    fn merged_timelines_are_monotonic_under_parallelism() {
        let report = CampaignRunner::new(config(3, 12)).with_workers(4).run();
        assert!(!report.unique_bug_timeline.is_empty());
        let counts: Vec<usize> = report.unique_bug_timeline.iter().map(|(_, c)| *c).collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        let times: Vec<Duration> = report.unique_bug_timeline.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let coverage_times: Vec<Duration> = report
            .coverage_timeline
            .iter()
            .map(|(t, _, _)| *t)
            .collect();
        assert!(coverage_times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn time_budget_is_honoured_across_workers() {
        let mut cfg = config(1, usize::MAX / 2);
        cfg.time_budget = Some(Duration::from_millis(60));
        cfg.attribute_findings = false;
        let report = CampaignRunner::new(cfg).with_workers(4).run();
        assert!(report.iterations_run > 0);
        assert!(report.iterations_run < usize::MAX / 2);
    }
}
