//! Query-template instantiation (Figure 5, §4.4).
//!
//! The template has three placeholders — two table names and one topological
//! relationship condition:
//!
//! ```sql
//! SELECT COUNT(*) FROM <table1> JOIN <table2> ON <TopoRlt>
//! ```
//!
//! Tables are picked at random from the generated database and the condition
//! is a named predicate drawn from the list the engine under test supports
//! (so `ST_Covers` is only generated for the PostGIS-like and DuckDB-like
//! profiles, reproducing the situations where differential testing is
//! inapplicable).

use crate::rng::seq::IndexedRandom;
use crate::rng::StdRng;
use crate::rng::{RngExt, SeedableRng};
use crate::spec::DatabaseSpec;
use spatter_sdb::EngineProfile;
use spatter_topo::predicates::NamedPredicate;

/// One instantiated query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryInstance {
    /// The left table name.
    pub table1: String,
    /// The right table name.
    pub table2: String,
    /// The topological relationship predicate.
    pub predicate: NamedPredicate,
}

impl QueryInstance {
    /// The SQL text of the count query.
    pub fn to_sql(&self) -> String {
        format!(
            "SELECT COUNT(*) FROM {} a JOIN {} b ON {}(a.g, b.g)",
            self.table1,
            self.table2,
            self.predicate.function_name()
        )
    }

    /// The TLP partitioning queries: the unconditioned cross product and the
    /// negated-predicate query. TLP expects
    /// `|t1 × t2| = COUNT(P) + COUNT(NOT P)` (NULL partitions cannot arise
    /// because geometry columns are non-null in the generated databases).
    pub fn tlp_partition_sql(&self) -> (String, String) {
        let total = format!(
            "SELECT COUNT(*) FROM {} a JOIN {} b ON ST_Intersects(a.g, b.g) OR NOT ST_Intersects(a.g, b.g)",
            self.table1, self.table2
        );
        let negated = format!(
            "SELECT COUNT(*) FROM {} a JOIN {} b ON NOT {}(a.g, b.g)",
            self.table1,
            self.table2,
            self.predicate.function_name()
        );
        (total, negated)
    }
}

/// The named predicates a profile exposes in its documentation (the
/// `<TopoRlt>` candidate list of §4.4).
pub fn supported_predicates(profile: EngineProfile) -> Vec<NamedPredicate> {
    NamedPredicate::ALL
        .into_iter()
        .filter(|p| profile.supports_function(p.function_name()))
        .collect()
}

/// Generates `count` random query instances over the tables of `spec`.
pub fn random_queries(
    spec: &DatabaseSpec,
    profile: EngineProfile,
    count: usize,
    seed: u64,
) -> Vec<QueryInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tables = spec.table_names();
    let predicates = supported_predicates(profile);
    if tables.is_empty() || predicates.is_empty() {
        return Vec::new();
    }
    (0..count)
        .map(|_| QueryInstance {
            table1: tables[rng.random_range(0..tables.len())].to_string(),
            table2: tables[rng.random_range(0..tables.len())].to_string(),
            predicate: *predicates.choose(&mut rng).expect("non-empty"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_text_matches_template() {
        let q = QueryInstance {
            table1: "t0".into(),
            table2: "t1".into(),
            predicate: NamedPredicate::Covers,
        };
        assert_eq!(
            q.to_sql(),
            "SELECT COUNT(*) FROM t0 a JOIN t1 b ON ST_Covers(a.g, b.g)"
        );
    }

    #[test]
    fn tlp_partitions_share_the_table_pair() {
        let q = QueryInstance {
            table1: "t0".into(),
            table2: "t1".into(),
            predicate: NamedPredicate::Intersects,
        };
        let (total, negated) = q.tlp_partition_sql();
        assert!(total.contains("FROM t0 a JOIN t1 b"));
        assert!(negated.contains("NOT ST_Intersects"));
    }

    #[test]
    fn supported_predicates_differ_per_profile() {
        let postgis = supported_predicates(EngineProfile::PostgisLike);
        let mysql = supported_predicates(EngineProfile::MysqlLike);
        assert!(postgis.contains(&NamedPredicate::Covers));
        assert!(!mysql.contains(&NamedPredicate::Covers));
        assert!(mysql.contains(&NamedPredicate::Crosses));
        assert_eq!(postgis.len(), 10);
        assert_eq!(mysql.len(), 8);
    }

    #[test]
    fn random_queries_only_reference_existing_tables() {
        let spec = DatabaseSpec::with_tables(3);
        let queries = random_queries(&spec, EngineProfile::PostgisLike, 50, 1);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert!(spec.table_names().contains(&q.table1.as_str()));
            assert!(spec.table_names().contains(&q.table2.as_str()));
        }
        // Deterministic per seed.
        assert_eq!(
            queries,
            random_queries(&spec, EngineProfile::PostgisLike, 50, 1)
        );
        assert_ne!(
            queries,
            random_queries(&spec, EngineProfile::PostgisLike, 50, 2)
        );
    }

    #[test]
    fn mysql_queries_never_use_postgis_only_functions() {
        let spec = DatabaseSpec::with_tables(2);
        let queries = random_queries(&spec, EngineProfile::MysqlLike, 100, 3);
        assert!(queries
            .iter()
            .all(|q| q.predicate != NamedPredicate::Covers
                && q.predicate != NamedPredicate::CoveredBy));
    }
}
