//! Query-template instantiation (Figure 5, §4.4 and the §7 extension).
//!
//! The original template has three placeholders — two table names and one
//! topological relationship condition:
//!
//! ```sql
//! SELECT COUNT(*) FROM <table1> JOIN <table2> ON <TopoRlt>
//! ```
//!
//! §7 extends AEI to *distance-parameterised* queries, which are only
//! equivalent under **similarity** transformations (rotation, translation,
//! uniform scaling — [`crate::transform::TransformPlan::scale_distance`]):
//!
//! * **range joins** — `ST_DWithin(a.g, b.g, d)` (and the PostGIS-only
//!   `ST_DFullyWithin`) keep their count when the distance literal is
//!   rewritten to `s·d`;
//! * **KNN queries** — `SELECT ... ORDER BY ST_Distance(a.g, origin) LIMIT k`
//!   keeps its result *set* when the origin is mapped through the same
//!   transformation, provided no two candidates tie at the k-th distance
//!   (§7's equal-distance caveat).
//!
//! Tables are picked at random from the generated database and conditions are
//! drawn from the function list the engine under test supports (so
//! `ST_Covers` and `ST_DFullyWithin` are only generated for the profiles that
//! document them, reproducing the situations where differential testing is
//! inapplicable).

use crate::guidance::{TemplateFamily, TemplateWeights};
use crate::rng::seq::IndexedRandom;
use crate::rng::StdRng;
use crate::rng::{RngExt, SeedableRng};
use crate::spec::DatabaseSpec;
use crate::transform::TransformPlan;
use spatter_geom::wkt::write_wkt;
use spatter_geom::{Geometry, Point};
use spatter_sdb::EngineProfile;
use spatter_topo::predicates::NamedPredicate;

/// The distance-parameterised range-join functions of §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeFunction {
    /// `ST_DWithin`: minimum distance does not exceed `d` (OGC core).
    DWithin,
    /// `ST_DFullyWithin`: maximum distance does not exceed `d`
    /// (PostGIS-only).
    DFullyWithin,
}

impl RangeFunction {
    /// The SQL function name.
    pub fn function_name(&self) -> &'static str {
        match self {
            RangeFunction::DWithin => "ST_DWithin",
            RangeFunction::DFullyWithin => "ST_DFullyWithin",
        }
    }
}

/// One of the template families a [`QueryInstance`] can instantiate.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryTemplate {
    /// The Figure 5 join-count template over a named topological predicate.
    TopoJoin {
        /// The topological relationship predicate.
        predicate: NamedPredicate,
    },
    /// A distance range join: `COUNT(*) ... ON <fn>(a.g, b.g, d)`.
    RangeJoin {
        /// Which range function conditions the join.
        function: RangeFunction,
        /// The distance literal `d`.
        distance: f64,
    },
    /// A k-nearest-neighbour query over `table1`:
    /// `SELECT ST_AsText(a.g) FROM t a ORDER BY ST_Distance(a.g, origin)
    /// LIMIT k`.
    Knn {
        /// The query origin geometry.
        origin: Geometry,
        /// The result-set size `k`.
        k: usize,
    },
}

impl QueryTemplate {
    /// The `ST_*` function the template revolves around (used for profile
    /// support checks and finding descriptions).
    pub fn function_name(&self) -> &'static str {
        match self {
            QueryTemplate::TopoJoin { predicate } => predicate.function_name(),
            QueryTemplate::RangeJoin { function, .. } => function.function_name(),
            QueryTemplate::Knn { .. } => "ST_Distance",
        }
    }

    /// Whether the template carries a distance parameter and is therefore
    /// only AEI-checkable under similarity transformations (§7).
    pub fn requires_similarity(&self) -> bool {
        !matches!(self, QueryTemplate::TopoJoin { .. })
    }

    /// Whether the query returns a single `COUNT(*)` value (`false` for KNN,
    /// which returns a row set).
    pub fn is_count(&self) -> bool {
        !matches!(self, QueryTemplate::Knn { .. })
    }
}

/// One instantiated query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryInstance {
    /// The left table name (the only table for KNN).
    pub table1: String,
    /// The right table name (equal to `table1` for KNN).
    pub table2: String,
    /// The instantiated template.
    pub template: QueryTemplate,
}

impl QueryInstance {
    /// A join-count query over a topological predicate.
    pub fn topo(
        table1: impl Into<String>,
        table2: impl Into<String>,
        predicate: NamedPredicate,
    ) -> Self {
        QueryInstance {
            table1: table1.into(),
            table2: table2.into(),
            template: QueryTemplate::TopoJoin { predicate },
        }
    }

    /// A distance range join.
    pub fn range(
        table1: impl Into<String>,
        table2: impl Into<String>,
        function: RangeFunction,
        distance: f64,
    ) -> Self {
        QueryInstance {
            table1: table1.into(),
            table2: table2.into(),
            template: QueryTemplate::RangeJoin { function, distance },
        }
    }

    /// A KNN query over a single table.
    pub fn knn(table: impl Into<String>, origin: Geometry, k: usize) -> Self {
        let table = table.into();
        QueryInstance {
            table2: table.clone(),
            table1: table,
            template: QueryTemplate::Knn { origin, k },
        }
    }

    /// The topological predicate, when the template is a topo join.
    pub fn predicate(&self) -> Option<NamedPredicate> {
        match &self.template {
            QueryTemplate::TopoJoin { predicate } => Some(*predicate),
            _ => None,
        }
    }

    /// The range-join SQL with an explicit distance literal (shared by the
    /// `SDB1` text and the rescaled `SDB2` text so the two can never drift).
    fn range_sql(&self, function: RangeFunction, distance: f64) -> String {
        format!(
            "SELECT COUNT(*) FROM {} a JOIN {} b ON {}(a.g, b.g, {})",
            self.table1,
            self.table2,
            function.function_name(),
            distance
        )
    }

    /// The KNN SQL with an explicit origin (shared by the `SDB1` text and
    /// the origin-mapped `SDB2` text).
    fn knn_sql(&self, origin: &Geometry, k: usize) -> String {
        format!(
            "SELECT ST_AsText(a.g) FROM {} a ORDER BY ST_Distance(a.g, '{}'::geometry) LIMIT {}",
            self.table1,
            write_wkt(origin),
            k
        )
    }

    /// The SQL text of the query against the original database `SDB1`.
    pub fn to_sql(&self) -> String {
        match &self.template {
            QueryTemplate::TopoJoin { predicate } => format!(
                "SELECT COUNT(*) FROM {} a JOIN {} b ON {}(a.g, b.g)",
                self.table1,
                self.table2,
                predicate.function_name()
            ),
            QueryTemplate::RangeJoin { function, distance } => self.range_sql(*function, *distance),
            QueryTemplate::Knn { origin, k } => self.knn_sql(origin, *k),
        }
    }

    /// The SQL text of the equivalent query against the transformed database
    /// `SDB2`: topological joins are transformation-independent, range joins
    /// rewrite the distance to `s·d`, and KNN queries map the origin through
    /// the plan. Returns `None` when the template is distance-parameterised
    /// and the plan is not a similarity (`scale_distance` is `None`), in
    /// which case the AEI property does not hold and the template must be
    /// skipped (§7).
    pub fn to_sql_transformed(&self, plan: &TransformPlan) -> Option<String> {
        match &self.template {
            QueryTemplate::TopoJoin { .. } => Some(self.to_sql()),
            QueryTemplate::RangeJoin { function, distance } => {
                let scaled = plan.scale_distance(*distance)?;
                Some(self.range_sql(*function, scaled))
            }
            QueryTemplate::Knn { origin, k } => {
                plan.scale_distance(1.0)?;
                Some(self.knn_sql(&plan.apply_geometry(origin), *k))
            }
        }
    }

    /// The TLP partitioning queries: the unconditioned cross product and the
    /// negated-condition query. TLP expects
    /// `|t1 × t2| = COUNT(P) + COUNT(NOT P)` (NULL partitions cannot arise
    /// because geometry columns are non-null in the generated databases).
    /// `None` for KNN queries, which have no boolean condition to partition.
    pub fn tlp_partition_sql(&self) -> Option<(String, String)> {
        let condition = match &self.template {
            QueryTemplate::TopoJoin { predicate } => {
                format!("{}(a.g, b.g)", predicate.function_name())
            }
            QueryTemplate::RangeJoin { function, distance } => {
                format!("{}(a.g, b.g, {})", function.function_name(), distance)
            }
            QueryTemplate::Knn { .. } => return None,
        };
        let total = format!(
            "SELECT COUNT(*) FROM {} a JOIN {} b ON ST_Intersects(a.g, b.g) OR NOT ST_Intersects(a.g, b.g)",
            self.table1, self.table2
        );
        let negated = format!(
            "SELECT COUNT(*) FROM {} a JOIN {} b ON NOT {}",
            self.table1, self.table2, condition
        );
        Some((total, negated))
    }
}

/// The named predicates a profile exposes in its documentation (the
/// `<TopoRlt>` candidate list of §4.4).
pub fn supported_predicates(profile: EngineProfile) -> Vec<NamedPredicate> {
    NamedPredicate::ALL
        .into_iter()
        .filter(|p| profile.supports_function(p.function_name()))
        .collect()
}

/// Generates `count` random query instances over the tables of `spec`,
/// biased across the three template families: topological joins stay the
/// bulk of the workload, with range joins and KNN queries drawn often enough
/// that every campaign exercises the §7 distance family.
///
/// Equivalent to [`random_queries_weighted`] with
/// [`TemplateWeights::baseline`] — the baseline weighted family draw
/// consumes the RNG exactly like the historical `random_range(0..10)` split
/// (six/two/two over a span of ten), so this keeps producing the
/// byte-identical pre-guidance query stream.
pub fn random_queries(
    spec: &DatabaseSpec,
    profile: EngineProfile,
    count: usize,
    seed: u64,
) -> Vec<QueryInstance> {
    random_queries_weighted(spec, profile, count, seed, &TemplateWeights::baseline())
}

/// [`random_queries`] with an explicit template-family weighting (the
/// coverage-guided campaign passes cold-probe-derived weights here). Per
/// query the draw order is fixed — `table1`, `table2`, the family, then the
/// family's own parameters — so two weightings differ only in how the single
/// family draw maps to a family, never in how the rest of the stream is
/// consumed.
pub fn random_queries_weighted(
    spec: &DatabaseSpec,
    profile: EngineProfile,
    count: usize,
    seed: u64,
    weights: &TemplateWeights,
) -> Vec<QueryInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tables = spec.table_names();
    let predicates = supported_predicates(profile);
    if tables.is_empty() || predicates.is_empty() {
        return Vec::new();
    }
    let dfully_supported = profile.supports_function("ST_DFullyWithin");
    (0..count)
        .map(|_| {
            let table1 = tables[rng.random_range(0..tables.len())].to_string();
            let table2 = tables[rng.random_range(0..tables.len())].to_string();
            match weights.choose(&mut rng) {
                // The Figure 5 topological join-count template.
                TemplateFamily::TopoJoin => QueryInstance {
                    table1,
                    table2,
                    template: QueryTemplate::TopoJoin {
                        predicate: *predicates.choose(&mut rng).expect("non-empty"),
                    },
                },
                // Distance range joins.
                TemplateFamily::RangeJoin => {
                    let function = if dfully_supported && rng.random_bool(0.5) {
                        RangeFunction::DFullyWithin
                    } else {
                        RangeFunction::DWithin
                    };
                    QueryInstance {
                        table1,
                        table2,
                        template: QueryTemplate::RangeJoin {
                            function,
                            distance: rng.random_range(1..=40i64) as f64,
                        },
                    }
                }
                // KNN queries with an integer origin (exact under the
                // integer similarity matrices of Algorithm 2).
                TemplateFamily::Knn => {
                    let x = rng.random_range(-50..=50i64) as f64;
                    let y = rng.random_range(-50..=50i64) as f64;
                    let k = rng.random_range(1..=4i64) as usize;
                    QueryInstance::knn(table1, Geometry::Point(Point::new(x, y)), k)
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::AffineStrategy;
    use spatter_geom::wkt::parse_wkt;

    #[test]
    fn sql_text_matches_topo_template() {
        let q = QueryInstance::topo("t0", "t1", NamedPredicate::Covers);
        assert_eq!(
            q.to_sql(),
            "SELECT COUNT(*) FROM t0 a JOIN t1 b ON ST_Covers(a.g, b.g)"
        );
        assert_eq!(q.predicate(), Some(NamedPredicate::Covers));
        assert!(!q.template.requires_similarity());
        assert!(q.template.is_count());
    }

    #[test]
    fn sql_text_matches_range_template() {
        let q = QueryInstance::range("t0", "t1", RangeFunction::DWithin, 7.0);
        assert_eq!(
            q.to_sql(),
            "SELECT COUNT(*) FROM t0 a JOIN t1 b ON ST_DWithin(a.g, b.g, 7)"
        );
        assert!(q.template.requires_similarity());
        assert!(q.template.is_count());
        assert_eq!(q.predicate(), None);
        let q = QueryInstance::range("t0", "t0", RangeFunction::DFullyWithin, 2.5);
        assert_eq!(
            q.to_sql(),
            "SELECT COUNT(*) FROM t0 a JOIN t0 b ON ST_DFullyWithin(a.g, b.g, 2.5)"
        );
    }

    #[test]
    fn sql_text_matches_knn_template() {
        let q = QueryInstance::knn("t1", parse_wkt("POINT(3 4)").unwrap(), 2);
        assert_eq!(
            q.to_sql(),
            "SELECT ST_AsText(a.g) FROM t1 a ORDER BY ST_Distance(a.g, 'POINT(3 4)'::geometry) LIMIT 2"
        );
        assert_eq!(q.table2, "t1");
        assert!(q.template.requires_similarity());
        assert!(!q.template.is_count());
        assert_eq!(q.template.function_name(), "ST_Distance");
    }

    #[test]
    fn transformed_sql_rewrites_distance_under_similarity() {
        let plan = TransformPlan::random(AffineStrategy::SimilarityInteger, 1);
        let scale = plan.uniform_scale.unwrap();
        let q = QueryInstance::range("t0", "t1", RangeFunction::DWithin, 10.0);
        let sql = q.to_sql_transformed(&plan).unwrap();
        assert!(sql.contains(&format!("ST_DWithin(a.g, b.g, {})", 10.0 * scale)));
        // Topological joins are transformation-independent.
        let q = QueryInstance::topo("t0", "t1", NamedPredicate::Within);
        assert_eq!(q.to_sql_transformed(&plan), Some(q.to_sql()));
    }

    #[test]
    fn transformed_sql_maps_the_knn_origin() {
        let plan = TransformPlan::random(AffineStrategy::SimilarityInteger, 5);
        let origin = parse_wkt("POINT(1 2)").unwrap();
        let q = QueryInstance::knn("t0", origin.clone(), 3);
        let sql = q.to_sql_transformed(&plan).unwrap();
        let mapped = write_wkt(&plan.apply_geometry(&origin));
        assert!(sql.contains(&mapped), "{sql} should contain {mapped}");
        assert!(sql.ends_with("LIMIT 3"));
    }

    #[test]
    fn distance_templates_are_skipped_under_non_similarity_plans() {
        let plan = TransformPlan::random(AffineStrategy::GeneralInteger, 0);
        assert_eq!(plan.uniform_scale, None);
        let range = QueryInstance::range("t0", "t1", RangeFunction::DWithin, 10.0);
        assert_eq!(range.to_sql_transformed(&plan), None);
        let knn = QueryInstance::knn("t0", parse_wkt("POINT(0 0)").unwrap(), 1);
        assert_eq!(knn.to_sql_transformed(&plan), None);
        // Topological joins still check.
        let topo = QueryInstance::topo("t0", "t1", NamedPredicate::Touches);
        assert!(topo.to_sql_transformed(&plan).is_some());
    }

    #[test]
    fn tlp_partitions_share_the_table_pair() {
        let q = QueryInstance::topo("t0", "t1", NamedPredicate::Intersects);
        let (total, negated) = q.tlp_partition_sql().unwrap();
        assert!(total.contains("FROM t0 a JOIN t1 b"));
        assert!(negated.contains("NOT ST_Intersects"));
        let q = QueryInstance::range("t0", "t1", RangeFunction::DWithin, 4.0);
        let (_, negated) = q.tlp_partition_sql().unwrap();
        assert!(negated.contains("NOT ST_DWithin(a.g, b.g, 4)"));
        // KNN has no boolean condition to partition.
        let q = QueryInstance::knn("t0", parse_wkt("POINT(0 0)").unwrap(), 1);
        assert!(q.tlp_partition_sql().is_none());
    }

    #[test]
    fn supported_predicates_differ_per_profile() {
        let postgis = supported_predicates(EngineProfile::PostgisLike);
        let mysql = supported_predicates(EngineProfile::MysqlLike);
        assert!(postgis.contains(&NamedPredicate::Covers));
        assert!(!mysql.contains(&NamedPredicate::Covers));
        assert!(mysql.contains(&NamedPredicate::Crosses));
        assert_eq!(postgis.len(), 10);
        assert_eq!(mysql.len(), 8);
    }

    #[test]
    fn random_queries_only_reference_existing_tables() {
        let spec = DatabaseSpec::with_tables(3);
        let queries = random_queries(&spec, EngineProfile::PostgisLike, 50, 1);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert!(spec.table_names().contains(&q.table1.as_str()));
            assert!(spec.table_names().contains(&q.table2.as_str()));
        }
        // Deterministic per seed.
        assert_eq!(
            queries,
            random_queries(&spec, EngineProfile::PostgisLike, 50, 1)
        );
        assert_ne!(
            queries,
            random_queries(&spec, EngineProfile::PostgisLike, 50, 2)
        );
    }

    #[test]
    fn random_queries_draw_every_template_family() {
        let spec = DatabaseSpec::with_tables(2);
        let queries = random_queries(&spec, EngineProfile::PostgisLike, 200, 9);
        let topo = queries
            .iter()
            .filter(|q| matches!(q.template, QueryTemplate::TopoJoin { .. }))
            .count();
        let range = queries
            .iter()
            .filter(|q| matches!(q.template, QueryTemplate::RangeJoin { .. }))
            .count();
        let knn = queries
            .iter()
            .filter(|q| matches!(q.template, QueryTemplate::Knn { .. }))
            .count();
        assert!(topo > range && topo > knn, "{topo}/{range}/{knn}");
        assert!(range > 10, "{range} range joins in 200 queries");
        assert!(knn > 10, "{knn} KNN queries in 200 queries");
        // The PostGIS-only range function appears for the PostGIS profile.
        assert!(queries.iter().any(|q| matches!(
            q.template,
            QueryTemplate::RangeJoin {
                function: RangeFunction::DFullyWithin,
                ..
            }
        )));
        // KNN origins are integer points and k stays small.
        for q in &queries {
            if let QueryTemplate::Knn { origin, k } = &q.template {
                assert!((1..=4).contains(k));
                assert!(matches!(origin, Geometry::Point(_)));
            }
        }
    }

    /// The pre-guidance `random_queries` body, inlined verbatim as a golden
    /// reference: the family pick is the historical `random_range(0..10u32)`
    /// with the `0..=5` / `6..=7` / `_` split. If `TemplateWeights::baseline`
    /// or its `choose` walk ever changes the RNG consumption, the
    /// byte-identity test below catches it against *this* copy, not against
    /// the refactored code under test.
    fn historical_random_queries(
        spec: &DatabaseSpec,
        profile: EngineProfile,
        count: usize,
        seed: u64,
    ) -> Vec<QueryInstance> {
        let mut rng = StdRng::seed_from_u64(seed);
        let tables = spec.table_names();
        let predicates = supported_predicates(profile);
        if tables.is_empty() || predicates.is_empty() {
            return Vec::new();
        }
        let dfully_supported = profile.supports_function("ST_DFullyWithin");
        (0..count)
            .map(|_| {
                let table1 = tables[rng.random_range(0..tables.len())].to_string();
                let table2 = tables[rng.random_range(0..tables.len())].to_string();
                match rng.random_range(0..10u32) {
                    0..=5 => QueryInstance {
                        table1,
                        table2,
                        template: QueryTemplate::TopoJoin {
                            predicate: *predicates.choose(&mut rng).expect("non-empty"),
                        },
                    },
                    6..=7 => {
                        let function = if dfully_supported && rng.random_bool(0.5) {
                            RangeFunction::DFullyWithin
                        } else {
                            RangeFunction::DWithin
                        };
                        QueryInstance {
                            table1,
                            table2,
                            template: QueryTemplate::RangeJoin {
                                function,
                                distance: rng.random_range(1..=40i64) as f64,
                            },
                        }
                    }
                    _ => {
                        let x = rng.random_range(-50..=50i64) as f64;
                        let y = rng.random_range(-50..=50i64) as f64;
                        let k = rng.random_range(1..=4i64) as usize;
                        QueryInstance::knn(table1, Geometry::Point(Point::new(x, y)), k)
                    }
                }
            })
            .collect()
    }

    #[test]
    fn baseline_weighted_queries_equal_the_historical_stream() {
        // The byte-identity contract of the refactor, pinned against an
        // inlined copy of the pre-guidance generator (not against the code
        // under test itself).
        let spec = DatabaseSpec::with_tables(3);
        for profile in [EngineProfile::PostgisLike, EngineProfile::MysqlLike] {
            for seed in [0u64, 1, 7, 42, 1234] {
                let expected = historical_random_queries(&spec, profile, 100, seed);
                assert_eq!(
                    random_queries(&spec, profile, 100, seed),
                    expected,
                    "{} seed {seed}",
                    profile.name()
                );
            }
        }
    }

    #[test]
    fn weighted_queries_shift_the_family_mix() {
        let spec = DatabaseSpec::with_tables(2);
        let knn_heavy = TemplateWeights {
            topo: 2,
            range: 2,
            knn: 16,
        };
        let queries =
            random_queries_weighted(&spec, EngineProfile::PostgisLike, 200, 9, &knn_heavy);
        let knn = queries
            .iter()
            .filter(|q| matches!(q.template, QueryTemplate::Knn { .. }))
            .count();
        assert!(knn > 120, "{knn} KNN queries under a KNN-heavy weighting");
        // Deterministic per (seed, weights).
        assert_eq!(
            queries,
            random_queries_weighted(&spec, EngineProfile::PostgisLike, 200, 9, &knn_heavy)
        );
    }

    #[test]
    fn profile_limited_functions_are_never_generated_for_other_profiles() {
        let spec = DatabaseSpec::with_tables(2);
        for profile in [
            EngineProfile::MysqlLike,
            EngineProfile::DuckdbSpatialLike,
            EngineProfile::SqlServerLike,
        ] {
            let queries = random_queries(&spec, profile, 200, 3);
            for q in &queries {
                assert!(
                    profile.supports_function(q.template.function_name()),
                    "{} generated for {}",
                    q.template.function_name(),
                    profile.name()
                );
            }
        }
    }
}
