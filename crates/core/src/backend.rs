//! The engine-execution abstraction the oracles run through.
//!
//! The paper's evaluation (§5) points the same oracles at several real
//! engines (PostGIS, MySQL GIS, DuckDB Spatial, SQL Server). Mirroring that,
//! every oracle and the campaign runner drive an [`EngineBackend`] — a
//! factory of [`EngineSession`]s — instead of constructing
//! [`spatter_sdb::Engine`] values directly. A session is opened once per
//! scenario and reused across the whole per-iteration query batch, so
//! parsing and catalog setup are amortized instead of re-created per query
//! (engine execution dominates campaign wall time, Figure 7).
//!
//! Two backends ship:
//!
//! * [`InProcessBackend`] wraps the in-process engine and is behaviour- and
//!   determinism-identical to calling it directly (findings, skip counts and
//!   attribution are byte-equal at any worker count). It also carries a
//!   bounded statement parse cache shared between its sessions, so the
//!   identical setup statements that every oracle (and every attribution
//!   re-run) loads are lexed and parsed once per scenario instead of once
//!   per engine instance.
//! * [`StdioBackend`] drives the `spatter-sdb-server` binary over
//!   line-delimited SQL, proving the trait supports engines that live in
//!   another process. When the server process dies mid-session (a *real*
//!   crash, not the simulated `ERR crash` reply), the session reports a
//!   [`BackendError::Transport`] failure for that query and transparently
//!   respawns the server — replaying its setup statements — before the next
//!   one, so a campaign shard survives an engine crash instead of losing the
//!   shard.
//!
//! Errors carry a three-way taxonomy ([`BackendError`]) that
//! [`crate::oracles::OracleOutcome`] maps from in exactly one place (its
//! `From<BackendError>` impl): crashes and transport failures are findings,
//! semantic errors make a query inapplicable.

use spatter_sdb::ast::Statement;
use spatter_sdb::parser::parse_statement;
use spatter_sdb::server::{read_ready, sanitize_line, Response};
use spatter_sdb::{Engine, EngineProfile, FaultId, FaultSet, SdbError};
use std::collections::HashMap;
use std::fmt;
use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a backend operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The engine crashed (a simulated crash fault, or — for out-of-process
    /// backends — an abnormal reply tagged as a crash).
    Crash(String),
    /// The engine rejected the statement (parse/semantic/validation/
    /// unsupported-function errors). Never a finding: these are the expected
    /// discrepancies of §1.
    Semantic(String),
    /// The transport to the engine broke (the server process died, the pipe
    /// closed, a protocol frame was malformed). Treated like a crash by the
    /// oracles, since the engine stopped answering mid-query.
    Transport(String),
}

impl BackendError {
    /// Whether the error must abort the scenario for this query (crash or
    /// transport) rather than merely making the query inapplicable.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, BackendError::Semantic(_))
    }

    /// The error message.
    pub fn message(&self) -> &str {
        match self {
            BackendError::Crash(m) | BackendError::Semantic(m) | BackendError::Transport(m) => m,
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Crash(m) => write!(f, "engine crash: {m}"),
            BackendError::Semantic(m) => write!(f, "semantic error: {m}"),
            BackendError::Transport(m) => write!(f, "transport failure: {m}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A plain-data description of how to construct a backend: the serializable
/// counterpart of the [`EngineBackend`] trait objects a campaign actually
/// runs. The distributed campaign subsystem ([`crate::dist`]) ships specs —
/// not backends — over its wire protocol, and every worker process rebuilds
/// an equivalent backend from the spec with [`BackendSpec::build`].
///
/// Backends that cannot be described this way (a future real-engine adapter
/// holding live connections, say) simply report no spec from
/// [`EngineBackend::wire_spec`] and are not usable in distributed campaigns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendSpec {
    /// An [`InProcessBackend`] of the given profile and fault set.
    InProcess {
        /// The engine profile.
        profile: EngineProfile,
        /// The seeded faults the engine carries.
        faults: FaultSet,
    },
    /// A [`StdioBackend`] driving the given server binary.
    Stdio {
        /// Path to the `spatter-sdb-server` binary.
        command: PathBuf,
        /// The engine profile.
        profile: EngineProfile,
        /// The seeded faults the server is launched with.
        faults: FaultSet,
        /// Whether the server is launched with `--hard-crash`.
        hard_crash: bool,
    },
    /// An [`crate::matrix::ExternalBackend`] driving an arbitrary
    /// SQL-speaking subprocess described by a
    /// [`crate::matrix::DialectSpec`].
    External {
        /// The dialect describing how to launch and talk to the engine.
        dialect: crate::matrix::DialectSpec,
    },
}

impl BackendSpec {
    /// Builds the backend this spec describes.
    pub fn build(&self) -> Arc<dyn EngineBackend> {
        self.build_boxed().into()
    }

    /// [`BackendSpec::build`] as a boxed trait object (the form
    /// [`crate::oracles::DifferentialOracle::against`] consumes).
    pub fn build_boxed(&self) -> Box<dyn EngineBackend> {
        match self {
            BackendSpec::InProcess { profile, faults } => {
                Box::new(InProcessBackend::new(*profile, faults.clone()))
            }
            BackendSpec::Stdio {
                command,
                profile,
                faults,
                hard_crash,
            } => Box::new(
                StdioBackend::new(command.clone(), *profile, faults.clone())
                    .with_hard_crash(*hard_crash),
            ),
            BackendSpec::External { dialect } => {
                Box::new(crate::matrix::ExternalBackend::new(dialect.clone()))
            }
        }
    }

    /// The profile of the backend the spec describes.
    pub fn profile(&self) -> EngineProfile {
        match self {
            BackendSpec::InProcess { profile, .. } | BackendSpec::Stdio { profile, .. } => *profile,
            BackendSpec::External { dialect } => dialect.profile,
        }
    }
}

/// One open engine session: a private database that lives for one scenario.
///
/// Object-safe so oracles can hold heterogeneous sessions (`Box<dyn
/// EngineSession>`) without knowing which backend produced them.
pub trait EngineSession {
    /// Loads a batch of setup statements (DDL/DML/SET), stopping at the
    /// first error.
    fn load(&mut self, statements: &[String]) -> Result<(), BackendError>;

    /// Runs a query expected to produce a single scalar count; `Ok(None)`
    /// when the query executed but did not produce one.
    fn run_count(&mut self, sql: &str) -> Result<Option<i64>, BackendError>;

    /// Runs a query and returns the first-column values of its result set,
    /// in engine row order.
    fn run_rows(&mut self, sql: &str) -> Result<Vec<String>, BackendError>;

    /// Cumulative time spent executing statements in the engine (the
    /// Figure 7 measurement). For out-of-process backends this is the
    /// request round-trip time.
    fn engine_time(&self) -> Duration;
}

/// A factory of engine sessions: one engine configuration (which system,
/// which seeded faults) that oracles can open scenario-scoped sessions
/// against.
pub trait EngineBackend: fmt::Debug + Send + Sync {
    /// The engine profile this backend models. Drives query generation (the
    /// documented `ST_*` surface) and display names; a real-engine adapter
    /// picks the profile that documents its surface.
    fn profile(&self) -> EngineProfile;

    /// Opens a fresh session with an empty database.
    fn open_session(&self) -> Result<Box<dyn EngineSession>, BackendError>;

    /// The seeded faults this backend carries — the candidate set the
    /// campaign's attribution step iterates over. Empty for engines whose
    /// faults are unknown (e.g. a real SDBMS), which disables attribution.
    fn fault_ids(&self) -> Vec<FaultId>;

    /// A variant of this backend with one fault disabled ("the fix
    /// applied"), used by attribution to find the fault responsible for a
    /// finding.
    fn without_fault(&self, fault: FaultId) -> Box<dyn EngineBackend>;

    /// Display name used in finding descriptions.
    fn name(&self) -> String {
        self.profile().name().to_string()
    }

    /// Whether the engine documents a given `ST_*` function.
    fn supports_function(&self, function: &str) -> bool {
        self.profile().supports_function(function)
    }

    /// The serializable [`BackendSpec`] describing this backend, if one
    /// exists. Distributed campaigns ([`crate::dist`]) require it — a worker
    /// process rebuilds the backend from the spec — so backends that cannot
    /// be described as plain data return `None` and are rejected by the
    /// distributed supervisor with a structured error.
    fn wire_spec(&self) -> Option<BackendSpec> {
        None
    }
}

// ---------------------------------------------------------------------------
// In-process backend
// ---------------------------------------------------------------------------

/// Entries kept in the shared parse cache before it is reset; bounds memory
/// over long campaigns (each iteration's INSERTs are unique statements) while
/// still amortizing every within-scenario reload.
const PARSE_CACHE_CAPACITY: usize = 4096;

type ParseCache = Arc<Mutex<HashMap<String, Arc<Statement>>>>;

/// The default backend: [`spatter_sdb::Engine`] in this process.
#[derive(Debug, Clone)]
pub struct InProcessBackend {
    profile: EngineProfile,
    faults: FaultSet,
    /// Shared across this backend's sessions (and its `without_fault`
    /// attribution variants — parse results are fault-independent).
    parse_cache: ParseCache,
}

impl InProcessBackend {
    /// A backend with an explicit fault set.
    pub fn new(profile: EngineProfile, faults: FaultSet) -> Self {
        InProcessBackend {
            profile,
            faults,
            parse_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The stock engine of a profile (its default seeded faults — the
    /// "released version" the paper tested).
    pub fn stock(profile: EngineProfile) -> Self {
        InProcessBackend::new(profile, profile.default_faults())
    }

    /// The fault-free reference engine ("fully patched").
    pub fn reference(profile: EngineProfile) -> Self {
        InProcessBackend::new(profile, FaultSet::none())
    }

    /// The enabled faults.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Number of statements currently held by the shared parse cache
    /// (observable so tests can assert the load path parses once).
    pub fn cached_statements(&self) -> usize {
        self.parse_cache.lock().expect("parse cache poisoned").len()
    }
}

impl EngineBackend for InProcessBackend {
    fn profile(&self) -> EngineProfile {
        self.profile
    }

    fn open_session(&self) -> Result<Box<dyn EngineSession>, BackendError> {
        Ok(Box::new(InProcessSession {
            engine: Engine::with_faults(self.profile, self.faults.clone()),
            parse_cache: Arc::clone(&self.parse_cache),
        }))
    }

    fn fault_ids(&self) -> Vec<FaultId> {
        self.faults.iter().collect()
    }

    fn without_fault(&self, fault: FaultId) -> Box<dyn EngineBackend> {
        let mut reduced = self.clone();
        reduced.faults.disable(fault);
        Box::new(reduced)
    }

    fn wire_spec(&self) -> Option<BackendSpec> {
        Some(BackendSpec::InProcess {
            profile: self.profile,
            faults: self.faults.clone(),
        })
    }
}

struct InProcessSession {
    engine: Engine,
    parse_cache: ParseCache,
}

impl InProcessSession {
    /// Executes one statement, parsing it at most once per cache lifetime:
    /// every oracle of a suite (and every attribution re-run) loads the same
    /// scenario SQL, so the lexer/parser work is shared instead of repeated
    /// per engine instance. The backend (and thus the cache) is shared by
    /// every worker shard, so the critical section is kept to a hash lookup
    /// plus an `Arc` bump — statements are never cloned or executed under
    /// the lock.
    fn execute_cached(&mut self, sql: &str) -> Result<spatter_sdb::QueryResult, BackendError> {
        let cached = {
            let cache = self.parse_cache.lock().expect("parse cache poisoned");
            cache.get(sql).cloned()
        };
        let statement = match cached {
            Some(statement) => statement,
            None => {
                let statement = Arc::new(parse_statement(sql).map_err(map_sdb_error)?);
                let mut cache = self.parse_cache.lock().expect("parse cache poisoned");
                if cache.len() >= PARSE_CACHE_CAPACITY {
                    cache.clear();
                }
                cache.insert(sql.to_string(), Arc::clone(&statement));
                statement
            }
        };
        self.engine
            .execute_parsed(&statement)
            .map_err(map_sdb_error)
    }
}

impl EngineSession for InProcessSession {
    fn load(&mut self, statements: &[String]) -> Result<(), BackendError> {
        for statement in statements {
            self.execute_cached(statement)?;
        }
        Ok(())
    }

    fn run_count(&mut self, sql: &str) -> Result<Option<i64>, BackendError> {
        Ok(self.execute_cached(sql)?.count())
    }

    fn run_rows(&mut self, sql: &str) -> Result<Vec<String>, BackendError> {
        Ok(self
            .execute_cached(sql)?
            .rows
            .iter()
            .filter_map(|row| row.first())
            .map(|value| value.to_string())
            .collect())
    }

    fn engine_time(&self) -> Duration {
        self.engine.execution_stats().0
    }
}

fn map_sdb_error(error: SdbError) -> BackendError {
    match error {
        SdbError::Crash(message) => BackendError::Crash(message),
        other => BackendError::Semantic(other.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Stdio backend
// ---------------------------------------------------------------------------

/// A backend that drives a `spatter-sdb-server` process over stdio.
#[derive(Debug, Clone)]
pub struct StdioBackend {
    command: PathBuf,
    profile: EngineProfile,
    faults: FaultSet,
    hard_crash: bool,
}

impl StdioBackend {
    /// A backend spawning `command` with an explicit fault set.
    pub fn new(command: impl Into<PathBuf>, profile: EngineProfile, faults: FaultSet) -> Self {
        StdioBackend {
            command: command.into(),
            profile,
            faults,
            hard_crash: false,
        }
    }

    /// The stock engine of a profile.
    pub fn stock(command: impl Into<PathBuf>, profile: EngineProfile) -> Self {
        StdioBackend::new(command, profile, profile.default_faults())
    }

    /// Launches the server with `--hard-crash`: simulated crashes terminate
    /// the server process instead of replying, exercising the
    /// transport-failure recovery path.
    pub fn with_hard_crash(mut self, hard_crash: bool) -> Self {
        self.hard_crash = hard_crash;
        self
    }

    /// The server binary this backend spawns.
    pub fn command(&self) -> &Path {
        &self.command
    }

    fn spawn(&self) -> Result<ServerHandle, BackendError> {
        let mut command = Command::new(&self.command);
        command
            .arg("--profile")
            .arg(self.profile.name())
            .arg("--faults")
            .arg(if self.faults.is_empty() {
                "none".to_string()
            } else {
                self.faults.to_names()
            })
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if self.hard_crash {
            command.arg("--hard-crash");
        }
        // A binary that does not exist or cannot be executed is a harness
        // misconfiguration (wrong path, unbuilt server), not evidence about
        // the engine under test: surfacing it as a `Transport` error would
        // flood a campaign report with bogus crash findings, so it aborts
        // loudly. Any other failure here — a transient spawn error (EAGAIN,
        // fd exhaustion under process churn) or a server dying before its
        // READY handshake (OOM-killed, signalled) — goes through the
        // *canonical* transport error so finding descriptions stay
        // byte-identical across worker counts and reruns, and the respawn
        // path gets to retry.
        let mut child = match command.spawn() {
            Ok(child) => child,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::NotFound | std::io::ErrorKind::PermissionDenied
                ) =>
            {
                panic!(
                    "cannot spawn engine server {}: {e} — StdioBackend misconfigured \
                     (build the spatter-sdb-server binary and check the path)",
                    self.command.display()
                )
            }
            Err(_) => return Err(transport_lost()),
        };
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut handle = ServerHandle {
            child,
            stdin,
            stdout,
        };
        if read_ready(&mut handle.stdout).is_err() {
            handle.shutdown();
            return Err(transport_lost());
        }
        Ok(handle)
    }
}

impl EngineBackend for StdioBackend {
    fn profile(&self) -> EngineProfile {
        self.profile
    }

    fn open_session(&self) -> Result<Box<dyn EngineSession>, BackendError> {
        let handle = self.spawn()?;
        Ok(Box::new(StdioSession {
            backend: self.clone(),
            handle: Some(handle),
            setup: Vec::new(),
            engine_time: Duration::ZERO,
        }))
    }

    fn fault_ids(&self) -> Vec<FaultId> {
        self.faults.iter().collect()
    }

    fn without_fault(&self, fault: FaultId) -> Box<dyn EngineBackend> {
        let mut reduced = self.clone();
        reduced.faults.disable(fault);
        Box::new(reduced)
    }

    fn wire_spec(&self) -> Option<BackendSpec> {
        Some(BackendSpec::Stdio {
            command: self.command.clone(),
            profile: self.profile,
            faults: self.faults.clone(),
            hard_crash: self.hard_crash,
        })
    }
}

struct ServerHandle {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ServerHandle {
    /// One request/response round trip; any I/O or framing failure is a
    /// transport error (the caller discards the handle). The statement is
    /// flattened onto one wire frame first — newlines are legal whitespace
    /// for the in-process parser, but an unflattened multi-line statement
    /// would desynchronize the protocol and misattribute every subsequent
    /// response.
    fn request(&mut self, sql: &str) -> Result<Response, BackendError> {
        let line = sanitize_line(sql);
        if line.trim().is_empty() {
            // The server skips blank input lines without replying, so
            // sending one and blocking for a response would hang forever.
            // Answer with the error reply locally — the in-process engine
            // rejects an empty statement as a parse error too.
            return Ok(Response::Error {
                crash: false,
                message: "parse error: empty statement".into(),
            });
        }
        let send = writeln!(self.stdin, "{line}").and_then(|()| self.stdin.flush());
        send.map_err(|_| transport_lost())?;
        Response::read_from(&mut self.stdout).map_err(|_| transport_lost())
    }

    fn shutdown(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The canonical transport-failure error. The message is deliberately
/// constant: it feeds finding descriptions, which must be byte-identical
/// across worker counts regardless of whether the failure surfaced as a
/// broken pipe, an EOF, or a half-written frame. Crate-visible so the
/// external-engine adapter ([`crate::matrix`]) reports dead subprocesses
/// with the identical message — kill-mid-cell recovery parity with this
/// backend is asserted by the matrix tests.
pub(crate) fn transport_lost() -> BackendError {
    BackendError::Transport("engine process terminated".into())
}

/// A session over one server process. Remembers its setup script so that
/// when the process dies the next request can respawn the server and replay
/// the setup — the query that hit the dead process still reports its
/// transport failure, but the shard keeps its session instead of losing
/// every remaining query.
struct StdioSession {
    backend: StdioBackend,
    handle: Option<ServerHandle>,
    setup: Vec<String>,
    engine_time: Duration,
}

impl StdioSession {
    /// Sends one statement, lazily respawning (and replaying the setup
    /// script on) a dead server first.
    fn request(&mut self, sql: &str) -> Result<Response, BackendError> {
        let started = Instant::now();
        let result = self.request_inner(sql);
        self.engine_time += started.elapsed();
        result
    }

    fn request_inner(&mut self, sql: &str) -> Result<Response, BackendError> {
        if self.handle.is_none() {
            let mut handle = self.backend.spawn()?;
            // Error *replies* during replay are ignored (the session's load
            // already reported them); only a broken transport aborts.
            for statement in &self.setup {
                handle.request(statement)?;
            }
            self.handle = Some(handle);
        }
        let handle = self.handle.as_mut().expect("respawned above");
        match handle.request(sql) {
            Ok(response) => Ok(response),
            Err(error) => {
                // The process is gone; reap it now, respawn on demand later.
                if let Some(mut dead) = self.handle.take() {
                    dead.shutdown();
                }
                Err(error)
            }
        }
    }

    /// Maps an error reply to the backend taxonomy.
    fn check(response: Response) -> Result<Response, BackendError> {
        match response {
            Response::Error {
                crash: true,
                message,
            } => Err(BackendError::Crash(message)),
            Response::Error {
                crash: false,
                message,
            } => Err(BackendError::Semantic(message)),
            other => Ok(other),
        }
    }
}

impl EngineSession for StdioSession {
    fn load(&mut self, statements: &[String]) -> Result<(), BackendError> {
        // Each statement joins the replay script just before it is sent, and
        // recording stops at the first failure: a respawned server replays
        // exactly what this server was asked to execute (including a
        // statement whose deterministic crash must resurface), never the
        // unsent tail — so pre- and post-crash state cannot diverge.
        for statement in statements {
            self.setup.push(statement.clone());
            Self::check(self.request(statement)?)?;
        }
        Ok(())
    }

    fn run_count(&mut self, sql: &str) -> Result<Option<i64>, BackendError> {
        // The count is evaluated server-side with `QueryResult::count`, so
        // the in-process and stdio backends agree on count semantics by
        // construction.
        match Self::check(self.request(sql)?)? {
            Response::Rows { count, .. } => Ok(count),
            _ => Ok(None),
        }
    }

    fn run_rows(&mut self, sql: &str) -> Result<Vec<String>, BackendError> {
        match Self::check(self.request(sql)?)? {
            Response::Rows { rows, .. } => Ok(rows),
            Response::None | Response::Effect(_) => Ok(Vec::new()),
            Response::Error { .. } => unreachable!("check() filtered errors"),
        }
    }

    fn engine_time(&self) -> Duration {
        self.engine_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_session(backend: &dyn EngineBackend) -> Box<dyn EngineSession> {
        let mut session = backend.open_session().expect("open");
        session
            .load(&[
                "CREATE TABLE t (g geometry)".to_string(),
                "INSERT INTO t (g) VALUES ('POINT(0 0)'), ('POINT(3 4)')".to_string(),
            ])
            .expect("load");
        session
    }

    #[test]
    fn in_process_sessions_run_counts_and_rows() {
        let backend = InProcessBackend::reference(EngineProfile::PostgisLike);
        let mut session = loaded_session(&backend);
        assert_eq!(
            session.run_count("SELECT COUNT(*) FROM t a JOIN t b ON ST_DWithin(a.g, b.g, 5)"),
            Ok(Some(4))
        );
        assert_eq!(
            session.run_rows(
                "SELECT ST_AsText(a.g) FROM t a \
                 ORDER BY ST_Distance(a.g, 'POINT(0 0)'::geometry) LIMIT 1"
            ),
            Ok(vec!["POINT(0 0)".to_string()])
        );
        // A non-count result observed through run_count is None, not an error.
        assert_eq!(
            session.run_count("SELECT ST_AsText(a.g) FROM t a"),
            Ok(None)
        );
        assert!(session.engine_time() > Duration::ZERO);
    }

    #[test]
    fn in_process_errors_follow_the_taxonomy() {
        let backend = InProcessBackend::reference(EngineProfile::PostgisLike);
        let mut session = backend.open_session().unwrap();
        let semantic = session
            .run_count("SELECT COUNT(*) FROM missing a JOIN missing b ON ST_Intersects(a.g, b.g)")
            .unwrap_err();
        assert!(matches!(semantic, BackendError::Semantic(_)));
        assert!(!semantic.is_fatal());

        let backend = InProcessBackend::new(
            EngineProfile::MysqlLike,
            FaultSet::with([FaultId::GeosCrashRelateShortRing]),
        );
        let mut session = backend.open_session().unwrap();
        session
            .load(&[
                "CREATE TABLE t (g geometry)".to_string(),
                "INSERT INTO t (g) VALUES ('POLYGON((0 0,1 1,0 0))'), ('POINT(0 0)')".to_string(),
            ])
            .unwrap();
        let crash = session
            .run_count("SELECT COUNT(*) FROM t a JOIN t b ON ST_Intersects(a.g, b.g)")
            .unwrap_err();
        assert!(matches!(crash, BackendError::Crash(_)));
        assert!(crash.is_fatal());
    }

    #[test]
    fn parse_cache_is_shared_across_sessions_and_fault_variants() {
        let backend = InProcessBackend::stock(EngineProfile::PostgisLike);
        let statements = vec![
            "CREATE TABLE t (g geometry)".to_string(),
            "INSERT INTO t (g) VALUES ('POINT(1 2)')".to_string(),
        ];
        let mut first = backend.open_session().unwrap();
        first.load(&statements).unwrap();
        assert_eq!(backend.cached_statements(), 2);

        // A second session and an attribution variant replay the same SQL
        // without growing the cache: each statement was parsed exactly once.
        let mut second = backend.open_session().unwrap();
        second.load(&statements).unwrap();
        let reduced = backend.without_fault(FaultId::GeosCoversPrecisionLoss);
        let mut third = reduced.open_session().unwrap();
        third.load(&statements).unwrap();
        assert_eq!(backend.cached_statements(), 2);
    }

    #[test]
    fn without_fault_disables_exactly_one_fault() {
        let backend = InProcessBackend::stock(EngineProfile::PostgisLike);
        let all = backend.fault_ids();
        let reduced = backend.without_fault(all[0]);
        let reduced_ids = reduced.fault_ids();
        assert_eq!(reduced_ids.len(), all.len() - 1);
        assert!(!reduced_ids.contains(&all[0]));
        // The original is untouched.
        assert_eq!(backend.fault_ids(), all);
    }

    #[test]
    fn wire_specs_round_trip_through_build() {
        let in_process = InProcessBackend::stock(EngineProfile::MysqlLike);
        let spec = in_process.wire_spec().expect("in-process specs exist");
        assert_eq!(
            spec,
            BackendSpec::InProcess {
                profile: EngineProfile::MysqlLike,
                faults: EngineProfile::MysqlLike.default_faults(),
            }
        );
        // Building from the spec reproduces the spec: the description is a
        // fixed point, which is what lets a worker process rebuild an
        // equivalent backend.
        assert_eq!(spec.build().wire_spec(), Some(spec.clone()));
        assert_eq!(spec.profile(), EngineProfile::MysqlLike);

        let stdio = StdioBackend::new(
            "/some/server",
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::GeosCoversPrecisionLoss]),
        )
        .with_hard_crash(true);
        let spec = stdio.wire_spec().expect("stdio specs exist");
        assert_eq!(spec.build().wire_spec(), Some(spec.clone()));
        assert_eq!(spec.build_boxed().wire_spec(), Some(spec));
    }

    #[test]
    fn backend_trait_objects_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn EngineBackend>();
        assert_send_sync::<InProcessBackend>();
        assert_send_sync::<StdioBackend>();
    }

    #[test]
    #[should_panic(expected = "StdioBackend misconfigured")]
    fn stdio_backend_panics_on_a_missing_server_binary() {
        // A server that cannot be spawned at all is harness misconfiguration,
        // not an engine crash: it must abort instead of flooding a campaign
        // report with bogus per-scenario crash findings.
        let backend = StdioBackend::stock(
            "/nonexistent/spatter-sdb-server",
            EngineProfile::PostgisLike,
        );
        let _ = backend.open_session();
    }
}
