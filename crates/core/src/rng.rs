//! A small, self-contained deterministic PRNG.
//!
//! The workspace builds in hermetic environments without a crates.io mirror,
//! so the tester cannot depend on the `rand` crate. This module provides the
//! subset of its API that the generator, query instantiation and transform
//! sampling use — [`StdRng`], [`SeedableRng`], [`RngExt::random_range`],
//! [`RngExt::random_bool`] and slice [`seq::IndexedRandom::choose`] — backed
//! by SplitMix64. Determinism per seed is a hard requirement (sub-seeds
//! derived per campaign iteration must replay identically on any worker of
//! the sharded runner), and SplitMix64 is stable across platforms.

/// The default pseudo-random generator: SplitMix64.
///
/// Not cryptographically secure; statistically solid for test-case
/// generation (passes BigCrush) and two words of state.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

/// Seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Derives an independent sub-seed from a base seed and a stream index.
///
/// Used by the campaign runner to give every iteration its own generator
/// stream: the result depends only on `(seed, stream)`, never on which
/// worker thread executes the iteration.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    // Two SplitMix64 steps over the combined words; the golden-ratio odd
    // constant decorrelates consecutive stream indices.
    let mut rng = StdRng::seed_from_u64(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    rng.next_u64() ^ rng.next_u64().rotate_left(17)
}

/// Sampling helpers, mirroring the subset of `rand::Rng` the tester uses.
pub trait RngExt {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive integer range).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl RngExt for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A range that can be sampled uniformly, producing values of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngExt>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, i64, u32, u64, usize);

/// Slice sampling, mirroring `rand::seq::IndexedRandom`.
pub mod seq {
    use super::{RngExt, StdRng};

    /// Random element selection from slices.
    pub trait IndexedRandom<T> {
        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose(&self, rng: &mut StdRng) -> Option<&T>;
    }

    impl<T> IndexedRandom<T> for [T] {
        fn choose(&self, rng: &mut StdRng) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::IndexedRandom;
    use super::*;

    #[test]
    fn identical_seeds_replay_identically() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-3..=3);
            assert!((-3..=3).contains(&v));
            let u: usize = rng.random_range(0..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn all_range_values_are_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-3..=3);
            seen[(v + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn choose_covers_the_slice_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn split_seed_depends_on_both_inputs() {
        assert_eq!(split_seed(1, 2), split_seed(1, 2));
        assert_ne!(split_seed(1, 2), split_seed(1, 3));
        assert_ne!(split_seed(1, 2), split_seed(2, 2));
    }
}
