//! Test-case reduction.
//!
//! Before reporting an issue the paper reduces the bug-inducing statement
//! sequences automatically (delta debugging, Zeller & Hildebrandt) and
//! manually (§5.1). This module implements the automatic part for Spatter's
//! scenarios: it removes geometries and tables from a failing scenario as
//! long as the oracle keeps reporting the discrepancy.

use crate::backend::EngineBackend;
use crate::oracles::{Oracle, OracleOutcome};
use crate::queries::QueryInstance;
use crate::spec::DatabaseSpec;

/// A reduced scenario: the minimal database and single query that still
/// exhibits the discrepancy.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedScenario {
    /// The reduced database.
    pub spec: DatabaseSpec,
    /// The single failing query.
    pub query: QueryInstance,
    /// The statement count of the reduced scenario's SQL (a proxy for test
    /// case size in the reports).
    pub statement_count: usize,
}

/// Checks whether the scenario still fails (logic bug or crash) under the
/// oracle.
fn still_fails(
    oracle: &dyn Oracle,
    backend: &dyn EngineBackend,
    spec: &DatabaseSpec,
    query: &QueryInstance,
) -> bool {
    oracle
        .check(backend, spec, std::slice::from_ref(query))
        .iter()
        .any(|o| {
            matches!(
                o,
                OracleOutcome::LogicBug { .. } | OracleOutcome::Crash { .. }
            )
        })
}

/// Reduces a failing scenario to (close to) a minimal one.
///
/// The strategy is a greedy one-at-a-time removal pass over geometries,
/// repeated until a fixed point — the classic ddmin specialized to
/// granularity 1, which is sufficient for the small databases Spatter
/// generates.
pub fn reduce(
    oracle: &dyn Oracle,
    backend: &dyn EngineBackend,
    spec: &DatabaseSpec,
    query: &QueryInstance,
) -> Option<ReducedScenario> {
    if !still_fails(oracle, backend, spec, query) {
        return None;
    }
    let mut current = spec.clone();
    let mut changed = true;
    while changed {
        changed = false;
        'outer: for table_idx in 0..current.tables.len() {
            for geom_idx in (0..current.tables[table_idx].geometries.len()).rev() {
                let mut candidate = current.clone();
                candidate.tables[table_idx].geometries.remove(geom_idx);
                if still_fails(oracle, backend, &candidate, query) {
                    current = candidate;
                    changed = true;
                    continue 'outer;
                }
            }
        }
    }
    let statement_count = current.to_sql().len() + 1;
    Some(ReducedScenario {
        spec: current,
        query: query.clone(),
        statement_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InProcessBackend;
    use crate::oracles::AeiOracle;
    use crate::transform::TransformPlan;
    use spatter_geom::wkt::parse_wkt;
    use spatter_sdb::{EngineProfile, FaultId, FaultSet};
    use spatter_topo::predicates::NamedPredicate;

    #[test]
    fn reduction_removes_irrelevant_geometries() {
        // A Listing 6-style canonicalization discrepancy plus noise rows; the
        // reducer must strip the noise while keeping the failure. The
        // collection is stored line-first, so element reordering during
        // canonicalization flips the "last one wins" faulty answer.
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 0)").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(50 50)").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("LINESTRING(30 30,40 40)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("GEOMETRYCOLLECTION(LINESTRING(0 0,1 0),POINT(0 0))").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(60 60)").unwrap());
        let query = QueryInstance::topo("t1", "t0", NamedPredicate::Covers);
        let backend = InProcessBackend::new(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::GeosMixedBoundaryLastOneWins]),
        );
        let oracle = AeiOracle::new(TransformPlan::canonicalization_only());

        let original_fails = oracle
            .check(&backend, &spec, std::slice::from_ref(&query))
            .iter()
            .any(|o| o.is_logic_bug());
        assert!(original_fails, "scenario must fail before reduction");

        let reduced = reduce(&oracle, &backend, &spec, &query).expect("reducible scenario");
        assert!(reduced.spec.geometry_count() < spec.geometry_count());
        assert!(reduced.spec.geometry_count() >= 1);
        // The reduced scenario still fails.
        assert!(still_fails(&oracle, &backend, &reduced.spec, &query));
    }

    #[test]
    fn non_failing_scenarios_are_not_reduced() {
        let spec = DatabaseSpec::with_tables(2);
        let query = QueryInstance::topo("t0", "t1", NamedPredicate::Intersects);
        let oracle = AeiOracle::new(TransformPlan::canonicalization_only());
        let backend = InProcessBackend::reference(EngineProfile::PostgisLike);
        assert!(reduce(&oracle, &backend, &spec, &query).is_none());
    }
}
