//! In-memory description of a generated spatial database and its SQL form.

use spatter_geom::wkt::write_wkt;
use spatter_geom::Geometry;

/// One generated table: a name and its geometry column contents.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Table name (`t0`, `t1`, …).
    pub name: String,
    /// The geometries stored in the table's `g` column, in insertion order.
    pub geometries: Vec<Geometry>,
}

impl TableSpec {
    /// Creates an empty table spec.
    pub fn new(name: impl Into<String>) -> Self {
        TableSpec {
            name: name.into(),
            geometries: Vec::new(),
        }
    }
}

/// A generated spatial database (the paper's `SDB1` / `SDB2`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DatabaseSpec {
    /// The tables in creation order.
    pub tables: Vec<TableSpec>,
}

impl DatabaseSpec {
    /// Creates a spec with `m` empty tables named `t0..t{m-1}`.
    pub fn with_tables(m: usize) -> Self {
        DatabaseSpec {
            tables: (0..m).map(|i| TableSpec::new(format!("t{i}"))).collect(),
        }
    }

    /// Total number of geometries across all tables.
    pub fn geometry_count(&self) -> usize {
        self.tables.iter().map(|t| t.geometries.len()).sum()
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.name.as_str()).collect()
    }

    /// Applies a per-geometry rewrite, keeping the table structure (used for
    /// canonicalization and affine transformation: the geometries `g` and
    /// `g'` are stored in tables of the same name, §4.4).
    pub fn map_geometries(&self, f: impl Fn(&Geometry) -> Geometry) -> DatabaseSpec {
        DatabaseSpec {
            tables: self
                .tables
                .iter()
                .map(|t| TableSpec {
                    name: t.name.clone(),
                    geometries: t.geometries.iter().map(&f).collect(),
                })
                .collect(),
        }
    }

    /// The DDL + DML statements that materialize this database, in the shape
    /// of the paper's listings (`CREATE TABLE t (g geometry)` plus one
    /// `INSERT` per geometry).
    pub fn to_sql(&self) -> Vec<String> {
        let mut statements = Vec::new();
        for table in &self.tables {
            statements.push(format!("CREATE TABLE {} (g geometry)", table.name));
        }
        for table in &self.tables {
            for geometry in &table.geometries {
                statements.push(format!(
                    "INSERT INTO {} (g) VALUES ('{}')",
                    table.name,
                    write_wkt(geometry)
                ));
            }
        }
        statements
    }

    /// Statements that additionally create a GiST index on every table
    /// (used by the Index oracle).
    pub fn to_sql_with_indexes(&self) -> Vec<String> {
        let mut statements = self.to_sql();
        for (i, table) in self.tables.iter().enumerate() {
            statements.push(format!(
                "CREATE INDEX idx_{i}_{} ON {} USING GIST (g)",
                table.name, table.name
            ));
        }
        statements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    fn spec_with_one_point() -> DatabaseSpec {
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(1 2)").unwrap());
        spec
    }

    #[test]
    fn with_tables_names_sequentially() {
        let spec = DatabaseSpec::with_tables(3);
        assert_eq!(spec.table_names(), vec!["t0", "t1", "t2"]);
        assert_eq!(spec.geometry_count(), 0);
    }

    #[test]
    fn to_sql_emits_ddl_then_inserts() {
        let spec = spec_with_one_point();
        let sql = spec.to_sql();
        assert_eq!(sql.len(), 3);
        assert_eq!(sql[0], "CREATE TABLE t0 (g geometry)");
        assert_eq!(sql[1], "CREATE TABLE t1 (g geometry)");
        assert_eq!(sql[2], "INSERT INTO t0 (g) VALUES ('POINT(1 2)')");
    }

    #[test]
    fn to_sql_with_indexes_appends_index_ddl() {
        let spec = spec_with_one_point();
        let sql = spec.to_sql_with_indexes();
        assert!(sql.last().unwrap().contains("USING GIST"));
        assert_eq!(sql.len(), 5);
    }

    #[test]
    fn map_geometries_preserves_structure() {
        let spec = spec_with_one_point();
        let translated = spec.map_geometries(|g| {
            let mut out = g.clone();
            out.map_coords(&mut |c| c.x += 10.0);
            out
        });
        assert_eq!(translated.tables.len(), 2);
        assert_eq!(
            write_wkt(&translated.tables[0].geometries[0]),
            "POINT(11 2)"
        );
    }
}
