//! # spatter-core
//!
//! The paper's primary contribution: **Spatter**, an automated tester for
//! spatial database engines built on *Affine Equivalent Inputs* (AEI).
//!
//! The pipeline follows Figure 5 of the paper:
//!
//! 1. [`generator`] — the *geometry-aware generator* (Algorithm 1) creates a
//!    spatial database `SDB1` with `N` geometries spread over `m` tables,
//!    mixing the *random-shape strategy* (syntactically valid random
//!    geometries) with the *derivative strategy* (new geometries derived from
//!    existing ones through the editing functions of Table 1).
//! 2. [`spec`] / [`transform`] — each geometry of `SDB1` is canonicalized
//!    (§4.3) and transformed by a random integer affine matrix (Algorithm 2),
//!    producing the affine-equivalent database `SDB2`.
//! 3. [`queries`] — three template families are instantiated with random
//!    tables: the Figure 5 join-count template over a topological
//!    relationship, and the §7 distance-parameterised family — `ST_DWithin`
//!    / `ST_DFullyWithin` range joins (distance rewritten to `s·d` under a
//!    similarity transformation) and KNN queries
//!    (`ORDER BY ST_Distance(g, origin) LIMIT k`, compared as result sets
//!    with ties at the cutoff excluded).
//! 4. [`oracles`] — the **AEI oracle** runs every query against `SDB1` and
//!    `SDB2` on the same engine and reports any count discrepancy as a
//!    potential logic bug; the baseline oracles of §5.3 (differential
//!    testing between profiles, index on/off, TLP) are implemented for the
//!    Table 4 comparison. All oracles execute through the [`backend`]
//!    abstraction (`EngineBackend`/`EngineSession`), which decouples them
//!    from the in-process engine: the same code drives the
//!    `spatter-sdb-server` subprocess over line-delimited SQL, with
//!    per-scenario sessions batching the whole query set.
//! 5. [`campaign`] — the testing-campaign driver: runs iterations, detects
//!    crashes and logic discrepancies, reduces failing scenarios
//!    ([`reducer`]), attributes each finding to the seeded fault that causes
//!    it (the deduplication step of §5.4), and tracks timing and coverage for
//!    Figures 7 and 8 and Table 5. With [`guidance::GuidanceMode::ColdProbe`]
//!    the runner additionally biases generation toward probes a short warm-up
//!    left cold ([`guidance`]) — feedback is frozen into a snapshot before
//!    workers start, so guided campaigns keep the byte-identical-at-any-
//!    worker-count determinism contract.
//! 6. [`dist`] — the multi-process layer over the same contract: a
//!    [`dist::DistRunner`] supervisor spawns shared-nothing
//!    `spatter-campaign-worker` processes, leases them iteration ranges
//!    over a hand-rolled line-delimited wire codec ([`dist::wire`]), and
//!    merges their streamed records index-ordered — byte-identical to the
//!    in-process runner, surviving worker crashes by respawn + re-lease.
//! 7. [`replay`] — the debugging story over the determinism contract:
//!    per-iteration state hashes ([`replay::ReplayFrame`]) recorded into
//!    line-delimited replay artifacts, artifact/live divergence bisection to
//!    the first diverging iteration, and coverage-preserving guided
//!    reduction of the diverging scenario.
//! 8. [`matrix`] — the differential testing matrix: external-engine
//!    adapters ([`matrix::ExternalBackend`] over a plain-data
//!    [`matrix::DialectSpec`]) and an N×N campaign grid running the AEI +
//!    differential suite over every ordered backend pair, merging per-cell
//!    reports with findings bucketed by which side diverged.

pub mod backend;
pub mod campaign;
pub mod dist;
pub mod fabric;
pub mod generator;
pub mod guidance;
pub mod matrix;
pub mod mutation;
pub mod oracles;
pub mod queries;
pub mod reducer;
pub mod replay;
pub mod rng;
pub mod runner;
pub mod scenarios;
pub mod spec;
pub mod transform;

pub use backend::{
    BackendError, BackendSpec, EngineBackend, EngineSession, InProcessBackend, StdioBackend,
};
pub use campaign::{Campaign, CampaignConfig, CampaignReport, Finding, FindingKind};
pub use dist::{DistConfig, DistError, DistRunner, DistStats, LeasePolicy};
pub use fabric::{ChannelControl, StdioTransport, TcpTransport, Transport, WorkerChannel};
pub use generator::{GenerationStrategy, GeneratorConfig, GeometryGenerator};
pub use guidance::{EditBias, Guidance, GuidanceMode, ScenarioKnobs, TemplateWeights};
pub use matrix::{
    DialectSpec, ExternalBackend, MatrixConfig, MatrixEntry, MatrixReport, MatrixRunner,
    ReplyGrammar,
};
pub use mutation::{MutationConfig, MutationScript, MutationStatement};
pub use oracles::{
    AeiOracle, DifferentialOracle, DivergenceSide, IndexOracle, Oracle, OracleOutcome, TlpOracle,
};
pub use queries::{QueryInstance, QueryTemplate, RangeFunction};
pub use replay::{
    Divergence, DivergenceLayer, ReplayError, ReplayFrame, ReplayLog, ReplayRecorder, ReplaySink,
};
pub use runner::{CampaignRunner, OracleKind, ScenarioParts, ShardReport};
pub use spec::{DatabaseSpec, TableSpec};
pub use transform::{AffineStrategy, TransformPlan};
