//! Mutation workloads: interleaved DML/DDL scripts for AEI campaigns.
//!
//! A load-once campaign builds `SDB1`/`SDB2` and only ever queries them; a
//! whole class of engine faults — index maintenance on `UPDATE`/`DELETE`,
//! planner fallback after `DROP INDEX`, row-id stability across deletes —
//! is structurally unreachable that way. A [`MutationScript`] fixes that:
//! a deterministic sequence of mutation statements, scheduled between the
//! iteration's queries, applied to **both** frames of the AEI pair — the
//! original statements to `SDB1` and the affine-transformed statements to
//! `SDB2` — so the two databases stay affine-equivalent *statement by
//! statement* and every query check remains a sound AEI comparison.
//!
//! The script is a pure function of `(spec, plan, sub_seed)`: generation
//! walks the evolving database spec in execution order, so selectors are
//! guaranteed to address exactly one row in each frame at the moment they
//! run. Selector uniqueness is screened in *both* frames — canonicalization
//! can merge two distinct `SDB1` geometries into the same `SDB2` geometry,
//! and a selector that matches once on one side and twice on the other
//! would silently desynchronize the frames.

use crate::generator::{GeneratorConfig, GeometryGenerator};
use crate::rng::{RngExt, SeedableRng, StdRng};
use crate::spec::DatabaseSpec;
use crate::transform::TransformPlan;
use spatter_geom::wkt::write_wkt;
use spatter_geom::Geometry;

/// Configuration of a campaign's mutation workload. `None` in
/// [`crate::campaign::CampaignConfig::mutations`] keeps the historical
/// load-once behaviour byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationConfig {
    /// Total mutation statements scheduled across one iteration's queries.
    pub statements_per_run: usize,
    /// Whether the script also churns spatial indexes: it then opens with
    /// `CREATE INDEX mut_idx_* … USING GIST` on every table plus
    /// `SET enable_seqscan = false`, and may drop/recreate those indexes
    /// mid-run. Required to surface index-maintenance faults.
    pub index_churn: bool,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            statements_per_run: 12,
            index_churn: true,
        }
    }
}

/// One mutation statement, stored as data so it can be rendered into either
/// frame: [`MutationStatement::sql1`] emits the original statement,
/// [`MutationStatement::sql2`] the same statement with every geometry
/// literal pushed through the transformation plan.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationStatement {
    /// `INSERT INTO <table> (g) VALUES ('<wkt>')`.
    Insert {
        /// Target table.
        table: String,
        /// The inserted geometry (frame-1 coordinates).
        geometry: Geometry,
    },
    /// `UPDATE <table> SET g = '<new>'::geometry WHERE g = '<old>'::geometry`.
    Update {
        /// Target table.
        table: String,
        /// The geometry currently stored in the targeted row.
        selector: Geometry,
        /// The replacement geometry (frame-1 coordinates).
        replacement: Geometry,
    },
    /// `DELETE FROM <table> WHERE g = '<old>'::geometry`.
    Delete {
        /// Target table.
        table: String,
        /// The geometry currently stored in the targeted row.
        selector: Geometry,
    },
    /// `CREATE INDEX <name> ON <table> USING GIST (g)`.
    CreateIndex {
        /// Index name (always `mut_idx_*`, disjoint from knob indexes).
        name: String,
        /// Indexed table.
        table: String,
    },
    /// `DROP INDEX <name>` — only ever an index this script created.
    DropIndex {
        /// Index name.
        name: String,
    },
    /// `CREATE TABLE <name> (g geometry)` — a scratch table outside the
    /// query universe, created only so `DROP TABLE` has something to drop.
    CreateTable {
        /// Scratch table name (`mut_scratch_*`).
        name: String,
    },
    /// `DROP TABLE <name>` — only ever a scratch table this script created.
    DropTable {
        /// Scratch table name.
        name: String,
    },
    /// `SET enable_seqscan = false` — emitted once by index-churn scripts so
    /// queries actually route through the churned indexes.
    DisableSeqscan,
}

impl MutationStatement {
    /// Whether the statement is a mutation in the UPDATE/DELETE/DROP sense
    /// (the acceptance mix the campaign tests assert on).
    pub fn is_destructive(&self) -> bool {
        matches!(
            self,
            MutationStatement::Update { .. }
                | MutationStatement::Delete { .. }
                | MutationStatement::DropIndex { .. }
                | MutationStatement::DropTable { .. }
        )
    }

    /// Renders the statement for `SDB1`.
    pub fn sql1(&self) -> String {
        self.render(|g| g.clone())
    }

    /// Renders the statement for `SDB2`: identical shape, geometry literals
    /// mapped through the plan.
    pub fn sql2(&self, plan: &TransformPlan) -> String {
        self.render(|g| plan.apply_geometry(g))
    }

    fn render(&self, map: impl Fn(&Geometry) -> Geometry) -> String {
        match self {
            MutationStatement::Insert { table, geometry } => format!(
                "INSERT INTO {table} (g) VALUES ('{}')",
                write_wkt(&map(geometry))
            ),
            MutationStatement::Update {
                table,
                selector,
                replacement,
            } => format!(
                "UPDATE {table} SET g = '{}'::geometry WHERE g = '{}'::geometry",
                write_wkt(&map(replacement)),
                write_wkt(&map(selector))
            ),
            MutationStatement::Delete { table, selector } => format!(
                "DELETE FROM {table} WHERE g = '{}'::geometry",
                write_wkt(&map(selector))
            ),
            MutationStatement::CreateIndex { name, table } => {
                format!("CREATE INDEX {name} ON {table} USING GIST (g)")
            }
            MutationStatement::DropIndex { name } => format!("DROP INDEX {name}"),
            MutationStatement::CreateTable { name } => {
                format!("CREATE TABLE {name} (g geometry)")
            }
            MutationStatement::DropTable { name } => format!("DROP TABLE {name}"),
            MutationStatement::DisableSeqscan => "SET enable_seqscan = false".to_string(),
        }
    }

    /// Applies the statement's effect to the frame-1 database spec, exactly
    /// mirroring what the engine does to its row set. The evolved spec is
    /// what the AEI oracle's well-definedness screens (§7) must see.
    fn apply_to_spec(&self, spec: &mut DatabaseSpec) {
        match self {
            MutationStatement::Insert { table, geometry } => {
                if let Some(t) = spec.tables.iter_mut().find(|t| &t.name == table) {
                    t.geometries.push(geometry.clone());
                }
            }
            MutationStatement::Update {
                table,
                selector,
                replacement,
            } => {
                if let Some(t) = spec.tables.iter_mut().find(|t| &t.name == table) {
                    if let Some(g) = t.geometries.iter_mut().find(|g| *g == selector) {
                        *g = replacement.clone();
                    }
                }
            }
            MutationStatement::Delete { table, selector } => {
                if let Some(t) = spec.tables.iter_mut().find(|t| &t.name == table) {
                    if let Some(pos) = t.geometries.iter().position(|g| g == selector) {
                        t.geometries.remove(pos);
                    }
                }
            }
            // DDL touches no spec-visible geometry.
            MutationStatement::CreateIndex { .. }
            | MutationStatement::DropIndex { .. }
            | MutationStatement::CreateTable { .. }
            | MutationStatement::DropTable { .. }
            | MutationStatement::DisableSeqscan => {}
        }
    }
}

/// A full mutation script: one batch of statements per query index, applied
/// to both frames immediately before that query's AEI check.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MutationScript {
    batches: Vec<Vec<MutationStatement>>,
}

impl MutationScript {
    /// Generates the script for one iteration — a pure function of the
    /// arguments. Statements are generated in execution order against the
    /// evolving spec, so every UPDATE/DELETE selector addresses exactly one
    /// live row in each frame when it runs; candidates whose selector is
    /// ambiguous in either frame degrade to an INSERT instead.
    pub fn generate(
        spec: &DatabaseSpec,
        n_queries: usize,
        plan: &TransformPlan,
        generator_config: &GeneratorConfig,
        config: &MutationConfig,
        seed: u64,
    ) -> MutationScript {
        let n_batches = n_queries.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shapes = GeometryGenerator::new(generator_config.clone(), seed ^ 0x5a5a);
        let mut batches = vec![Vec::new(); n_batches];
        let mut evolved = spec.clone();
        let mut churned_indexes: Vec<(String, String)> = Vec::new();
        let mut scratch_tables: Vec<String> = Vec::new();
        let mut scratch_counter = 0usize;

        if config.index_churn {
            for table in &spec.tables {
                let statement = MutationStatement::CreateIndex {
                    name: format!("mut_idx_{}", table.name),
                    table: table.name.clone(),
                };
                churned_indexes.push((format!("mut_idx_{}", table.name), table.name.clone()));
                batches[0].push(statement);
            }
            batches[0].push(MutationStatement::DisableSeqscan);
        }

        // Schedule first, then generate in schedule order: the spec evolution
        // seen at generation time is exactly the one at execution time.
        let mut positions: Vec<usize> = (0..config.statements_per_run)
            .map(|_| rng.random_range(0..n_batches))
            .collect();
        positions.sort_unstable();

        for position in positions {
            let statement = Self::random_statement(
                &mut rng,
                &mut shapes,
                &evolved,
                plan,
                config.index_churn,
                &mut churned_indexes,
                &mut scratch_tables,
                &mut scratch_counter,
            );
            statement.apply_to_spec(&mut evolved);
            batches[position].push(statement);
        }
        MutationScript { batches }
    }

    /// Draws one statement against the current evolved state. UPDATE and
    /// DELETE dominate the mix (the acceptance criterion wants ≥ 30%
    /// UPDATE/DELETE/DROP), INSERT keeps tables from draining, and the
    /// DDL arms churn indexes and scratch tables.
    #[allow(clippy::too_many_arguments)]
    fn random_statement(
        rng: &mut StdRng,
        shapes: &mut GeometryGenerator,
        evolved: &DatabaseSpec,
        plan: &TransformPlan,
        index_churn: bool,
        churned_indexes: &mut Vec<(String, String)>,
        scratch_tables: &mut Vec<String>,
        scratch_counter: &mut usize,
    ) -> MutationStatement {
        let roll = rng.random_range(0..100u32);
        let table_pick = rng.next_u64();
        let row_pick = rng.next_u64();
        // One fixed draw order regardless of the chosen arm keeps each
        // statement's RNG consumption constant, so the schedule and every
        // later statement are insensitive to which arm a roll lands on.
        let geometry = shapes.random_shape();

        let populated: Vec<usize> = evolved
            .tables
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.geometries.is_empty())
            .map(|(i, _)| i)
            .collect();
        let pick_row = |tables: &[usize]| -> Option<(String, Geometry)> {
            if tables.is_empty() {
                return None;
            }
            let table = &evolved.tables[tables[table_pick as usize % tables.len()]];
            let selector = table.geometries[row_pick as usize % table.geometries.len()].clone();
            // Screen in both frames: the selector must address exactly one
            // row in SDB1 *and* exactly one in SDB2 (canonicalization can
            // merge distinct SDB1 geometries).
            let count1 = table.geometries.iter().filter(|g| **g == selector).count();
            let mapped = plan.apply_geometry(&selector);
            let count2 = table
                .geometries
                .iter()
                .filter(|g| plan.apply_geometry(g) == mapped)
                .count();
            (count1 == 1 && count2 == 1).then(|| (table.name.clone(), selector))
        };
        let insert_somewhere = |geometry: Geometry| -> MutationStatement {
            let tables = &evolved.tables;
            let table = tables[table_pick as usize % tables.len()].name.clone();
            MutationStatement::Insert { table, geometry }
        };

        match roll {
            // UPDATE: 35%.
            0..=34 => match pick_row(&populated) {
                Some((table, selector)) => MutationStatement::Update {
                    table,
                    selector,
                    replacement: geometry,
                },
                None => insert_somewhere(geometry),
            },
            // DELETE: 20%.
            35..=54 => match pick_row(&populated) {
                Some((table, selector)) => MutationStatement::Delete { table, selector },
                None => insert_somewhere(geometry),
            },
            // INSERT: 25%.
            55..=79 => insert_somewhere(geometry),
            // Index churn: 10% (degrades to INSERT when churn is off).
            80..=89 => {
                if !index_churn {
                    return insert_somewhere(geometry);
                }
                if let Some(pos) = (!churned_indexes.is_empty())
                    .then(|| table_pick as usize % churned_indexes.len())
                {
                    let (name, _) = churned_indexes.remove(pos);
                    MutationStatement::DropIndex { name }
                } else {
                    let table = evolved.tables[table_pick as usize % evolved.tables.len()]
                        .name
                        .clone();
                    let name = format!("mut_idx_{table}");
                    churned_indexes.push((name.clone(), table.clone()));
                    MutationStatement::CreateIndex { name, table }
                }
            }
            // Scratch-table create/drop pairs: 10%.
            _ => {
                if let Some(name) = scratch_tables.pop() {
                    MutationStatement::DropTable { name }
                } else {
                    *scratch_counter += 1;
                    let name = format!("mut_scratch_{scratch_counter}");
                    scratch_tables.push(name.clone());
                    MutationStatement::CreateTable { name }
                }
            }
        }
    }

    /// Whether the script schedules no statements at all.
    pub fn is_empty(&self) -> bool {
        self.batches.iter().all(|b| b.is_empty())
    }

    /// Total number of scheduled statements.
    pub fn statement_count(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// Fraction of scheduled statements that are UPDATE/DELETE/DROP.
    pub fn destructive_fraction(&self) -> f64 {
        let total = self.statement_count();
        if total == 0 {
            return 0.0;
        }
        let destructive = self
            .batches
            .iter()
            .flatten()
            .filter(|s| s.is_destructive())
            .count();
        destructive as f64 / total as f64
    }

    /// The schedule as `(query_index, statement)` pairs, in execution order
    /// (what the replay setup hash folds in).
    pub fn schedule(&self) -> impl Iterator<Item = (usize, &MutationStatement)> {
        self.batches
            .iter()
            .enumerate()
            .flat_map(|(qi, batch)| batch.iter().map(move |s| (qi, s)))
    }

    /// The batch scheduled before query `query_index`, rendered for `SDB1`.
    pub fn frame1_batch(&self, query_index: usize) -> Vec<String> {
        self.batches
            .get(query_index)
            .map(|batch| batch.iter().map(|s| s.sql1()).collect())
            .unwrap_or_default()
    }

    /// The batch scheduled before query `query_index`, rendered for `SDB2`.
    pub fn frame2_batch(&self, query_index: usize, plan: &TransformPlan) -> Vec<String> {
        self.batches
            .get(query_index)
            .map(|batch| batch.iter().map(|s| s.sql2(plan)).collect())
            .unwrap_or_default()
    }

    /// Applies the batch scheduled before query `query_index` to the evolved
    /// frame-1 spec (the oracle's view of what `SDB1` now contains).
    pub fn apply_batch_to_spec(&self, query_index: usize, spec: &mut DatabaseSpec) {
        if let Some(batch) = self.batches.get(query_index) {
            for statement in batch {
                statement.apply_to_spec(spec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::AffineStrategy;
    use spatter_geom::wkt::parse_wkt;

    fn small_spec() -> DatabaseSpec {
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(1 1)").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(2 2)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("LINESTRING(0 0,3 1)").unwrap());
        spec
    }

    fn generate(seed: u64) -> MutationScript {
        let spec = small_spec();
        let plan = TransformPlan::random(AffineStrategy::GeneralInteger, seed ^ 0xaff1e);
        MutationScript::generate(
            &spec,
            6,
            &plan,
            &GeneratorConfig::default(),
            &MutationConfig::default(),
            seed,
        )
    }

    #[test]
    fn scripts_are_deterministic_per_seed() {
        assert_eq!(generate(7), generate(7));
        assert_ne!(generate(7), generate(8));
    }

    #[test]
    fn default_mix_is_mutation_heavy() {
        // Averaged over seeds the UPDATE/DELETE/DROP share clears the ≥ 30%
        // acceptance bar comfortably; assert per script with a margin.
        let mut heavy = 0;
        for seed in 0..20 {
            let script = generate(seed);
            assert!(script.statement_count() >= MutationConfig::default().statements_per_run);
            if script.destructive_fraction() >= 0.3 {
                heavy += 1;
            }
        }
        assert!(heavy >= 15, "only {heavy}/20 scripts were mutation-heavy");
    }

    #[test]
    fn index_churn_scripts_open_with_indexes_and_seqscan_off() {
        let script = generate(3);
        let first = script.frame1_batch(0);
        assert!(first.iter().any(|s| s.starts_with("CREATE INDEX mut_idx_")));
        assert!(first.contains(&"SET enable_seqscan = false".to_string()));
        // Frame 2 renders identical DDL (no geometry literals to map).
        let plan = TransformPlan::random(AffineStrategy::GeneralInteger, 3 ^ 0xaff1e);
        assert_eq!(script.frame2_batch(0, &plan)[0], first[0]);
    }

    #[test]
    fn frame2_statements_map_geometry_literals_through_the_plan() {
        let statement = MutationStatement::Update {
            table: "t0".into(),
            selector: parse_wkt("POINT(1 1)").unwrap(),
            replacement: parse_wkt("POINT(2 3)").unwrap(),
        };
        let plan = TransformPlan::from_matrix(
            false,
            spatter_geom::AffineMatrix::new(2.0, 0.0, 0.0, 2.0, 10.0, 0.0),
        )
        .unwrap();
        assert_eq!(
            statement.sql1(),
            "UPDATE t0 SET g = 'POINT(2 3)'::geometry WHERE g = 'POINT(1 1)'::geometry"
        );
        assert_eq!(
            statement.sql2(&plan),
            "UPDATE t0 SET g = 'POINT(14 6)'::geometry WHERE g = 'POINT(12 2)'::geometry"
        );
    }

    #[test]
    fn apply_to_spec_mirrors_the_statement_semantics() {
        let mut spec = small_spec();
        MutationStatement::Delete {
            table: "t0".into(),
            selector: parse_wkt("POINT(1 1)").unwrap(),
        }
        .apply_to_spec(&mut spec);
        assert_eq!(spec.tables[0].geometries.len(), 1);
        MutationStatement::Update {
            table: "t0".into(),
            selector: parse_wkt("POINT(2 2)").unwrap(),
            replacement: parse_wkt("POINT(9 9)").unwrap(),
        }
        .apply_to_spec(&mut spec);
        assert_eq!(
            spec.tables[0].geometries[0],
            parse_wkt("POINT(9 9)").unwrap()
        );
        MutationStatement::Insert {
            table: "t1".into(),
            geometry: parse_wkt("POINT(5 5)").unwrap(),
        }
        .apply_to_spec(&mut spec);
        assert_eq!(spec.tables[1].geometries.len(), 2);
    }

    #[test]
    fn selectors_address_exactly_one_row_in_both_frames() {
        // Walk each script batch by batch, mirroring the runner: every
        // UPDATE/DELETE selector must match exactly one geometry in the
        // evolved frame-1 spec and exactly one mapped geometry in frame 2.
        for seed in 0..10u64 {
            let spec = small_spec();
            let plan = TransformPlan::random(AffineStrategy::GeneralInteger, seed ^ 0xaff1e);
            let script = MutationScript::generate(
                &spec,
                6,
                &plan,
                &GeneratorConfig::default(),
                &MutationConfig {
                    statements_per_run: 30,
                    index_churn: false,
                },
                seed,
            );
            let mut evolved = spec.clone();
            for qi in 0..6 {
                for statement in &script.batches[qi] {
                    if let MutationStatement::Update {
                        table, selector, ..
                    }
                    | MutationStatement::Delete { table, selector } = statement
                    {
                        let t = evolved.tables.iter().find(|t| &t.name == table).unwrap();
                        let count1 = t.geometries.iter().filter(|g| *g == selector).count();
                        let mapped = plan.apply_geometry(selector);
                        let count2 = t
                            .geometries
                            .iter()
                            .filter(|g| plan.apply_geometry(g) == mapped)
                            .count();
                        assert_eq!(count1, 1, "seed {seed}: frame-1 selector ambiguous");
                        assert_eq!(count2, 1, "seed {seed}: frame-2 selector ambiguous");
                    }
                    statement.apply_to_spec(&mut evolved);
                }
            }
        }
    }

    #[test]
    fn empty_script_reports_empty() {
        let script = MutationScript::default();
        assert!(script.is_empty());
        assert_eq!(script.statement_count(), 0);
        assert_eq!(script.destructive_fraction(), 0.0);
        assert!(script.frame1_batch(0).is_empty());
    }
}
