//! The geometry-aware generator (Algorithm 1, §4.1).
//!
//! Two strategies produce geometries:
//!
//! * the **random-shape strategy** picks a random geometry type and fills in
//!   its syntax with random coordinates — the result is syntactically valid
//!   but may be semantically invalid (e.g. a bow-tie polygon), which is
//!   deliberate;
//! * the **derivative strategy** picks an editing function of Table 1 and
//!   applies it to geometries already in the database, producing new
//!   geometries with richer topological relationships to the existing ones.
//!   A failed derivation yields an EMPTY geometry (Algorithm 1, line 22).
//!
//! Coordinates are generated as small integers so that the affine
//! transformation of the AEI construction never introduces floating-point
//! error (§4.2); fractional coordinates still appear through derived
//! geometries (centroids, intersections of derived shapes, …), which is what
//! exercises the precision-sensitive engine paths.

use crate::guidance::EditBias;
use crate::rng::seq::IndexedRandom;
use crate::rng::StdRng;
use crate::rng::{RngExt, SeedableRng};
use crate::spec::DatabaseSpec;
use spatter_geom::{
    Coord, Geometry, GeometryCollection, GeometryType, LineString, MultiLineString, MultiPoint,
    MultiPolygon, Point, Polygon,
};
use spatter_topo::editing::{self, EditFunction};

/// Which generation strategies are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerationStrategy {
    /// Only the random-shape strategy (the paper's RSG baseline, §5.4).
    RandomShapeOnly,
    /// Random-shape + derivative strategies (the geometry-aware generator).
    GeometryAware,
}

/// Configuration of the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// `N`: number of geometries per generated database.
    pub num_geometries: usize,
    /// `m`: number of tables.
    pub num_tables: usize,
    /// Which strategies are enabled.
    pub strategy: GenerationStrategy,
    /// Coordinates are drawn from `-coordinate_range..=coordinate_range`.
    pub coordinate_range: i64,
    /// Probability of choosing the random-shape strategy for each geometry
    /// when both strategies are enabled (Algorithm 1, line 6).
    pub random_shape_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_geometries: 10,
            num_tables: 2,
            strategy: GenerationStrategy::GeometryAware,
            coordinate_range: 100,
            random_shape_probability: 0.5,
        }
    }
}

/// The geometry-aware generator.
pub struct GeometryGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    /// Optional coverage-guided weighting of the derivative strategy's
    /// editing-function choice. `None` keeps the historical uniform draw
    /// (and its exact RNG stream).
    edit_bias: Option<EditBias>,
}

impl GeometryGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        GeometryGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            edit_bias: None,
        }
    }

    /// Biases the derivative strategy's editing-function choice (the
    /// coverage-guided campaign wires the cold-probe weights in here). The
    /// weighted draw consumes one RNG value, like the uniform draw it
    /// replaces.
    pub fn with_edit_bias(mut self, bias: EditBias) -> Self {
        self.edit_bias = Some(bias);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates a spatial database spec (Algorithm 1's `Generate`).
    pub fn generate_database(&mut self) -> DatabaseSpec {
        let mut spec = DatabaseSpec::with_tables(self.config.num_tables.max(1));

        // The first geometry always comes from the random-shape strategy
        // because nothing exists to derive from yet (Algorithm 1, line 3).
        let first = self.random_shape();
        let table = self.rng.random_range(0..spec.tables.len());
        spec.tables[table].geometries.push(first);

        for _ in 1..self.config.num_geometries.max(1) {
            let use_random_shape = match self.config.strategy {
                GenerationStrategy::RandomShapeOnly => true,
                GenerationStrategy::GeometryAware => {
                    self.rng.random_bool(self.config.random_shape_probability)
                }
            };
            let geometry = if use_random_shape {
                self.random_shape()
            } else {
                self.derive(&spec)
            };
            let table = self.rng.random_range(0..spec.tables.len());
            spec.tables[table].geometries.push(geometry);
        }
        spec
    }

    /// The random-shape strategy: a random geometry type filled with random
    /// integer coordinates.
    pub fn random_shape(&mut self) -> Geometry {
        let gtype = *GeometryType::ALL
            .choose(&mut self.rng)
            .expect("type list is non-empty");
        self.random_of_type(gtype, 0)
    }

    fn random_coord(&mut self) -> Coord {
        let range = self.config.coordinate_range.max(1);
        Coord::new(
            self.rng.random_range(-range..=range) as f64,
            self.rng.random_range(-range..=range) as f64,
        )
    }

    fn random_of_type(&mut self, gtype: GeometryType, depth: usize) -> Geometry {
        // EMPTY geometries are generated with a small probability at every
        // level, because EMPTY handling is one of the dominant bug-trigger
        // patterns (§5.2).
        if self.rng.random_bool(0.08) {
            return Geometry::empty_of(gtype);
        }
        match gtype {
            GeometryType::Point => Geometry::Point(Point::from_coord(self.random_coord())),
            GeometryType::LineString => Geometry::LineString(self.random_linestring()),
            GeometryType::Polygon => Geometry::Polygon(self.random_polygon()),
            GeometryType::MultiPoint => {
                let n = self.rng.random_range(1..=3);
                Geometry::MultiPoint(MultiPoint::new(
                    (0..n)
                        .map(|_| {
                            if self.rng.random_bool(0.15) {
                                Point::empty()
                            } else {
                                Point::from_coord(self.random_coord())
                            }
                        })
                        .collect(),
                ))
            }
            GeometryType::MultiLineString => {
                let n = self.rng.random_range(1..=3);
                Geometry::MultiLineString(MultiLineString::new(
                    (0..n)
                        .map(|_| {
                            if self.rng.random_bool(0.15) {
                                LineString::empty()
                            } else {
                                self.random_linestring()
                            }
                        })
                        .collect(),
                ))
            }
            GeometryType::MultiPolygon => {
                let n = self.rng.random_range(1..=2);
                Geometry::MultiPolygon(MultiPolygon::new(
                    (0..n).map(|_| self.random_polygon()).collect(),
                ))
            }
            GeometryType::GeometryCollection => {
                if depth >= 2 {
                    return Geometry::Point(Point::from_coord(self.random_coord()));
                }
                let n = self.rng.random_range(1..=3);
                let members = (0..n)
                    .map(|_| {
                        let member_type = *GeometryType::ALL
                            .choose(&mut self.rng)
                            .expect("type list is non-empty");
                        self.random_of_type(member_type, depth + 1)
                    })
                    .collect();
                Geometry::GeometryCollection(GeometryCollection::new(members))
            }
        }
    }

    fn random_linestring(&mut self) -> LineString {
        let n = self.rng.random_range(2..=5);
        let mut coords: Vec<Coord> = (0..n).map(|_| self.random_coord()).collect();
        // Occasionally close the ring or duplicate a vertex: closed rings
        // feed Polygonize, duplicated vertices feed the canonicalization and
        // the duplicate-vertex fault triggers.
        if self.rng.random_bool(0.2) {
            coords.push(coords[0]);
        } else if self.rng.random_bool(0.2) && coords.len() >= 2 {
            let dup = coords[coords.len() / 2];
            coords.insert(coords.len() / 2, dup);
        }
        LineString::new(coords)
    }

    fn random_polygon(&mut self) -> Polygon {
        // A rectangle or triangle anchored at a random corner: guaranteed
        // closed at the syntax level; larger shapes are produced by the
        // derivative strategy (convex hulls, envelopes, …).
        let origin = self.random_coord();
        let w = self
            .rng
            .random_range(1..=self.config.coordinate_range.max(2)) as f64;
        let h = self
            .rng
            .random_range(1..=self.config.coordinate_range.max(2)) as f64;
        let coords = if self.rng.random_bool(0.5) {
            vec![
                origin,
                Coord::new(origin.x + w, origin.y),
                Coord::new(origin.x + w, origin.y + h),
                Coord::new(origin.x, origin.y + h),
                origin,
            ]
        } else {
            vec![
                origin,
                Coord::new(origin.x + w, origin.y),
                Coord::new(origin.x, origin.y + h),
                origin,
            ]
        };
        let mut polygon = Polygon::from_exterior(LineString::new(coords));
        // Occasionally generate a self-intersecting (invalid) quad instead,
        // mirroring the paper's bow-tie example.
        if self.rng.random_bool(0.1) {
            let a = self.random_coord();
            let b = self.random_coord();
            let c = self.random_coord();
            let d = self.random_coord();
            polygon = Polygon::from_exterior(LineString::new(vec![a, b, c, d, a]));
        }
        polygon
    }

    /// The derivative strategy (Algorithm 1, `Derive`).
    pub fn derive(&mut self, spec: &DatabaseSpec) -> Geometry {
        let existing: Vec<&Geometry> = spec
            .tables
            .iter()
            .flat_map(|t| t.geometries.iter())
            .collect();
        if existing.is_empty() {
            return self.random_shape();
        }
        let edit = match &self.edit_bias {
            None => *EditFunction::ALL
                .choose(&mut self.rng)
                .expect("edit function list is non-empty"),
            Some(bias) => bias.choose(&mut self.rng),
        };
        let pick = |rng: &mut StdRng| -> Geometry {
            (*existing
                .choose(rng)
                .expect("existing geometries are non-empty"))
            .clone()
        };
        let result = match edit {
            EditFunction::SetPoint => {
                let line = pick(&mut self.rng);
                let point = Geometry::Point(Point::from_coord(self.random_coord()));
                let index = self.rng.random_range(0..6);
                editing::set_point(&line, index, &point)
            }
            EditFunction::Polygonize => editing::polygonize(&pick(&mut self.rng)),
            EditFunction::DumpRings => editing::dump_rings(&pick(&mut self.rng)),
            EditFunction::ForcePolygonCW => editing::force_polygon_cw(&pick(&mut self.rng)),
            EditFunction::GeometryN => {
                let g = pick(&mut self.rng);
                let n = self.rng.random_range(1..=3);
                editing::geometry_n(&g, n)
            }
            EditFunction::CollectionExtract => {
                let g = pick(&mut self.rng);
                let target = *[
                    GeometryType::Point,
                    GeometryType::LineString,
                    GeometryType::Polygon,
                ]
                .choose(&mut self.rng)
                .expect("non-empty");
                editing::collection_extract(&g, target)
            }
            EditFunction::Boundary => editing::boundary_of(&pick(&mut self.rng)),
            EditFunction::ConvexHull => editing::convex_hull_of(&pick(&mut self.rng)),
            EditFunction::Envelope => editing::envelope_of(&pick(&mut self.rng)),
            EditFunction::Reverse => editing::reverse(&pick(&mut self.rng)),
            EditFunction::PointN => {
                let g = pick(&mut self.rng);
                let n = self.rng.random_range(1..=4);
                editing::point_n(&g, n)
            }
            EditFunction::Collect => {
                let a = pick(&mut self.rng);
                let b = pick(&mut self.rng);
                editing::collect(&a, &b)
            }
        };
        // Algorithm 1 line 21–22: failed derivations become EMPTY geometries.
        result.unwrap_or_else(|_| Geometry::empty_of(GeometryType::GeometryCollection))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(strategy: GenerationStrategy, seed: u64) -> GeometryGenerator {
        GeometryGenerator::new(
            GeneratorConfig {
                num_geometries: 20,
                num_tables: 3,
                strategy,
                coordinate_range: 50,
                random_shape_probability: 0.5,
            },
            seed,
        )
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generator(GenerationStrategy::GeometryAware, 7).generate_database();
        let b = generator(GenerationStrategy::GeometryAware, 7).generate_database();
        let c = generator(GenerationStrategy::GeometryAware, 8).generate_database();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generates_requested_number_of_geometries_and_tables() {
        let spec = generator(GenerationStrategy::GeometryAware, 1).generate_database();
        assert_eq!(spec.geometry_count(), 20);
        assert_eq!(spec.tables.len(), 3);
    }

    #[test]
    fn random_shapes_parse_back_from_wkt() {
        use spatter_geom::wkt::{parse_wkt, write_wkt};
        let mut generator = generator(GenerationStrategy::RandomShapeOnly, 3);
        for _ in 0..200 {
            let g = generator.random_shape();
            let wkt = write_wkt(&g);
            let parsed = parse_wkt(&wkt).unwrap_or_else(|e| panic!("{wkt}: {e}"));
            assert_eq!(parsed, g, "round trip of {wkt}");
        }
    }

    #[test]
    fn random_shape_coordinates_are_integers_within_range() {
        let mut generator = generator(GenerationStrategy::RandomShapeOnly, 11);
        for _ in 0..100 {
            let g = generator.random_shape();
            g.for_each_coord(&mut |c| {
                assert_eq!(c.x.fract(), 0.0);
                assert_eq!(c.y.fract(), 0.0);
                assert!(c.x.abs() <= 100.0 && c.y.abs() <= 100.0);
            });
        }
    }

    #[test]
    fn geometry_aware_generator_produces_derived_and_empty_geometries() {
        let mut generator = GeometryGenerator::new(
            GeneratorConfig {
                num_geometries: 200,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 20,
                random_shape_probability: 0.3,
            },
            42,
        );
        let spec = generator.generate_database();
        let all: Vec<&Geometry> = spec
            .tables
            .iter()
            .flat_map(|t| t.geometries.iter())
            .collect();
        assert_eq!(all.len(), 200);
        // The derivative strategy produces at least some EMPTY geometries
        // (failed derivations) and some collections.
        assert!(all.iter().any(|g| g.is_empty()));
        assert!(all
            .iter()
            .any(|g| matches!(g, Geometry::GeometryCollection(_))));
    }

    #[test]
    fn edit_bias_is_deterministic_and_changes_the_stream() {
        use crate::guidance::Guidance;
        use spatter_topo::coverage::CoverageSnapshot;
        // All probes cold: every editing function is boosted equally, but
        // the weighted draw maps raw RNG values differently from the uniform
        // `choose`, so the derived stream diverges from the unbiased one
        // while staying deterministic per seed.
        let guidance = Guidance::from_snapshot(&CoverageSnapshot::new());
        let biased = |seed: u64| {
            GeometryGenerator::new(
                GeneratorConfig {
                    random_shape_probability: 0.2,
                    ..GeneratorConfig::default()
                },
                seed,
            )
            .with_edit_bias(guidance.edit_bias())
            .generate_database()
        };
        assert_eq!(biased(11), biased(11));
        let unbiased = GeometryGenerator::new(
            GeneratorConfig {
                random_shape_probability: 0.2,
                ..GeneratorConfig::default()
            },
            11,
        )
        .generate_database();
        // Same seed, same shape count; the bias only redirects derivation.
        assert_eq!(biased(11).geometry_count(), unbiased.geometry_count());
    }

    #[test]
    fn derive_falls_back_to_random_shape_for_empty_database() {
        let mut generator = generator(GenerationStrategy::GeometryAware, 5);
        let empty = DatabaseSpec::with_tables(1);
        let derived = generator.derive(&empty);
        // No table content to derive from: still produces a geometry.
        let _ = derived;
    }

    #[test]
    fn all_generated_databases_load_into_the_reference_engine() {
        use spatter_sdb::{Engine, EngineProfile};
        for seed in 0..5 {
            let spec = generator(GenerationStrategy::GeometryAware, seed).generate_database();
            let mut engine = Engine::reference(EngineProfile::PostgisLike);
            for statement in spec.to_sql() {
                engine
                    .execute(&statement)
                    .unwrap_or_else(|e| panic!("seed {seed}: {statement}: {e}"));
            }
        }
    }
}
