//! The versioned, line-delimited wire codec of the distributed campaign
//! subsystem.
//!
//! Supervisor and worker processes exchange single-line messages over
//! stdio, exactly like the `spatter-sdb-server` SQL protocol one layer
//! below — but the payloads here are whole campaign structures:
//! [`CampaignConfig`] (with its backend rendered as a
//! [`crate::backend::BackendSpec`] and its oracle suite inline), the frozen
//! guidance [`CoverageSnapshot`], and per-iteration [`IterationRecord`]s
//! with their [`Finding`]s and probe-coverage deltas. The workspace has no
//! serde, so the codec is hand-rolled on std alone: messages are
//! whitespace-separated token streams with percent-escaped strings, decoded
//! by a [`TokenReader`] that returns structured [`WireError`]s — never
//! panics — on truncated, malformed or alien input.
//!
//! # Versioning
//!
//! Every worker opens its stream with a `hello <version>` handshake
//! ([`encode_handshake`]); the supervisor rejects any version other than
//! its own [`WIRE_VERSION`] with [`WireError::VersionMismatch`]. The
//! protocol is spoken between binaries of one build in practice, so
//! version equality — not negotiation — is the contract.
//!
//! # Exactness
//!
//! The distributed merge must be byte-identical to the in-process one, so
//! nothing on the wire may lose precision: `f64`s travel as their IEEE-754
//! bit patterns ([`f64::to_bits`]), durations as integer nanoseconds, and
//! probe names are re-interned against the static probe universe on decode
//! (an unknown probe is a structured error, not a silently minted string).

use crate::backend::BackendSpec;
use crate::campaign::{CampaignConfig, Finding, FindingKind};
use crate::generator::{GenerationStrategy, GeneratorConfig};
use crate::guidance::{self, GuidanceMode};
use crate::runner::{IterationRecord, OracleKind, ShardReport};
use crate::transform::AffineStrategy;
use spatter_sdb::{EngineProfile, FaultSet};
use spatter_topo::coverage::CoverageSnapshot;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// The wire protocol version. Bumped whenever any message layout changes;
/// supervisor and worker must agree exactly. Version 2 added the replay
/// frame (four per-iteration state hashes) to every record message.
/// Version 3 added the epoch-barrier guidance exchange: the campaign's
/// `guidance_epoch` field and the supervisor's `epoch <snapshot>` broadcast.
/// Version 4 added the mutation-workload marker (`no-mutations` /
/// `mutations <statements_per_run> <index_churn>`) to the campaign layout.
/// Version 5 added the external-adapter backend spec (`external <dialect>`),
/// the divergence-side token on findings, and the per-query outcome digest
/// stream on record replay frames — the matrix subsystem's additions, so
/// matrix cells can ride the fabric.
pub const WIRE_VERSION: u32 = 5;

/// Why a wire message could not be decoded (or a value not encoded).
/// Structured, so callers can distinguish a harness misconfiguration
/// (version or backend problems) from corrupted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The token stream ended before the message was complete.
    Truncated,
    /// A token did not have the expected shape.
    Malformed {
        /// What the decoder was trying to read.
        expected: &'static str,
        /// The offending token (or a description of it).
        got: String,
    },
    /// A message line carried tokens past the end of its payload.
    TrailingInput(String),
    /// A percent-escape in a string token was invalid.
    BadEscape(String),
    /// A probe name that is not part of the static probe universe.
    UnknownProbe(String),
    /// A fault name [`spatter_sdb::FaultId::from_name`] does not know.
    UnknownFault(String),
    /// An engine profile name [`EngineProfile::from_name`] does not know.
    UnknownProfile(String),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our [`WIRE_VERSION`].
        ours: u32,
        /// The version the peer announced.
        theirs: u32,
    },
    /// The campaign's backend cannot be described as a
    /// [`BackendSpec`] (its `wire_spec` is `None`), so the campaign cannot
    /// be distributed.
    UnsupportedBackend(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::Malformed { expected, got } => {
                write!(f, "expected {expected}, got {got:?}")
            }
            WireError::TrailingInput(rest) => write!(f, "trailing input {rest:?}"),
            WireError::BadEscape(token) => write!(f, "bad string escape in {token:?}"),
            WireError::UnknownProbe(name) => write!(f, "unknown probe {name:?}"),
            WireError::UnknownFault(name) => write!(f, "unknown fault {name:?}"),
            WireError::UnknownProfile(name) => write!(f, "unknown profile {name:?}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "wire version mismatch: ours {ours}, peer {theirs}")
            }
            WireError::UnsupportedBackend(name) => {
                write!(
                    f,
                    "backend {name} has no wire spec and cannot be distributed"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Token stream primitives
// ---------------------------------------------------------------------------

/// Escapes a string into a single whitespace-free token: `%` and every
/// whitespace byte become `%XX`, and the empty string becomes the marker
/// token `%-` (an empty token would vanish when the line is split).
/// Crate-visible: the matrix report artifact ([`crate::matrix`]) reuses the
/// same escaping for backend labels.
pub(crate) fn escape(text: &str) -> String {
    if text.is_empty() {
        return "%-".to_string();
    }
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape`]. Any malformed escape is a [`WireError::BadEscape`] —
/// including escaped bytes ≥ 0x80, which [`escape`] never emits (it only
/// escapes `%` and ASCII whitespace; multi-byte characters pass through as
/// UTF-8). Accepting them would silently decode `%e9` as U+00E9, a byte
/// sequence the encoder cannot have produced.
pub(crate) fn unescape(token: &str) -> Result<String, WireError> {
    if token == "%-" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        if hex.len() != 2 {
            return Err(WireError::BadEscape(token.to_string()));
        }
        let byte =
            u8::from_str_radix(&hex, 16).map_err(|_| WireError::BadEscape(token.to_string()))?;
        if !byte.is_ascii() {
            return Err(WireError::BadEscape(token.to_string()));
        }
        out.push(byte as char);
    }
    Ok(out)
}

/// Builds one message line from whitespace-free tokens.
#[derive(Debug, Default)]
pub struct TokenWriter {
    buf: String,
}

impl TokenWriter {
    /// An empty writer.
    pub fn new() -> Self {
        TokenWriter::default()
    }

    /// Appends a token that is known to contain no whitespace (keywords,
    /// numbers, fault/profile names).
    fn push_raw(&mut self, token: &str) {
        debug_assert!(
            !token.is_empty() && !token.contains(char::is_whitespace),
            "raw token {token:?} would corrupt the line framing"
        );
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
        self.buf.push_str(token);
    }

    fn push_str(&mut self, text: &str) {
        let escaped = escape(text);
        self.push_raw(&escaped);
    }

    fn push_u64(&mut self, value: u64) {
        self.push_raw(&value.to_string());
    }

    fn push_usize(&mut self, value: usize) {
        self.push_raw(&value.to_string());
    }

    fn push_i64(&mut self, value: i64) {
        self.push_raw(&value.to_string());
    }

    /// `f64`s travel as IEEE-754 bit patterns so the decode is bit-exact.
    fn push_f64(&mut self, value: f64) {
        self.push_raw(&value.to_bits().to_string());
    }

    fn push_bool(&mut self, value: bool) {
        self.push_raw(if value { "1" } else { "0" });
    }

    fn push_duration(&mut self, value: Duration) {
        self.push_raw(&value.as_nanos().to_string());
    }

    /// The finished single-line message.
    pub fn finish(self) -> String {
        debug_assert!(!self.buf.contains('\n'));
        self.buf
    }
}

/// Consumes one message line token by token, with typed accessors that
/// return structured errors instead of panicking.
#[derive(Debug)]
pub struct TokenReader<'a> {
    tokens: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> TokenReader<'a> {
    /// A reader over one message line.
    pub fn new(line: &'a str) -> Self {
        TokenReader {
            tokens: line.split_ascii_whitespace(),
        }
    }

    fn next(&mut self) -> Result<&'a str, WireError> {
        self.tokens.next().ok_or(WireError::Truncated)
    }

    fn next_str(&mut self) -> Result<String, WireError> {
        unescape(self.next()?)
    }

    fn next_u64(&mut self, expected: &'static str) -> Result<u64, WireError> {
        let token = self.next()?;
        token.parse().map_err(|_| WireError::Malformed {
            expected,
            got: token.to_string(),
        })
    }

    fn next_usize(&mut self, expected: &'static str) -> Result<usize, WireError> {
        let value = self.next_u64(expected)?;
        usize::try_from(value).map_err(|_| WireError::Malformed {
            expected,
            got: value.to_string(),
        })
    }

    fn next_i64(&mut self, expected: &'static str) -> Result<i64, WireError> {
        let token = self.next()?;
        token.parse().map_err(|_| WireError::Malformed {
            expected,
            got: token.to_string(),
        })
    }

    fn next_u32(&mut self, expected: &'static str) -> Result<u32, WireError> {
        let value = self.next_u64(expected)?;
        u32::try_from(value).map_err(|_| WireError::Malformed {
            expected,
            got: value.to_string(),
        })
    }

    fn next_f64(&mut self, expected: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.next_u64(expected)?))
    }

    fn next_bool(&mut self, expected: &'static str) -> Result<bool, WireError> {
        match self.next()? {
            "1" => Ok(true),
            "0" => Ok(false),
            other => Err(WireError::Malformed {
                expected,
                got: other.to_string(),
            }),
        }
    }

    fn next_duration(&mut self, expected: &'static str) -> Result<Duration, WireError> {
        Ok(Duration::from_nanos(self.next_u64(expected)?))
    }

    fn expect(&mut self, literal: &'static str) -> Result<(), WireError> {
        let token = self.next()?;
        if token == literal {
            Ok(())
        } else {
            Err(WireError::Malformed {
                expected: literal,
                got: token.to_string(),
            })
        }
    }

    /// Asserts the message is fully consumed.
    pub fn finish(mut self) -> Result<(), WireError> {
        match self.tokens.next() {
            None => Ok(()),
            Some(extra) => {
                let mut rest = extra.to_string();
                for token in self.tokens.take(4) {
                    rest.push(' ');
                    rest.push_str(token);
                }
                Err(WireError::TrailingInput(rest))
            }
        }
    }
}

/// Re-interns a decoded probe name against the static probe universe so
/// records can carry `&'static str` names. Unknown names are structured
/// errors: the probe lists of supervisor and worker builds must agree.
fn intern_probe(name: &str) -> Result<&'static str, WireError> {
    static MAP: OnceLock<HashMap<&'static str, &'static str>> = OnceLock::new();
    MAP.get_or_init(|| {
        guidance::probe_universe()
            .into_iter()
            .map(|p| (p, p))
            .collect()
    })
    .get(name)
    .copied()
    .ok_or_else(|| WireError::UnknownProbe(name.to_string()))
}

// ---------------------------------------------------------------------------
// Domain value encoders / decoders
// ---------------------------------------------------------------------------

fn write_profile(writer: &mut TokenWriter, profile: EngineProfile) {
    writer.push_raw(profile.name());
}

fn read_profile(reader: &mut TokenReader) -> Result<EngineProfile, WireError> {
    let token = reader.next()?;
    EngineProfile::from_name(token).ok_or_else(|| WireError::UnknownProfile(token.to_string()))
}

fn write_faults(writer: &mut TokenWriter, faults: &FaultSet) {
    if faults.is_empty() {
        writer.push_raw("none");
    } else {
        // Comma-separated FaultId names: identifier characters only, so the
        // list is a single whitespace-free token by construction.
        writer.push_raw(&faults.to_names());
    }
}

fn read_faults(reader: &mut TokenReader) -> Result<FaultSet, WireError> {
    let token = reader.next()?;
    if token == "none" {
        return Ok(FaultSet::none());
    }
    FaultSet::parse_names(token).map_err(|_| WireError::UnknownFault(token.to_string()))
}

fn write_backend_spec(writer: &mut TokenWriter, spec: &BackendSpec) {
    match spec {
        BackendSpec::InProcess { profile, faults } => {
            writer.push_raw("in-process");
            write_profile(writer, *profile);
            write_faults(writer, faults);
        }
        BackendSpec::Stdio {
            command,
            profile,
            faults,
            hard_crash,
        } => {
            writer.push_raw("stdio");
            writer.push_str(&command.to_string_lossy());
            write_profile(writer, *profile);
            write_faults(writer, faults);
            writer.push_bool(*hard_crash);
        }
        BackendSpec::External { dialect } => {
            writer.push_raw("external");
            write_dialect(writer, dialect);
        }
    }
}

fn write_dialect(writer: &mut TokenWriter, dialect: &crate::matrix::DialectSpec) {
    writer.push_str(&dialect.name);
    writer.push_str(&dialect.command.to_string_lossy());
    writer.push_usize(dialect.args.len());
    for arg in &dialect.args {
        writer.push_str(arg);
    }
    write_profile(writer, dialect.profile);
    match &dialect.ready_prefix {
        None => writer.push_raw("no-ready"),
        Some(prefix) => {
            writer.push_raw("ready");
            writer.push_str(prefix);
        }
    }
    writer.push_str(&dialect.terminator);
    match &dialect.grammar {
        crate::matrix::ReplyGrammar::SdbServer => writer.push_raw("sdb-server"),
        crate::matrix::ReplyGrammar::Sentinel {
            echo_command,
            done_marker,
            error_prefixes,
        } => {
            writer.push_raw("sentinel");
            writer.push_str(echo_command);
            writer.push_str(done_marker);
            writer.push_usize(error_prefixes.len());
            for (prefix, crash) in error_prefixes {
                writer.push_str(prefix);
                writer.push_bool(*crash);
            }
        }
    }
}

fn read_dialect(reader: &mut TokenReader) -> Result<crate::matrix::DialectSpec, WireError> {
    let name = reader.next_str()?;
    let command = PathBuf::from(reader.next_str()?);
    let n_args = reader.next_usize("dialect arg count")?;
    let mut args = Vec::with_capacity(n_args.min(64));
    for _ in 0..n_args {
        args.push(reader.next_str()?);
    }
    let profile = read_profile(reader)?;
    let ready_prefix = match reader.next()? {
        "no-ready" => None,
        "ready" => Some(reader.next_str()?),
        other => {
            return Err(WireError::Malformed {
                expected: "dialect ready marker",
                got: other.to_string(),
            })
        }
    };
    let terminator = reader.next_str()?;
    let grammar = match reader.next()? {
        "sdb-server" => crate::matrix::ReplyGrammar::SdbServer,
        "sentinel" => {
            let echo_command = reader.next_str()?;
            let done_marker = reader.next_str()?;
            let n_prefixes = reader.next_usize("error prefix count")?;
            let mut error_prefixes = Vec::with_capacity(n_prefixes.min(64));
            for _ in 0..n_prefixes {
                let prefix = reader.next_str()?;
                let crash = reader.next_bool("error prefix crash flag")?;
                error_prefixes.push((prefix, crash));
            }
            crate::matrix::ReplyGrammar::Sentinel {
                echo_command,
                done_marker,
                error_prefixes,
            }
        }
        other => {
            return Err(WireError::Malformed {
                expected: "dialect reply grammar",
                got: other.to_string(),
            })
        }
    };
    Ok(crate::matrix::DialectSpec {
        name,
        command,
        args,
        profile,
        ready_prefix,
        terminator,
        grammar,
    })
}

fn read_backend_spec(reader: &mut TokenReader) -> Result<BackendSpec, WireError> {
    match reader.next()? {
        "in-process" => Ok(BackendSpec::InProcess {
            profile: read_profile(reader)?,
            faults: read_faults(reader)?,
        }),
        "stdio" => Ok(BackendSpec::Stdio {
            command: PathBuf::from(reader.next_str()?),
            profile: read_profile(reader)?,
            faults: read_faults(reader)?,
            hard_crash: reader.next_bool("hard-crash flag")?,
        }),
        "external" => Ok(BackendSpec::External {
            dialect: read_dialect(reader)?,
        }),
        other => Err(WireError::Malformed {
            expected: "backend spec kind",
            got: other.to_string(),
        }),
    }
}

fn write_oracle(writer: &mut TokenWriter, oracle: &OracleKind) {
    match oracle {
        OracleKind::Aei => writer.push_raw("aei"),
        OracleKind::Differential(profile) => {
            writer.push_raw("differential");
            write_profile(writer, *profile);
        }
        OracleKind::DifferentialTwin(spec) => {
            writer.push_raw("twin");
            write_backend_spec(writer, spec);
        }
        OracleKind::Index => writer.push_raw("index"),
        OracleKind::Tlp => writer.push_raw("tlp"),
    }
}

fn read_oracle(reader: &mut TokenReader) -> Result<OracleKind, WireError> {
    match reader.next()? {
        "aei" => Ok(OracleKind::Aei),
        "differential" => Ok(OracleKind::Differential(read_profile(reader)?)),
        "twin" => Ok(OracleKind::DifferentialTwin(read_backend_spec(reader)?)),
        "index" => Ok(OracleKind::Index),
        "tlp" => Ok(OracleKind::Tlp),
        other => Err(WireError::Malformed {
            expected: "oracle kind",
            got: other.to_string(),
        }),
    }
}

fn write_campaign(writer: &mut TokenWriter, config: &CampaignConfig) -> Result<(), WireError> {
    let spec = config
        .backend
        .wire_spec()
        .ok_or_else(|| WireError::UnsupportedBackend(config.backend.name()))?;
    write_backend_spec(writer, &spec);
    writer.push_usize(config.generator.num_geometries);
    writer.push_usize(config.generator.num_tables);
    writer.push_raw(match config.generator.strategy {
        GenerationStrategy::RandomShapeOnly => "random-shape",
        GenerationStrategy::GeometryAware => "geometry-aware",
    });
    writer.push_i64(config.generator.coordinate_range);
    writer.push_f64(config.generator.random_shape_probability);
    writer.push_usize(config.queries_per_run);
    writer.push_raw(match config.affine {
        AffineStrategy::CanonicalizationOnly => "canonicalization",
        AffineStrategy::GeneralInteger => "general",
        AffineStrategy::SimilarityInteger => "similarity",
    });
    writer.push_usize(config.iterations);
    match config.time_budget {
        None => writer.push_raw("unbounded"),
        Some(budget) => writer.push_duration(budget),
    }
    writer.push_bool(config.attribute_findings);
    writer.push_raw(match config.guidance {
        GuidanceMode::Off => "off",
        GuidanceMode::ColdProbe => "cold-probe",
    });
    match config.guidance_epoch {
        None => writer.push_raw("no-epoch"),
        Some(epoch) => {
            writer.push_raw("epoch");
            writer.push_usize(epoch);
        }
    }
    match &config.mutations {
        None => writer.push_raw("no-mutations"),
        Some(mutations) => {
            writer.push_raw("mutations");
            writer.push_usize(mutations.statements_per_run);
            writer.push_bool(mutations.index_churn);
        }
    }
    writer.push_usize(config.oracles.len());
    for oracle in &config.oracles {
        write_oracle(writer, oracle);
    }
    writer.push_u64(config.seed);
    Ok(())
}

fn read_campaign(reader: &mut TokenReader) -> Result<CampaignConfig, WireError> {
    let backend = read_backend_spec(reader)?.build();
    let num_geometries = reader.next_usize("num_geometries")?;
    let num_tables = reader.next_usize("num_tables")?;
    let strategy = match reader.next()? {
        "random-shape" => GenerationStrategy::RandomShapeOnly,
        "geometry-aware" => GenerationStrategy::GeometryAware,
        other => {
            return Err(WireError::Malformed {
                expected: "generation strategy",
                got: other.to_string(),
            })
        }
    };
    let coordinate_range = reader.next_i64("coordinate_range")?;
    let random_shape_probability = reader.next_f64("random_shape_probability")?;
    let queries_per_run = reader.next_usize("queries_per_run")?;
    let affine = match reader.next()? {
        "canonicalization" => AffineStrategy::CanonicalizationOnly,
        "general" => AffineStrategy::GeneralInteger,
        "similarity" => AffineStrategy::SimilarityInteger,
        other => {
            return Err(WireError::Malformed {
                expected: "affine strategy",
                got: other.to_string(),
            })
        }
    };
    let iterations = reader.next_usize("iterations")?;
    let time_budget = {
        let token = reader.next()?;
        if token == "unbounded" {
            None
        } else {
            let nanos: u64 = token.parse().map_err(|_| WireError::Malformed {
                expected: "time budget nanos",
                got: token.to_string(),
            })?;
            Some(Duration::from_nanos(nanos))
        }
    };
    let attribute_findings = reader.next_bool("attribute_findings")?;
    let guidance = match reader.next()? {
        "off" => GuidanceMode::Off,
        "cold-probe" => GuidanceMode::ColdProbe,
        other => {
            return Err(WireError::Malformed {
                expected: "guidance mode",
                got: other.to_string(),
            })
        }
    };
    let guidance_epoch = match reader.next()? {
        "no-epoch" => None,
        "epoch" => Some(reader.next_usize("guidance epoch length")?),
        other => {
            return Err(WireError::Malformed {
                expected: "guidance epoch marker",
                got: other.to_string(),
            })
        }
    };
    let mutations = match reader.next()? {
        "no-mutations" => None,
        "mutations" => Some(crate::mutation::MutationConfig {
            statements_per_run: reader.next_usize("mutation statements per run")?,
            index_churn: reader.next_bool("mutation index churn")?,
        }),
        other => {
            return Err(WireError::Malformed {
                expected: "mutation marker",
                got: other.to_string(),
            })
        }
    };
    let n_oracles = reader.next_usize("oracle count")?;
    let mut oracles = Vec::with_capacity(n_oracles.min(64));
    for _ in 0..n_oracles {
        oracles.push(read_oracle(reader)?);
    }
    if oracles.is_empty() {
        return Err(WireError::Malformed {
            expected: "non-empty oracle suite",
            got: "0 oracles".to_string(),
        });
    }
    let seed = reader.next_u64("seed")?;
    Ok(CampaignConfig {
        backend,
        generator: GeneratorConfig {
            num_geometries,
            num_tables,
            strategy,
            coordinate_range,
            random_shape_probability,
        },
        queries_per_run,
        affine,
        iterations,
        time_budget,
        attribute_findings,
        guidance,
        guidance_epoch,
        mutations,
        oracles,
        seed,
    })
}

fn write_snapshot(writer: &mut TokenWriter, snapshot: &CoverageSnapshot) {
    let entries: Vec<(&'static str, u64)> = snapshot.entries().collect();
    writer.push_usize(entries.len());
    for (probe, count) in entries {
        writer.push_str(probe);
        writer.push_u64(count);
    }
}

fn read_snapshot(reader: &mut TokenReader) -> Result<CoverageSnapshot, WireError> {
    let n = reader.next_usize("snapshot entry count")?;
    let mut snapshot = CoverageSnapshot::new();
    for _ in 0..n {
        let probe = intern_probe(&reader.next_str()?)?;
        let count = reader.next_u64("probe count")?;
        snapshot.absorb(&[(probe, count)]);
    }
    Ok(snapshot)
}

fn write_finding(writer: &mut TokenWriter, finding: &Finding) {
    writer.push_raw(match finding.kind {
        FindingKind::Logic => "logic",
        FindingKind::Crash => "crash",
    });
    writer.push_raw(finding.side.name());
    writer.push_str(&finding.description);
    writer.push_usize(finding.iteration);
    writer.push_duration(finding.elapsed);
    writer.push_usize(finding.attributed_faults.len());
    for fault in &finding.attributed_faults {
        writer.push_raw(&fault.name());
    }
}

fn read_finding(reader: &mut TokenReader) -> Result<Finding, WireError> {
    let kind = match reader.next()? {
        "logic" => FindingKind::Logic,
        "crash" => FindingKind::Crash,
        other => {
            return Err(WireError::Malformed {
                expected: "finding kind",
                got: other.to_string(),
            })
        }
    };
    let side = {
        let token = reader.next()?;
        crate::oracles::DivergenceSide::from_name(token).ok_or_else(|| WireError::Malformed {
            expected: "divergence side",
            got: token.to_string(),
        })?
    };
    let description = reader.next_str()?;
    let iteration = reader.next_usize("finding iteration")?;
    let elapsed = reader.next_duration("finding elapsed")?;
    let n_faults = reader.next_usize("attributed fault count")?;
    let mut attributed_faults = Vec::with_capacity(n_faults.min(64));
    for _ in 0..n_faults {
        let token = reader.next()?;
        let fault = spatter_sdb::FaultId::from_name(token)
            .ok_or_else(|| WireError::UnknownFault(token.to_string()))?;
        attributed_faults.push(fault);
    }
    Ok(Finding {
        kind,
        side,
        description,
        iteration,
        elapsed,
        attributed_faults,
    })
}

fn write_record(writer: &mut TokenWriter, record: &IterationRecord) {
    writer.push_usize(record.iteration);
    // The replay frame ships verbatim (its iteration field is the record's):
    // the supervisor records worker-computed hashes, never recomputes them,
    // so replay artifacts are byte-identical across fleet shapes by
    // construction.
    writer.push_u64(record.replay.sub_seed);
    writer.push_u64(record.replay.setup_hash);
    writer.push_u64(record.replay.outcome_hash);
    writer.push_u64(record.replay.probe_hash);
    writer.push_usize(record.replay.query_digests.len());
    for digest in &record.replay.query_digests {
        writer.push_u64(*digest);
    }
    writer.push_duration(record.generation_time);
    writer.push_duration(record.engine_time);
    writer.push_duration(record.coverage.0);
    writer.push_f64(record.coverage.1);
    writer.push_f64(record.coverage.2);
    writer.push_usize(record.skipped);
    writer.push_usize(record.findings.len());
    for finding in &record.findings {
        write_finding(writer, finding);
    }
    writer.push_usize(record.probe_delta.len());
    for (probe, count) in &record.probe_delta {
        writer.push_str(probe);
        writer.push_u64(*count);
    }
}

fn read_record(reader: &mut TokenReader) -> Result<IterationRecord, WireError> {
    let iteration = reader.next_usize("record iteration")?;
    let replay = {
        let mut frame = crate::replay::ReplayFrame {
            iteration,
            sub_seed: reader.next_u64("replay sub-seed")?,
            setup_hash: reader.next_u64("replay setup hash")?,
            outcome_hash: reader.next_u64("replay outcome hash")?,
            probe_hash: reader.next_u64("replay probe hash")?,
            query_digests: Vec::new(),
        };
        let n_digests = reader.next_usize("query digest count")?;
        frame.query_digests.reserve(n_digests.min(1 << 20));
        for _ in 0..n_digests {
            frame.query_digests.push(reader.next_u64("query digest")?);
        }
        frame
    };
    let generation_time = reader.next_duration("generation time")?;
    let engine_time = reader.next_duration("engine time")?;
    let coverage = (
        reader.next_duration("coverage elapsed")?,
        reader.next_f64("topo coverage")?,
        reader.next_f64("sdb coverage")?,
    );
    let skipped = reader.next_usize("skip count")?;
    let n_findings = reader.next_usize("finding count")?;
    let mut findings = Vec::with_capacity(n_findings.min(64));
    for _ in 0..n_findings {
        findings.push(read_finding(reader)?);
    }
    let n_probes = reader.next_usize("probe delta count")?;
    let mut probe_delta = Vec::with_capacity(n_probes.min(256));
    for _ in 0..n_probes {
        let probe = intern_probe(&reader.next_str()?)?;
        let count = reader.next_u64("probe count")?;
        probe_delta.push((probe, count));
    }
    Ok(IterationRecord {
        iteration,
        findings,
        generation_time,
        engine_time,
        coverage,
        skipped,
        probe_delta,
        replay,
    })
}

fn write_shard_report(writer: &mut TokenWriter, report: &ShardReport) {
    writer.push_usize(report.records.len());
    for record in &report.records {
        write_record(writer, record);
    }
}

fn read_shard_report(reader: &mut TokenReader) -> Result<ShardReport, WireError> {
    let n = reader.next_usize("record count")?;
    let mut records = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        records.push(read_record(reader)?);
    }
    Ok(ShardReport { records })
}

// ---------------------------------------------------------------------------
// Standalone payload lines (round-trip surface of the codec)
// ---------------------------------------------------------------------------

/// Encodes a campaign configuration as one line. Fails with
/// [`WireError::UnsupportedBackend`] when the backend has no
/// [`BackendSpec`].
pub fn encode_campaign(config: &CampaignConfig) -> Result<String, WireError> {
    let mut writer = TokenWriter::new();
    write_campaign(&mut writer, config)?;
    Ok(writer.finish())
}

/// Decodes a [`encode_campaign`] line, rebuilding the backend from its spec.
pub fn decode_campaign(line: &str) -> Result<CampaignConfig, WireError> {
    let mut reader = TokenReader::new(line);
    let config = read_campaign(&mut reader)?;
    reader.finish()?;
    Ok(config)
}

/// Encodes one iteration record as one line.
pub fn encode_record(record: &IterationRecord) -> String {
    let mut writer = TokenWriter::new();
    write_record(&mut writer, record);
    writer.finish()
}

/// Decodes an [`encode_record`] line.
pub fn decode_record(line: &str) -> Result<IterationRecord, WireError> {
    let mut reader = TokenReader::new(line);
    let record = read_record(&mut reader)?;
    reader.finish()?;
    Ok(record)
}

/// Encodes a whole shard report as one line.
pub fn encode_shard_report(report: &ShardReport) -> String {
    let mut writer = TokenWriter::new();
    write_shard_report(&mut writer, report);
    writer.finish()
}

/// Decodes an [`encode_shard_report`] line.
pub fn decode_shard_report(line: &str) -> Result<ShardReport, WireError> {
    let mut reader = TokenReader::new(line);
    let report = read_shard_report(&mut reader)?;
    reader.finish()?;
    Ok(report)
}

/// Encodes a frozen coverage snapshot as one line.
pub fn encode_snapshot(snapshot: &CoverageSnapshot) -> String {
    let mut writer = TokenWriter::new();
    write_snapshot(&mut writer, snapshot);
    writer.finish()
}

/// Decodes an [`encode_snapshot`] line, re-interning probe names.
pub fn decode_snapshot(line: &str) -> Result<CoverageSnapshot, WireError> {
    let mut reader = TokenReader::new(line);
    let snapshot = read_snapshot(&mut reader)?;
    reader.finish()?;
    Ok(snapshot)
}

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

/// The worker's first line on stdout.
pub fn encode_handshake() -> String {
    format!("hello {WIRE_VERSION}")
}

/// Validates a worker handshake, rejecting any foreign protocol version.
pub fn decode_handshake(line: &str) -> Result<(), WireError> {
    let mut reader = TokenReader::new(line);
    reader.expect("hello")?;
    let theirs = reader.next_u32("wire version")?;
    reader.finish()?;
    if theirs == WIRE_VERSION {
        Ok(())
    } else {
        Err(WireError::VersionMismatch {
            ours: WIRE_VERSION,
            theirs,
        })
    }
}

/// A supervisor-to-worker message.
#[derive(Debug, Clone)]
pub enum ToWorker {
    /// The campaign, the worker's thread count, and (for guided campaigns)
    /// the frozen warm-up snapshot. Sent exactly once per worker process.
    Config {
        /// Worker threads the worker shards its leases over.
        threads: usize,
        /// The campaign configuration.
        campaign: CampaignConfig,
        /// The frozen guidance snapshot ([`GuidanceMode::ColdProbe`] only).
        snapshot: Option<CoverageSnapshot>,
    },
    /// A lease over the iteration range `start .. start + len`.
    Lease {
        /// Lease id, echoed back by the worker's records and `done`.
        id: u64,
        /// First iteration index of the lease.
        start: usize,
        /// Number of iterations.
        len: usize,
    },
    /// An epoch-barrier guidance refresh: the cumulative coverage snapshot
    /// of every iteration before the new epoch window, merged in index
    /// order. The worker swaps its [`crate::guidance::Guidance`] before
    /// executing any later lease — stdin ordering guarantees the swap
    /// happens before any new-window iteration.
    Epoch {
        /// The refreshed cumulative snapshot.
        snapshot: CoverageSnapshot,
    },
    /// Clean shutdown.
    Exit,
}

/// Encodes the one-off worker configuration message.
pub fn encode_config_message(
    threads: usize,
    campaign: &CampaignConfig,
    snapshot: Option<&CoverageSnapshot>,
) -> Result<String, WireError> {
    let mut writer = TokenWriter::new();
    writer.push_raw("config");
    writer.push_usize(threads);
    write_campaign(&mut writer, campaign)?;
    match snapshot {
        None => writer.push_raw("unguided"),
        Some(snapshot) => {
            writer.push_raw("guided");
            write_snapshot(&mut writer, snapshot);
        }
    }
    Ok(writer.finish())
}

/// Encodes a lease grant.
pub fn encode_lease_message(id: u64, start: usize, len: usize) -> String {
    let mut writer = TokenWriter::new();
    writer.push_raw("lease");
    writer.push_u64(id);
    writer.push_usize(start);
    writer.push_usize(len);
    writer.finish()
}

/// Encodes an epoch-barrier guidance refresh.
pub fn encode_epoch_message(snapshot: &CoverageSnapshot) -> String {
    let mut writer = TokenWriter::new();
    writer.push_raw("epoch");
    write_snapshot(&mut writer, snapshot);
    writer.finish()
}

/// Encodes the shutdown message.
pub fn encode_exit_message() -> String {
    "exit".to_string()
}

/// Decodes any supervisor-to-worker line.
pub fn decode_to_worker(line: &str) -> Result<ToWorker, WireError> {
    let mut reader = TokenReader::new(line);
    let message = match reader.next()? {
        "config" => {
            let threads = reader.next_usize("worker threads")?;
            let campaign = read_campaign(&mut reader)?;
            let snapshot = match reader.next()? {
                "unguided" => None,
                "guided" => Some(read_snapshot(&mut reader)?),
                other => {
                    return Err(WireError::Malformed {
                        expected: "guidance snapshot marker",
                        got: other.to_string(),
                    })
                }
            };
            ToWorker::Config {
                threads,
                campaign,
                snapshot,
            }
        }
        "lease" => ToWorker::Lease {
            id: reader.next_u64("lease id")?,
            start: reader.next_usize("lease start")?,
            len: reader.next_usize("lease length")?,
        },
        "epoch" => ToWorker::Epoch {
            snapshot: read_snapshot(&mut reader)?,
        },
        "exit" => ToWorker::Exit,
        other => {
            return Err(WireError::Malformed {
                expected: "supervisor message",
                got: other.to_string(),
            })
        }
    };
    reader.finish()?;
    Ok(message)
}

/// A worker-to-supervisor message (after the handshake).
#[derive(Debug, Clone)]
pub enum FromWorker {
    /// The configuration was accepted; leases may follow.
    Configured,
    /// One completed iteration of a lease.
    Record {
        /// The lease the iteration belongs to.
        lease: u64,
        /// The iteration's record.
        record: IterationRecord,
    },
    /// Every iteration of the lease has been executed (its records — minus
    /// any the time budget cut off — were already streamed).
    Done {
        /// The finished lease.
        lease: u64,
    },
}

/// Encodes the configuration acknowledgement.
pub fn encode_configured_message() -> String {
    "configured".to_string()
}

/// Encodes one streamed iteration record.
pub fn encode_record_message(lease: u64, record: &IterationRecord) -> String {
    let mut writer = TokenWriter::new();
    writer.push_raw("record");
    writer.push_u64(lease);
    write_record(&mut writer, record);
    writer.finish()
}

/// Encodes a lease completion.
pub fn encode_done_message(lease: u64) -> String {
    let mut writer = TokenWriter::new();
    writer.push_raw("done");
    writer.push_u64(lease);
    writer.finish()
}

/// Decodes any worker-to-supervisor line (after the handshake).
pub fn decode_from_worker(line: &str) -> Result<FromWorker, WireError> {
    let mut reader = TokenReader::new(line);
    let message = match reader.next()? {
        "configured" => FromWorker::Configured,
        "record" => FromWorker::Record {
            lease: reader.next_u64("lease id")?,
            record: read_record(&mut reader)?,
        },
        "done" => FromWorker::Done {
            lease: reader.next_u64("lease id")?,
        },
        other => {
            return Err(WireError::Malformed {
                expected: "worker message",
                got: other.to_string(),
            })
        }
    };
    reader.finish()?;
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{seq::IndexedRandom, RngExt, SeedableRng, StdRng};
    use spatter_sdb::FaultId;
    use spatter_topo::coverage::TOPO_PROBES;
    use std::sync::Arc;

    // -- random structure generators (the in-tree rng stands in for a
    //    property-testing crate: the workspace is std-only) ----------------

    fn random_string(rng: &mut StdRng) -> String {
        let len = rng.random_range(0..12usize);
        (0..len)
            .map(|_| {
                *[
                    'a', 'Z', '0', ' ', '%', '\t', '\n', '\r', '|', 'é', '→', '"', '\\',
                ]
                .choose(rng)
                .expect("non-empty")
            })
            .collect()
    }

    fn random_finding(rng: &mut StdRng) -> Finding {
        let all_faults: Vec<FaultId> = spatter_sdb::EngineProfile::PostgisLike
            .default_faults()
            .iter()
            .collect();
        let n_faults = rng.random_range(0..3usize);
        Finding {
            kind: if rng.random_bool(0.5) {
                FindingKind::Logic
            } else {
                FindingKind::Crash
            },
            side: *[
                crate::oracles::DivergenceSide::Left,
                crate::oracles::DivergenceSide::Right,
                crate::oracles::DivergenceSide::Both,
            ]
            .choose(rng)
            .expect("non-empty"),
            description: random_string(rng),
            iteration: rng.random_range(0..10_000usize),
            elapsed: Duration::from_nanos(rng.next_u64() >> 16),
            attributed_faults: (0..n_faults)
                .filter_map(|_| all_faults.choose(rng).copied())
                .collect(),
        }
    }

    fn random_record(rng: &mut StdRng) -> IterationRecord {
        let n_findings = rng.random_range(0..4usize);
        let n_probes = rng.random_range(0..6usize);
        let iteration = rng.random_range(0..100_000usize);
        IterationRecord {
            iteration,
            findings: (0..n_findings).map(|_| random_finding(rng)).collect(),
            generation_time: Duration::from_nanos(rng.next_u64() >> 16),
            engine_time: Duration::from_nanos(rng.next_u64() >> 16),
            coverage: (
                Duration::from_nanos(rng.next_u64() >> 16),
                f64::from_bits(rng.next_u64() >> 2),
                (rng.random_range(0..1000u64)) as f64 / 999.0,
            ),
            skipped: rng.random_range(0..50usize),
            probe_delta: (0..n_probes)
                .filter_map(|_| {
                    let probe = TOPO_PROBES.choose(rng).copied()?;
                    Some((probe, rng.next_u64() >> 32))
                })
                .collect(),
            replay: crate::replay::ReplayFrame {
                iteration,
                sub_seed: rng.next_u64(),
                setup_hash: rng.next_u64(),
                outcome_hash: rng.next_u64(),
                probe_hash: rng.next_u64(),
                query_digests: (0..rng.random_range(0..5usize))
                    .map(|_| rng.next_u64())
                    .collect(),
            },
        }
    }

    fn random_campaign(rng: &mut StdRng) -> CampaignConfig {
        let profile = *[
            EngineProfile::PostgisLike,
            EngineProfile::MysqlLike,
            EngineProfile::DuckdbSpatialLike,
            EngineProfile::SqlServerLike,
        ]
        .choose(rng)
        .expect("non-empty");
        let backend_spec = match rng.random_range(0..4u32) {
            0 => BackendSpec::InProcess {
                profile,
                faults: profile.default_faults(),
            },
            1 => BackendSpec::Stdio {
                command: PathBuf::from(format!("/tmp/server dir/bin-{}", rng.next_u64() % 100)),
                profile,
                faults: FaultSet::none(),
                hard_crash: rng.random_bool(0.5),
            },
            2 => BackendSpec::External {
                dialect: crate::matrix::DialectSpec::sdb_server(
                    format!("/tmp/server dir/bin-{}", rng.next_u64() % 100),
                    profile,
                    FaultSet::none(),
                    rng.random_bool(0.5),
                ),
            },
            _ => BackendSpec::External {
                dialect: crate::matrix::DialectSpec {
                    name: random_string(rng),
                    command: PathBuf::from("/usr/bin/psql"),
                    args: (0..rng.random_range(0..4usize))
                        .map(|_| random_string(rng))
                        .collect(),
                    profile,
                    ready_prefix: if rng.random_bool(0.5) {
                        Some(random_string(rng))
                    } else {
                        None
                    },
                    terminator: ";".to_string(),
                    grammar: crate::matrix::ReplyGrammar::Sentinel {
                        echo_command: "\\echo SPATTER_DONE".to_string(),
                        done_marker: "SPATTER_DONE".to_string(),
                        error_prefixes: vec![
                            ("ERROR:".to_string(), false),
                            (random_string(rng), rng.random_bool(0.5)),
                        ],
                    },
                },
            },
        };
        let n_oracles = rng.random_range(1..4usize);
        let oracles = (0..n_oracles)
            .map(|_| match rng.random_range(0..5u32) {
                0 => OracleKind::Aei,
                1 => OracleKind::Differential(profile),
                2 => OracleKind::DifferentialTwin(backend_spec.clone()),
                3 => OracleKind::Index,
                _ => OracleKind::Tlp,
            })
            .collect();
        CampaignConfig {
            backend: backend_spec.build(),
            generator: GeneratorConfig {
                num_geometries: rng.random_range(1..40usize),
                num_tables: rng.random_range(1..5usize),
                strategy: if rng.random_bool(0.5) {
                    GenerationStrategy::GeometryAware
                } else {
                    GenerationStrategy::RandomShapeOnly
                },
                coordinate_range: rng.random_range(1..200i64),
                random_shape_probability: (rng.random_range(0..1001u64)) as f64 / 1000.0,
            },
            queries_per_run: rng.random_range(1..100usize),
            affine: *[
                AffineStrategy::CanonicalizationOnly,
                AffineStrategy::GeneralInteger,
                AffineStrategy::SimilarityInteger,
            ]
            .choose(rng)
            .expect("non-empty"),
            iterations: rng.random_range(0..10_000usize),
            time_budget: if rng.random_bool(0.3) {
                Some(Duration::from_nanos(rng.next_u64() >> 16))
            } else {
                None
            },
            attribute_findings: rng.random_bool(0.5),
            guidance: if rng.random_bool(0.5) {
                GuidanceMode::ColdProbe
            } else {
                GuidanceMode::Off
            },
            guidance_epoch: if rng.random_bool(0.3) {
                Some(rng.random_range(1..64usize))
            } else {
                None
            },
            mutations: if rng.random_bool(0.5) {
                Some(crate::mutation::MutationConfig {
                    statements_per_run: rng.random_range(1..32usize),
                    index_churn: rng.random_bool(0.5),
                })
            } else {
                None
            },
            oracles,
            seed: rng.next_u64(),
        }
    }

    fn assert_records_equal(a: &IterationRecord, b: &IterationRecord) {
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.replay, b.replay);
        assert_eq!(a.generation_time, b.generation_time);
        assert_eq!(a.engine_time, b.engine_time);
        assert_eq!(a.coverage.0, b.coverage.0);
        // Bit-exact f64 transport, NaNs included.
        assert_eq!(a.coverage.1.to_bits(), b.coverage.1.to_bits());
        assert_eq!(a.coverage.2.to_bits(), b.coverage.2.to_bits());
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.probe_delta, b.probe_delta);
        assert_eq!(a.findings.len(), b.findings.len());
        for (fa, fb) in a.findings.iter().zip(&b.findings) {
            assert_eq!(fa.kind, fb.kind);
            assert_eq!(fa.side, fb.side);
            assert_eq!(fa.description, fb.description);
            assert_eq!(fa.iteration, fb.iteration);
            assert_eq!(fa.elapsed, fb.elapsed);
            assert_eq!(fa.attributed_faults, fb.attributed_faults);
        }
    }

    #[test]
    fn strings_round_trip_through_escaping() {
        let cases = [
            "",
            " ",
            "plain",
            "with space",
            "100% done",
            "%-",
            "%20",
            "tabs\tand\nnewlines\r",
            "unicode → é ü 測試",
        ];
        for case in cases {
            let escaped = escape(case);
            assert!(
                !escaped.contains(char::is_whitespace) && !escaped.is_empty(),
                "{escaped:?} is not one token"
            );
            assert_eq!(unescape(&escaped).as_deref(), Ok(case), "{case:?}");
        }
    }

    /// The exotic corners of the IEEE-754 space: every one of these must
    /// cross the wire (and feed replay hashing) with its exact bit pattern —
    /// signed zeros distinct, NaN payloads unchanged, no canonicalization.
    const EXOTIC_F64_BITS: [u64; 10] = [
        0x0000_0000_0000_0000, // +0.0
        0x8000_0000_0000_0000, // -0.0
        0x7ff0_0000_0000_0000, // +inf
        0xfff0_0000_0000_0000, // -inf
        0x7ff8_0000_0000_0000, // canonical quiet NaN
        0x7ff8_dead_beef_cafe, // quiet NaN with payload
        0xfff8_0000_0000_0001, // negative quiet NaN with payload
        0x7ff0_0000_0000_0001, // signalling NaN
        0x0000_0000_0000_0001, // smallest subnormal
        0x800f_ffff_ffff_ffff, // largest negative subnormal
    ];

    #[test]
    fn exotic_f64_bit_patterns_round_trip_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(0xf64);
        for &bits_a in &EXOTIC_F64_BITS {
            for &bits_b in &EXOTIC_F64_BITS {
                let mut record = random_record(&mut rng);
                record.coverage.1 = f64::from_bits(bits_a);
                record.coverage.2 = f64::from_bits(bits_b);
                let decoded = decode_record(&encode_record(&record)).expect("round trip");
                assert_eq!(decoded.coverage.1.to_bits(), bits_a);
                assert_eq!(decoded.coverage.2.to_bits(), bits_b);
                // Re-encoding the decoded record is the identity: no stage
                // of the codec canonicalizes.
                assert_eq!(encode_record(&decoded), encode_record(&record));
            }
        }
        // The same exactness through a campaign's f64 field.
        for &bits in &EXOTIC_F64_BITS {
            let mut config = random_campaign(&mut rng);
            config.generator.random_shape_probability = f64::from_bits(bits);
            let line = encode_campaign(&config).expect("encode");
            let decoded = decode_campaign(&line).expect("decode");
            assert_eq!(decoded.generator.random_shape_probability.to_bits(), bits);
        }
        // And the replay hasher distinguishes every distinct pattern.
        let digests: Vec<u64> = EXOTIC_F64_BITS
            .iter()
            .map(|&bits| {
                let mut hasher = crate::replay::ReplayHasher::new();
                hasher.write_f64(f64::from_bits(bits));
                hasher.finish()
            })
            .collect();
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(
                    digests[i], digests[j],
                    "bit patterns {:#x} and {:#x} must hash apart",
                    EXOTIC_F64_BITS[i], EXOTIC_F64_BITS[j]
                );
            }
        }
    }

    #[test]
    fn non_ascii_escapes_are_rejected_not_mojibake() {
        // `escape` never emits %XX for bytes ≥ 0x80 (multi-byte characters
        // pass through as UTF-8), so such an escape can only come from a
        // corrupted or foreign line. Decoding it as a Latin-1 char would
        // silently change the payload — it must be a structured error.
        for token in ["%e9", "%80", "a%ffb", "%c3%a9"] {
            assert_eq!(
                unescape(token),
                Err(WireError::BadEscape(token.to_string())),
                "{token}"
            );
        }
        // ASCII escapes and raw multi-byte characters still round-trip.
        assert_eq!(unescape("%41").as_deref(), Ok("A"));
        assert_eq!(unescape(&escape("é → 測試")).as_deref(), Ok("é → 測試"));
    }

    #[test]
    fn records_round_trip_for_random_inputs() {
        let mut rng = StdRng::seed_from_u64(0xd157);
        for _ in 0..200 {
            let record = random_record(&mut rng);
            let line = encode_record(&record);
            let decoded = decode_record(&line).expect("round trip");
            assert_records_equal(&record, &decoded);
        }
    }

    #[test]
    fn shard_reports_round_trip_for_random_inputs() {
        let mut rng = StdRng::seed_from_u64(0x5bad);
        for _ in 0..25 {
            let report = ShardReport {
                records: (0..rng.random_range(0..6usize))
                    .map(|_| random_record(&mut rng))
                    .collect(),
            };
            let line = encode_shard_report(&report);
            let decoded = decode_shard_report(&line).expect("round trip");
            assert_eq!(report.records.len(), decoded.records.len());
            for (a, b) in report.records.iter().zip(&decoded.records) {
                assert_records_equal(a, b);
            }
        }
    }

    #[test]
    fn campaigns_round_trip_for_random_inputs() {
        // CampaignConfig holds a live backend, so equality is checked on
        // the re-encoded line: encode is injective over the spec'd fields.
        let mut rng = StdRng::seed_from_u64(0xca3f41);
        for _ in 0..100 {
            let config = random_campaign(&mut rng);
            let line = encode_campaign(&config).expect("encode");
            let decoded = decode_campaign(&line).expect("decode");
            assert_eq!(encode_campaign(&decoded).expect("re-encode"), line);
            assert_eq!(decoded.oracles, config.oracles);
            assert_eq!(decoded.generator, config.generator);
            assert_eq!(decoded.mutations, config.mutations);
            assert_eq!(decoded.backend.wire_spec(), config.backend.wire_spec());
        }
    }

    #[test]
    fn snapshots_round_trip_with_interned_probe_names() {
        let mut snapshot = CoverageSnapshot::new();
        snapshot.absorb(&[
            ("topo.predicate.intersects", 41),
            ("topo.distance.dwithin", 1),
            ("topo.relate.noding", u64::MAX / 2),
        ]);
        let decoded = decode_snapshot(&encode_snapshot(&snapshot)).expect("round trip");
        assert_eq!(decoded, snapshot);
        // Decoded names are the interned statics, usable as `&'static str`.
        assert_eq!(decoded.count("topo.predicate.intersects"), 41);
    }

    #[test]
    fn unknown_probes_and_faults_are_structured_errors() {
        assert_eq!(
            decode_snapshot("1 not.a.probe 3"),
            Err(WireError::UnknownProbe("not.a.probe".to_string()))
        );
        let mut writer = TokenWriter::new();
        write_faults(&mut writer, &FaultSet::none());
        assert_eq!(writer.finish(), "none");
        let mut reader = TokenReader::new("NoSuchFault,AlsoNot");
        assert!(matches!(
            read_faults(&mut reader),
            Err(WireError::UnknownFault(_))
        ));
        let mut reader = TokenReader::new("klingon_like");
        assert!(matches!(
            read_profile(&mut reader),
            Err(WireError::UnknownProfile(_))
        ));
    }

    #[test]
    fn truncated_and_garbage_input_never_panics() {
        // Every prefix of a valid line is a structured decode error — the
        // codec never panics and never silently succeeds on partial input.
        let mut rng = StdRng::seed_from_u64(7);
        let record = random_record(&mut rng);
        let line = encode_record(&record);
        let token_count = line.split_ascii_whitespace().count();
        for keep in 0..token_count {
            let prefix: Vec<&str> = line.split_ascii_whitespace().take(keep).collect();
            let result = decode_record(&prefix.join(" "));
            assert!(result.is_err(), "prefix of {keep} tokens must not decode");
        }
        // Trailing garbage after a valid message is rejected too.
        assert!(matches!(
            decode_record(&format!("{line} surprise")),
            Err(WireError::TrailingInput(_))
        ));

        // Arbitrary garbage lines decode to errors across every entry point.
        for garbage in [
            "",
            "   ",
            "lease",
            "record 1 2 3",
            "ROWS 4 4",
            "config -3 x",
            "%zz %q",
            "done done",
            "hello world",
            "\u{1F980} claws",
            "record 0 18446744073709551616",
        ] {
            assert!(decode_record(garbage).is_err());
            assert!(decode_campaign(garbage).is_err());
            assert!(decode_shard_report(garbage).is_err());
            assert!(decode_to_worker(garbage).is_err());
            assert!(decode_from_worker(garbage).is_err());
            assert!(decode_handshake(garbage).is_err());
        }
    }

    #[test]
    fn handshake_rejects_version_mismatch() {
        assert_eq!(decode_handshake(&encode_handshake()), Ok(()));
        assert_eq!(
            decode_handshake("hello 999"),
            Err(WireError::VersionMismatch {
                ours: WIRE_VERSION,
                theirs: 999
            })
        );
        assert!(decode_handshake("hello").is_err());
        assert!(decode_handshake("goodbye 1").is_err());
        assert!(matches!(
            decode_handshake(&format!("hello {WIRE_VERSION} extra")),
            Err(WireError::TrailingInput(_))
        ));
    }

    #[test]
    fn unencodable_backends_are_rejected_with_a_structured_error() {
        #[derive(Debug)]
        struct Opaque;
        impl crate::backend::EngineBackend for Opaque {
            fn profile(&self) -> EngineProfile {
                EngineProfile::PostgisLike
            }
            fn open_session(
                &self,
            ) -> Result<Box<dyn crate::backend::EngineSession>, crate::backend::BackendError>
            {
                unimplemented!("never opened in this test")
            }
            fn fault_ids(&self) -> Vec<spatter_sdb::FaultId> {
                Vec::new()
            }
            fn without_fault(
                &self,
                _: spatter_sdb::FaultId,
            ) -> Box<dyn crate::backend::EngineBackend> {
                Box::new(Opaque)
            }
        }
        let config = CampaignConfig::default().with_backend(Arc::new(Opaque));
        assert!(matches!(
            encode_campaign(&config),
            Err(WireError::UnsupportedBackend(_))
        ));
    }

    #[test]
    fn protocol_messages_round_trip() {
        let config = CampaignConfig::default();
        let mut snapshot = CoverageSnapshot::new();
        snapshot.absorb(&[("topo.centroid", 2)]);
        let line = encode_config_message(3, &config, Some(&snapshot)).expect("encode");
        match decode_to_worker(&line).expect("decode") {
            ToWorker::Config {
                threads,
                campaign,
                snapshot: decoded,
            } => {
                assert_eq!(threads, 3);
                assert_eq!(decoded, Some(snapshot.clone()));
                assert_eq!(campaign.oracles, config.oracles);
            }
            other => panic!("expected config, got {other:?}"),
        }

        match decode_to_worker(&encode_lease_message(9, 100, 4)).expect("decode") {
            ToWorker::Lease { id, start, len } => assert_eq!((id, start, len), (9, 100, 4)),
            other => panic!("expected lease, got {other:?}"),
        }
        match decode_to_worker(&encode_epoch_message(&snapshot)).expect("decode") {
            ToWorker::Epoch { snapshot: decoded } => assert_eq!(decoded, snapshot),
            other => panic!("expected epoch, got {other:?}"),
        }
        assert!(matches!(
            decode_to_worker(&encode_exit_message()),
            Ok(ToWorker::Exit)
        ));

        assert!(matches!(
            decode_from_worker(&encode_configured_message()),
            Ok(FromWorker::Configured)
        ));
        let mut rng = StdRng::seed_from_u64(3);
        let record = random_record(&mut rng);
        match decode_from_worker(&encode_record_message(7, &record)).expect("decode") {
            FromWorker::Record { lease, record: r } => {
                assert_eq!(lease, 7);
                assert_records_equal(&record, &r);
            }
            other => panic!("expected record, got {other:?}"),
        }
        assert!(matches!(
            decode_from_worker(&encode_done_message(7)),
            Ok(FromWorker::Done { lease: 7 })
        ));
    }
}
