//! Multi-process distributed campaigns: shared-nothing worker processes
//! supervised over a line-delimited wire protocol.
//!
//! The thread-sharded [`CampaignRunner`] (PR 1) scales a campaign across
//! one process's cores; this subsystem lifts the same sharding one level
//! up, across *processes*. A [`DistRunner`] supervisor spawns K
//! `spatter-campaign-worker` processes, each of which runs the existing
//! thread-sharded executor over leased iteration ranges and streams its
//! [`IterationRecord`]s back over the [`wire`] codec; the supervisor
//! performs the same deterministic index-ordered merge as
//! [`ShardReport::merge`]. Process isolation is the same move the
//! `spatter-sdb-server` backend (PR 3) made for *engines* — here it is the
//! campaign executors themselves that become crash-survivable and, because
//! nothing but seed-derived messages crosses the boundary, machine-
//! distributable.
//!
//! # Determinism
//!
//! Every iteration is a pure function of `(campaign seed, iteration
//! index)` — the runner's contract since PR 1 — so *where* an iteration
//! executes can never change what it produces. The supervisor merges
//! records by iteration index, not arrival order, which makes a
//! distributed campaign **byte-identical** (findings, attribution, skip
//! counts, probe coverage — [`CampaignReport::determinism_fingerprint`])
//! to the single-process runner for any processes × threads split. Guided
//! campaigns hold the same contract because the supervisor runs the
//! warm-up prefix itself and ships the *frozen* snapshot to every worker:
//! guidance is the same pure function of `(snapshot, seed, iteration)` on
//! every side of every process boundary.
//!
//! # Crash survival and lease-based stealing
//!
//! Work is distributed as small chunked *leases* rather than static
//! per-worker ranges: a fast worker simply takes more leases, so one
//! finding-heavy (attribution-heavy) range cannot straggle the campaign
//! behind an idle fleet. Workers stream each record as it completes; when
//! a worker process dies (crash, OOM-kill, the supervisor's own fault
//! injection in tests) the supervisor reclaims exactly the *unacknowledged*
//! iterations of its outstanding leases, re-enqueues them for the
//! surviving workers, and respawns the dead slot — the distributed
//! equivalent of `StdioBackend`'s respawn-and-replay.

pub mod wire;
pub mod worker;

use crate::campaign::{CampaignConfig, CampaignReport};
use crate::dist::wire::{FromWorker, WireError};
use crate::replay::ReplaySink;
use crate::runner::{CampaignRunner, IterationRecord, ShardReport};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Maximum leases a worker holds at once. Two keeps the pipe primed — the
/// worker starts the next lease the instant it finishes one — while keeping
/// the re-lease window after a crash small.
const LEASES_IN_FLIGHT: usize = 2;

/// Configuration of the distributed supervisor (everything that is about
/// *how* to run the campaign across processes; the campaign itself lives in
/// [`CampaignConfig`]).
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Path to the `spatter-campaign-worker` binary.
    pub worker_command: PathBuf,
    /// Number of worker processes (clamped to at least 1).
    pub processes: usize,
    /// Worker threads per process; the total parallelism is
    /// `processes × threads_per_worker`.
    pub threads_per_worker: usize,
    /// Iterations per lease. Small leases steal better (an
    /// attribution-heavy chunk is re-leasable in small pieces); large leases
    /// amortize protocol chatter.
    pub lease_chunk: usize,
    /// Total worker respawns the campaign tolerates before giving up.
    pub max_respawns: usize,
    /// Test-only fault injection: kill worker process `.0` as soon as it
    /// has delivered `.1` records. The campaign must still complete, and
    /// byte-identically — this is how the crash-recovery tests make a
    /// worker die mid-lease deterministically.
    pub kill_worker_after_records: Option<(usize, usize)>,
}

impl DistConfig {
    /// A supervisor configuration for a worker binary, with 2 processes ×
    /// 2 threads and small leases.
    pub fn new(worker_command: impl Into<PathBuf>) -> Self {
        DistConfig {
            worker_command: worker_command.into(),
            processes: 2,
            threads_per_worker: 2,
            lease_chunk: 2,
            max_respawns: 3,
            kill_worker_after_records: None,
        }
    }

    /// Sets the worker process count.
    pub fn with_processes(mut self, processes: usize) -> Self {
        self.processes = processes.max(1);
        self
    }

    /// Sets the per-process thread count.
    pub fn with_threads_per_worker(mut self, threads: usize) -> Self {
        self.threads_per_worker = threads.max(1);
        self
    }

    /// Sets the lease chunk size.
    pub fn with_lease_chunk(mut self, chunk: usize) -> Self {
        self.lease_chunk = chunk.max(1);
        self
    }

    /// Sets the respawn budget.
    pub fn with_max_respawns(mut self, respawns: usize) -> Self {
        self.max_respawns = respawns;
        self
    }

    /// Arms the test-only kill switch (see the field docs).
    pub fn with_kill_worker_after_records(mut self, worker: usize, records: usize) -> Self {
        self.kill_worker_after_records = Some((worker, records));
        self
    }
}

/// Why a distributed campaign failed. (Individual worker *crashes* are not
/// failures — they are recovered; these are the unrecoverable ends.)
#[derive(Debug)]
pub enum DistError {
    /// A value could not be encoded for — or decoded from — the wire.
    Wire(WireError),
    /// Spawning or talking to a worker failed at the transport level and
    /// recovery was impossible.
    Io(std::io::Error),
    /// A worker violated the protocol (e.g. an unparsable line); its slot
    /// is treated as dead, and this error surfaces only when recovery is
    /// exhausted too.
    Protocol {
        /// The worker slot index.
        worker: usize,
        /// What went wrong.
        message: String,
    },
    /// Workers kept dying and the respawn budget ran out with iterations
    /// still unexecuted.
    RespawnsExhausted {
        /// Iterations that were never acknowledged.
        lost_iterations: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::Io(e) => write!(f, "worker transport error: {e}"),
            DistError::Protocol { worker, message } => {
                write!(f, "worker {worker} protocol error: {message}")
            }
            DistError::RespawnsExhausted { lost_iterations } => write!(
                f,
                "worker respawn budget exhausted with {lost_iterations} iterations unexecuted"
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

/// Observability counters of one distributed run.
#[derive(Debug, Clone, Default)]
pub struct DistStats {
    /// Worker processes spawned in total (initial fleet + respawns).
    pub spawns: usize,
    /// Respawns after worker deaths.
    pub respawns: usize,
    /// Leases granted (including re-leases of reclaimed work).
    pub leases_granted: usize,
    /// Iteration records received from workers.
    pub records_received: usize,
    /// Records for an iteration that was already complete (re-executed
    /// after a partial lease was reclaimed; merged first-wins).
    pub duplicate_records: usize,
    /// Time spent decoding worker record lines.
    pub decode_time: Duration,
    /// Time spent in the final index-ordered merge.
    pub merge_time: Duration,
}

/// The distributed campaign supervisor. `DistRunner::new(campaign,
/// dist).run()` is the multi-process counterpart of
/// `CampaignRunner::new(campaign).with_workers(n).run()`.
pub struct DistRunner {
    campaign: CampaignConfig,
    dist: DistConfig,
    replay_sink: Option<Arc<dyn ReplaySink>>,
}

impl DistRunner {
    /// Creates a supervisor for a campaign.
    pub fn new(campaign: CampaignConfig, dist: DistConfig) -> Self {
        DistRunner {
            campaign,
            dist,
            replay_sink: None,
        }
    }

    /// Attaches a replay sink, the multi-process counterpart of
    /// [`CampaignRunner::with_replay_sink`]. Warm-up frames are delivered
    /// from the supervisor's own warm-up runner; leased frames arrive
    /// inside the workers' record messages and are delivered verbatim —
    /// never recomputed — as each iteration completes (first-wins, like the
    /// record merge).
    pub fn with_replay_sink(mut self, sink: Arc<dyn ReplaySink>) -> Self {
        self.replay_sink = Some(sink);
        self
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.campaign
    }

    /// The distribution configuration.
    pub fn dist_config(&self) -> &DistConfig {
        &self.dist
    }

    /// Runs the distributed campaign and merges every worker's records into
    /// one report, byte-identical to the in-process runner's.
    ///
    /// A `time_budget` is enforced by the supervisor at *lease* granularity:
    /// workers receive a budget-erased configuration and always execute a
    /// granted lease to completion, while the supervisor stops granting new
    /// leases once the budget (measured on its own campaign clock, like the
    /// in-process runner's) expires. Budgeted campaigns therefore stop near
    /// the deadline with every executed iteration fully recorded — never
    /// with silently half-executed leases — but, exactly as with the
    /// thread-sharded runner, *which* iterations fit the budget is wall-
    /// clock dependent; the byte-identity contract is for
    /// iteration-bounded campaigns.
    pub fn run(&self) -> Result<CampaignReport, DistError> {
        self.run_with_stats().map(|(report, _)| report)
    }

    /// [`DistRunner::run`], also returning the supervisor's counters.
    pub fn run_with_stats(&self) -> Result<(CampaignReport, DistStats), DistError> {
        let start = Instant::now();

        // The guidance warm-up runs on the supervisor, exactly like the
        // in-process runner's coordinating thread: its records are part of
        // the campaign, and its frozen snapshot is what every worker
        // receives.
        let mut runner = CampaignRunner::new(self.campaign.clone());
        if let Some(sink) = &self.replay_sink {
            runner = runner.with_replay_sink(Arc::clone(sink));
        }
        let (warmup, snapshot) = runner.warmup_phase(start);
        let first_iteration = warmup.records.len();

        // Workers get the budget *erased*: a worker that hit the budget
        // mid-lease would drop the lease's tail while still reporting it
        // done, silently losing iterations. The supervisor instead enforces
        // the budget by not granting leases past the deadline (see `run`).
        let worker_campaign = CampaignConfig {
            time_budget: None,
            ..self.campaign.clone()
        };
        let config_line = wire::encode_config_message(
            self.dist.threads_per_worker.max(1),
            &worker_campaign,
            snapshot.as_ref(),
        )?;

        let mut stats = DistStats::default();
        let mut completed: BTreeMap<usize, IterationRecord> = BTreeMap::new();

        if first_iteration < self.campaign.iterations {
            let mut supervisor = Supervisor {
                dist: &self.dist,
                config_line,
                slots: Vec::new(),
                pending: chunk_ranges(
                    first_iteration,
                    self.campaign.iterations,
                    self.dist.lease_chunk.max(1),
                ),
                completed: &mut completed,
                next_lease: 0,
                stats: &mut stats,
                kill_armed: self.dist.kill_worker_after_records,
                deadline: self.campaign.time_budget.map(|budget| start + budget),
                replay_sink: self.replay_sink.as_deref(),
            };
            supervisor.run()?;
        }

        let merge_start = Instant::now();
        let mut records = warmup.records;
        records.extend(std::mem::take(&mut completed).into_values());
        let report = ShardReport::merge(vec![ShardReport { records }], start.elapsed());
        stats.merge_time = merge_start.elapsed();
        Ok((report, stats))
    }
}

/// Splits `[first, end)` into `(start, len)` chunks.
fn chunk_ranges(first: usize, end: usize, chunk: usize) -> VecDeque<(usize, usize)> {
    let mut ranges = VecDeque::new();
    let mut start = first;
    while start < end {
        let len = chunk.min(end - start);
        ranges.push_back((start, len));
        start += len;
    }
    ranges
}

/// One granted, not-yet-finished lease.
#[derive(Debug, Clone)]
struct LeaseInfo {
    id: u64,
    start: usize,
    len: usize,
}

/// What a worker's reader thread forwards to the supervisor loop.
enum WorkerEvent {
    /// One stdout line.
    Line(String),
    /// The worker's stdout closed (process death or clean exit).
    Closed,
}

/// A worker slot: the current incarnation of worker index `i`. Respawns
/// bump `generation` so events from a dead incarnation's reader thread are
/// recognizably stale.
struct WorkerSlot {
    child: Child,
    stdin: ChildStdin,
    generation: u64,
    outstanding: Vec<LeaseInfo>,
    records_delivered: usize,
    alive: bool,
    exiting: bool,
}

/// The supervisor's event loop state (borrowed from
/// [`DistRunner::run_with_stats`] so the stats and record map outlive it).
struct Supervisor<'a> {
    dist: &'a DistConfig,
    config_line: String,
    slots: Vec<WorkerSlot>,
    pending: VecDeque<(usize, usize)>,
    completed: &'a mut BTreeMap<usize, IterationRecord>,
    next_lease: u64,
    stats: &'a mut DistStats,
    /// The armed kill switch; disarmed after firing so the respawned worker
    /// is not killed again.
    kill_armed: Option<(usize, usize)>,
    /// The campaign's time-budget deadline on the supervisor clock; leases
    /// are never granted past it (in-flight leases run to completion).
    deadline: Option<Instant>,
    /// Where worker-computed replay frames are delivered (first-wins, like
    /// the record merge). The supervisor never recomputes a frame: what the
    /// executing worker hashed is what the artifact records.
    replay_sink: Option<&'a dyn ReplaySink>,
}

impl Supervisor<'_> {
    fn run(&mut self) -> Result<(), DistError> {
        let (events_tx, events_rx) = mpsc::channel::<(usize, u64, WorkerEvent)>();

        // Initial fleet: never more processes than leases. A slot whose
        // worker keeps dying before configuration consumes respawn budget
        // instead of aborting the campaign, and a partially-spawned fleet
        // still drains the whole queue — the hard failure is only when not
        // a single worker comes up.
        let fleet = self.dist.processes.max(1).min(self.pending.len().max(1));
        for index in 0..fleet {
            match self.spawn_recovering(index, 0, &events_tx) {
                Ok(slot) => self.slots.push(slot),
                Err(error) => {
                    if self.slots.is_empty() {
                        return Err(error);
                    }
                    eprintln!(
                        "spatter-dist: continuing with a fleet of {}: {error}",
                        self.slots.len()
                    );
                    break;
                }
            }
        }
        self.dispatch(&events_tx)?;

        while !self.finished() {
            let (index, generation, event) = events_rx.recv().map_err(|_| DistError::Protocol {
                worker: usize::MAX,
                message: "all worker channels closed with work outstanding".to_string(),
            })?;
            if self.slots[index].generation != generation || !self.slots[index].alive {
                continue; // stale event from a replaced incarnation
            }
            match event {
                WorkerEvent::Closed => self.handle_death(index, &events_tx)?,
                WorkerEvent::Line(line) => {
                    let decode_start = Instant::now();
                    let message = wire::decode_from_worker(&line);
                    self.stats.decode_time += decode_start.elapsed();
                    match message {
                        Ok(FromWorker::Record { record, .. }) => {
                            self.stats.records_received += 1;
                            let slot = &mut self.slots[index];
                            slot.records_delivered += 1;
                            let delivered = slot.records_delivered;
                            let frame = record.replay;
                            if self.completed.insert(record.iteration, record).is_some() {
                                self.stats.duplicate_records += 1;
                            } else if let Some(sink) = self.replay_sink {
                                sink.record_frame(&frame);
                            }
                            if let Some((victim, after)) = self.kill_armed {
                                if victim == index && delivered >= after {
                                    // Fault injection: a hard, unannounced
                                    // kill; the reader thread will report
                                    // the death like any real crash.
                                    self.kill_armed = None;
                                    let _ = self.slots[index].child.kill();
                                }
                            }
                        }
                        Ok(FromWorker::Done { lease }) => {
                            self.slots[index].outstanding.retain(|l| l.id != lease);
                            self.dispatch(&events_tx)?;
                            self.maybe_retire(index);
                        }
                        Ok(FromWorker::Configured) => {
                            // Already consumed during the spawn handshake;
                            // a second one is protocol noise — treat the
                            // worker as broken.
                            self.fail_worker(index, "unexpected configured", &events_tx)?;
                        }
                        Err(error) => {
                            self.fail_worker(index, &error.to_string(), &events_tx)?;
                        }
                    }
                }
            }
        }

        // Clean shutdown: every slot gets an exit line; write failures are
        // irrelevant because all work is already merged.
        for slot in &mut self.slots {
            if slot.alive {
                let _ = writeln!(slot.stdin, "{}", wire::encode_exit_message());
                let _ = slot.stdin.flush();
            }
            let _ = slot.child.wait();
        }
        Ok(())
    }

    /// All leases finished and nothing pending.
    fn finished(&self) -> bool {
        self.pending.is_empty() && self.slots.iter().all(|s| s.outstanding.is_empty())
    }

    /// Spawns (or respawns) a worker process and performs the synchronous
    /// handshake + configuration exchange before handing its stdout to a
    /// reader thread.
    fn spawn_worker(
        &mut self,
        index: usize,
        generation: u64,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<WorkerSlot, DistError> {
        let mut child = Command::new(&self.dist.worker_command)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        self.stats.spawns += 1;

        // A worker can die between spawn and pipe takeover; missing pipes
        // are a recoverable protocol error routed through the respawn path,
        // never a supervisor panic.
        let Some(mut stdin) = child.stdin.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(DistError::Protocol {
                worker: index,
                message: "worker spawned without a piped stdin".to_string(),
            });
        };
        let Some(stdout) = child.stdout.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(DistError::Protocol {
                worker: index,
                message: "worker spawned without a piped stdout".to_string(),
            });
        };
        let mut reader = BufReader::new(stdout);

        // A worker dying mid-handshake must be reaped here: the caller only
        // ever sees the error, so an unreaped child would leak as a zombie
        // across every retry.
        if let Err(error) = Self::handshake(&mut stdin, &mut reader, &self.config_line, index) {
            let _ = child.kill();
            let _ = child.wait();
            return Err(error);
        }

        let tx = events_tx.clone();
        std::thread::spawn(move || {
            for line in reader.lines() {
                match line {
                    Ok(line) => {
                        if tx
                            .send((index, generation, WorkerEvent::Line(line)))
                            .is_err()
                        {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send((index, generation, WorkerEvent::Closed));
        });

        Ok(WorkerSlot {
            child,
            stdin,
            generation,
            outstanding: Vec::new(),
            records_delivered: 0,
            alive: true,
            exiting: false,
        })
    }

    /// The synchronous spawn-time exchange: worker hello, configuration,
    /// configured acknowledgement. Split out of [`Supervisor::spawn_worker`]
    /// so every failure funnels through one child-reaping error path.
    fn handshake(
        stdin: &mut ChildStdin,
        reader: &mut impl BufRead,
        config_line: &str,
        index: usize,
    ) -> Result<(), DistError> {
        let handshake = read_worker_line(reader, index)?;
        wire::decode_handshake(&handshake)?;
        writeln!(stdin, "{config_line}")?;
        stdin.flush()?;
        let reply = read_worker_line(reader, index)?;
        match wire::decode_from_worker(&reply) {
            Ok(FromWorker::Configured) => Ok(()),
            other => Err(DistError::Protocol {
                worker: index,
                message: format!("expected configured, got {other:?}"),
            }),
        }
    }

    /// [`Supervisor::spawn_worker`] with the same recovery policy a
    /// mid-campaign death gets: each failed spawn attempt (died before the
    /// pipes were taken, died mid-handshake, unparsable hello) consumes one
    /// respawn from the budget and is retried, so a transiently flaky
    /// worker binary delays the campaign instead of aborting it.
    fn spawn_recovering(
        &mut self,
        index: usize,
        first_generation: u64,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<WorkerSlot, DistError> {
        let mut generation = first_generation;
        loop {
            match self.spawn_worker(index, generation, events_tx) {
                Ok(slot) => return Ok(slot),
                Err(error) => {
                    if self.stats.respawns >= self.dist.max_respawns {
                        return Err(error);
                    }
                    self.stats.respawns += 1;
                    generation += 1;
                    eprintln!("spatter-dist: worker {index} failed to start, retrying: {error}");
                }
            }
        }
    }

    /// Grants pending leases to every worker with spare in-flight capacity.
    fn dispatch(
        &mut self,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<(), DistError> {
        // Budget enforcement: past the deadline the remaining queue is
        // dropped (exactly like the in-process workers ceasing to claim
        // iterations), and the in-flight leases drain to completion.
        if self
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            self.pending.clear();
        }
        loop {
            if self.pending.is_empty() {
                return Ok(());
            }
            let Some(index) = self
                .slots
                .iter()
                .position(|s| s.alive && !s.exiting && s.outstanding.len() < LEASES_IN_FLIGHT)
            else {
                return Ok(());
            };
            let (start, len) = self.pending.pop_front().expect("checked non-empty");
            let id = self.next_lease;
            self.next_lease += 1;
            self.stats.leases_granted += 1;
            let line = wire::encode_lease_message(id, start, len);
            let slot = &mut self.slots[index];
            slot.outstanding.push(LeaseInfo { id, start, len });
            let sent = writeln!(slot.stdin, "{line}").and_then(|()| slot.stdin.flush());
            if sent.is_err() {
                // The worker died under us; the lease we just granted is in
                // its outstanding list and will be reclaimed with the rest.
                self.handle_death(index, events_tx)?;
            }
        }
    }

    /// Sends `exit` to a worker that can receive no further leases, so idle
    /// processes drain instead of lingering until the end of the campaign.
    fn maybe_retire(&mut self, index: usize) {
        let slot = &mut self.slots[index];
        if self.pending.is_empty() && slot.alive && !slot.exiting && slot.outstanding.is_empty() {
            slot.exiting = true;
            let _ = writeln!(slot.stdin, "{}", wire::encode_exit_message());
            let _ = slot.stdin.flush();
        }
    }

    /// A worker turned out to be broken at the protocol level: kill it and
    /// run the ordinary death path (reclaim + respawn).
    fn fail_worker(
        &mut self,
        index: usize,
        message: &str,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<(), DistError> {
        let slot = &mut self.slots[index];
        if !slot.alive {
            return Ok(());
        }
        eprintln!("spatter-dist: worker {index} failed: {message}");
        let _ = slot.child.kill();
        self.handle_death(index, events_tx)
    }

    /// Reclaims a dead worker's unacknowledged iterations and respawns the
    /// slot while the respawn budget lasts.
    fn handle_death(
        &mut self,
        index: usize,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<(), DistError> {
        let slot = &mut self.slots[index];
        if !slot.alive {
            return Ok(());
        }
        slot.alive = false;
        let _ = slot.child.kill();
        let _ = slot.child.wait();
        let was_exiting = slot.exiting;
        let outstanding = std::mem::take(&mut slot.outstanding);

        // Re-lease exactly the iterations that never produced a record.
        // Reclaimed ranges go to the *front* of the queue: they are the
        // oldest work in the campaign and everything else is newer.
        let mut reclaimed: Vec<(usize, usize)> = Vec::new();
        for lease in outstanding.iter().rev() {
            for iteration in (lease.start..lease.start + lease.len).rev() {
                if !self.completed.contains_key(&iteration) {
                    match reclaimed.last_mut() {
                        Some((start, len)) if iteration + 1 == *start => {
                            *start = iteration;
                            *len += 1;
                        }
                        _ => reclaimed.push((iteration, 1)),
                    }
                }
            }
        }
        for range in reclaimed.into_iter().rev() {
            self.pending.push_front(range);
        }

        if was_exiting || self.finished() {
            return Ok(());
        }

        if self.stats.respawns < self.dist.max_respawns {
            self.stats.respawns += 1;
            let generation = self.slots[index].generation + 1;
            match self.spawn_recovering(index, generation, events_tx) {
                Ok(slot) => {
                    self.slots[index] = slot;
                    return self.dispatch(events_tx);
                }
                Err(error) => {
                    // The slot is unrecoverable; fall through to the
                    // survivors check below instead of aborting a campaign
                    // the rest of the fleet can still finish.
                    eprintln!("spatter-dist: worker {index} could not be respawned: {error}");
                }
            }
        }

        // No respawn left: survivors may still drain the queue.
        if self.slots.iter().any(|s| s.alive && !s.exiting) {
            return self.dispatch(events_tx);
        }
        Err(DistError::RespawnsExhausted {
            lost_iterations: self.pending.iter().map(|(_, len)| len).sum(),
        })
    }
}

/// Reads one line from a worker's stdout during the synchronous spawn
/// handshake.
fn read_worker_line(reader: &mut impl BufRead, worker: usize) -> Result<String, DistError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(DistError::Protocol {
            worker,
            message: "worker closed its stream during the handshake".to_string(),
        });
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_the_span() {
        assert_eq!(chunk_ranges(2, 2, 4), VecDeque::from([]));
        assert_eq!(
            chunk_ranges(0, 5, 2),
            VecDeque::from([(0, 2), (2, 2), (4, 1)])
        );
        assert_eq!(chunk_ranges(3, 9, 3), VecDeque::from([(3, 3), (6, 3)]));
        let chunks = chunk_ranges(1, 100, 7);
        let total: usize = chunks.iter().map(|(_, len)| len).sum();
        assert_eq!(total, 99);
        let mut next = 1;
        for (start, len) in chunks {
            assert_eq!(start, next);
            next += len;
        }
        assert_eq!(next, 100);
    }

    #[test]
    fn dist_config_clamps_and_arms() {
        let config = DistConfig::new("/bin/worker")
            .with_processes(0)
            .with_threads_per_worker(0)
            .with_lease_chunk(0)
            .with_max_respawns(7)
            .with_kill_worker_after_records(1, 3);
        assert_eq!(config.processes, 1);
        assert_eq!(config.threads_per_worker, 1);
        assert_eq!(config.lease_chunk, 1);
        assert_eq!(config.max_respawns, 7);
        assert_eq!(config.kill_worker_after_records, Some((1, 3)));
    }
}
