//! Multi-process distributed campaigns: shared-nothing worker processes
//! supervised over a line-delimited wire protocol.
//!
//! The thread-sharded [`CampaignRunner`] (PR 1) scales a campaign across
//! one process's cores; this subsystem lifts the same sharding one level
//! up, across *processes* — and, through the [`crate::fabric`] transport
//! layer, across machines. A [`DistRunner`] supervisor connects K
//! `spatter-campaign-worker` executors (child processes over stdio pipes,
//! or remote peers over TCP — the supervisor event loop cannot tell the
//! difference), each of which runs the existing thread-sharded executor
//! over leased iteration ranges and streams its [`IterationRecord`]s back
//! over the [`wire`] codec; the supervisor performs the same deterministic
//! index-ordered merge as [`ShardReport::merge`]. Process isolation is the
//! same move the `spatter-sdb-server` backend (PR 3) made for *engines* —
//! here it is the campaign executors themselves that become
//! crash-survivable and machine-distributable.
//!
//! # Determinism
//!
//! Every iteration is a pure function of `(campaign seed, iteration
//! index)` — the runner's contract since PR 1 — so *where* an iteration
//! executes can never change what it produces. The supervisor merges
//! records by iteration index, not arrival order, which makes a
//! distributed campaign **byte-identical** (findings, attribution, skip
//! counts, probe coverage — [`CampaignReport::determinism_fingerprint`])
//! to the single-process runner for any transport and any processes ×
//! threads split. Guided campaigns hold the same contract because the
//! supervisor runs the warm-up prefix itself and ships the snapshot to
//! every worker; with [`CampaignConfig::guidance_epoch`] set the snapshot
//! is *refreshed* behind an epoch barrier — the supervisor absorbs the
//! probe deltas of a completed window in iteration-index order and
//! broadcasts the cumulative snapshot before leasing the next window, so
//! the guidance each iteration sees is still a pure function of the seed.
//!
//! # Crash survival and elastic leases
//!
//! Work is distributed as small chunked *leases* rather than static
//! per-worker ranges: a fast worker simply takes more leases, so one
//! finding-heavy (attribution-heavy) range cannot straggle the campaign
//! behind an idle fleet. With [`LeasePolicy::Adaptive`] lease length is
//! additionally sized per worker from an EWMA of its observed
//! per-iteration cost, so a slow worker is granted short leases (little to
//! reclaim, little tail latency) while fast workers get long ones (less
//! protocol chatter). Workers stream each record as it completes; when a
//! worker dies (crash, OOM-kill, the supervisor's own fault injection in
//! tests) the supervisor reclaims exactly the *unacknowledged* iterations
//! of its outstanding leases, re-enqueues them for the surviving workers,
//! captures the dead worker's stderr tail into [`SlotDiagnostics`], and
//! respawns the slot — the distributed equivalent of `StdioBackend`'s
//! respawn-and-replay.

pub mod wire;
pub mod worker;

use crate::campaign::{CampaignConfig, CampaignReport};
use crate::dist::wire::{FromWorker, WireError};
use crate::fabric::{ChannelControl, StdioTransport, Transport};
use crate::guidance::GuidanceMode;
use crate::replay::ReplaySink;
use crate::runner::{CampaignRunner, IterationRecord, ShardReport};
use spatter_topo::coverage::CoverageSnapshot;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Maximum leases a worker holds at once. Two keeps the pipe primed — the
/// worker starts the next lease the instant it finishes one — while keeping
/// the re-lease window after a crash small.
const LEASES_IN_FLIGHT: usize = 2;

/// EWMA weight of the newest per-iteration cost observation under
/// [`LeasePolicy::Adaptive`].
const EWMA_ALPHA: f64 = 0.3;

/// How lease lengths are chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeasePolicy {
    /// Every lease is [`DistConfig::lease_chunk`] iterations.
    Fixed,
    /// Lease length is sized per worker from an EWMA of the wall time the
    /// supervisor observes between that worker's records: slow workers get
    /// leases near `min` (small reclaim window, small tail), fast workers
    /// up to `max` (less protocol chatter). Until a worker has delivered
    /// two records it is granted `min`. Lease *sizing* is wall-clock
    /// driven, but which iteration lands where never changes what it
    /// produces — the merged report stays byte-identical to any other
    /// policy or fleet shape.
    Adaptive {
        /// Smallest lease ever granted (clamped to at least 1).
        min: usize,
        /// Largest lease ever granted.
        max: usize,
        /// Wall time one lease should take; length ≈ `target / ewma_cost`.
        target: Duration,
    },
}

/// Configuration of the distributed supervisor (everything that is about
/// *how* to run the campaign across processes; the campaign itself lives in
/// [`CampaignConfig`]).
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Path to the `spatter-campaign-worker` binary (used by the default
    /// stdio transport; ignored when [`DistRunner::with_transport`]
    /// supplies another transport that does not spawn it).
    pub worker_command: PathBuf,
    /// Number of worker processes (clamped to at least 1).
    pub processes: usize,
    /// Worker threads per process; the total parallelism is
    /// `processes × threads_per_worker`.
    pub threads_per_worker: usize,
    /// Iterations per lease under [`LeasePolicy::Fixed`]. Small leases
    /// steal better (an attribution-heavy chunk is re-leasable in small
    /// pieces); large leases amortize protocol chatter.
    pub lease_chunk: usize,
    /// The lease sizing policy.
    pub lease_policy: LeasePolicy,
    /// Total worker respawns the campaign tolerates before giving up.
    pub max_respawns: usize,
    /// Extra command-line arguments for specific worker slots, passed to
    /// the transport's spawner (e.g. `--iteration-delay-ms` to make one
    /// slot a deliberate straggler in tests).
    pub worker_slot_args: Vec<(usize, Vec<String>)>,
    /// Test-only fault injection: kill worker process `.0` as soon as it
    /// has delivered `.1` records. The campaign must still complete, and
    /// byte-identically — this is how the crash-recovery tests make a
    /// worker die mid-lease deterministically.
    pub kill_worker_after_records: Option<(usize, usize)>,
}

impl DistConfig {
    /// A supervisor configuration for a worker binary, with 2 processes ×
    /// 2 threads and small fixed leases.
    pub fn new(worker_command: impl Into<PathBuf>) -> Self {
        DistConfig {
            worker_command: worker_command.into(),
            processes: 2,
            threads_per_worker: 2,
            lease_chunk: 2,
            lease_policy: LeasePolicy::Fixed,
            max_respawns: 3,
            worker_slot_args: Vec::new(),
            kill_worker_after_records: None,
        }
    }

    /// Sets the worker process count.
    pub fn with_processes(mut self, processes: usize) -> Self {
        self.processes = processes.max(1);
        self
    }

    /// Sets the per-process thread count.
    pub fn with_threads_per_worker(mut self, threads: usize) -> Self {
        self.threads_per_worker = threads.max(1);
        self
    }

    /// Sets the fixed lease chunk size (and selects [`LeasePolicy::Fixed`]).
    pub fn with_lease_chunk(mut self, chunk: usize) -> Self {
        self.lease_chunk = chunk.max(1);
        self.lease_policy = LeasePolicy::Fixed;
        self
    }

    /// Selects [`LeasePolicy::Adaptive`] lease sizing.
    pub fn with_adaptive_leases(mut self, min: usize, max: usize, target: Duration) -> Self {
        let min = min.max(1);
        self.lease_policy = LeasePolicy::Adaptive {
            min,
            max: max.max(min),
            target,
        };
        self
    }

    /// Appends extra arguments for one worker slot (see
    /// [`DistConfig::worker_slot_args`]).
    pub fn with_worker_slot_args(mut self, slot: usize, args: Vec<String>) -> Self {
        self.worker_slot_args.push((slot, args));
        self
    }

    /// Sets the respawn budget.
    pub fn with_max_respawns(mut self, respawns: usize) -> Self {
        self.max_respawns = respawns;
        self
    }

    /// Arms the test-only kill switch (see the field docs).
    pub fn with_kill_worker_after_records(mut self, worker: usize, records: usize) -> Self {
        self.kill_worker_after_records = Some((worker, records));
        self
    }
}

/// What the supervisor knows about one dead worker incarnation: its slot,
/// its generation, and the tail of its captured stderr — the lines that
/// explain the death, which used to be inherited and lost.
#[derive(Debug, Clone)]
pub struct SlotDiagnostics {
    /// The worker slot index.
    pub worker: usize,
    /// The incarnation (0 for the initial spawn, +1 per respawn).
    pub generation: u64,
    /// The last captured stderr lines, oldest first. Empty for remote
    /// peers whose stderr the supervisor cannot observe.
    pub stderr_tail: Vec<String>,
}

impl fmt::Display for SlotDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker {} (generation {})", self.worker, self.generation)?;
        if self.stderr_tail.is_empty() {
            write!(f, ": no stderr captured")
        } else {
            write!(f, " stderr tail:")?;
            for line in &self.stderr_tail {
                write!(f, "\n    {line}")?;
            }
            Ok(())
        }
    }
}

/// Why a distributed campaign failed. (Individual worker *crashes* are not
/// failures — they are recovered; these are the unrecoverable ends.)
#[derive(Debug)]
pub enum DistError {
    /// A value could not be encoded for — or decoded from — the wire.
    Wire(WireError),
    /// Spawning or talking to a worker failed at the transport level and
    /// recovery was impossible.
    Io(std::io::Error),
    /// A worker violated the protocol (e.g. an unparsable line); its slot
    /// is treated as dead, and this error surfaces only when recovery is
    /// exhausted too.
    Protocol {
        /// The worker slot index.
        worker: usize,
        /// What went wrong.
        message: String,
    },
    /// A worker could not be brought up (died before, during or right
    /// after the handshake), with its captured stderr tail.
    WorkerFailed {
        /// The worker slot index.
        worker: usize,
        /// What went wrong.
        message: String,
        /// The worker's captured stderr tail, oldest first.
        stderr_tail: Vec<String>,
    },
    /// Workers kept dying and the respawn budget ran out with iterations
    /// still unexecuted.
    RespawnsExhausted {
        /// Iterations that were never acknowledged.
        lost_iterations: usize,
        /// Per-incarnation diagnostics of every worker death the
        /// supervisor observed, in death order.
        diagnostics: Vec<SlotDiagnostics>,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::Io(e) => write!(f, "worker transport error: {e}"),
            DistError::Protocol { worker, message } => {
                write!(f, "worker {worker} protocol error: {message}")
            }
            DistError::WorkerFailed {
                worker,
                message,
                stderr_tail,
            } => {
                write!(f, "worker {worker} failed to come up: {message}")?;
                for line in stderr_tail {
                    write!(f, "\n    stderr: {line}")?;
                }
                Ok(())
            }
            DistError::RespawnsExhausted {
                lost_iterations,
                diagnostics,
            } => {
                write!(
                    f,
                    "worker respawn budget exhausted with {lost_iterations} iterations unexecuted"
                )?;
                for diagnostic in diagnostics {
                    write!(f, "\n  {diagnostic}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DistError {}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

/// Observability counters of one distributed run.
#[derive(Debug, Clone, Default)]
pub struct DistStats {
    /// Worker processes spawned in total (initial fleet + respawns).
    pub spawns: usize,
    /// Respawns after worker deaths.
    pub respawns: usize,
    /// Leases granted (including re-leases of reclaimed work).
    pub leases_granted: usize,
    /// Adaptive-lease grants whose length differed from the same slot's
    /// previous grant — how often [`LeasePolicy::Adaptive`] actually
    /// resized. Always 0 under [`LeasePolicy::Fixed`].
    pub leases_resized: usize,
    /// Iteration records received from workers.
    pub records_received: usize,
    /// Records delivered by each worker slot (across its incarnations).
    pub records_per_slot: Vec<usize>,
    /// Records for an iteration that was already complete (re-executed
    /// after a partial lease was reclaimed; merged first-wins).
    pub duplicate_records: usize,
    /// Epoch-barrier guidance broadcasts sent (see
    /// [`CampaignConfig::guidance_epoch`]).
    pub guidance_epochs: usize,
    /// Time spent decoding worker record lines.
    pub decode_time: Duration,
    /// Time spent in the final index-ordered merge.
    pub merge_time: Duration,
}

/// The distributed campaign supervisor. `DistRunner::new(campaign,
/// dist).run()` is the multi-process counterpart of
/// `CampaignRunner::new(campaign).with_workers(n).run()`.
pub struct DistRunner {
    campaign: CampaignConfig,
    dist: DistConfig,
    replay_sink: Option<Arc<dyn ReplaySink>>,
    transport: Option<Box<dyn Transport>>,
}

impl DistRunner {
    /// Creates a supervisor for a campaign, reaching workers over the
    /// default stdio transport (child processes of
    /// [`DistConfig::worker_command`]).
    pub fn new(campaign: CampaignConfig, dist: DistConfig) -> Self {
        DistRunner {
            campaign,
            dist,
            replay_sink: None,
            transport: None,
        }
    }

    /// Replaces the worker transport — e.g. [`crate::fabric::TcpTransport`]
    /// to drive workers over sockets. The supervisor's event loop, lease
    /// protocol and merge are transport-agnostic, so the campaign report is
    /// byte-identical on any transport.
    pub fn with_transport(mut self, transport: Box<dyn Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Attaches a replay sink, the multi-process counterpart of
    /// [`CampaignRunner::with_replay_sink`]. Warm-up frames are delivered
    /// from the supervisor's own warm-up runner; leased frames arrive
    /// inside the workers' record messages and are delivered verbatim —
    /// never recomputed — as each iteration completes (first-wins, like the
    /// record merge).
    pub fn with_replay_sink(mut self, sink: Arc<dyn ReplaySink>) -> Self {
        self.replay_sink = Some(sink);
        self
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.campaign
    }

    /// The distribution configuration.
    pub fn dist_config(&self) -> &DistConfig {
        &self.dist
    }

    /// Runs the distributed campaign and merges every worker's records into
    /// one report, byte-identical to the in-process runner's.
    ///
    /// A `time_budget` is enforced by the supervisor at *lease* granularity:
    /// workers receive a budget-erased configuration and always execute a
    /// granted lease to completion, while the supervisor stops granting new
    /// leases once the budget (measured on its own campaign clock, like the
    /// in-process runner's) expires. Budgeted campaigns therefore stop near
    /// the deadline with every executed iteration fully recorded — never
    /// with silently half-executed leases — but, exactly as with the
    /// thread-sharded runner, *which* iterations fit the budget is wall-
    /// clock dependent; the byte-identity contract is for
    /// iteration-bounded campaigns.
    pub fn run(&self) -> Result<CampaignReport, DistError> {
        self.run_with_stats().map(|(report, _)| report)
    }

    /// [`DistRunner::run`], also returning the supervisor's counters.
    pub fn run_with_stats(&self) -> Result<(CampaignReport, DistStats), DistError> {
        let start = Instant::now();

        // The guidance warm-up runs on the supervisor, exactly like the
        // in-process runner's coordinating thread: its records are part of
        // the campaign, and its snapshot is what every worker receives.
        let mut runner = CampaignRunner::new(self.campaign.clone());
        if let Some(sink) = &self.replay_sink {
            runner = runner.with_replay_sink(Arc::clone(sink));
        }
        let (warmup, snapshot) = runner.warmup_phase(start);
        let first_iteration = warmup.records.len();

        // Workers get the budget *erased*: a worker that hit the budget
        // mid-lease would drop the lease's tail while still reporting it
        // done, silently losing iterations. The supervisor instead enforces
        // the budget by not granting leases past the deadline (see `run`).
        let worker_campaign = CampaignConfig {
            time_budget: None,
            ..self.campaign.clone()
        };
        let config_line = wire::encode_config_message(
            self.dist.threads_per_worker.max(1),
            &worker_campaign,
            snapshot.as_ref(),
        )?;

        // With guidance epochs the supervisor leases only the current
        // window: later windows become available when the barrier advances.
        let epoch = match (
            self.campaign.guidance,
            self.campaign.guidance_epoch,
            &snapshot,
        ) {
            (GuidanceMode::ColdProbe, Some(len), Some(snapshot)) if len > 0 => Some(EpochState {
                len,
                base: first_iteration,
                end: self.campaign.iterations.min(first_iteration + len),
                iterations: self.campaign.iterations,
                snapshot: snapshot.clone(),
            }),
            _ => None,
        };
        let queue_end = match &epoch {
            Some(epoch) => epoch.end,
            None => self.campaign.iterations,
        };

        let owned_transport: Box<dyn Transport>;
        let transport: &dyn Transport = match &self.transport {
            Some(transport) => transport.as_ref(),
            None => {
                let mut stdio = StdioTransport::new(&self.dist.worker_command);
                for (slot, args) in &self.dist.worker_slot_args {
                    stdio = stdio.with_slot_args(*slot, args.clone());
                }
                owned_transport = Box::new(stdio);
                owned_transport.as_ref()
            }
        };

        let mut stats = DistStats::default();
        let mut completed: BTreeMap<usize, IterationRecord> = BTreeMap::new();

        if first_iteration < self.campaign.iterations {
            let mut pending = VecDeque::new();
            if first_iteration < queue_end {
                pending.push_back((first_iteration, queue_end - first_iteration));
            }
            let mut supervisor = Supervisor {
                dist: &self.dist,
                transport,
                config_line,
                slots: Vec::new(),
                pending,
                completed: &mut completed,
                next_lease: 0,
                stats: &mut stats,
                kill_armed: self.dist.kill_worker_after_records,
                deadline: self.campaign.time_budget.map(|budget| start + budget),
                replay_sink: self.replay_sink.as_deref(),
                epoch,
                epoch_line: None,
                diagnostics: Vec::new(),
            };
            supervisor.run()?;
        }

        let merge_start = Instant::now();
        let mut records = warmup.records;
        records.extend(std::mem::take(&mut completed).into_values());
        let report = ShardReport::merge(vec![ShardReport { records }], start.elapsed());
        stats.merge_time = merge_start.elapsed();
        Ok((report, stats))
    }
}

/// Cuts the next lease of at most `len` iterations off the front of the
/// pending queue, leaving the remainder of a partially consumed range at
/// the front.
fn take_lease(pending: &mut VecDeque<(usize, usize)>, len: usize) -> Option<(usize, usize)> {
    let (start, available) = pending.pop_front()?;
    let take = len.max(1).min(available);
    if take < available {
        pending.push_front((start + take, available - take));
    }
    Some((start, take))
}

/// One granted, not-yet-finished lease.
#[derive(Debug, Clone)]
struct LeaseInfo {
    id: u64,
    start: usize,
    len: usize,
}

/// What a worker's reader thread forwards to the supervisor loop.
enum WorkerEvent {
    /// One protocol line from the worker.
    Line(String),
    /// The worker's stream closed (process death, socket shutdown, or
    /// clean exit).
    Closed,
}

/// A worker slot: the current incarnation of worker index `i`. Respawns
/// bump `generation` so events from a dead incarnation's reader thread are
/// recognizably stale.
struct WorkerSlot {
    writer: Box<dyn Write + Send>,
    control: Box<dyn ChannelControl>,
    generation: u64,
    outstanding: Vec<LeaseInfo>,
    records_delivered: usize,
    alive: bool,
    exiting: bool,
    /// EWMA of the wall time between this worker's records, the cost
    /// signal of [`LeasePolicy::Adaptive`].
    ewma_cost: Option<f64>,
    last_record_at: Option<Instant>,
    /// The length of this slot's previous lease grant, for the
    /// `leases_resized` stat.
    last_lease_len: Option<usize>,
}

/// The epoch-barrier state of a guided campaign with
/// [`CampaignConfig::guidance_epoch`] set: the current window
/// `[base, end)` and the cumulative coverage snapshot of everything
/// before it.
struct EpochState {
    len: usize,
    base: usize,
    end: usize,
    iterations: usize,
    snapshot: CoverageSnapshot,
}

/// The supervisor's event loop state (borrowed from
/// [`DistRunner::run_with_stats`] so the stats and record map outlive it).
struct Supervisor<'a> {
    dist: &'a DistConfig,
    transport: &'a dyn Transport,
    config_line: String,
    slots: Vec<WorkerSlot>,
    pending: VecDeque<(usize, usize)>,
    completed: &'a mut BTreeMap<usize, IterationRecord>,
    next_lease: u64,
    stats: &'a mut DistStats,
    /// The armed kill switch; disarmed after firing so the respawned worker
    /// is not killed again.
    kill_armed: Option<(usize, usize)>,
    /// The campaign's time-budget deadline on the supervisor clock; leases
    /// are never granted past it (in-flight leases run to completion).
    deadline: Option<Instant>,
    /// Where worker-computed replay frames are delivered (first-wins, like
    /// the record merge). The supervisor never recomputes a frame: what the
    /// executing worker hashed is what the artifact records.
    replay_sink: Option<&'a dyn ReplaySink>,
    /// The guidance epoch barrier, when the campaign runs in epochs.
    epoch: Option<EpochState>,
    /// The latest epoch broadcast line, replayed to respawned workers right
    /// after their handshake so a fresh incarnation never runs a
    /// current-window iteration under the stale warm-up snapshot.
    epoch_line: Option<String>,
    /// Diagnostics of every worker death observed, in death order.
    diagnostics: Vec<SlotDiagnostics>,
}

impl Supervisor<'_> {
    fn run(&mut self) -> Result<(), DistError> {
        let (events_tx, events_rx) = mpsc::channel::<(usize, u64, WorkerEvent)>();

        // Initial fleet: never more processes than pending iterations. A
        // slot whose worker keeps dying before configuration consumes
        // respawn budget instead of aborting the campaign, and a
        // partially-spawned fleet still drains the whole queue — the hard
        // failure is only when not a single worker comes up.
        let queued: usize = self.pending.iter().map(|(_, len)| len).sum();
        let fleet = self.dist.processes.max(1).min(queued.max(1));
        self.stats.records_per_slot = vec![0; fleet];
        for index in 0..fleet {
            match self.spawn_recovering(index, 0, &events_tx) {
                Ok(slot) => self.slots.push(slot),
                Err(error) => {
                    if self.slots.is_empty() {
                        return Err(error);
                    }
                    eprintln!(
                        "spatter-dist: continuing with a fleet of {}: {error}",
                        self.slots.len()
                    );
                    break;
                }
            }
        }
        self.dispatch(&events_tx)?;

        while !self.finished() {
            let (index, generation, event) = events_rx.recv().map_err(|_| DistError::Protocol {
                worker: usize::MAX,
                message: "all worker channels closed with work outstanding".to_string(),
            })?;
            if self.slots[index].generation != generation || !self.slots[index].alive {
                continue; // stale event from a replaced incarnation
            }
            match event {
                WorkerEvent::Closed => self.handle_death(index, &events_tx)?,
                WorkerEvent::Line(line) => {
                    let decode_start = Instant::now();
                    let message = wire::decode_from_worker(&line);
                    self.stats.decode_time += decode_start.elapsed();
                    match message {
                        Ok(FromWorker::Record { record, .. }) => {
                            let now = Instant::now();
                            self.stats.records_received += 1;
                            self.stats.records_per_slot[index] += 1;
                            let slot = &mut self.slots[index];
                            slot.records_delivered += 1;
                            let delivered = slot.records_delivered;
                            if let Some(previous) = slot.last_record_at.replace(now) {
                                let cost = now.duration_since(previous).as_secs_f64();
                                slot.ewma_cost = Some(match slot.ewma_cost {
                                    Some(ewma) => (1.0 - EWMA_ALPHA) * ewma + EWMA_ALPHA * cost,
                                    None => cost,
                                });
                            }
                            let frame = record.replay.clone();
                            if self.completed.insert(record.iteration, record).is_some() {
                                self.stats.duplicate_records += 1;
                            } else {
                                if let Some(sink) = self.replay_sink {
                                    sink.record_frame(&frame);
                                }
                                self.maybe_advance_epoch(&events_tx)?;
                            }
                            if let Some((victim, after)) = self.kill_armed {
                                if victim == index && delivered >= after {
                                    // Fault injection: a hard, unannounced
                                    // kill; the reader thread will report
                                    // the death like any real crash.
                                    self.kill_armed = None;
                                    self.slots[index].control.kill();
                                }
                            }
                        }
                        Ok(FromWorker::Done { lease }) => {
                            self.slots[index].outstanding.retain(|l| l.id != lease);
                            self.dispatch(&events_tx)?;
                            self.maybe_retire(index);
                        }
                        Ok(FromWorker::Configured) => {
                            // Already consumed during the spawn handshake;
                            // a second one is protocol noise — treat the
                            // worker as broken.
                            self.fail_worker(index, "unexpected configured", &events_tx)?;
                        }
                        Err(error) => {
                            self.fail_worker(index, &error.to_string(), &events_tx)?;
                        }
                    }
                }
            }
        }

        // Clean shutdown: every slot gets an exit line; write failures are
        // irrelevant because all work is already merged.
        for slot in &mut self.slots {
            if slot.alive {
                let _ = writeln!(slot.writer, "{}", wire::encode_exit_message());
                let _ = slot.writer.flush();
            }
            let _ = slot.control.reap();
        }
        Ok(())
    }

    /// All leases finished and nothing pending. (An epoch barrier cannot be
    /// waiting here: the barrier advances the moment the last record of a
    /// window arrives, pushing the next window into `pending` before
    /// `finished` is next consulted.)
    fn finished(&self) -> bool {
        self.pending.is_empty() && self.slots.iter().all(|s| s.outstanding.is_empty())
    }

    /// Whether the epoch barrier will still release further windows.
    fn more_epochs_coming(&self) -> bool {
        self.epoch.as_ref().is_some_and(|e| e.end < e.iterations)
    }

    /// Advances the epoch barrier while complete windows allow: absorbs the
    /// finished window's probe deltas in iteration-index order, broadcasts
    /// the refreshed cumulative snapshot to the fleet, and only then
    /// releases the next window for leasing — stdin ordering guarantees
    /// every worker swaps its guidance before its first new-window lease.
    fn maybe_advance_epoch(
        &mut self,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<(), DistError> {
        loop {
            let (line, window) = {
                let Some(epoch) = &mut self.epoch else {
                    return Ok(());
                };
                if epoch.end >= epoch.iterations {
                    return Ok(()); // final window: no barrier after it
                }
                if !(epoch.base..epoch.end).all(|i| self.completed.contains_key(&i)) {
                    return Ok(()); // window still executing
                }
                for iteration in epoch.base..epoch.end {
                    let record = &self.completed[&iteration];
                    epoch.snapshot.absorb(&record.probe_delta);
                }
                epoch.base = epoch.end;
                epoch.end = epoch.iterations.min(epoch.base + epoch.len);
                (
                    wire::encode_epoch_message(&epoch.snapshot),
                    (epoch.base, epoch.end - epoch.base),
                )
            };
            self.stats.guidance_epochs += 1;
            self.epoch_line = Some(line.clone());
            let mut dead = Vec::new();
            for (index, slot) in self.slots.iter_mut().enumerate() {
                if !slot.alive || slot.exiting {
                    continue;
                }
                let sent = writeln!(slot.writer, "{line}").and_then(|()| slot.writer.flush());
                if sent.is_err() {
                    dead.push(index);
                }
            }
            for index in dead {
                self.handle_death(index, events_tx)?;
            }
            self.pending.push_back(window);
            self.dispatch(events_tx)?;
        }
    }

    /// Connects (or reconnects) a worker through the transport and performs
    /// the synchronous handshake + configuration exchange before handing
    /// its read half to a reader thread.
    fn spawn_worker(
        &mut self,
        index: usize,
        generation: u64,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<WorkerSlot, DistError> {
        let channel = self.transport.connect(index)?;
        self.stats.spawns += 1;
        let crate::fabric::WorkerChannel {
            mut writer,
            mut reader,
            mut control,
        } = channel;

        // A worker dying mid-handshake must be reaped here: the caller only
        // ever sees the error, so an unreaped child would leak as a zombie
        // across every retry — and its stderr tail is the diagnosis.
        let setup =
            Self::handshake(&mut writer, &mut reader, &self.config_line, index).and_then(|()| {
                control.handshake_complete();
                // A fresh incarnation joining mid-campaign must catch up to
                // the current epoch before its first lease: the config line
                // only carries the warm-up snapshot.
                if let Some(epoch_line) = &self.epoch_line {
                    writeln!(writer, "{epoch_line}")?;
                    writer.flush()?;
                }
                Ok(())
            });
        if let Err(error) = setup {
            control.kill();
            let stderr_tail = control.reap();
            return Err(DistError::WorkerFailed {
                worker: index,
                message: error.to_string(),
                stderr_tail,
            });
        }

        let tx = events_tx.clone();
        std::thread::spawn(move || {
            for line in reader.lines() {
                match line {
                    Ok(line) => {
                        if tx
                            .send((index, generation, WorkerEvent::Line(line)))
                            .is_err()
                        {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send((index, generation, WorkerEvent::Closed));
        });

        Ok(WorkerSlot {
            writer,
            control,
            generation,
            outstanding: Vec::new(),
            records_delivered: 0,
            alive: true,
            exiting: false,
            ewma_cost: None,
            last_record_at: None,
            last_lease_len: None,
        })
    }

    /// The synchronous spawn-time exchange: worker hello, configuration,
    /// configured acknowledgement. Split out of [`Supervisor::spawn_worker`]
    /// so every failure funnels through one reaping error path.
    fn handshake(
        writer: &mut (impl Write + ?Sized),
        reader: &mut (impl BufRead + ?Sized),
        config_line: &str,
        index: usize,
    ) -> Result<(), DistError> {
        let handshake = read_worker_line(reader, index)?;
        wire::decode_handshake(&handshake)?;
        writeln!(writer, "{config_line}")?;
        writer.flush()?;
        let reply = read_worker_line(reader, index)?;
        match wire::decode_from_worker(&reply) {
            Ok(FromWorker::Configured) => Ok(()),
            other => Err(DistError::Protocol {
                worker: index,
                message: format!("expected configured, got {other:?}"),
            }),
        }
    }

    /// [`Supervisor::spawn_worker`] with the same recovery policy a
    /// mid-campaign death gets: each failed spawn attempt (died before the
    /// channel came up, died mid-handshake, unparsable hello) consumes one
    /// respawn from the budget and is retried, so a transiently flaky
    /// worker binary delays the campaign instead of aborting it.
    fn spawn_recovering(
        &mut self,
        index: usize,
        first_generation: u64,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<WorkerSlot, DistError> {
        let mut generation = first_generation;
        loop {
            match self.spawn_worker(index, generation, events_tx) {
                Ok(slot) => return Ok(slot),
                Err(error) => {
                    if let DistError::WorkerFailed { stderr_tail, .. } = &error {
                        self.diagnostics.push(SlotDiagnostics {
                            worker: index,
                            generation,
                            stderr_tail: stderr_tail.clone(),
                        });
                    }
                    if self.stats.respawns >= self.dist.max_respawns {
                        return Err(error);
                    }
                    self.stats.respawns += 1;
                    generation += 1;
                    eprintln!("spatter-dist: worker {index} failed to start, retrying: {error}");
                }
            }
        }
    }

    /// The lease length a grant to `index` should have under the policy.
    fn lease_len_for(&self, index: usize) -> usize {
        match &self.dist.lease_policy {
            LeasePolicy::Fixed => self.dist.lease_chunk.max(1),
            LeasePolicy::Adaptive { min, max, target } => {
                let min = (*min).max(1);
                let max = (*max).max(min);
                match self.slots[index].ewma_cost {
                    None => min,
                    Some(cost) if cost <= f64::EPSILON => max,
                    Some(cost) => {
                        let ideal = (target.as_secs_f64() / cost) as usize;
                        ideal.clamp(min, max)
                    }
                }
            }
        }
    }

    /// Grants pending leases to every worker with spare in-flight capacity.
    fn dispatch(
        &mut self,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<(), DistError> {
        // Budget enforcement: past the deadline the remaining queue is
        // dropped (exactly like the in-process workers ceasing to claim
        // iterations), and the in-flight leases drain to completion.
        if self
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            self.pending.clear();
        }
        loop {
            if self.pending.is_empty() {
                return Ok(());
            }
            let Some(index) = self
                .slots
                .iter()
                .position(|s| s.alive && !s.exiting && s.outstanding.len() < LEASES_IN_FLIGHT)
            else {
                return Ok(());
            };
            let lease_len = self.lease_len_for(index);
            let (start, len) = take_lease(&mut self.pending, lease_len).expect("checked non-empty");
            let id = self.next_lease;
            self.next_lease += 1;
            self.stats.leases_granted += 1;
            // A grant whose adaptive length differs from the slot's previous
            // grant is a resize (queue-tail truncation is not).
            if matches!(self.dist.lease_policy, LeasePolicy::Adaptive { .. })
                && self.slots[index]
                    .last_lease_len
                    .is_some_and(|previous| previous != lease_len)
            {
                self.stats.leases_resized += 1;
            }
            self.slots[index].last_lease_len = Some(lease_len);
            let line = wire::encode_lease_message(id, start, len);
            let slot = &mut self.slots[index];
            slot.outstanding.push(LeaseInfo { id, start, len });
            let sent = writeln!(slot.writer, "{line}").and_then(|()| slot.writer.flush());
            if sent.is_err() {
                // The worker died under us; the lease we just granted is in
                // its outstanding list and will be reclaimed with the rest.
                self.handle_death(index, events_tx)?;
            }
        }
    }

    /// Sends `exit` to a worker that can receive no further leases, so idle
    /// processes drain instead of lingering until the end of the campaign.
    fn maybe_retire(&mut self, index: usize) {
        if self.more_epochs_coming() {
            return; // the barrier will release more work for this slot
        }
        let slot = &mut self.slots[index];
        if self.pending.is_empty() && slot.alive && !slot.exiting && slot.outstanding.is_empty() {
            slot.exiting = true;
            let _ = writeln!(slot.writer, "{}", wire::encode_exit_message());
            let _ = slot.writer.flush();
        }
    }

    /// A worker turned out to be broken at the protocol level: kill it and
    /// run the ordinary death path (reclaim + respawn).
    fn fail_worker(
        &mut self,
        index: usize,
        message: &str,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<(), DistError> {
        let slot = &mut self.slots[index];
        if !slot.alive {
            return Ok(());
        }
        eprintln!("spatter-dist: worker {index} failed: {message}");
        slot.control.kill();
        self.handle_death(index, events_tx)
    }

    /// Reclaims a dead worker's unacknowledged iterations, captures its
    /// stderr tail into the diagnostics, and respawns the slot while the
    /// respawn budget lasts.
    fn handle_death(
        &mut self,
        index: usize,
        events_tx: &mpsc::Sender<(usize, u64, WorkerEvent)>,
    ) -> Result<(), DistError> {
        let slot = &mut self.slots[index];
        if !slot.alive {
            return Ok(());
        }
        slot.alive = false;
        slot.control.kill();
        let stderr_tail = slot.control.reap();
        if !stderr_tail.is_empty() {
            eprintln!(
                "spatter-dist: worker {index} died; stderr tail:\n    {}",
                stderr_tail.join("\n    ")
            );
        }
        self.diagnostics.push(SlotDiagnostics {
            worker: index,
            generation: slot.generation,
            stderr_tail,
        });
        let was_exiting = slot.exiting;
        let outstanding = std::mem::take(&mut slot.outstanding);

        // Re-lease exactly the iterations that never produced a record.
        // Reclaimed ranges go to the *front* of the queue: they are the
        // oldest work in the campaign and everything else is newer.
        let mut reclaimed: Vec<(usize, usize)> = Vec::new();
        for lease in outstanding.iter().rev() {
            for iteration in (lease.start..lease.start + lease.len).rev() {
                if !self.completed.contains_key(&iteration) {
                    match reclaimed.last_mut() {
                        Some((start, len)) if iteration + 1 == *start => {
                            *start = iteration;
                            *len += 1;
                        }
                        _ => reclaimed.push((iteration, 1)),
                    }
                }
            }
        }
        for range in reclaimed.into_iter().rev() {
            self.pending.push_front(range);
        }

        if was_exiting || self.finished() {
            return Ok(());
        }

        if self.stats.respawns < self.dist.max_respawns {
            self.stats.respawns += 1;
            let generation = self.slots[index].generation + 1;
            match self.spawn_recovering(index, generation, events_tx) {
                Ok(slot) => {
                    self.slots[index] = slot;
                    return self.dispatch(events_tx);
                }
                Err(error) => {
                    // The slot is unrecoverable; fall through to the
                    // survivors check below instead of aborting a campaign
                    // the rest of the fleet can still finish.
                    eprintln!("spatter-dist: worker {index} could not be respawned: {error}");
                }
            }
        }

        // No respawn left: survivors may still drain the queue.
        if self.slots.iter().any(|s| s.alive && !s.exiting) {
            return self.dispatch(events_tx);
        }
        Err(DistError::RespawnsExhausted {
            lost_iterations: self.pending.iter().map(|(_, len)| len).sum(),
            diagnostics: std::mem::take(&mut self.diagnostics),
        })
    }
}

/// Reads one line from a worker's stream during the synchronous spawn
/// handshake.
fn read_worker_line(
    reader: &mut (impl BufRead + ?Sized),
    worker: usize,
) -> Result<String, DistError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(DistError::Protocol {
            worker,
            message: "worker closed its stream during the handshake".to_string(),
        });
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_lease_cuts_ranges_at_grant_time() {
        let mut pending = VecDeque::from([(0, 5), (10, 2)]);
        assert_eq!(take_lease(&mut pending, 2), Some((0, 2)));
        assert_eq!(take_lease(&mut pending, 2), Some((2, 2)));
        assert_eq!(take_lease(&mut pending, 2), Some((4, 1)));
        assert_eq!(take_lease(&mut pending, 100), Some((10, 2)));
        assert_eq!(take_lease(&mut pending, 2), None);
        // A zero-length request still grants one iteration: leases always
        // make progress.
        let mut pending = VecDeque::from([(7, 3)]);
        assert_eq!(take_lease(&mut pending, 0), Some((7, 1)));
        assert_eq!(pending, VecDeque::from([(8, 2)]));
    }

    #[test]
    fn dist_config_clamps_and_arms() {
        let config = DistConfig::new("/bin/worker")
            .with_processes(0)
            .with_threads_per_worker(0)
            .with_lease_chunk(0)
            .with_max_respawns(7)
            .with_kill_worker_after_records(1, 3);
        assert_eq!(config.processes, 1);
        assert_eq!(config.threads_per_worker, 1);
        assert_eq!(config.lease_chunk, 1);
        assert_eq!(config.lease_policy, LeasePolicy::Fixed);
        assert_eq!(config.max_respawns, 7);
        assert_eq!(config.kill_worker_after_records, Some((1, 3)));

        let adaptive =
            DistConfig::new("/bin/worker").with_adaptive_leases(0, 0, Duration::from_millis(250));
        assert_eq!(
            adaptive.lease_policy,
            LeasePolicy::Adaptive {
                min: 1,
                max: 1,
                target: Duration::from_millis(250)
            }
        );
    }
}
