//! The campaign worker process: the serve loop behind the
//! `spatter-campaign-worker` binary.
//!
//! A worker is one shared-nothing campaign executor. It announces itself
//! with the wire handshake, receives its [`CampaignConfig`] (backend spec,
//! oracle suite, optional frozen guidance snapshot) exactly once, and then
//! executes iteration leases: for each `lease` line it claims the leased
//! iteration indices across its own pool of OS threads — the PR 1
//! thread-sharded runner, one level down — and streams every finished
//! [`IterationRecord`] back as a `record` line the moment it completes.
//! Records are streamed (rather than batched per lease) so that when the
//! process dies mid-lease the supervisor only re-leases the iterations it
//! never received; everything already streamed is acknowledged work.
//!
//! Workers never read coverage state from anywhere but their own
//! iterations: the guidance snapshot arrives frozen over the wire, and
//! every guided decision is the same pure function of
//! `(snapshot, seed, iteration)` the in-process runner computes — which is
//! why a distributed campaign merges byte-identically to a single-process
//! one.

use crate::dist::wire::{self, ToWorker, WireError};
use crate::guidance::Guidance;
use crate::runner::CampaignRunner;
use std::fmt;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why a worker's serve loop stopped abnormally.
#[derive(Debug)]
pub enum WorkerError {
    /// A supervisor line could not be decoded.
    Wire(WireError),
    /// The stdio transport to the supervisor failed.
    Io(std::io::Error),
    /// A message arrived in the wrong state (e.g. a lease before the
    /// configuration, or a second configuration).
    Protocol(String),
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Wire(e) => write!(f, "wire error: {e}"),
            WorkerError::Io(e) => write!(f, "transport error: {e}"),
            WorkerError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<WireError> for WorkerError {
    fn from(e: WireError) -> Self {
        WorkerError::Wire(e)
    }
}

impl From<std::io::Error> for WorkerError {
    fn from(e: std::io::Error) -> Self {
        WorkerError::Io(e)
    }
}

/// The configured half of a worker: the runner (owning the rebuilt backend)
/// plus the guidance rebuilt from the shipped snapshot and the thread count
/// its leases are sharded over.
struct WorkerState {
    runner: CampaignRunner,
    guidance: Option<Guidance>,
    threads: usize,
    /// The worker's own campaign clock, started when the configuration
    /// arrives. Only wall-clock fields (excluded from the determinism
    /// fingerprint) observe it.
    start: Instant,
    /// Test-only straggler injection (see [`ServeOptions`]).
    iteration_delay: Option<Duration>,
}

/// Serve-loop knobs that are about the *worker process*, not the campaign
/// (which arrives over the wire).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Sleep this long before every iteration — the deliberate-straggler
    /// switch behind `spatter-campaign-worker --iteration-delay-ms`, used
    /// by the elastic-lease tests and benches. Wall-clock only: the
    /// iteration's *outputs* are untouched, so a straggling fleet still
    /// merges byte-identically.
    pub iteration_delay: Option<Duration>,
}

/// Runs the worker serve loop until the supervisor sends `exit` or closes
/// the stream. Clean EOF is a normal shutdown (the supervisor went away);
/// malformed input is an error so a version- or build-skewed pairing fails
/// loudly instead of corrupting a campaign.
pub fn serve(input: impl BufRead, output: impl Write + Send) -> Result<(), WorkerError> {
    serve_with_options(input, output, ServeOptions::default())
}

/// [`serve`] with explicit [`ServeOptions`].
pub fn serve_with_options(
    input: impl BufRead,
    mut output: impl Write + Send,
    options: ServeOptions,
) -> Result<(), WorkerError> {
    writeln!(output, "{}", wire::encode_handshake())?;
    output.flush()?;

    let mut state: Option<WorkerState> = None;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match wire::decode_to_worker(&line)? {
            ToWorker::Config {
                threads,
                campaign,
                snapshot,
            } => {
                if state.is_some() {
                    return Err(WorkerError::Protocol(
                        "received a second configuration".to_string(),
                    ));
                }
                state = Some(WorkerState {
                    runner: CampaignRunner::new(campaign),
                    guidance: snapshot.as_ref().map(Guidance::from_snapshot),
                    threads: threads.max(1),
                    start: Instant::now(),
                    iteration_delay: options.iteration_delay,
                });
                writeln!(output, "{}", wire::encode_configured_message())?;
                output.flush()?;
            }
            ToWorker::Lease { id, start, len } => {
                let state = state.as_ref().ok_or_else(|| {
                    WorkerError::Protocol("received a lease before the configuration".to_string())
                })?;
                run_lease(state, id, start, len, &mut output)?;
            }
            ToWorker::Epoch { snapshot } => {
                // The epoch-barrier guidance refresh. Stdin ordering puts
                // this line before any lease of the new window, so every
                // later iteration is generated under the refreshed
                // cumulative snapshot — the same pure function of the seed
                // the in-process epoch loop computes.
                let state = state.as_mut().ok_or_else(|| {
                    WorkerError::Protocol(
                        "received an epoch refresh before the configuration".to_string(),
                    )
                })?;
                state.guidance = Some(Guidance::from_snapshot(&snapshot));
            }
            ToWorker::Exit => return Ok(()),
        }
    }
    Ok(())
}

/// Executes one lease across the worker's thread pool, streaming each
/// iteration's record as soon as it finishes and closing with `done`.
///
/// Iterations are claimed from a shared atomic counter (the same
/// work-stealing discipline as the thread-sharded runner), each one runs
/// entirely on its claiming thread so the thread-local probe recorder
/// measures exactly its delta, and the encoded record is written under a
/// mutex so concurrent threads cannot interleave partial lines.
fn run_lease(
    state: &WorkerState,
    lease: u64,
    start: usize,
    len: usize,
    output: &mut (impl Write + Send),
) -> Result<(), WorkerError> {
    let end = start.saturating_add(len);
    let next = AtomicUsize::new(start);
    let sink = Mutex::new((output, None::<std::io::Error>));

    let work = || loop {
        if let Some(budget) = state.runner.config().time_budget {
            if state.start.elapsed() >= budget {
                break;
            }
        }
        let iteration = next.fetch_add(1, Ordering::Relaxed);
        if iteration >= end {
            break;
        }
        if let Some(delay) = state.iteration_delay {
            std::thread::sleep(delay);
        }
        let record = state
            .runner
            .run_iteration(iteration, state.start, state.guidance.as_ref());
        let line = wire::encode_record_message(lease, &record);
        let mut guard = sink.lock().expect("record sink poisoned");
        if guard.1.is_some() {
            // The transport already failed; stop producing.
            break;
        }
        let result = writeln!(guard.0, "{line}").and_then(|()| guard.0.flush());
        if let Err(e) = result {
            guard.1 = Some(e);
            break;
        }
    };

    if state.threads <= 1 {
        work();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..state.threads {
                // The closure captures only shared references, so it is
                // `Copy`: each worker thread gets its own copy.
                scope.spawn(work);
            }
        });
    }

    let (output, error) = sink.into_inner().expect("record sink poisoned");
    if let Some(error) = error {
        return Err(WorkerError::Io(error));
    }
    writeln!(output, "{}", wire::encode_done_message(lease))?;
    output.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, CampaignReport};
    use crate::dist::wire::FromWorker;
    use crate::generator::{GenerationStrategy, GeneratorConfig};
    use crate::runner::ShardReport;
    use crate::transform::AffineStrategy;
    use spatter_sdb::EngineProfile;
    use std::io::BufReader;
    use std::time::Duration;

    fn config(seed: u64, iterations: usize) -> CampaignConfig {
        CampaignConfig {
            generator: GeneratorConfig {
                num_geometries: 8,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 30,
                random_shape_probability: 0.5,
            },
            queries_per_run: 10,
            affine: AffineStrategy::GeneralInteger,
            iterations,
            seed,
            ..CampaignConfig::stock(EngineProfile::PostgisLike)
        }
    }

    /// Drives the serve loop in-process over string transcripts — the
    /// fast-feedback twin of the subprocess tests in
    /// `tests/distributed_campaign.rs`.
    fn converse(script: &[String]) -> Vec<String> {
        let input = script.join("\n");
        let mut output = Vec::new();
        serve(BufReader::new(input.as_bytes()), &mut output).expect("serve");
        String::from_utf8(output)
            .expect("utf8 output")
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn worker_executes_leases_identically_to_the_runner() {
        let campaign = config(3, 6);
        let script = vec![
            wire::encode_config_message(2, &campaign, None).unwrap(),
            wire::encode_lease_message(0, 0, 3),
            wire::encode_lease_message(1, 3, 3),
            wire::encode_exit_message(),
        ];
        let lines = converse(&script);
        assert!(wire::decode_handshake(&lines[0]).is_ok());
        assert!(matches!(
            wire::decode_from_worker(&lines[1]),
            Ok(FromWorker::Configured)
        ));

        let mut records = Vec::new();
        let mut done = Vec::new();
        for line in &lines[2..] {
            match wire::decode_from_worker(line).expect("worker line") {
                FromWorker::Record { record, .. } => records.push(record),
                FromWorker::Done { lease } => done.push(lease),
                FromWorker::Configured => panic!("second configured"),
            }
        }
        assert_eq!(done, vec![0, 1]);
        assert_eq!(records.len(), 6);

        // The streamed records merge into exactly the report the in-process
        // runner produces for the same campaign — and carry, verbatim, the
        // same replay frames an in-process recorder collects.
        let recorder = std::sync::Arc::new(crate::replay::ReplayRecorder::new());
        let reference: CampaignReport = CampaignRunner::new(config(3, 6))
            .with_replay_sink(recorder.clone())
            .run();
        let frames: std::collections::BTreeMap<_, _> = recorder
            .frames()
            .into_iter()
            .map(|frame| (frame.iteration, frame))
            .collect();
        for record in &records {
            assert_eq!(
                Some(&record.replay),
                frames.get(&record.iteration),
                "iteration {} replay frame differs from the in-process runner's",
                record.iteration
            );
        }
        let via_worker = ShardReport::merge(vec![ShardReport { records }], Duration::from_secs(1));
        assert_eq!(
            via_worker.determinism_fingerprint(),
            reference.determinism_fingerprint()
        );
    }

    #[test]
    fn lease_before_config_is_a_protocol_error() {
        let input = wire::encode_lease_message(0, 0, 1);
        let mut output = Vec::new();
        let error = serve(BufReader::new(input.as_bytes()), &mut output)
            .expect_err("lease before config must fail");
        assert!(matches!(error, WorkerError::Protocol(_)), "{error}");
    }

    #[test]
    fn second_config_is_a_protocol_error() {
        let campaign = config(1, 1);
        let config_line = wire::encode_config_message(1, &campaign, None).unwrap();
        let input = format!("{config_line}\n{config_line}\n");
        let mut output = Vec::new();
        let error = serve(BufReader::new(input.as_bytes()), &mut output)
            .expect_err("second config must fail");
        assert!(matches!(error, WorkerError::Protocol(_)), "{error}");
    }

    #[test]
    fn garbage_input_is_a_wire_error_not_a_panic() {
        for garbage in ["??? what", "lease one two three", "config"] {
            let mut output = Vec::new();
            let error = serve(BufReader::new(garbage.as_bytes()), &mut output)
                .expect_err("garbage must fail");
            assert!(matches!(error, WorkerError::Wire(_)), "{error}");
        }
    }

    #[test]
    fn eof_without_exit_is_a_clean_shutdown() {
        let campaign = config(1, 1);
        let input = wire::encode_config_message(1, &campaign, None).unwrap();
        let mut output = Vec::new();
        serve(BufReader::new(input.as_bytes()), &mut output).expect("EOF is clean");
    }
}
