//! A library of reduced bug-inducing scenarios, one per seeded logic fault.
//!
//! The paper's §5.3 comparison ("Comparison to the State of the Art") takes
//! the 20 confirmed logic bugs *that AEI had already found* and manually
//! analyses whether each bug-inducing case could also have been detected by
//! differential testing, the Index method, or TLP. This module provides the
//! reproduction of those bug-inducing cases: for every confirmed logic fault
//! in the registry there is a reduced database + query pair that triggers it,
//! in the spirit of the paper's reduced listings. The Table 4 benchmark runs
//! every oracle over these scenarios to regenerate the comparison.

use crate::queries::{QueryInstance, RangeFunction};
use crate::spec::DatabaseSpec;
use spatter_geom::wkt::parse_wkt;
use spatter_geom::Geometry;
use spatter_sdb::FaultId;
use spatter_topo::predicates::NamedPredicate;

/// A reduced bug-inducing scenario for one fault.
#[derive(Debug, Clone)]
pub struct TriggerScenario {
    /// The fault this scenario triggers.
    pub fault: FaultId,
    /// The database contents.
    pub spec: DatabaseSpec,
    /// The query whose count differs between affine-equivalent databases (or
    /// between the compared configurations).
    pub query: QueryInstance,
}

fn geometry(wkt: &str) -> Geometry {
    parse_wkt(wkt).unwrap_or_else(|e| panic!("scenario WKT {wkt}: {e}"))
}

fn two_table_spec(table0: &[&str], table1: &[&str]) -> DatabaseSpec {
    let mut spec = DatabaseSpec::with_tables(2);
    spec.tables[0].geometries = table0.iter().map(|w| geometry(w)).collect();
    spec.tables[1].geometries = table1.iter().map(|w| geometry(w)).collect();
    spec
}

fn scenario(
    fault: FaultId,
    table0: &[&str],
    table1: &[&str],
    predicate: NamedPredicate,
) -> TriggerScenario {
    TriggerScenario {
        fault,
        spec: two_table_spec(table0, table1),
        query: QueryInstance::topo("t0", "t1", predicate),
    }
}

/// The trigger scenarios for the 20 confirmed/fixed logic faults.
pub fn confirmed_logic_scenarios() -> Vec<TriggerScenario> {
    use FaultId::*;
    use NamedPredicate::*;
    vec![
        // --- GEOS-analog logic faults ------------------------------------
        // Listing 1: the line covers the point, but the precision-lossy
        // normalization misses it for this representation.
        scenario(
            GeosCoversPrecisionLoss,
            &["LINESTRING(0 1,2 0)"],
            &["POINT(0.2 0.9)"],
            Covers,
        ),
        // Listing 6 (order-sensitive variant): reordering the collection's
        // elements flips the last-one-wins boundary strategy.
        scenario(
            GeosMixedBoundaryLastOneWins,
            &["GEOMETRYCOLLECTION(LINESTRING(0 0,1 0),POINT(0 0))"],
            &["POINT(0 0)"],
            Covers,
        ),
        // Listing 7: duplicate rows expressed with different representations
        // are deduplicated only after canonicalization, changing which pairs
        // the faulty prepared cache drops.
        scenario(
            GeosPreparedDuplicateDropped,
            &["MULTIPOLYGON(((0 0,5 0,0 5,0 0)))"],
            &[
                "GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)))",
                "MULTIPOINT((0 0),(3 1),(3 1))",
                "MULTIPOINT((0 0),(3 1))",
            ],
            Contains,
        ),
        // Listing 5: the EMPTY element derails the distance recursion, which
        // the DWithin-style covers check below surfaces as a wrong count
        // (here expressed through Intersects on a MULTI with EMPTY element).
        scenario(
            GeosEmptyDistanceRecursion,
            &["MULTIPOINT((1 0),(0 0))"],
            &["MULTIPOINT((-2 0),EMPTY)"],
            Intersects,
        ),
        // Crosses/Overlaps use the collection dimension, which the fault
        // derives from an EMPTY first element.
        scenario(
            GeosMixedDimensionFirstElement,
            &["GEOMETRYCOLLECTION(POINT EMPTY,POLYGON((0 0,10 0,10 10,0 10,0 0)))"],
            &["LINESTRING(2 2,8 8)"],
            Crosses,
        ),
        scenario(
            GeosIntersectsEmptyFirstElement,
            &["MULTIPOINT(EMPTY,(2 2))"],
            &["POLYGON((0 0,4 0,4 4,0 4,0 0))"],
            Intersects,
        ),
        scenario(
            GeosTouchesDirectionSensitive,
            &["LINESTRING(4 0,0 0)"],
            &["POINT(0 0)"],
            Touches,
        ),
        scenario(
            GeosEqualsDuplicateVertices,
            &["LINESTRING(0 0,2 2,2 2,4 4)"],
            &["LINESTRING(0 0,4 4)"],
            Equals,
        ),
        scenario(
            GeosDisjointEmptyElementMatrix,
            &["MULTILINESTRING((0 0,10 10),EMPTY)"],
            &["POINT(10 0)"],
            Disjoint,
        ),
        // --- PostGIS-like logic faults -------------------------------------
        // Listing 8's component: the index scan drops rows; triggered through
        // the Index oracle and through negative translations under AEI.
        scenario(
            PostgisGistIndexDropsRows,
            &["POLYGON((-5 -5,5 -5,5 5,-5 5,-5 -5))"],
            &["POINT(-1 -1)"],
            Intersects,
        ),
        // Listing 9: the wrong ST_DFullyWithin definition for small
        // geometries; the join predicate proxy is CoveredBy on the same
        // shapes (the scenario is also used directly by the range tests).
        scenario(
            PostgisDFullyWithinSmallCoords,
            &["LINESTRING(0 0,0 1,1 0,0 0)"],
            &["POLYGON((0 0,0 1,1 0,0 0))"],
            CoveredBy,
        ),
        scenario(
            PostgisEqualsSnapToGrid,
            &["POINT(0.4 0)"],
            &["POINT(0 0)"],
            Equals,
        ),
        scenario(
            PostgisContainsMultiPolygonFirstOnly,
            &["MULTIPOLYGON(((0 0,2 0,2 2,0 2,0 0)),EMPTY,((10 10,20 10,20 20,10 20,10 10)))"],
            &["POINT(15 15)"],
            Contains,
        ),
        scenario(
            PostgisWithinEmptyCollectionMember,
            &["POINT(1 1)"],
            &["GEOMETRYCOLLECTION(POLYGON((0 0,4 0,4 4,0 4,0 0)),POINT EMPTY)"],
            Within,
        ),
        scenario(
            PostgisTouchesDuplicateVertices,
            &["LINESTRING(0 0,2 0,2 0,4 0)"],
            &["POINT(0 0)"],
            Touches,
        ),
        scenario(
            PostgisCoveredByRingOrientation,
            &["POLYGON((1 1,3 1,3 3,1 3,1 1))"],
            &["POLYGON((0 0,10 0,10 10,0 10,0 0))"],
            CoveredBy,
        ),
        // --- MySQL-like logic faults ----------------------------------------
        // Listing 3: wrong ST_Crosses for large coordinates.
        scenario(
            MysqlCrossesLargeCoordinates,
            &["MULTILINESTRING((990 280,100 20))"],
            &["GEOMETRYCOLLECTION(MULTILINESTRING((990 280,100 20)),POLYGON((360 60,850 620,850 420,360 60)))"],
            Crosses,
        ),
        // Listing 4: wrong ST_Overlaps after swapping the axes. The stored
        // collection is the swapped variant so the stock engine answers
        // wrongly; the affine transformation rotates it back.
        scenario(
            MysqlOverlapsAxisOrder,
            &["GEOMETRYCOLLECTION(POLYGON((445 614,26 30,30 80,445 614)),POLYGON((1010 190,90 40,40 90,1010 190)))"],
            &["POLYGON((445 614,26 30,30 80,445 614))"],
            Overlaps,
        ),
        scenario(
            MysqlTouchesEmptyElement,
            &["MULTIPOINT((2 0),EMPTY)"],
            &["LINESTRING(0 0,5 0)"],
            Touches,
        ),
        scenario(
            MysqlDisjointNegativeCoordinates,
            &["POLYGON((-10 -10,-2 -10,-2 -2,-10 -2,-10 -10))"],
            &["POINT(-5 -5)"],
            Disjoint,
        ),
    ]
}

/// The scenario for a specific fault, if one exists in the library.
pub fn scenario_for(fault: FaultId) -> Option<TriggerScenario> {
    confirmed_logic_scenarios()
        .into_iter()
        .find(|s| s.fault == fault)
}

/// Trigger scenarios that surface the distance-sensitive faults through the
/// §7 distance-parameterised templates (range joins and KNN) rather than the
/// topological-join proxies of [`confirmed_logic_scenarios`]. Checked with a
/// *similarity* transformation plan: the DFullyWithin fault needs the
/// transformed side to leave the small-coordinate trigger range, and the
/// distance-recursion fault needs canonicalization to strip the EMPTY
/// element from the KNN candidate.
pub fn distance_template_scenarios() -> Vec<TriggerScenario> {
    vec![
        // Listing 9 through an actual ST_DFullyWithin range join.
        TriggerScenario {
            fault: FaultId::PostgisDFullyWithinSmallCoords,
            spec: two_table_spec(
                &["LINESTRING(0 0,0 1,1 0,0 0)"],
                &["POLYGON((0 0,0 1,1 0,0 0))"],
            ),
            query: QueryInstance::range("t0", "t1", RangeFunction::DFullyWithin, 100.0),
        },
        // Listing 5 through a KNN query: the faulty recursion ranks the
        // EMPTY-carrying candidate behind the farther point.
        TriggerScenario {
            fault: FaultId::GeosEmptyDistanceRecursion,
            spec: two_table_spec(&["MULTIPOINT((5 0),EMPTY,(0 0))", "POINT(1 0)"], &[]),
            query: QueryInstance::knn("t0", geometry("POINT(0 0)"), 1),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_sdb::{FaultCatalog, FaultKind, FaultStatus};

    #[test]
    fn library_covers_every_confirmed_logic_fault() {
        let expected: Vec<FaultId> = FaultCatalog::all()
            .into_iter()
            .filter(|f| {
                f.kind == FaultKind::Logic
                    && matches!(f.status, FaultStatus::Fixed | FaultStatus::Confirmed)
            })
            .map(|f| f.id)
            .collect();
        let library = confirmed_logic_scenarios();
        assert_eq!(library.len(), 20);
        for fault in expected {
            assert!(
                library.iter().any(|s| s.fault == fault),
                "missing scenario for {fault:?}"
            );
        }
    }

    #[test]
    fn scenario_queries_reference_scenario_tables() {
        for s in confirmed_logic_scenarios() {
            let names = s.spec.table_names();
            assert!(names.contains(&s.query.table1.as_str()), "{:?}", s.fault);
            assert!(names.contains(&s.query.table2.as_str()), "{:?}", s.fault);
            assert!(s.spec.geometry_count() >= 2, "{:?}", s.fault);
        }
    }

    #[test]
    fn scenario_lookup_by_fault() {
        assert!(scenario_for(FaultId::GeosCoversPrecisionLoss).is_some());
        assert!(scenario_for(FaultId::GeosCrashRelateShortRing).is_none());
    }

    #[test]
    fn distance_template_scenarios_use_distance_templates() {
        use crate::queries::QueryTemplate;
        let scenarios = distance_template_scenarios();
        assert_eq!(scenarios.len(), 2);
        for s in &scenarios {
            assert!(
                s.query.template.requires_similarity(),
                "{:?} should use a distance template",
                s.fault
            );
            let names = s.spec.table_names();
            assert!(names.contains(&s.query.table1.as_str()), "{:?}", s.fault);
            assert!(names.contains(&s.query.table2.as_str()), "{:?}", s.fault);
        }
        assert!(matches!(
            scenarios[0].query.template,
            QueryTemplate::RangeJoin { .. }
        ));
        assert!(matches!(
            scenarios[1].query.template,
            QueryTemplate::Knn { .. }
        ));
    }
}
