//! Deterministic replay: per-iteration state hashes, replay artifacts, and
//! divergence bisection.
//!
//! Campaigns have been deterministic since PR 1 — every iteration is a pure
//! function of `(campaign seed, iteration index)` — but determinism alone is
//! *opaque*: when two runs' fingerprints disagree (in-process vs
//! distributed, guided vs not, this commit vs last), nothing says *which*
//! iteration diverged first or *what* inside it changed. This module adopts
//! the replay discipline of lockstep simulations (murk-replay style:
//! per-tick snapshot hashing, compact replay logs, divergence *reports*
//! rather than raw dumps):
//!
//! * [`ReplayFrame`] — four hash layers per iteration, computed by
//!   [`crate::runner::CampaignRunner::run_iteration`] on whichever thread or
//!   process executes it: the **sub-seed** (the iteration's entire input),
//!   the **setup hash** (every setup SQL statement, the transformation
//!   plan's exact coefficients, every query's SQL), the **outcome hash**
//!   (every oracle outcome and attribution result, in suite order), and the
//!   **probe hash** (the iteration's coverage delta). The layers are
//!   ordered: a sub-seed mismatch means the campaigns differ, a setup
//!   mismatch means generation diverged, an outcome mismatch means the
//!   engines disagreed on identical inputs, and a probe-only mismatch means
//!   results matched but control flow did not.
//! * [`ReplaySink`] / [`ReplayRecorder`] — how frames leave the runner.
//!   Frames ride inside [`crate::runner::IterationRecord`], so the
//!   distributed supervisor records exactly the worker-computed hashes —
//!   byte-identity across fleet shapes holds by construction, not by
//!   recomputation.
//! * [`artifact`] — the line-delimited replay artifact ([`ReplayLog`]),
//!   versioned and decoded with structured errors like the wire codec.
//! * [`bisect`] — locating the first diverging iteration between two
//!   artifacts (exact, zero re-executions) or between an artifact and a
//!   live re-run (binary search, ≤ ⌈log₂ N⌉ + 1 targeted re-executions).
//! * [`reduce`] — guided reduction: shrinking a diverging scenario while
//!   preserving the probe delta it exercised, instead of blind
//!   delta-debugging.

pub mod artifact;
pub mod bisect;
pub mod hash;
pub mod reduce;

pub use artifact::{ReplayError, ReplayLog, REPLAY_VERSION};
pub use bisect::{BisectOutcome, Divergence, DivergenceLayer, ReplayExecutor};
pub use hash::ReplayHasher;

use std::collections::BTreeMap;
use std::sync::Mutex;

/// The per-iteration state hashes. A pure function of
/// `(campaign config, iteration index)`: identical no matter which thread,
/// process or machine executed the iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayFrame {
    /// The iteration index within the campaign.
    pub iteration: usize,
    /// `split_seed(campaign seed, iteration)` — the iteration's entire
    /// input, recorded directly so a divergence report can name the seed
    /// that reproduces the iteration standalone.
    pub sub_seed: u64,
    /// Hash of the generated scenario as the engines see it: every setup
    /// SQL statement of the base database, the transformation plan's exact
    /// coefficients (bit patterns, not values), and every query's SQL.
    pub setup_hash: u64,
    /// Hash of every oracle outcome (suite order, query order, payload
    /// text) and of each finding's attribution result.
    pub outcome_hash: u64,
    /// Hash of the iteration's probe-coverage delta.
    pub probe_hash: u64,
    /// Optional per-query refinement of the outcome layer: one digest per
    /// query index, each hashing that query's (oracle, outcome, attribution)
    /// stream across the whole suite. Empty on frames decoded from
    /// pre-digest artifacts (the stream is an optional artifact token), in
    /// which case a bisection names only the iteration; when both sides
    /// carry digests, it also names the first diverging query.
    pub query_digests: Vec<u64>,
}

impl ReplayFrame {
    /// The first hash layer on which `self` and `other` disagree, or `None`
    /// when the frames are identical. Layers are compared outside-in —
    /// sub-seed, setup, outcome, probes — so the report names the earliest
    /// stage of the iteration pipeline that diverged.
    pub fn diverging_layer(&self, other: &ReplayFrame) -> Option<DivergenceLayer> {
        if self.sub_seed != other.sub_seed {
            Some(DivergenceLayer::SubSeed)
        } else if self.setup_hash != other.setup_hash {
            Some(DivergenceLayer::Setup)
        } else if self.outcome_hash != other.outcome_hash {
            Some(DivergenceLayer::Outcome)
        } else if self.probe_hash != other.probe_hash {
            Some(DivergenceLayer::ProbeDelta)
        } else {
            None
        }
    }

    /// The first query index whose outcome digest differs between the two
    /// frames, when both recorded digests. `None` when either side predates
    /// digest recording (the refinement is unavailable, not a divergence) or
    /// when the digest streams agree. A length mismatch with both sides
    /// non-empty points at the first index past the shorter stream.
    pub fn first_diverging_query(&self, other: &ReplayFrame) -> Option<usize> {
        if self.query_digests.is_empty() || other.query_digests.is_empty() {
            return None;
        }
        let shared = self.query_digests.len().min(other.query_digests.len());
        (0..shared)
            .find(|&i| self.query_digests[i] != other.query_digests[i])
            .or_else(|| (self.query_digests.len() != other.query_digests.len()).then_some(shared))
    }
}

/// Where the runner delivers each iteration's [`ReplayFrame`]. Implementors
/// must tolerate frames arriving out of iteration order and concurrently
/// (one call per iteration, from whichever worker thread ran it).
pub trait ReplaySink: Send + Sync {
    /// Called once per executed iteration, on the executing thread (or, for
    /// distributed campaigns, on the supervisor as records arrive).
    fn record_frame(&self, frame: &ReplayFrame);
}

/// The standard in-memory sink: collects frames keyed by iteration, ready
/// to become a [`ReplayLog`]. Duplicate deliveries (a re-executed iteration
/// after a partial lease was reclaimed) are idempotent — frames are pure
/// functions of the iteration, so first-wins equals last-wins.
#[derive(Debug, Default)]
pub struct ReplayRecorder {
    frames: Mutex<BTreeMap<usize, ReplayFrame>>,
}

impl ReplayRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        ReplayRecorder::default()
    }

    /// Number of distinct iterations recorded so far.
    pub fn len(&self) -> usize {
        self.frames.lock().expect("replay recorder poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The recorded frames in iteration order.
    pub fn frames(&self) -> Vec<ReplayFrame> {
        self.frames
            .lock()
            .expect("replay recorder poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Packages the recorded frames as a replay artifact, stamped with the
    /// campaign identity (`seed`, requested iterations, guidance mode and
    /// epoch) the frames were produced under.
    pub fn log(&self, config: &crate::campaign::CampaignConfig) -> ReplayLog {
        ReplayLog {
            seed: config.seed,
            iterations: config.iterations,
            guidance: config.guidance,
            guidance_epoch: config.guidance_epoch,
            frames: self.frames(),
        }
    }
}

impl ReplaySink for ReplayRecorder {
    fn record_frame(&self, frame: &ReplayFrame) {
        self.frames
            .lock()
            .expect("replay recorder poisoned")
            .entry(frame.iteration)
            .or_insert_with(|| frame.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(iteration: usize) -> ReplayFrame {
        ReplayFrame {
            iteration,
            sub_seed: 0x5eed ^ iteration as u64,
            setup_hash: 1,
            outcome_hash: 2,
            probe_hash: 3,
            query_digests: Vec::new(),
        }
    }

    #[test]
    fn recorder_orders_and_dedups_frames() {
        let recorder = ReplayRecorder::new();
        assert!(recorder.is_empty());
        recorder.record_frame(&frame(4));
        recorder.record_frame(&frame(1));
        recorder.record_frame(&frame(4)); // duplicate delivery
        assert_eq!(recorder.len(), 2);
        let frames = recorder.frames();
        assert_eq!(
            frames.iter().map(|f| f.iteration).collect::<Vec<_>>(),
            vec![1, 4]
        );
    }

    #[test]
    fn diverging_layer_reports_the_outermost_difference() {
        let base = frame(0);
        assert_eq!(base.diverging_layer(&base), None);
        let mut other = base.clone();
        other.probe_hash ^= 1;
        assert_eq!(
            base.diverging_layer(&other),
            Some(DivergenceLayer::ProbeDelta)
        );
        other.outcome_hash ^= 1;
        assert_eq!(base.diverging_layer(&other), Some(DivergenceLayer::Outcome));
        other.setup_hash ^= 1;
        assert_eq!(base.diverging_layer(&other), Some(DivergenceLayer::Setup));
        other.sub_seed ^= 1;
        assert_eq!(base.diverging_layer(&other), Some(DivergenceLayer::SubSeed));
    }

    #[test]
    fn first_diverging_query_refines_the_outcome_layer() {
        let mut left = frame(0);
        let mut right = frame(0);
        // No digests on either side: the refinement is unavailable.
        assert_eq!(left.first_diverging_query(&right), None);
        left.query_digests = vec![10, 20, 30];
        // One side predates digest recording: still unavailable, never a
        // spurious divergence.
        assert_eq!(left.first_diverging_query(&right), None);
        right.query_digests = vec![10, 20, 30];
        assert_eq!(left.first_diverging_query(&right), None);
        right.query_digests[1] ^= 1;
        assert_eq!(left.first_diverging_query(&right), Some(1));
        right.query_digests = vec![10, 20];
        assert_eq!(left.first_diverging_query(&right), Some(2));
    }
}
