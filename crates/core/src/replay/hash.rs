//! The replay hash: FNV-1a over a length-prefixed, bit-exact byte stream.
//!
//! Replay frames must be **byte-identical** wherever an iteration executes
//! — in-process, on a worker process, this commit or the next run of the
//! same build — so the hasher is deliberately boring: FNV-1a 64 (std-only,
//! no platform-dependent `DefaultHasher` internals), fed a canonical byte
//! encoding in which every integer is little-endian, every string is
//! length-prefixed (so `("ab", "c")` and `("a", "bc")` cannot collide), and
//! every `f64` contributes its raw IEEE-754 bit pattern. The last point is
//! a determinism requirement, not pedantry: `-0.0 == 0.0` and `NaN != NaN`
//! under `f64` comparison, but replay must distinguish signed zeros and
//! preserve NaN payloads exactly — the same bit-exactness contract the wire
//! codec holds by shipping `f64::to_bits`.

/// A 64-bit FNV-1a hasher with typed, collision-framed write methods.
#[derive(Debug, Clone)]
pub struct ReplayHasher {
    state: u64,
}

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for ReplayHasher {
    fn default() -> Self {
        ReplayHasher::new()
    }
}

impl ReplayHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        ReplayHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Absorbs a `usize`, widened to `u64` so 32- and 64-bit builds agree.
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Absorbs a string, length-prefixed so adjacent strings cannot collide
    /// by re-framing.
    pub fn write_str(&mut self, text: &str) {
        self.write_usize(text.len());
        self.write_bytes(text.as_bytes());
    }

    /// Absorbs an `f64` as its raw bit pattern: signed zeros stay distinct
    /// and NaN payloads are preserved, never canonicalized.
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(feed: impl FnOnce(&mut ReplayHasher)) -> u64 {
        let mut hasher = ReplayHasher::new();
        feed(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn known_fnv1a_vectors() {
        // Reference vectors of the FNV-1a 64 specification.
        assert_eq!(digest(|_| {}), 0xcbf29ce484222325);
        assert_eq!(digest(|h| h.write_bytes(b"a")), 0xaf63dc4c8601ec8c);
        assert_eq!(digest(|h| h.write_bytes(b"foobar")), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_reframing_collisions() {
        let ab_c = digest(|h| {
            h.write_str("ab");
            h.write_str("c");
        });
        let a_bc = digest(|h| {
            h.write_str("a");
            h.write_str("bc");
        });
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn signed_zeros_and_nan_payloads_are_distinguished() {
        assert_ne!(digest(|h| h.write_f64(0.0)), digest(|h| h.write_f64(-0.0)));
        // Two NaNs with different payload bits must hash differently even
        // though both compare unequal to everything (including themselves).
        let quiet = f64::from_bits(0x7ff8_dead_beef_cafe);
        let signalling = f64::from_bits(0x7ff0_0000_0000_0001);
        assert!(quiet.is_nan() && signalling.is_nan());
        assert_ne!(
            digest(|h| h.write_f64(quiet)),
            digest(|h| h.write_f64(signalling))
        );
        // And identical payloads hash identically — no canonicalization.
        assert_eq!(
            digest(|h| h.write_f64(quiet)),
            digest(|h| h.write_f64(f64::from_bits(0x7ff8_dead_beef_cafe)))
        );
    }

    #[test]
    fn usize_widens_to_u64() {
        assert_eq!(
            digest(|h| h.write_usize(7)),
            digest(|h| h.write_u64(7)),
            "32- and 64-bit builds must agree on usize hashing"
        );
    }
}
