//! Guided reduction: shrinking a diverging scenario while preserving its
//! probe delta.
//!
//! Blind delta-debugging ([`crate::reducer`]) keeps a candidate whenever
//! the discrepancy still reproduces — which routinely trades the
//! *interesting* reproduction for a boring one: removing the geometry that
//! exercised the rare code path can leave a scenario that still "fails",
//! but through a different, already-known route. Replay frames record what
//! an iteration actually exercised (its probe delta), so the reduction here
//! is coverage-preserving: a candidate is accepted only if it **still
//! diverges** *and* still hits every probe the reference delta hit. The
//! shrunk witness then exercises the same code paths as the original
//! campaign iteration — the property a minimized bug report is for.
//!
//! The probes of each candidate check are measured with the same
//! thread-local recorder the runner uses ([`local::measure`]), so the
//! whole reduction must run on one thread and outside any other active
//! recording (it is an offline tool, like the reducer).

use crate::queries::QueryInstance;
use crate::spec::DatabaseSpec;
use spatter_topo::coverage::local;
use std::collections::BTreeSet;

/// The result of a coverage-preserving reduction.
#[derive(Debug, Clone)]
pub struct GuidedReduction {
    /// The reduced database: every geometry left is needed either to keep
    /// the divergence or to keep a preserved probe hit.
    pub spec: DatabaseSpec,
    /// The (unchanged) diverging query.
    pub query: QueryInstance,
    /// The probes the reduction preserved: the reference delta's hit set,
    /// intersected with what the baseline divergence check exercises.
    pub preserved_probes: Vec<&'static str>,
    /// Divergence checks executed (a cost measure, like the bisection's
    /// execution count).
    pub checks: usize,
    /// Statement count of the reduced scenario's SQL plus the query.
    pub statement_count: usize,
}

/// Greedily removes geometries from `spec` while `diverges` keeps holding
/// *and* the candidate's probe delta keeps covering the preserved set —
/// the reference frame's recorded probe hits, restricted to those the
/// baseline check actually exercises (an iteration's recorded delta spans
/// its whole query batch; a single-query witness can only ever preserve
/// its own slice of it).
///
/// Returns `None` when the full scenario does not diverge in the first
/// place. When `reference_delta` is empty, every probe of the baseline
/// check is preserved.
pub fn reduce_preserving_probes(
    diverges: &mut dyn FnMut(&DatabaseSpec, &QueryInstance) -> bool,
    reference_delta: &[(&'static str, u64)],
    spec: &DatabaseSpec,
    query: &QueryInstance,
) -> Option<GuidedReduction> {
    let mut checks = 0usize;
    let mut measured = |spec: &DatabaseSpec| -> (bool, BTreeSet<&'static str>) {
        checks += 1;
        let (diverged, delta) = local::measure(|| diverges(spec, query));
        let hit: BTreeSet<&'static str> = delta
            .into_iter()
            .filter(|(_, count)| *count > 0)
            .map(|(name, _)| name)
            .collect();
        (diverged, hit)
    };

    let (diverged, baseline_hits) = measured(spec);
    if !diverged {
        return None;
    }
    let recorded: BTreeSet<&'static str> = reference_delta
        .iter()
        .filter(|(_, count)| *count > 0)
        .map(|(name, _)| *name)
        .collect();
    let preserved: BTreeSet<&'static str> = if recorded.is_empty() {
        baseline_hits
    } else {
        baseline_hits.intersection(&recorded).copied().collect()
    };

    let mut current = spec.clone();
    let mut changed = true;
    while changed {
        changed = false;
        'outer: for table_idx in 0..current.tables.len() {
            for geom_idx in (0..current.tables[table_idx].geometries.len()).rev() {
                let mut candidate = current.clone();
                candidate.tables[table_idx].geometries.remove(geom_idx);
                let (diverged, hits) = measured(&candidate);
                if diverged && preserved.iter().all(|probe| hits.contains(probe)) {
                    current = candidate;
                    changed = true;
                    continue 'outer;
                }
            }
        }
    }
    let statement_count = current.to_sql().len() + 1;
    Some(GuidedReduction {
        spec: current,
        query: query.clone(),
        preserved_probes: preserved.into_iter().collect(),
        checks,
        statement_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InProcessBackend;
    use crate::oracles::{AeiOracle, Oracle};
    use crate::transform::TransformPlan;
    use spatter_geom::wkt::parse_wkt;
    use spatter_sdb::{EngineProfile, FaultId, FaultSet};
    use spatter_topo::predicates::NamedPredicate;

    #[test]
    fn reduction_shrinks_while_preserving_probes() {
        // The reducer module's Listing 6-style scenario: a canonicalization
        // discrepancy plus noise rows the reduction must strip.
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 0)").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(50 50)").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("LINESTRING(30 30,40 40)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("GEOMETRYCOLLECTION(LINESTRING(0 0,1 0),POINT(0 0))").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(60 60)").unwrap());
        let query = QueryInstance::topo("t1", "t0", NamedPredicate::Covers);
        let backend = InProcessBackend::new(
            EngineProfile::PostgisLike,
            FaultSet::with([FaultId::GeosMixedBoundaryLastOneWins]),
        );
        let oracle = AeiOracle::new(TransformPlan::canonicalization_only());
        let mut diverges = |spec: &DatabaseSpec, query: &QueryInstance| {
            oracle
                .check(&backend, spec, std::slice::from_ref(query))
                .iter()
                .any(|o| o.is_logic_bug())
        };

        // The recorded reference delta: what the full scenario's check
        // exercises (the stand-in for a campaign frame's probe delta).
        local::start();
        assert!(diverges(&spec, &query), "scenario must diverge");
        let reference_delta = local::take();
        assert!(!reference_delta.is_empty());

        let reduced = reduce_preserving_probes(&mut diverges, &reference_delta, &spec, &query)
            .expect("divergent scenario must reduce");
        assert!(reduced.spec.geometry_count() < spec.geometry_count());
        assert!(reduced.spec.geometry_count() >= 1);
        assert!(reduced.checks >= 2);
        assert!(!reduced.preserved_probes.is_empty());

        // The reduced scenario still diverges AND still hits every
        // preserved probe.
        local::start();
        assert!(diverges(&reduced.spec, &reduced.query));
        let final_hits: BTreeSet<&'static str> = local::take()
            .into_iter()
            .filter(|(_, count)| *count > 0)
            .map(|(name, _)| name)
            .collect();
        for probe in &reduced.preserved_probes {
            assert!(final_hits.contains(probe), "lost probe {probe}");
        }
    }

    #[test]
    fn non_diverging_scenarios_are_not_reduced() {
        let spec = DatabaseSpec::with_tables(1);
        let query = QueryInstance::topo("t0", "t0", NamedPredicate::Intersects);
        let mut diverges = |_: &DatabaseSpec, _: &QueryInstance| false;
        assert!(reduce_preserving_probes(&mut diverges, &[], &spec, &query).is_none());
    }
}
