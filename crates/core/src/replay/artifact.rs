//! The line-delimited replay artifact.
//!
//! A replay log is meant to be written next to a campaign's report, diffed
//! with `cmp`, attached to a bug report, and decoded by a *different* build
//! than the one that wrote it — so the format is text, versioned, and
//! decoded with structured [`ReplayError`]s that never panic (the same
//! contract as [`crate::dist::wire`]):
//!
//! ```text
//! spatter-replay 1 seed 3 iterations 12 guidance off frames 12
//! frame 0 17619913297782129197 4295212937887729591 ... ...
//! frame 1 ...
//! end
//! ```
//!
//! A campaign pinned to a guidance epoch carries an optional `epoch <n>`
//! header token between the guidance mode and the frame count
//! (`... guidance cold-probe epoch 7 frames 12`); headers without the token
//! — every artifact written before the field existed — still decode, with
//! the epoch absent.
//!
//! One header line (version, campaign identity, declared frame count), then
//! exactly `frames` `frame` lines — iteration index plus the four hash
//! layers of a [`ReplayFrame`], all as decimal `u64`s, optionally followed
//! by a ` q <n> <digests...>` group carrying the per-query outcome digests
//! (absent on pre-digest artifacts, which still decode) — and a closing
//! `end` line. The declared count and the footer make truncation *detectable at
//! any byte*: an artifact cut short mid-transfer — even inside the last
//! digit of the last frame, which the count alone cannot catch — decodes
//! to a structured error, never to a silently different log (which would
//! bisect against the wrong campaign).

use super::ReplayFrame;
use crate::guidance::GuidanceMode;
use std::fmt;

/// The replay artifact format version. Bumped whenever the header or frame
/// layout changes; decoding any other version is a structured error.
pub const REPLAY_VERSION: u32 = 1;

/// Why a replay artifact could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The input does not start with a `spatter-replay` header line.
    MissingHeader,
    /// The artifact was written by a different format version.
    VersionMismatch {
        /// Our [`REPLAY_VERSION`].
        ours: u32,
        /// The version the artifact announces.
        theirs: u32,
    },
    /// The input ended before the declared frame count was reached.
    Truncated {
        /// Frames decoded before the input ran out.
        frames_found: usize,
        /// Frames the header declared.
        frames_declared: usize,
    },
    /// A line did not have the expected shape.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What the decoder was trying to read.
        expected: &'static str,
        /// The offending token (or a description of it).
        got: String,
    },
    /// Non-empty lines follow the declared frames.
    TrailingInput {
        /// 1-based line number of the first trailing line.
        line: usize,
    },
    /// The input does not end with a newline: the last line was cut short
    /// mid-byte (a partial token still parses, so only the terminator makes
    /// this detectable).
    Unterminated,
    /// Frame iterations are not strictly increasing.
    NonMonotonic {
        /// 1-based line number of the out-of-order frame.
        line: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::MissingHeader => write!(f, "missing spatter-replay header"),
            ReplayError::VersionMismatch { ours, theirs } => {
                write!(f, "replay version mismatch: ours {ours}, artifact {theirs}")
            }
            ReplayError::Truncated {
                frames_found,
                frames_declared,
            } => write!(
                f,
                "artifact truncated: {frames_found} of {frames_declared} declared frames"
            ),
            ReplayError::Malformed {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected}, got {got:?}"),
            ReplayError::TrailingInput { line } => {
                write!(f, "line {line}: trailing input after the declared frames")
            }
            ReplayError::Unterminated => {
                write!(f, "artifact does not end with a newline (cut mid-line?)")
            }
            ReplayError::NonMonotonic { line } => {
                write!(
                    f,
                    "line {line}: frame iterations must be strictly increasing"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// A decoded (or about-to-be-encoded) replay artifact: the campaign
/// identity plus one [`ReplayFrame`] per executed iteration, in iteration
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayLog {
    /// The campaign seed the frames were produced under.
    pub seed: u64,
    /// The campaign's *requested* iteration count (a time-budgeted run may
    /// have recorded fewer frames).
    pub iterations: usize,
    /// The campaign's guidance mode.
    pub guidance: GuidanceMode,
    /// The guidance epoch the campaign was pinned to, if any. Encoded as an
    /// optional header token, so pre-epoch artifacts decode with `None`.
    pub guidance_epoch: Option<usize>,
    /// The recorded frames, strictly increasing by iteration.
    pub frames: Vec<ReplayFrame>,
}

impl ReplayLog {
    /// Renders the artifact, newline-terminated.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64 + self.frames.len() * 96);
        out.push_str(&format!(
            "spatter-replay {REPLAY_VERSION} seed {} iterations {} guidance {}{} frames {}\n",
            self.seed,
            self.iterations,
            match self.guidance {
                GuidanceMode::Off => "off",
                GuidanceMode::ColdProbe => "cold-probe",
            },
            self.guidance_epoch
                .map(|epoch| format!(" epoch {epoch}"))
                .unwrap_or_default(),
            self.frames.len(),
        ));
        for frame in &self.frames {
            out.push_str(&format!(
                "frame {} {} {} {} {}",
                frame.iteration,
                frame.sub_seed,
                frame.setup_hash,
                frame.outcome_hash,
                frame.probe_hash,
            ));
            // The per-query digest stream is an optional trailing token
            // group (like `epoch` in the header): frames without digests
            // keep the historical line byte for byte, and pre-digest
            // decoders would reject the token — which the version field
            // covers — while pre-digest *artifacts* still decode here.
            if !frame.query_digests.is_empty() {
                out.push_str(&format!(" q {}", frame.query_digests.len()));
                for digest in &frame.query_digests {
                    out.push_str(&format!(" {digest}"));
                }
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Decodes an artifact, returning a structured error — never panicking
    /// — on any malformed, truncated, version-skewed or trailing input.
    pub fn decode(text: &str) -> Result<ReplayLog, ReplayError> {
        if text.is_empty() {
            return Err(ReplayError::MissingHeader);
        }
        if !text.ends_with('\n') {
            return Err(ReplayError::Unterminated);
        }
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(ReplayError::MissingHeader)?;
        let mut tokens = header.split_ascii_whitespace();
        if tokens.next() != Some("spatter-replay") {
            return Err(ReplayError::MissingHeader);
        }
        let version = parse_u64(1, "format version", tokens.next())?;
        if version != u64::from(REPLAY_VERSION) {
            return Err(ReplayError::VersionMismatch {
                ours: REPLAY_VERSION,
                theirs: u32::try_from(version).unwrap_or(u32::MAX),
            });
        }
        expect_keyword(1, "seed", tokens.next())?;
        let seed = parse_u64(1, "campaign seed", tokens.next())?;
        expect_keyword(1, "iterations", tokens.next())?;
        let iterations = parse_usize(1, "iteration count", tokens.next())?;
        expect_keyword(1, "guidance", tokens.next())?;
        let guidance = match tokens.next() {
            Some("off") => GuidanceMode::Off,
            Some("cold-probe") => GuidanceMode::ColdProbe,
            other => {
                return Err(ReplayError::Malformed {
                    line: 1,
                    expected: "guidance mode",
                    got: other.unwrap_or("end of line").to_string(),
                })
            }
        };
        // The epoch token is optional so pre-epoch artifacts still decode.
        let mut next = tokens.next();
        let guidance_epoch = if next == Some("epoch") {
            let epoch = parse_usize(1, "guidance epoch", tokens.next())?;
            next = tokens.next();
            Some(epoch)
        } else {
            None
        };
        expect_keyword(1, "frames", next)?;
        let declared = parse_usize(1, "frame count", tokens.next())?;
        if let Some(extra) = tokens.next() {
            return Err(ReplayError::Malformed {
                line: 1,
                expected: "end of header",
                got: extra.to_string(),
            });
        }

        let mut frames: Vec<ReplayFrame> = Vec::with_capacity(declared.min(1 << 20));
        let mut footer_seen = false;
        for (index, line) in lines {
            let line_no = index + 1;
            if line.trim().is_empty() {
                continue;
            }
            if footer_seen {
                return Err(ReplayError::TrailingInput { line: line_no });
            }
            if line.trim() == "end" {
                if frames.len() < declared {
                    return Err(ReplayError::Truncated {
                        frames_found: frames.len(),
                        frames_declared: declared,
                    });
                }
                footer_seen = true;
                continue;
            }
            if frames.len() == declared {
                return Err(ReplayError::TrailingInput { line: line_no });
            }
            let mut tokens = line.split_ascii_whitespace();
            expect_keyword(line_no, "frame", tokens.next())?;
            let iteration = parse_usize(line_no, "frame iteration", tokens.next())?;
            let mut frame = ReplayFrame {
                iteration,
                sub_seed: parse_u64(line_no, "sub-seed", tokens.next())?,
                setup_hash: parse_u64(line_no, "setup hash", tokens.next())?,
                outcome_hash: parse_u64(line_no, "outcome hash", tokens.next())?,
                probe_hash: parse_u64(line_no, "probe hash", tokens.next())?,
                query_digests: Vec::new(),
            };
            // The `q` token group is optional: pre-digest frame lines end
            // after the probe hash and decode with no digests.
            let mut next = tokens.next();
            if next == Some("q") {
                let count = parse_usize(line_no, "query digest count", tokens.next())?;
                frame.query_digests.reserve(count.min(1 << 20));
                for _ in 0..count {
                    frame
                        .query_digests
                        .push(parse_u64(line_no, "query digest", tokens.next())?);
                }
                next = tokens.next();
            }
            if let Some(extra) = next {
                return Err(ReplayError::Malformed {
                    line: line_no,
                    expected: "end of frame",
                    got: extra.to_string(),
                });
            }
            if frames
                .last()
                .is_some_and(|last| last.iteration >= iteration)
            {
                return Err(ReplayError::NonMonotonic { line: line_no });
            }
            frames.push(frame);
        }
        if !footer_seen {
            return Err(ReplayError::Truncated {
                frames_found: frames.len(),
                frames_declared: declared,
            });
        }
        Ok(ReplayLog {
            seed,
            iterations,
            guidance,
            guidance_epoch,
            frames,
        })
    }

    /// The frame of `iteration`, if recorded.
    pub fn frame(&self, iteration: usize) -> Option<&ReplayFrame> {
        self.frames
            .binary_search_by_key(&iteration, |f| f.iteration)
            .ok()
            .map(|index| &self.frames[index])
    }
}

fn expect_keyword(
    line: usize,
    keyword: &'static str,
    token: Option<&str>,
) -> Result<(), ReplayError> {
    match token {
        Some(t) if t == keyword => Ok(()),
        other => Err(ReplayError::Malformed {
            line,
            expected: keyword,
            got: other.unwrap_or("end of line").to_string(),
        }),
    }
}

fn parse_u64(line: usize, expected: &'static str, token: Option<&str>) -> Result<u64, ReplayError> {
    let token = token.ok_or(ReplayError::Malformed {
        line,
        expected,
        got: "end of line".to_string(),
    })?;
    token.parse().map_err(|_| ReplayError::Malformed {
        line,
        expected,
        got: token.to_string(),
    })
}

fn parse_usize(
    line: usize,
    expected: &'static str,
    token: Option<&str>,
) -> Result<usize, ReplayError> {
    let value = parse_u64(line, expected, token)?;
    usize::try_from(value).map_err(|_| ReplayError::Malformed {
        line,
        expected,
        got: value.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ReplayLog {
        ReplayLog {
            seed: 3,
            iterations: 4,
            guidance: GuidanceMode::ColdProbe,
            guidance_epoch: None,
            frames: (0..4)
                .map(|i| ReplayFrame {
                    iteration: i,
                    sub_seed: u64::MAX - i as u64,
                    setup_hash: 0x5e70 + i as u64,
                    outcome_hash: 0x07c0 ^ i as u64,
                    probe_hash: (i as u64) << 60,
                    query_digests: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn artifacts_round_trip() {
        let log = sample_log();
        let text = log.encode();
        assert_eq!(ReplayLog::decode(&text), Ok(log.clone()));
        assert_eq!(log.frame(2).map(|f| f.iteration), Some(2));
        assert_eq!(log.frame(99), None);
    }

    #[test]
    fn epoch_header_round_trips_and_stays_optional() {
        // Forward: an epoch-pinned campaign stamps the header.
        let mut log = sample_log();
        log.guidance_epoch = Some(7);
        let text = log.encode();
        assert!(
            text.starts_with(
                "spatter-replay 1 seed 3 iterations 4 guidance cold-probe epoch 7 frames 4\n"
            ),
            "{text:?}"
        );
        assert_eq!(ReplayLog::decode(&text), Ok(log.clone()));
        // Backward: a pre-epoch header (no token at all) still decodes.
        let old = log.encode().replacen(" epoch 7", "", 1);
        let decoded = ReplayLog::decode(&old).expect("old header decodes");
        assert_eq!(decoded.guidance_epoch, None);
        assert_eq!(decoded.frames, log.frames);
        // A mangled epoch value is a structured error, not a silent None.
        let bad = log.encode().replacen("epoch 7", "epoch x", 1);
        assert_eq!(
            ReplayLog::decode(&bad),
            Err(ReplayError::Malformed {
                line: 1,
                expected: "guidance epoch",
                got: "x".to_string()
            })
        );
    }

    #[test]
    fn query_digest_stream_round_trips_and_stays_optional() {
        let mut log = sample_log();
        log.frames[1].query_digests = vec![11, u64::MAX, 0];
        log.frames[3].query_digests = vec![42];
        let text = log.encode();
        // Digest-carrying frames grow a trailing ` q <n> <digests...>` group;
        // digest-free frames keep the historical five-token line.
        assert!(text.contains(&format!(
            "frame 1 {} {} {} {} q 3 11 {} 0\n",
            log.frames[1].sub_seed,
            log.frames[1].setup_hash,
            log.frames[1].outcome_hash,
            log.frames[1].probe_hash,
            u64::MAX
        )));
        assert_eq!(ReplayLog::decode(&text), Ok(log.clone()));
        // Backward: a pre-digest artifact (no `q` group anywhere) decodes
        // with empty digest streams.
        let mut old = sample_log();
        old.frames[1].iteration = 1;
        let decoded = ReplayLog::decode(&old.encode()).expect("pre-digest artifact decodes");
        assert!(decoded.frames.iter().all(|f| f.query_digests.is_empty()));
        // A digest count without the digests is a structured error.
        let bad = text.replacen(" q 3 11", " q 3", 1);
        assert!(matches!(
            ReplayLog::decode(&bad),
            Err(ReplayError::Malformed {
                expected: "query digest",
                ..
            })
        ));
    }

    #[test]
    fn version_skew_is_a_structured_error() {
        let text = sample_log().encode().replacen(
            &format!("spatter-replay {REPLAY_VERSION}"),
            "spatter-replay 99",
            1,
        );
        assert_eq!(
            ReplayLog::decode(&text),
            Err(ReplayError::VersionMismatch {
                ours: REPLAY_VERSION,
                theirs: 99
            })
        );
    }

    #[test]
    fn byte_truncation_of_the_last_token_is_detected() {
        let text = sample_log().encode();
        // Without the footer + newline rule this prefix would decode: the
        // cut probe hash still parses as a decimal.
        let cut_mid_token = &text[..text.len() - "\nend\n".len()];
        assert_eq!(
            ReplayLog::decode(cut_mid_token),
            Err(ReplayError::Unterminated)
        );
        // All frames present but no footer: a lost tail.
        let cut_footer = &text[..text.len() - "end\n".len()];
        assert_eq!(
            ReplayLog::decode(cut_footer),
            Err(ReplayError::Truncated {
                frames_found: 4,
                frames_declared: 4
            })
        );
    }

    #[test]
    fn non_monotonic_frames_are_rejected() {
        let mut log = sample_log();
        // Swapping frames 1 and 2 leaves line 3 (iteration 2 after 0)
        // monotonic; line 4 (iteration 1 after 2) is the offender.
        log.frames.swap(1, 2);
        assert_eq!(
            ReplayLog::decode(&log.encode()),
            Err(ReplayError::NonMonotonic { line: 4 })
        );
    }
}
