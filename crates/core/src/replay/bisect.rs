//! Locating the first diverging iteration between two campaign runs.
//!
//! Two modes, matching the two shapes a divergence investigation takes:
//!
//! * **Artifact vs artifact** ([`compare_logs`]) — both runs already
//!   recorded replay logs. Frames are cheap to compare, so the scan is
//!   linear and *exact*: it finds the first diverging iteration with zero
//!   re-executions, even when only a single iteration in the middle of the
//!   campaign differs (a flipped frame from fault injection, a
//!   lost-then-re-executed lease, one corrupted record).
//! * **Artifact vs live re-run** ([`bisect_against_live`]) — only one side
//!   was recorded; the other is this build, this config, re-executed on
//!   demand. Re-running an iteration costs a full scenario
//!   (generate → engines → oracles), so the search is a binary search over
//!   the *divergence frontier*: the real-world causes of a recorded-vs-live
//!   mismatch (a code change, a config skew, a build difference) diverge at
//!   some iteration and stay diverged, so "first diverging iteration" is
//!   the boundary of a monotone predicate and falls to
//!   ≤ ⌈log₂ N⌉ + 1 targeted re-executions ([`max_bisect_executions`]).
//!   For a *non-monotone* divergence (a lone flipped frame), record the
//!   live side too and use [`compare_logs`] — exactness is what artifacts
//!   are for.

use super::artifact::ReplayLog;
use super::ReplayFrame;
use crate::campaign::CampaignConfig;
use crate::guidance::Guidance;
use crate::runner::{CampaignRunner, IterationRecord};
use std::fmt;
use std::time::Instant;

/// Which hash layer of a [`ReplayFrame`] diverged first (outside-in
/// pipeline order), or what structural mismatch was found instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceLayer {
    /// The iterations were seeded differently: the campaigns themselves
    /// differ (seed or iteration numbering).
    SubSeed,
    /// Generation diverged: setup SQL, transformation plan, or query set.
    Setup,
    /// Identical inputs, different oracle outcomes or attribution.
    Outcome,
    /// Identical results, different probe coverage: control flow changed
    /// without changing any observable outcome.
    ProbeDelta,
    /// One side has no frame for this iteration at all.
    MissingFrame,
}

impl DivergenceLayer {
    /// The stable lower-case name used in reports (`layer=<name>`).
    pub fn name(&self) -> &'static str {
        match self {
            DivergenceLayer::SubSeed => "sub-seed",
            DivergenceLayer::Setup => "setup",
            DivergenceLayer::Outcome => "outcome",
            DivergenceLayer::ProbeDelta => "probe-delta",
            DivergenceLayer::MissingFrame => "missing-frame",
        }
    }
}

impl fmt::Display for DivergenceLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured divergence report: everything needed to reproduce the
/// first diverging iteration standalone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The first diverging iteration index.
    pub iteration: usize,
    /// The hash layer that diverged.
    pub layer: DivergenceLayer,
    /// The sub-seed of the diverging iteration — with the campaign config,
    /// this reproduces the iteration's scenario exactly.
    pub sub_seed: u64,
    /// The left-hand (reference) frame, when present.
    pub left: Option<ReplayFrame>,
    /// The right-hand (other / live) frame, when present.
    pub right: Option<ReplayFrame>,
}

impl Divergence {
    /// The first query whose outcome digest differs, for an outcome-layer
    /// divergence whose frames both carry per-query digests. `None` on other
    /// layers, on pre-digest frames, or when the per-query streams agree
    /// (the iteration-wide hash can cover cross-query state the per-query
    /// streams do not).
    pub fn diverging_query(&self) -> Option<usize> {
        if self.layer != DivergenceLayer::Outcome {
            return None;
        }
        match (&self.left, &self.right) {
            (Some(left), Some(right)) => left.first_diverging_query(right),
            _ => None,
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iteration={} layer={} sub_seed={}",
            self.iteration, self.layer, self.sub_seed
        )?;
        if let Some(query) = self.diverging_query() {
            write!(f, " query={query}")?;
        }
        Ok(())
    }
}

/// Compares two replay logs frame by frame, returning the first diverging
/// iteration — exact, zero re-executions. Frames are aligned by iteration
/// index; an iteration recorded on only one side is a
/// [`DivergenceLayer::MissingFrame`] divergence.
pub fn compare_logs(left: &ReplayLog, right: &ReplayLog) -> Option<Divergence> {
    let mut l = left.frames.iter().peekable();
    let mut r = right.frames.iter().peekable();
    loop {
        match (l.peek(), r.peek()) {
            (None, None) => return None,
            (Some(lf), None) => return Some(missing(lf, true)),
            (None, Some(rf)) => return Some(missing(rf, false)),
            (Some(lf), Some(rf)) => {
                if lf.iteration < rf.iteration {
                    return Some(missing(lf, true));
                }
                if rf.iteration < lf.iteration {
                    return Some(missing(rf, false));
                }
                if let Some(layer) = lf.diverging_layer(rf) {
                    return Some(Divergence {
                        iteration: lf.iteration,
                        layer,
                        sub_seed: lf.sub_seed,
                        left: Some((*lf).clone()),
                        right: Some((*rf).clone()),
                    });
                }
                l.next();
                r.next();
            }
        }
    }
}

/// A frame present on one side only.
fn missing(frame: &ReplayFrame, frame_is_left: bool) -> Divergence {
    Divergence {
        iteration: frame.iteration,
        layer: DivergenceLayer::MissingFrame,
        sub_seed: frame.sub_seed,
        left: frame_is_left.then(|| frame.clone()),
        right: (!frame_is_left).then(|| frame.clone()),
    }
}

/// The bound on live re-executions [`bisect_against_live`] may perform for
/// a reference log of `frames` frames: ⌈log₂ frames⌉ + 1 (at least 1).
pub fn max_bisect_executions(frames: usize) -> usize {
    match frames {
        0 | 1 => 1,
        n => (usize::BITS - (n - 1).leading_zeros()) as usize + 1,
    }
}

/// The result of a live bisection: the divergence (if any) plus how many
/// live re-executions it cost — asserted against
/// [`max_bisect_executions`] in tests and benches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectOutcome {
    /// The first diverging iteration of the frontier, or `None` when the
    /// live run matches every reference frame probed.
    pub divergence: Option<Divergence>,
    /// Live iterations re-executed during the search.
    pub executions: usize,
}

/// Binary-searches the divergence frontier between a recorded reference
/// log and a live executor: assuming iterations at the frontier and beyond
/// diverge while those before it match (the monotone shape of code/config/
/// build skew), returns the frontier in ≤ ⌈log₂ N⌉ + 1 re-executions.
///
/// `execute` is called with an iteration index and must return the live
/// [`ReplayFrame`] for it (see [`ReplayExecutor`]).
pub fn bisect_against_live(
    reference: &ReplayLog,
    mut execute: impl FnMut(usize) -> ReplayFrame,
) -> BisectOutcome {
    let frames = &reference.frames;
    let mut executions = 0;
    if frames.is_empty() {
        return BisectOutcome {
            divergence: None,
            executions,
        };
    }
    let mut probe = |frame: &ReplayFrame, executions: &mut usize| -> Option<Divergence> {
        *executions += 1;
        let live = execute(frame.iteration);
        frame.diverging_layer(&live).map(|layer| Divergence {
            iteration: frame.iteration,
            layer,
            sub_seed: frame.sub_seed,
            left: Some(frame.clone()),
            right: Some(live),
        })
    };

    // Invariant: everything before `lo` matches, and `diverged` (when set)
    // is a confirmed divergence at position `hi`.
    let mut lo = 0usize;
    let mut hi = frames.len() - 1;
    let mut diverged = match probe(&frames[hi], &mut executions) {
        Some(divergence) => divergence,
        // The last frame matches: under the frontier assumption nothing
        // before it diverges either.
        None => {
            return BisectOutcome {
                divergence: None,
                executions,
            }
        }
    };
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match probe(&frames[mid], &mut executions) {
            Some(divergence) => {
                diverged = divergence;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    BisectOutcome {
        divergence: Some(diverged),
        executions,
    }
}

/// A live re-execution harness over [`CampaignRunner`]: rebuilds the
/// campaign (including the guidance warm-up, so guided iterations replay
/// under the identical snapshot) and exposes single iterations.
///
/// With [`CampaignConfig::guidance_epoch`] set, construction additionally
/// replays the whole campaign once, sequentially, to reconstruct the
/// cumulative snapshot each epoch window ran under — random access to
/// iteration N needs the coverage of every window before N's.
///
/// Intended for iteration-bounded configs; a `time_budget` could truncate
/// the warm-up and is erased here for that reason.
pub struct ReplayExecutor {
    runner: CampaignRunner,
    guidance: Option<Guidance>,
    /// Per-window guidances of an epoch campaign, in window order.
    epoch_guidances: Vec<Guidance>,
    /// Window length of an epoch campaign (0 when epochs are off).
    epoch_len: usize,
    /// Iterations below this index ran unguided (the warm-up prefix).
    warmup_len: usize,
    start: Instant,
}

impl ReplayExecutor {
    /// Builds the executor, running the guidance warm-up once when the
    /// config is guided (its frames are pure functions of the config, like
    /// every other iteration's) — and, for an epoch campaign, one full
    /// sequential pass to rebuild every window's cumulative snapshot.
    pub fn new(config: CampaignConfig) -> Self {
        let config = CampaignConfig {
            time_budget: None,
            ..config
        };
        let runner = CampaignRunner::new(config);
        let start = Instant::now();
        let (warmup, snapshot) = runner.warmup_phase(start);
        let warmup_len = warmup.records.len();

        let mut epoch_guidances = Vec::new();
        let mut epoch_len = 0;
        match (&snapshot, runner.config().guidance_epoch) {
            (Some(snapshot), Some(len)) if len > 0 => {
                epoch_len = len;
                let mut cumulative = snapshot.clone();
                let iterations = runner.config().iterations;
                let mut base = warmup_len;
                while base < iterations {
                    let end = iterations.min(base + len);
                    let guidance = Guidance::from_snapshot(&cumulative);
                    for iteration in base..end {
                        let record = runner.run_iteration(iteration, start, Some(&guidance));
                        cumulative.absorb(&record.probe_delta);
                    }
                    epoch_guidances.push(guidance);
                    base = end;
                }
            }
            _ => {}
        }

        ReplayExecutor {
            guidance: snapshot.as_ref().map(Guidance::from_snapshot),
            epoch_guidances,
            epoch_len,
            warmup_len,
            runner,
            start,
        }
    }

    /// The guidance iteration `iteration` executes under.
    fn guidance_for(&self, iteration: usize) -> Option<&Guidance> {
        if iteration < self.warmup_len {
            return None;
        }
        // epoch_len == 0 means epochs are off: fall back to the frozen
        // warm-up snapshot (checked_div is None exactly then).
        match (iteration - self.warmup_len).checked_div(self.epoch_len) {
            Some(window) => self.epoch_guidances.get(window),
            None => self.guidance.as_ref(),
        }
    }

    /// Re-executes one iteration end to end, returning its full record.
    pub fn execute(&self, iteration: usize) -> IterationRecord {
        self.runner
            .run_iteration(iteration, self.start, self.guidance_for(iteration))
    }

    /// Re-executes one iteration and returns just its replay frame.
    pub fn frame(&self, iteration: usize) -> ReplayFrame {
        self.execute(iteration).replay
    }

    /// Rebuilds one iteration's generated inputs — database, queries,
    /// transformation plan, knobs — without executing any engine, under the
    /// exact guidance the campaign gave that iteration. The entry point of
    /// guided reduction (`spatter-replay reduce`).
    pub fn scenario(&self, iteration: usize) -> crate::runner::ScenarioParts {
        self.runner
            .build_scenario(iteration, self.guidance_for(iteration))
    }

    /// The campaign configuration the executor replays under.
    pub fn config(&self) -> &CampaignConfig {
        self.runner.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guidance::GuidanceMode;

    fn frame(iteration: usize, outcome: u64) -> ReplayFrame {
        ReplayFrame {
            iteration,
            sub_seed: 0x5eed + iteration as u64,
            setup_hash: 7,
            outcome_hash: outcome,
            probe_hash: 9,
            query_digests: Vec::new(),
        }
    }

    fn log(frames: Vec<ReplayFrame>) -> ReplayLog {
        ReplayLog {
            seed: 1,
            iterations: frames.len(),
            guidance: GuidanceMode::Off,
            guidance_epoch: None,
            frames,
        }
    }

    #[test]
    fn compare_finds_a_single_flipped_frame_exactly() {
        let a = log((0..16).map(|i| frame(i, 100)).collect());
        let mut b = a.clone();
        b.frames[9].outcome_hash ^= 1;
        let divergence = compare_logs(&a, &b).expect("must diverge");
        assert_eq!(divergence.iteration, 9);
        assert_eq!(divergence.layer, DivergenceLayer::Outcome);
        assert_eq!(divergence.sub_seed, a.frames[9].sub_seed);
        assert_eq!(compare_logs(&a, &a), None);
    }

    #[test]
    fn outcome_divergence_names_the_query_when_digests_are_recorded() {
        let a = log((0..4)
            .map(|i| {
                let mut f = frame(i, 100);
                f.query_digests = vec![1, 2, 3];
                f
            })
            .collect());
        let mut b = a.clone();
        b.frames[2].outcome_hash ^= 1;
        b.frames[2].query_digests[1] ^= 1;
        let divergence = compare_logs(&a, &b).expect("must diverge");
        assert_eq!(divergence.layer, DivergenceLayer::Outcome);
        assert_eq!(divergence.diverging_query(), Some(1));
        assert_eq!(
            divergence.to_string(),
            format!(
                "iteration=2 layer=outcome sub_seed={} query=1",
                a.frames[2].sub_seed
            )
        );
        // Digest-free frames (pre-digest artifacts) fall back to the
        // iteration-only report.
        let a = log((0..4).map(|i| frame(i, 100)).collect());
        let mut b = a.clone();
        b.frames[2].outcome_hash ^= 1;
        let divergence = compare_logs(&a, &b).expect("must diverge");
        assert_eq!(divergence.diverging_query(), None);
        assert!(!divergence.to_string().contains("query="));
    }

    #[test]
    fn compare_reports_missing_frames() {
        let a = log((0..5).map(|i| frame(i, 1)).collect());
        let mut b = a.clone();
        b.frames.remove(2);
        let divergence = compare_logs(&a, &b).expect("must diverge");
        assert_eq!(divergence.iteration, 2);
        assert_eq!(divergence.layer, DivergenceLayer::MissingFrame);
        assert!(divergence.left.is_some() && divergence.right.is_none());
        // Symmetric: the extra frame is on the right this time.
        let divergence = compare_logs(&b, &a).expect("must diverge");
        assert_eq!(divergence.iteration, 2);
        assert!(divergence.left.is_none() && divergence.right.is_some());
    }

    #[test]
    fn live_bisection_finds_every_frontier_within_budget() {
        for n in [1usize, 2, 3, 7, 8, 12, 100] {
            let reference = log((0..n).map(|i| frame(i, 50)).collect());
            for frontier in 0..=n {
                // The live side matches below the frontier and diverges from
                // it on — the monotone shape bisection assumes.
                let mut executions_check = 0;
                let outcome = bisect_against_live(&reference, |iteration| {
                    executions_check += 1;
                    frame(iteration, if iteration >= frontier { 51 } else { 50 })
                });
                assert!(
                    outcome.executions <= max_bisect_executions(n),
                    "n={n} frontier={frontier}: {} > {}",
                    outcome.executions,
                    max_bisect_executions(n)
                );
                assert_eq!(outcome.executions, executions_check);
                if frontier >= n {
                    assert_eq!(outcome.divergence, None, "n={n} frontier={frontier}");
                } else {
                    let divergence = outcome.divergence.expect("must diverge");
                    assert_eq!(divergence.iteration, frontier, "n={n}");
                    assert_eq!(divergence.layer, DivergenceLayer::Outcome);
                }
            }
        }
    }

    #[test]
    fn bisect_budget_is_log2_plus_one() {
        assert_eq!(max_bisect_executions(0), 1);
        assert_eq!(max_bisect_executions(1), 1);
        assert_eq!(max_bisect_executions(2), 2);
        assert_eq!(max_bisect_executions(8), 4);
        assert_eq!(max_bisect_executions(12), 5);
        assert_eq!(max_bisect_executions(1024), 11);
    }
}
