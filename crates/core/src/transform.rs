//! Construction of affine-equivalent databases (Algorithm 2 + §4.3).
//!
//! A [`TransformPlan`] bundles the two rewrites applied to every geometry of
//! `SDB1` to obtain `SDB2`:
//!
//! 1. canonicalization (the special case of AEI with the identity matrix);
//! 2. a random **integer** affine transformation, so that the transformation
//!    itself is exact and any observed discrepancy is attributable to the
//!    engine (§4.2, "Avoiding precision issues").

use crate::rng::StdRng;
use crate::rng::{RngExt, SeedableRng};
use crate::spec::DatabaseSpec;
use spatter_geom::canonical::canonicalize;
use spatter_geom::{AffineMatrix, AffineTransform, Geometry};

/// Which family of affine matrices to draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AffineStrategy {
    /// The identity matrix: `SDB2` differs from `SDB1` only by
    /// canonicalization (§4.3 treats this as a special case of AEI).
    CanonicalizationOnly,
    /// A general random invertible integer matrix plus integer translation
    /// (rotation/scaling/shearing composed, Figure 4).
    GeneralInteger,
    /// A similarity transformation (quarter-turn rotation, uniform integer
    /// scaling, integer translation). Preserves relative distances, so it is
    /// the family §7 prescribes for distance-parameterised queries (KNN,
    /// `ST_DWithin`).
    SimilarityInteger,
}

/// A concrete transformation: canonicalization options plus the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformPlan {
    /// Whether canonicalization is applied before the affine map.
    pub canonicalize: bool,
    /// The affine transformation applied to every vertex.
    pub transform: AffineTransform,
    /// The uniform scale factor of the linear part when the matrix is a
    /// similarity (used to rescale distance literals in range queries).
    /// Recovered as `√|det|` for *any* matrix that preserves relative
    /// distances, including general random draws that happen to be
    /// similarities (§7 / the ROADMAP similarity-detection follow-on).
    pub uniform_scale: Option<f64>,
}

impl TransformPlan {
    /// The identity plan (canonicalization only).
    pub fn canonicalization_only() -> Self {
        TransformPlan {
            canonicalize: true,
            transform: AffineTransform::identity(),
            uniform_scale: Some(1.0),
        }
    }

    /// A plan from an explicit matrix, detecting the uniform scale: when the
    /// linear part preserves relative distances (a similarity — rotation,
    /// translation, uniform scaling in any combination), the scale factor is
    /// `√|det|` and distance-parameterised templates stay checkable.
    pub fn from_matrix(
        canonicalize: bool,
        matrix: AffineMatrix,
    ) -> Result<Self, spatter_geom::GeomError> {
        Ok(TransformPlan {
            canonicalize,
            uniform_scale: matrix
                .preserves_relative_distance()
                .then(|| matrix.determinant().abs().sqrt()),
            transform: AffineTransform::new(matrix)?,
        })
    }

    /// Draws a random plan of the given strategy.
    pub fn random(strategy: AffineStrategy, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        match strategy {
            AffineStrategy::CanonicalizationOnly => TransformPlan::canonicalization_only(),
            AffineStrategy::GeneralInteger => {
                let matrix = random_invertible_integer_matrix(&mut rng);
                // Most general draws shear, but the family contains genuine
                // similarities (e.g. [[2,-1],[1,2]], a rotation times √5);
                // detecting them keeps their distance templates checkable
                // instead of skipped.
                TransformPlan::from_matrix(true, matrix)
                    .expect("matrix is invertible by construction")
            }
            AffineStrategy::SimilarityInteger => {
                let scale = rng.random_range(1..=5) as f64;
                let quarter_turns = rng.random_range(0..4);
                let tx = rng.random_range(-50..=50) as f64;
                let ty = rng.random_range(-50..=50) as f64;
                let matrix = AffineMatrix::translation(tx, ty)
                    .compose(&AffineMatrix::scaling(scale, scale))
                    .compose(&AffineMatrix::rotation_quarter(quarter_turns));
                TransformPlan {
                    canonicalize: true,
                    transform: AffineTransform::new(matrix)
                        .expect("similarity matrices are invertible"),
                    uniform_scale: Some(scale),
                }
            }
        }
    }

    /// Applies the plan to one geometry.
    pub fn apply_geometry(&self, geometry: &Geometry) -> Geometry {
        let canonical = if self.canonicalize {
            canonicalize(geometry)
        } else {
            geometry.clone()
        };
        self.transform.apply(&canonical)
    }

    /// Applies the plan to a whole database spec, producing `SDB2`.
    pub fn apply(&self, spec: &DatabaseSpec) -> DatabaseSpec {
        spec.map_geometries(|g| self.apply_geometry(g))
    }

    /// Rescales a distance literal so range predicates remain equivalent
    /// under a similarity transformation; `None` when the plan does not
    /// preserve relative distances.
    pub fn scale_distance(&self, d: f64) -> Option<f64> {
        self.uniform_scale.map(|s| d * s)
    }
}

/// Generates a random invertible integer matrix with an integer translation
/// vector (Algorithm 2, `GenerateMappingMatrix`).
fn random_invertible_integer_matrix(rng: &mut StdRng) -> AffineMatrix {
    loop {
        let a = rng.random_range(-3..=3) as f64;
        let b = rng.random_range(-3..=3) as f64;
        let c = rng.random_range(-3..=3) as f64;
        let d = rng.random_range(-3..=3) as f64;
        let tx = rng.random_range(-100..=100) as f64;
        let ty = rng.random_range(-100..=100) as f64;
        let matrix = AffineMatrix::new(a, b, c, d, tx, ty);
        if matrix.is_invertible() {
            return matrix;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::{parse_wkt, write_wkt};
    use spatter_topo::predicates::NamedPredicate;

    #[test]
    fn canonicalization_only_plan_reproduces_figure6() {
        let plan = TransformPlan::canonicalization_only();
        let g = parse_wkt("MULTILINESTRING((0 2,1 0,3 1,3 1,5 0),EMPTY)").unwrap();
        assert_eq!(
            write_wkt(&plan.apply_geometry(&g)),
            "LINESTRING(0 2,1 0,3 1,5 0)"
        );
        assert_eq!(plan.scale_distance(7.0), Some(7.0));
    }

    #[test]
    fn random_general_plans_use_integer_invertible_matrices() {
        for seed in 0..50 {
            let plan = TransformPlan::random(AffineStrategy::GeneralInteger, seed);
            let matrix = *plan.transform.matrix();
            assert!(matrix.is_integer(), "seed {seed}");
            assert!(matrix.is_invertible(), "seed {seed}");
        }
    }

    #[test]
    fn general_plans_recover_the_scale_of_accidental_similarities() {
        // Over a seed sweep the general family draws both shears (no scale)
        // and genuine similarities (scale √|det|); the detection must agree
        // with the matrix's own classification in every case.
        let mut similarities = 0;
        for seed in 0..200 {
            let plan = TransformPlan::random(AffineStrategy::GeneralInteger, seed);
            let matrix = plan.transform.matrix();
            match plan.uniform_scale {
                Some(scale) => {
                    similarities += 1;
                    assert!(matrix.preserves_relative_distance(), "seed {seed}");
                    let expected = matrix.determinant().abs().sqrt();
                    assert!((scale - expected).abs() < 1e-12, "seed {seed}");
                    assert_eq!(plan.scale_distance(2.0), Some(2.0 * scale));
                }
                None => {
                    assert!(!matrix.preserves_relative_distance(), "seed {seed}");
                    assert_eq!(plan.scale_distance(2.0), None);
                }
            }
        }
        assert!(
            similarities > 0,
            "the sweep should contain at least one accidental similarity"
        );
    }

    #[test]
    fn from_matrix_detects_rotation_times_scale_similarities() {
        // A rotation composed with a uniform scale expressed as one integer
        // matrix: [[3,-4],[4,3]] rotates by atan2(4,3) and scales by 5.
        // `SimilarityInteger` never draws it (it only uses quarter turns),
        // so only the detection path can classify it.
        let plan =
            TransformPlan::from_matrix(true, AffineMatrix::new(3.0, -4.0, 4.0, 3.0, 10.0, -7.0))
                .unwrap();
        assert_eq!(plan.uniform_scale, Some(5.0));
        assert_eq!(plan.scale_distance(2.0), Some(10.0));
        // An irrational-scale similarity is detected too (det = 5, s = √5).
        let plan =
            TransformPlan::from_matrix(true, AffineMatrix::new(2.0, -1.0, 1.0, 2.0, 0.0, 0.0))
                .unwrap();
        let scale = plan.uniform_scale.expect("similarity");
        assert!((scale - 5f64.sqrt()).abs() < 1e-12);
        // A shear stays unscaled, and a singular matrix is rejected.
        let plan = TransformPlan::from_matrix(true, AffineMatrix::shearing(1.0, 0.0)).unwrap();
        assert_eq!(plan.uniform_scale, None);
        assert!(
            TransformPlan::from_matrix(true, AffineMatrix::new(1.0, 2.0, 2.0, 4.0, 0.0, 0.0))
                .is_err()
        );
    }

    #[test]
    fn similarity_plans_preserve_relative_distance() {
        for seed in 0..20 {
            let plan = TransformPlan::random(AffineStrategy::SimilarityInteger, seed);
            assert!(
                plan.transform.matrix().preserves_relative_distance(),
                "seed {seed}"
            );
            assert!(plan.uniform_scale.is_some());
        }
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = TransformPlan::random(AffineStrategy::GeneralInteger, 9);
        let b = TransformPlan::random(AffineStrategy::GeneralInteger, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn topological_relationships_are_preserved_by_random_plans() {
        // Proposition 3.3, checked empirically on the reference library: for
        // a fixed pair of geometries, every named predicate returns the same
        // value before and after the transformation.
        let pairs = [
            ("LINESTRING(0 1,2 0)", "POINT(1 0.5)"),
            ("POLYGON((0 0,4 0,4 4,0 4,0 0))", "LINESTRING(-1 2,5 2)"),
            (
                "POLYGON((0 0,4 0,4 4,0 4,0 0))",
                "POLYGON((2 2,6 2,6 6,2 6,2 2))",
            ),
            ("MULTIPOINT((1 1),(5 5))", "POLYGON((0 0,4 0,4 4,0 4,0 0))"),
        ];
        for seed in 0..10u64 {
            let plan = TransformPlan::random(AffineStrategy::GeneralInteger, seed);
            for (wa, wb) in pairs {
                let a = parse_wkt(wa).unwrap();
                let b = parse_wkt(wb).unwrap();
                let ta = plan.apply_geometry(&a);
                let tb = plan.apply_geometry(&b);
                for predicate in NamedPredicate::ALL {
                    assert_eq!(
                        predicate.evaluate(&a, &b),
                        predicate.evaluate(&ta, &tb),
                        "{} changed under seed {seed} for {wa} / {wb}",
                        predicate.function_name()
                    );
                }
            }
        }
    }

    #[test]
    fn apply_preserves_table_structure() {
        use crate::spec::DatabaseSpec;
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(1 1)").unwrap());
        let plan = TransformPlan::random(AffineStrategy::GeneralInteger, 3);
        let transformed = plan.apply(&spec);
        assert_eq!(transformed.tables.len(), 2);
        assert_eq!(transformed.tables[1].geometries.len(), 1);
        assert_eq!(transformed.tables[0].geometries.len(), 0);
    }
}
