//! The testing-campaign driver (§5.1, §5.4).
//!
//! A campaign repeatedly: generates a spatial database with the
//! geometry-aware generator, constructs its affine-equivalent counterpart,
//! instantiates random template queries and checks the AEI property on the
//! engine under test. Discrepancies and crashes are recorded as findings,
//! each finding is *attributed* to the seeded fault responsible for it by
//! re-running the scenario with individual faults disabled (the reproduction
//! of the paper's fix-commit-based deduplication), and timing, coverage and
//! the unique-bug timeline are tracked for Figures 7 and 8 and Table 5.

use crate::backend::{BackendSpec, EngineBackend, InProcessBackend};
use crate::generator::GeneratorConfig;
use crate::guidance::{GuidanceMode, ScenarioKnobs};
use crate::mutation::{MutationConfig, MutationScript};
use crate::oracles::{DivergenceSide, OracleOutcome};
use crate::queries::QueryInstance;
use crate::runner::OracleKind;
use crate::spec::DatabaseSpec;
use crate::transform::{AffineStrategy, TransformPlan};
use spatter_sdb::{EngineProfile, FaultId, FaultSet};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The engine backend under test. Shared by every worker shard: backends
    /// are factories, each scenario opens its own sessions.
    pub backend: Arc<dyn EngineBackend>,
    /// Generator configuration (N, m, strategy).
    pub generator: GeneratorConfig,
    /// Number of template queries per iteration (the paper uses 100 per run
    /// in §5.4).
    pub queries_per_run: usize,
    /// The affine matrix family used for the transformation.
    pub affine: AffineStrategy,
    /// Number of iterations to run.
    pub iterations: usize,
    /// Optional wall-clock budget; the campaign stops at whichever of
    /// `iterations` / `time_budget` is reached first.
    pub time_budget: Option<Duration>,
    /// Whether findings are attributed to seeded faults (disable to measure
    /// raw throughput, e.g. for Figure 7).
    pub attribute_findings: bool,
    /// Whether generation is biased by coverage feedback
    /// ([`GuidanceMode::ColdProbe`]) or stays uniform ([`GuidanceMode::Off`],
    /// the default — byte-identical to pre-guidance campaigns).
    pub guidance: GuidanceMode,
    /// With [`GuidanceMode::ColdProbe`], refresh the guidance snapshot every
    /// this many iterations instead of freezing it after the warm-up: the
    /// campaign proceeds in *epochs*, each generated under the cumulative
    /// coverage of every earlier iteration, absorbed in iteration-index
    /// order behind a barrier. A pure function of the seed, so epoch
    /// campaigns stay byte-identical at any worker count, process split or
    /// transport. `None` (the default) keeps the frozen-snapshot behaviour;
    /// ignored when guidance is off.
    pub guidance_epoch: Option<usize>,
    /// Optional mutation workload: a deterministic per-iteration
    /// [`MutationScript`] of interleaved UPDATE/DELETE/INSERT/DDL statements,
    /// applied to both AEI frames between queries
    /// ([`run_aei_iteration_with_mutations`]). `None` (the default) keeps
    /// the historical load-once campaigns byte for byte.
    pub mutations: Option<MutationConfig>,
    /// The oracle suite run on every iteration (AEI alone by default).
    /// Lives in the config — rather than on the runner — so a campaign is
    /// fully described by one value, which is what the distributed
    /// subsystem ships to worker processes.
    pub oracles: Vec<OracleKind>,
    /// Base random seed.
    pub seed: u64,
}

impl CampaignConfig {
    /// A configuration testing the stock in-process engine of a profile
    /// (the "released version"): the most common campaign setup.
    pub fn stock(profile: EngineProfile) -> Self {
        CampaignConfig {
            backend: Arc::new(InProcessBackend::stock(profile)),
            ..CampaignConfig::default()
        }
    }

    /// A configuration testing an in-process engine with an explicit fault
    /// set (`FaultSet::none()` for the fully patched reference engine).
    pub fn in_process(profile: EngineProfile, faults: FaultSet) -> Self {
        CampaignConfig {
            backend: Arc::new(InProcessBackend::new(profile, faults)),
            ..CampaignConfig::default()
        }
    }

    /// Replaces the backend under test.
    pub fn with_backend(mut self, backend: Arc<dyn EngineBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The differential stdio-pair preset: the in-process engine of a
    /// profile is pitted against its own `spatter-sdb-server` twin — same
    /// profile, same fault set — through
    /// [`crate::oracles::DifferentialOracle::against`]. The two engines are
    /// semantically identical, so *any* finding of this campaign is evidence
    /// of a transport bug (framing, count semantics, crash taxonomy), which
    /// makes the preset a continuous smoke test of the SQL-over-stdio wire.
    pub fn differential_stdio_pair(
        server: impl Into<PathBuf>,
        profile: EngineProfile,
        faults: FaultSet,
    ) -> Self {
        let twin = BackendSpec::Stdio {
            command: server.into(),
            profile,
            faults: faults.clone(),
            hard_crash: false,
        };
        CampaignConfig {
            backend: Arc::new(InProcessBackend::new(profile, faults)),
            oracles: vec![OracleKind::DifferentialTwin(twin)],
            ..CampaignConfig::default()
        }
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            backend: Arc::new(InProcessBackend::stock(EngineProfile::PostgisLike)),
            generator: GeneratorConfig::default(),
            queries_per_run: 20,
            affine: AffineStrategy::GeneralInteger,
            iterations: 20,
            time_budget: None,
            attribute_findings: true,
            guidance: GuidanceMode::Off,
            guidance_epoch: None,
            mutations: None,
            oracles: vec![OracleKind::Aei],
            seed: 0,
        }
    }
}

/// The kind of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A count discrepancy between affine-equivalent databases.
    Logic,
    /// A simulated engine crash.
    Crash,
}

/// One potential bug found during the campaign.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Logic or crash.
    pub kind: FindingKind,
    /// Which side of the oracle's comparison diverged: the engine under test
    /// ([`DivergenceSide::Left`]), the comparison engine of a differential
    /// pair ([`DivergenceSide::Right`]), or an unresolved two-engine
    /// disagreement ([`DivergenceSide::Both`]). The matrix subsystem's
    /// bucketing consumes this.
    pub side: DivergenceSide,
    /// Human-readable description from the oracle.
    pub description: String,
    /// The iteration in which it was found.
    pub iteration: usize,
    /// Elapsed campaign time when it was found.
    pub elapsed: Duration,
    /// The seeded faults whose individual removal makes the finding
    /// disappear (empty when attribution is disabled or inconclusive).
    pub attributed_faults: Vec<FaultId>,
}

/// Aggregated results of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Every potential bug observed (before deduplication).
    pub findings: Vec<Finding>,
    /// Unique seeded faults detected, i.e. the campaign's "unique bugs".
    pub unique_faults: BTreeSet<FaultId>,
    /// Iterations actually executed.
    pub iterations_run: usize,
    /// Total wall-clock time of the campaign.
    pub total_time: Duration,
    /// Time spent generating databases and queries (Spatter-side work).
    pub generation_time: Duration,
    /// Time spent executing statements inside the engine.
    pub engine_time: Duration,
    /// Timeline of (elapsed, unique bug count) pairs, one entry per new
    /// unique fault (Figure 8a).
    pub unique_bug_timeline: Vec<(Duration, usize)>,
    /// Timeline of (elapsed, topo coverage fraction, engine coverage
    /// fraction) snapshots, one per iteration (Figure 8b/8c).
    pub coverage_timeline: Vec<(Duration, f64, f64)>,
    /// Number of query checks skipped because a distance-parameterised
    /// template met a non-similarity transformation (§7): skipping is the
    /// sound behaviour, and the count makes it auditable.
    pub skipped_queries: usize,
    /// Union of the probes the campaign's iterations hit, measured with the
    /// thread-local recorder (so concurrent work elsewhere in the process is
    /// excluded) and merged deterministically across shards. This is the
    /// "probes covered per iteration budget" number the coverage-guided
    /// bench compares between guided and unguided campaigns.
    pub probe_coverage: BTreeSet<&'static str>,
}

impl CampaignReport {
    /// The number of unique (deduplicated) bugs found.
    pub fn unique_bug_count(&self) -> usize {
        self.unique_faults.len()
    }

    /// Findings of a given kind.
    pub fn findings_of_kind(&self, kind: FindingKind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }

    /// Number of distinct probes the campaign's own iterations covered.
    pub fn probes_covered(&self) -> usize {
        self.probe_coverage.len()
    }

    /// The scheduling-independent projection of this report — findings
    /// (kind, description, iteration, attribution), the unique-fault set,
    /// the skip count and the probe-coverage set — rendered as one string.
    /// Two runs of the same campaign configuration must produce identical
    /// fingerprints regardless of worker count or process; wall-clock fields
    /// are deliberately excluded. Shared by the determinism tests and the
    /// coverage-guided bench so they can never pin different invariants.
    pub fn determinism_fingerprint(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{:?}|{}|{}|{}|{:?}",
                    f.kind,
                    f.side.name(),
                    f.description,
                    f.iteration,
                    f.attributed_faults
                )
            })
            .collect();
        format!(
            "findings={findings:?} unique={:?} skipped={} probes={:?}",
            self.unique_faults, self.skipped_queries, self.probe_coverage
        )
    }
}

/// The campaign driver.
///
/// Since the introduction of the sharded [`crate::runner::CampaignRunner`]
/// this type is a thin single-worker facade over it: `Campaign::new(c).run()`
/// is exactly `CampaignRunner::new(c).run()` with `n_workers = 1`. All
/// existing call sites and benches keep working; callers that want
/// parallelism construct the runner directly.
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign from a configuration.
    pub fn new(config: CampaignConfig) -> Self {
        Campaign { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign sequentially on the calling thread.
    pub fn run(&self) -> CampaignReport {
        crate::runner::CampaignRunner::new(self.config.clone()).run()
    }
}

/// Runs the AEI check for one iteration against an engine backend, returning
/// the per-query outcomes and the time spent inside the engine (loading both
/// databases and running every query on both). Both sessions are opened once
/// and reused across the whole query batch, amortizing parsing and catalog
/// setup (Figure 7: engine execution dominates campaign wall time).
pub fn run_aei_iteration(
    backend: &dyn EngineBackend,
    spec: &DatabaseSpec,
    queries: &[QueryInstance],
    plan: &TransformPlan,
) -> (Vec<OracleOutcome>, Duration) {
    run_aei_iteration_with_knobs(backend, spec, queries, plan, &ScenarioKnobs::baseline())
}

/// [`run_aei_iteration`] under explicit [`ScenarioKnobs`]: the knob-derived
/// setup (indexes, planner settings) is applied identically to `SDB1` and
/// its affine-equivalent `SDB2`, so knob effects can never masquerade as an
/// AEI discrepancy. With baseline knobs this is exactly
/// [`run_aei_iteration`].
pub fn run_aei_iteration_with_knobs(
    backend: &dyn EngineBackend,
    spec: &DatabaseSpec,
    queries: &[QueryInstance],
    plan: &TransformPlan,
    knobs: &ScenarioKnobs,
) -> (Vec<OracleOutcome>, Duration) {
    let transformed = plan.apply(spec);
    let mut engine_time = Duration::ZERO;

    let mut session1 = match crate::oracles::open_loaded(backend, &knobs.setup_sql(spec)) {
        Ok(session) => session,
        Err((outcome, spent)) => return (vec![outcome; queries.len().max(1)], engine_time + spent),
    };
    let mut session2 = match crate::oracles::open_loaded(backend, &knobs.setup_sql(&transformed)) {
        Ok(session) => session,
        Err((outcome, spent)) => return (vec![outcome; queries.len().max(1)], engine_time + spent),
    };

    let mut outcomes = Vec::with_capacity(queries.len());
    for query in queries {
        outcomes.push(crate::oracles::check_aei_query(
            session1.as_mut(),
            session2.as_mut(),
            spec,
            query,
            plan,
        ));
    }
    engine_time += session1.engine_time();
    engine_time += session2.engine_time();
    (outcomes, engine_time)
}

/// [`run_aei_iteration_with_knobs`] with an interleaved mutation workload:
/// before each query's AEI check, the script's batch for that query index is
/// applied to both frames — the original statements to `SDB1`, the
/// affine-transformed statements to `SDB2` — and the oracle's view of the
/// database ([`DatabaseSpec`]) evolves in lockstep, so the §7
/// well-definedness screens always see the database the query actually ran
/// against. With an empty script this is exactly
/// [`run_aei_iteration_with_knobs`].
pub fn run_aei_iteration_with_mutations(
    backend: &dyn EngineBackend,
    spec: &DatabaseSpec,
    queries: &[QueryInstance],
    plan: &TransformPlan,
    knobs: &ScenarioKnobs,
    script: &MutationScript,
) -> (Vec<OracleOutcome>, Duration) {
    run_mutated_aei(backend, spec, queries, plan, knobs, script, None)
}

/// Replays the mutation prefix up to and including query `query_index`'s
/// batch, then checks only that query — the attribution path of mutation
/// campaigns: a finding is only reproduced faithfully when the re-run
/// performs the full mutation history that produced the database state the
/// query observed.
pub(crate) fn check_mutated_aei_query(
    backend: &dyn EngineBackend,
    spec: &DatabaseSpec,
    queries: &[QueryInstance],
    plan: &TransformPlan,
    knobs: &ScenarioKnobs,
    script: &MutationScript,
    query_index: usize,
) -> OracleOutcome {
    let (outcomes, _) = run_mutated_aei(
        backend,
        spec,
        queries,
        plan,
        knobs,
        script,
        Some(query_index),
    );
    outcomes
        .into_iter()
        .next()
        .unwrap_or(OracleOutcome::Inapplicable)
}

fn run_mutated_aei(
    backend: &dyn EngineBackend,
    spec: &DatabaseSpec,
    queries: &[QueryInstance],
    plan: &TransformPlan,
    knobs: &ScenarioKnobs,
    script: &MutationScript,
    only: Option<usize>,
) -> (Vec<OracleOutcome>, Duration) {
    let transformed = plan.apply(spec);
    let expected = match only {
        Some(_) => 1,
        None => queries.len().max(1),
    };

    let mut session1 = match crate::oracles::open_loaded(backend, &knobs.setup_sql(spec)) {
        Ok(session) => session,
        Err((outcome, spent)) => return (vec![outcome; expected], spent),
    };
    let mut session2 = match crate::oracles::open_loaded(backend, &knobs.setup_sql(&transformed)) {
        Ok(session) => session,
        Err((outcome, spent)) => return (vec![outcome; expected], spent),
    };

    let mut evolved = spec.clone();
    let mut outcomes = Vec::with_capacity(expected);
    for (query_index, query) in queries.iter().enumerate() {
        let batch1 = script.frame1_batch(query_index);
        let batch2 = script.frame2_batch(query_index, plan);
        // A failing mutation batch poisons the rest of the run the same way
        // a failing setup load poisons a whole scenario.
        let failure = match session1.load(&batch1) {
            Err(error) => Some(OracleOutcome::from(error)),
            Ok(()) => session2.load(&batch2).err().map(OracleOutcome::from),
        };
        if let Some(outcome) = failure {
            while outcomes.len() < expected {
                outcomes.push(outcome.clone());
            }
            break;
        }
        script.apply_batch_to_spec(query_index, &mut evolved);
        if only.is_some_and(|target| target != query_index) {
            continue;
        }
        outcomes.push(crate::oracles::check_aei_query(
            session1.as_mut(),
            session2.as_mut(),
            &evolved,
            query,
            plan,
        ));
        if only == Some(query_index) {
            break;
        }
    }
    let engine_time = session1.engine_time() + session2.engine_time();
    (outcomes, engine_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GenerationStrategy;

    fn small_config(profile: EngineProfile, faults: Option<FaultSet>) -> CampaignConfig {
        let base = match faults {
            Some(faults) => CampaignConfig::in_process(profile, faults),
            None => CampaignConfig::stock(profile),
        };
        CampaignConfig {
            generator: GeneratorConfig {
                num_geometries: 8,
                num_tables: 2,
                strategy: GenerationStrategy::GeometryAware,
                coordinate_range: 30,
                random_shape_probability: 0.5,
            },
            queries_per_run: 10,
            affine: AffineStrategy::GeneralInteger,
            iterations: 6,
            time_budget: None,
            attribute_findings: true,
            seed: 1,
            ..base
        }
    }

    #[test]
    fn campaign_on_reference_engine_reports_no_findings() {
        let config = small_config(EngineProfile::PostgisLike, Some(FaultSet::none()));
        let report = Campaign::new(config).run();
        assert_eq!(report.findings.len(), 0, "{:#?}", report.findings);
        assert_eq!(report.unique_bug_count(), 0);
        assert_eq!(report.iterations_run, 6);
        assert!(!report.coverage_timeline.is_empty());
    }

    #[test]
    fn campaign_on_stock_engine_finds_and_attributes_bugs() {
        let mut config = small_config(EngineProfile::PostgisLike, None);
        config.iterations = 25;
        config.seed = 3;
        let report = Campaign::new(config).run();
        assert!(
            !report.findings.is_empty(),
            "the stock PostGIS-like engine should produce findings"
        );
        assert!(
            report.unique_bug_count() >= 1,
            "at least one finding should be attributed to a seeded fault"
        );
        // The timeline grows monotonically.
        let counts: Vec<usize> = report.unique_bug_timeline.iter().map(|(_, c)| *c).collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn time_budget_stops_the_campaign() {
        let mut config = small_config(EngineProfile::MysqlLike, Some(FaultSet::none()));
        config.iterations = 10_000;
        config.time_budget = Some(Duration::from_millis(50));
        let report = Campaign::new(config).run();
        assert!(report.iterations_run < 10_000);
    }

    #[test]
    fn generation_and_engine_time_are_tracked() {
        let config = small_config(EngineProfile::DuckdbSpatialLike, Some(FaultSet::none()));
        let report = Campaign::new(config).run();
        assert!(report.engine_time > Duration::ZERO);
        assert!(report.total_time >= report.engine_time);
    }
}
