//! Test oracles: AEI (the paper's contribution) and the baseline
//! methodologies it is compared against in §5.3 / Table 4.
//!
//! Every oracle consumes a *scenario* — a generated database spec plus a set
//! of query instances — and reports, per query, whether it observed evidence
//! of a logic bug, a crash, or nothing. Errors that are not crashes
//! (semantic validation failures, unsupported functions) are ignored, exactly
//! as Spatter ignores them (§4.1).

use crate::queries::QueryInstance;
use crate::spec::DatabaseSpec;
use crate::transform::TransformPlan;
use spatter_sdb::{Engine, EngineProfile, FaultSet, SdbError};

/// The verdict of an oracle for one query.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleOutcome {
    /// The oracle saw nothing suspicious.
    Pass,
    /// The oracle observed a logic discrepancy; the payload describes the two
    /// observations that disagree.
    LogicBug {
        /// Human-readable description of the disagreement.
        description: String,
    },
    /// A statement crashed the engine.
    Crash {
        /// The crash message.
        message: String,
    },
    /// The oracle could not apply to this query (e.g. the function does not
    /// exist in the comparison engine, or the statements errored) — not a
    /// bug, mirroring the expected discrepancies of §1.
    Inapplicable,
}

impl OracleOutcome {
    /// Whether this outcome is a logic-bug report.
    pub fn is_logic_bug(&self) -> bool {
        matches!(self, OracleOutcome::LogicBug { .. })
    }

    /// Whether this outcome is a crash report.
    pub fn is_crash(&self) -> bool {
        matches!(self, OracleOutcome::Crash { .. })
    }
}

/// A test oracle.
///
/// Object-safe, and bounded `Send + Sync` so a boxed oracle suite can be
/// instantiated and run on any worker shard of the parallel campaign runner.
pub trait Oracle: Send + Sync {
    /// The oracle's display name (used in the Table 4 harness).
    fn name(&self) -> &'static str;

    /// Checks one scenario; returns one outcome per query.
    fn check(
        &self,
        profile: EngineProfile,
        faults: &FaultSet,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
    ) -> Vec<OracleOutcome>;
}

/// Loads a spec into a fresh engine, returning the engine or a crash outcome.
fn load_engine(
    profile: EngineProfile,
    faults: &FaultSet,
    statements: &[String],
) -> Result<Engine, OracleOutcome> {
    let mut engine = Engine::with_faults(profile, faults.clone());
    for statement in statements {
        match engine.execute(statement) {
            Ok(_) => {}
            Err(SdbError::Crash(message)) => return Err(OracleOutcome::Crash { message }),
            // Non-crash errors while loading (e.g. a profile rejecting an
            // invalid geometry at ingestion) make the scenario inapplicable.
            Err(_) => return Err(OracleOutcome::Inapplicable),
        }
    }
    Ok(engine)
}

/// Runs a count query, mapping non-crash errors to `None`.
fn run_count(engine: &mut Engine, sql: &str) -> Result<Option<i64>, OracleOutcome> {
    match engine.execute(sql) {
        Ok(result) => Ok(result.count()),
        Err(SdbError::Crash(message)) => Err(OracleOutcome::Crash { message }),
        Err(_) => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// AEI
// ---------------------------------------------------------------------------

/// The Affine Equivalent Inputs oracle (§4.4): the same query must return the
/// same count on `SDB1` and on its canonicalized + affine-transformed
/// counterpart `SDB2`.
pub struct AeiOracle {
    /// The transformation plan that builds `SDB2` from `SDB1`.
    pub plan: TransformPlan,
}

impl AeiOracle {
    /// Creates the oracle with a given plan.
    pub fn new(plan: TransformPlan) -> Self {
        AeiOracle { plan }
    }
}

impl Oracle for AeiOracle {
    fn name(&self) -> &'static str {
        "AEI"
    }

    fn check(
        &self,
        profile: EngineProfile,
        faults: &FaultSet,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
    ) -> Vec<OracleOutcome> {
        let transformed = self.plan.apply(spec);
        let engine1 = load_engine(profile, faults, &spec.to_sql());
        let engine2 = load_engine(profile, faults, &transformed.to_sql());
        let (mut engine1, mut engine2) = match (engine1, engine2) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(outcome), _) | (_, Err(outcome)) => {
                return vec![outcome; queries.len().max(1)];
            }
        };
        queries
            .iter()
            .map(|query| {
                let sql = query.to_sql();
                let count1 = match run_count(&mut engine1, &sql) {
                    Ok(c) => c,
                    Err(outcome) => return outcome,
                };
                let count2 = match run_count(&mut engine2, &sql) {
                    Ok(c) => c,
                    Err(outcome) => return outcome,
                };
                match (count1, count2) {
                    (Some(a), Some(b)) if a != b => OracleOutcome::LogicBug {
                        description: format!(
                            "{}: SDB1 returned {a}, affine-equivalent SDB2 returned {b}",
                            query.predicate.function_name()
                        ),
                    },
                    (Some(_), Some(_)) => OracleOutcome::Pass,
                    _ => OracleOutcome::Inapplicable,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Differential testing
// ---------------------------------------------------------------------------

/// Differential testing between two engine profiles (P. vs M. and P. vs D. of
/// Table 4). The same database and queries are loaded into both engines; a
/// disagreement on a query both engines can evaluate is reported as a bug
/// candidate.
pub struct DifferentialOracle {
    /// The comparison profile (the engine under test comes from `check`'s
    /// `profile` argument).
    pub other_profile: EngineProfile,
    /// Faults active in the comparison engine.
    pub other_faults: FaultSet,
}

impl DifferentialOracle {
    /// Compares against a stock engine of `other_profile` (with that
    /// profile's default seeded faults, like comparing two released SDBMSs).
    pub fn against_stock(other_profile: EngineProfile) -> Self {
        DifferentialOracle {
            other_faults: other_profile.default_faults(),
            other_profile,
        }
    }
}

impl Oracle for DifferentialOracle {
    fn name(&self) -> &'static str {
        "Differential"
    }

    fn check(
        &self,
        profile: EngineProfile,
        faults: &FaultSet,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
    ) -> Vec<OracleOutcome> {
        let engine1 = load_engine(profile, faults, &spec.to_sql());
        let engine2 = load_engine(self.other_profile, &self.other_faults, &spec.to_sql());
        let (mut engine1, mut engine2) = match (engine1, engine2) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(outcome), _) => return vec![outcome; queries.len().max(1)],
            (_, Err(_)) => return vec![OracleOutcome::Inapplicable; queries.len().max(1)],
        };
        queries
            .iter()
            .map(|query| {
                // The predicate must exist in both engines; otherwise the
                // comparison is impossible (ST_Covers & friends).
                if !self
                    .other_profile
                    .supports_function(query.predicate.function_name())
                {
                    return OracleOutcome::Inapplicable;
                }
                let sql = query.to_sql();
                let count1 = match run_count(&mut engine1, &sql) {
                    Ok(c) => c,
                    Err(outcome) => return outcome,
                };
                // Crashes of the *comparison* engine are not findings about
                // the engine under test.
                let count2 = run_count(&mut engine2, &sql).unwrap_or_default();
                match (count1, count2) {
                    (Some(a), Some(b)) if a != b => OracleOutcome::LogicBug {
                        description: format!(
                            "{}: {} returned {a}, {} returned {b}",
                            query.predicate.function_name(),
                            profile.name(),
                            self.other_profile.name()
                        ),
                    },
                    (Some(_), Some(_)) => OracleOutcome::Pass,
                    _ => OracleOutcome::Inapplicable,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Index oracle
// ---------------------------------------------------------------------------

/// Differential testing with and without a spatial index (the *Index* column
/// of Table 4): the same engine must return the same counts whether the plan
/// uses a sequential scan or the GiST-analog index.
pub struct IndexOracle;

impl Oracle for IndexOracle {
    fn name(&self) -> &'static str {
        "Index"
    }

    fn check(
        &self,
        profile: EngineProfile,
        faults: &FaultSet,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
    ) -> Vec<OracleOutcome> {
        let seq = load_engine(profile, faults, &spec.to_sql());
        let indexed = load_engine(profile, faults, &spec.to_sql_with_indexes());
        let (mut seq, mut indexed) = match (seq, indexed) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(outcome), _) | (_, Err(outcome)) => {
                return vec![outcome; queries.len().max(1)];
            }
        };
        if indexed.execute("SET enable_seqscan = false").is_err() {
            return vec![OracleOutcome::Inapplicable; queries.len().max(1)];
        }
        queries
            .iter()
            .map(|query| {
                let sql = query.to_sql();
                let count_seq = match run_count(&mut seq, &sql) {
                    Ok(c) => c,
                    Err(outcome) => return outcome,
                };
                let count_idx = match run_count(&mut indexed, &sql) {
                    Ok(c) => c,
                    Err(outcome) => return outcome,
                };
                match (count_seq, count_idx) {
                    (Some(a), Some(b)) if a != b => OracleOutcome::LogicBug {
                        description: format!(
                            "{}: sequential scan returned {a}, index scan returned {b}",
                            query.predicate.function_name()
                        ),
                    },
                    (Some(_), Some(_)) => OracleOutcome::Pass,
                    _ => OracleOutcome::Inapplicable,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// TLP
// ---------------------------------------------------------------------------

/// Ternary Logic Partitioning adapted to the join-count template: the size of
/// the cross product must equal the sum of the counts of the predicate and
/// its negation.
pub struct TlpOracle;

impl Oracle for TlpOracle {
    fn name(&self) -> &'static str {
        "TLP"
    }

    fn check(
        &self,
        profile: EngineProfile,
        faults: &FaultSet,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
    ) -> Vec<OracleOutcome> {
        let engine = load_engine(profile, faults, &spec.to_sql());
        let mut engine = match engine {
            Ok(e) => e,
            Err(outcome) => return vec![outcome; queries.len().max(1)],
        };
        queries
            .iter()
            .map(|query| {
                let rows1 = spec
                    .tables
                    .iter()
                    .find(|t| t.name == query.table1)
                    .map(|t| t.geometries.len())
                    .unwrap_or(0);
                let rows2 = spec
                    .tables
                    .iter()
                    .find(|t| t.name == query.table2)
                    .map(|t| t.geometries.len())
                    .unwrap_or(0);
                let expected_total = (rows1 * rows2) as i64;
                let positive = match run_count(&mut engine, &query.to_sql()) {
                    Ok(c) => c,
                    Err(outcome) => return outcome,
                };
                let (_, negated_sql) = query.tlp_partition_sql();
                let negative = match run_count(&mut engine, &negated_sql) {
                    Ok(c) => c,
                    Err(outcome) => return outcome,
                };
                match (positive, negative) {
                    (Some(p), Some(n)) if p + n != expected_total => OracleOutcome::LogicBug {
                        description: format!(
                            "{}: {p} + NOT {n} != |cross product| {expected_total}",
                            query.predicate.function_name()
                        ),
                    },
                    (Some(_), Some(_)) => OracleOutcome::Pass,
                    _ => OracleOutcome::Inapplicable,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::QueryInstance;
    use crate::transform::{AffineStrategy, TransformPlan};
    use spatter_geom::wkt::parse_wkt;
    use spatter_sdb::FaultId;
    use spatter_topo::predicates::NamedPredicate;

    /// The Listing 1 scenario as a database spec + query.
    fn listing1_scenario() -> (DatabaseSpec, Vec<QueryInstance>) {
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("LINESTRING(0 1,2 0)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(0.2 0.9)").unwrap());
        let queries = vec![QueryInstance {
            table1: "t0".into(),
            table2: "t1".into(),
            predicate: NamedPredicate::Covers,
        }];
        (spec, queries)
    }

    #[test]
    fn aei_detects_the_listing1_precision_bug() {
        // The precision fault only fires for coordinate representations whose
        // displaced values round; a single random matrix may map the scenario
        // to another triggering representation, so — exactly like the real
        // campaign — several affine-equivalent databases are tried and at
        // least one of them must expose the discrepancy.
        let (spec, queries) = listing1_scenario();
        let faults = FaultSet::with([FaultId::GeosCoversPrecisionLoss]);
        let detected = (0..50).any(|seed| {
            let oracle =
                AeiOracle::new(TransformPlan::random(AffineStrategy::GeneralInteger, seed));
            oracle
                .check(EngineProfile::PostgisLike, &faults, &spec, &queries)
                .iter()
                .any(|o| o.is_logic_bug())
        });
        assert!(
            detected,
            "no affine-equivalent input exposed the Listing 1 bug"
        );
    }

    #[test]
    fn aei_passes_on_the_reference_engine() {
        let (spec, queries) = listing1_scenario();
        for seed in 0..5 {
            let oracle =
                AeiOracle::new(TransformPlan::random(AffineStrategy::GeneralInteger, seed));
            let outcomes = oracle.check(
                EngineProfile::PostgisLike,
                &FaultSet::none(),
                &spec,
                &queries,
            );
            assert_eq!(outcomes[0], OracleOutcome::Pass, "seed {seed}");
        }
    }

    #[test]
    fn differential_is_inapplicable_for_postgis_only_functions() {
        let (spec, queries) = listing1_scenario();
        let oracle = DifferentialOracle::against_stock(EngineProfile::MysqlLike);
        let faults = FaultSet::with([FaultId::GeosCoversPrecisionLoss]);
        let outcomes = oracle.check(EngineProfile::PostgisLike, &faults, &spec, &queries);
        assert_eq!(outcomes[0], OracleOutcome::Inapplicable);
    }

    #[test]
    fn differential_detects_bugs_on_shared_functions() {
        // A scenario triggering the last-one-wins fault through ST_Within,
        // which both PostGIS-like and MySQL-like support; MySQL answers
        // correctly, so the comparison reveals the bug (Table 4 row 1).
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 0)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))").unwrap());
        let queries = vec![QueryInstance {
            table1: "t0".into(),
            table2: "t1".into(),
            predicate: NamedPredicate::Within,
        }];
        let oracle = DifferentialOracle {
            other_profile: EngineProfile::MysqlLike,
            other_faults: FaultSet::none(),
        };
        let faults = FaultSet::with([FaultId::GeosMixedBoundaryLastOneWins]);
        let outcomes = oracle.check(EngineProfile::PostgisLike, &faults, &spec, &queries);
        assert!(outcomes[0].is_logic_bug(), "got {:?}", outcomes[0]);
    }

    #[test]
    fn index_oracle_detects_the_gist_fault() {
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POLYGON((-5 -5,5 -5,5 5,-5 5,-5 -5))").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(-1 -1)").unwrap());
        let queries = vec![QueryInstance {
            table1: "t0".into(),
            table2: "t1".into(),
            predicate: NamedPredicate::Intersects,
        }];
        let faults = FaultSet::with([FaultId::PostgisGistIndexDropsRows]);
        let outcomes = IndexOracle.check(EngineProfile::PostgisLike, &faults, &spec, &queries);
        assert!(outcomes[0].is_logic_bug(), "got {:?}", outcomes[0]);
        // The reference engine agrees between the two plans.
        let outcomes = IndexOracle.check(
            EngineProfile::PostgisLike,
            &FaultSet::none(),
            &spec,
            &queries,
        );
        assert_eq!(outcomes[0], OracleOutcome::Pass);
    }

    #[test]
    fn tlp_passes_on_reference_and_misses_the_covers_bug() {
        let (spec, queries) = listing1_scenario();
        let outcomes = TlpOracle.check(
            EngineProfile::PostgisLike,
            &FaultSet::none(),
            &spec,
            &queries,
        );
        assert_eq!(outcomes[0], OracleOutcome::Pass);
        // The covers bug is consistent between the partitions, so TLP cannot
        // see it — the situation described in §1.
        let faults = FaultSet::with([FaultId::GeosCoversPrecisionLoss]);
        let outcomes = TlpOracle.check(EngineProfile::PostgisLike, &faults, &spec, &queries);
        assert!(!outcomes[0].is_logic_bug(), "got {:?}", outcomes[0]);
    }

    #[test]
    fn crash_faults_surface_as_crash_outcomes() {
        let mut spec = DatabaseSpec::with_tables(1);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POLYGON((0 0,1 1,0 0))").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 0)").unwrap());
        let queries = vec![QueryInstance {
            table1: "t0".into(),
            table2: "t0".into(),
            predicate: NamedPredicate::Intersects,
        }];
        // The lax profile is used so the crash path is reached instead of the
        // strict validation rejecting the degenerate ring first.
        let faults = FaultSet::with([FaultId::GeosCrashRelateShortRing]);
        let oracle = AeiOracle::new(TransformPlan::canonicalization_only());
        let outcomes = oracle.check(EngineProfile::MysqlLike, &faults, &spec, &queries);
        assert!(outcomes[0].is_crash(), "got {:?}", outcomes[0]);
    }
}
