//! Test oracles: AEI (the paper's contribution) and the baseline
//! methodologies it is compared against in §5.3 / Table 4.
//!
//! Every oracle consumes a *scenario* — a generated database spec plus a set
//! of query instances — and reports, per query, whether it observed evidence
//! of a logic bug, a crash, or nothing. Errors that are not crashes
//! (semantic validation failures, unsupported functions) are ignored, exactly
//! as Spatter ignores them (§4.1).
//!
//! Oracles are engine-agnostic: they execute through
//! [`crate::backend::EngineBackend`] sessions, so the same oracle code tests
//! the in-process engine, the `spatter-sdb-server` subprocess, or any future
//! real-engine adapter. Backend errors reach [`OracleOutcome`] through its
//! `From<BackendError>` impl — the single place the error taxonomy is
//! interpreted.

use crate::backend::{BackendError, EngineBackend, EngineSession, InProcessBackend};
use crate::guidance::ScenarioKnobs;
use crate::queries::{QueryInstance, QueryTemplate, RangeFunction};
use crate::spec::DatabaseSpec;
use crate::transform::TransformPlan;
use spatter_geom::wkt::{parse_wkt, write_wkt};
use spatter_sdb::EngineProfile;
use spatter_topo::distance as topo_distance;

/// Which engine of a comparison a finding implicates. Every oracle compares
/// two executions; the *left* side is always the engine under test (the
/// campaign's own backend) and the *right* side is the comparison engine of a
/// differential pair. Self-comparisons (AEI frames, seqscan vs. index, TLP
/// partitions) only ever implicate the engine under test, so their findings
/// are left-sided; a differential value mismatch implicates both sides until
/// the matrix-level grid refinement assigns blame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DivergenceSide {
    /// The engine under test diverged (or crashed).
    Left,
    /// The comparison engine diverged (or crashed).
    Right,
    /// The two sides disagree and neither is locally known to be wrong.
    Both,
}

impl DivergenceSide {
    /// Stable lowercase name, used on the wire and in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DivergenceSide::Left => "left",
            DivergenceSide::Right => "right",
            DivergenceSide::Both => "both",
        }
    }

    /// Parses the stable name back (wire decode).
    pub fn from_name(name: &str) -> Option<DivergenceSide> {
        match name {
            "left" => Some(DivergenceSide::Left),
            "right" => Some(DivergenceSide::Right),
            "both" => Some(DivergenceSide::Both),
            _ => None,
        }
    }

    fn tag(&self) -> u64 {
        match self {
            DivergenceSide::Left => 0,
            DivergenceSide::Right => 1,
            DivergenceSide::Both => 2,
        }
    }
}

/// The verdict of an oracle for one query.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleOutcome {
    /// The oracle saw nothing suspicious.
    Pass,
    /// The oracle observed a logic discrepancy; the payload describes the two
    /// observations that disagree and which side of the comparison they
    /// implicate.
    LogicBug {
        /// Human-readable description of the disagreement.
        description: String,
        /// Which side of the comparison diverged.
        side: DivergenceSide,
    },
    /// A statement crashed the engine.
    Crash {
        /// The crash message.
        message: String,
        /// Which side's engine crashed.
        side: DivergenceSide,
    },
    /// The oracle could not apply to this query (e.g. the function does not
    /// exist in the comparison engine, or the statements errored) — not a
    /// bug, mirroring the expected discrepancies of §1.
    Inapplicable,
    /// A distance-parameterised template met a non-similarity transformation:
    /// the AEI property does not hold for it (§7), so checking is skipped and
    /// the campaign records the skip instead of a spurious finding.
    Skipped,
}

impl OracleOutcome {
    /// Whether this outcome is a logic-bug report.
    pub fn is_logic_bug(&self) -> bool {
        matches!(self, OracleOutcome::LogicBug { .. })
    }

    /// Whether this outcome is a crash report.
    pub fn is_crash(&self) -> bool {
        matches!(self, OracleOutcome::Crash { .. })
    }

    /// Whether the template was skipped for lacking a similarity transform.
    pub fn is_skipped(&self) -> bool {
        matches!(self, OracleOutcome::Skipped)
    }

    /// The side a finding outcome implicates; `None` for non-findings.
    pub fn side(&self) -> Option<DivergenceSide> {
        match self {
            OracleOutcome::LogicBug { side, .. } | OracleOutcome::Crash { side, .. } => Some(*side),
            _ => None,
        }
    }

    /// Rewrites the implicated side of a finding outcome (non-findings pass
    /// through unchanged). Used where the caller, not the error taxonomy,
    /// knows which engine an error came from — e.g. the differential oracle
    /// re-siding a comparison-engine crash to [`DivergenceSide::Right`].
    pub fn with_side(mut self, new_side: DivergenceSide) -> OracleOutcome {
        if let OracleOutcome::LogicBug { side, .. } | OracleOutcome::Crash { side, .. } = &mut self
        {
            *side = new_side;
        }
        self
    }

    /// Feeds the outcome into a replay hasher: a per-variant tag plus the
    /// exact payload text, so two runs' outcome hashes agree iff every
    /// outcome (including its description and side) matches. Part of the
    /// [`crate::replay`] frame's outcome layer.
    pub fn absorb_into(&self, hasher: &mut crate::replay::ReplayHasher) {
        match self {
            OracleOutcome::Pass => hasher.write_u64(0),
            OracleOutcome::LogicBug { description, side } => {
                hasher.write_u64(1);
                hasher.write_str(description);
                hasher.write_u64(side.tag());
            }
            OracleOutcome::Crash { message, side } => {
                hasher.write_u64(2);
                hasher.write_str(message);
                hasher.write_u64(side.tag());
            }
            OracleOutcome::Inapplicable => hasher.write_u64(3),
            OracleOutcome::Skipped => hasher.write_u64(4),
        }
    }
}

/// The one place the [`BackendError`] taxonomy becomes an oracle verdict:
/// crashes are crash findings, transport failures (the engine process died
/// mid-query) are treated exactly like crashes, and semantic errors make the
/// query inapplicable — never a bug, mirroring §4.1. Errors default to the
/// *left* side (the engine under test); callers that know the error came from
/// a comparison engine re-side it with [`OracleOutcome::with_side`].
impl From<BackendError> for OracleOutcome {
    fn from(error: BackendError) -> OracleOutcome {
        match error {
            BackendError::Crash(message) => OracleOutcome::Crash {
                message,
                side: DivergenceSide::Left,
            },
            BackendError::Transport(message) => OracleOutcome::Crash {
                message: format!("backend transport failure: {message}"),
                side: DivergenceSide::Left,
            },
            BackendError::Semantic(_) => OracleOutcome::Inapplicable,
        }
    }
}

/// A test oracle.
///
/// Object-safe, and bounded `Send + Sync` so a boxed oracle suite can be
/// instantiated and run on any worker shard of the parallel campaign runner.
pub trait Oracle: Send + Sync {
    /// The oracle's display name (used in the Table 4 harness).
    fn name(&self) -> &'static str;

    /// Checks one scenario against an engine backend; returns one outcome
    /// per query. Sessions are opened once per scenario and reused for the
    /// whole query batch.
    fn check(
        &self,
        backend: &dyn EngineBackend,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
    ) -> Vec<OracleOutcome>;
}

/// Opens a session and loads a statement batch into it, mapping failures to
/// the scenario-wide outcome (crash, or inapplicable for semantic errors).
/// The error carries the engine time the failed load consumed, so callers
/// that track the Figure 7 split ([`crate::campaign::run_aei_iteration`])
/// can account for it; oracles that don't just discard it. Shared so the
/// campaign path and the standalone oracles can never diverge on load-error
/// classification.
pub(crate) fn open_loaded(
    backend: &dyn EngineBackend,
    statements: &[String],
) -> Result<Box<dyn EngineSession>, (OracleOutcome, std::time::Duration)> {
    let mut session = backend
        .open_session()
        .map_err(|error| (OracleOutcome::from(error), std::time::Duration::ZERO))?;
    if let Err(error) = session.load(statements) {
        let spent = session.engine_time();
        return Err((error.into(), spent));
    }
    Ok(session)
}

/// Runs a count query, mapping non-fatal (semantic) errors to `None`.
fn run_count(session: &mut dyn EngineSession, sql: &str) -> Result<Option<i64>, OracleOutcome> {
    match session.run_count(sql) {
        Ok(count) => Ok(count),
        Err(error) if error.is_fatal() => Err(error.into()),
        Err(_) => Ok(None),
    }
}

/// What an oracle observed for one query: a scalar count (join templates) or
/// a sorted result set (KNN templates, compared as sets per §7).
#[derive(Debug, Clone, PartialEq)]
enum Observed {
    /// The `COUNT(*)` value.
    Count(i64),
    /// The returned rows' first column, sorted for set comparison.
    Rows(Vec<String>),
}

impl Observed {
    fn describe(&self) -> String {
        match self {
            Observed::Count(n) => n.to_string(),
            Observed::Rows(rows) => format!("{{{}}}", rows.join(", ")),
        }
    }
}

/// Runs a query and extracts the template-appropriate observation, mapping
/// non-fatal (semantic) errors to `None`.
fn run_observed(
    session: &mut dyn EngineSession,
    query: &QueryInstance,
    sql: &str,
) -> Result<Option<Observed>, OracleOutcome> {
    if query.template.is_count() {
        run_count(session, sql).map(|count| count.map(Observed::Count))
    } else {
        match session.run_rows(sql) {
            Ok(mut rows) => {
                rows.sort();
                Ok(Some(Observed::Rows(rows)))
            }
            Err(error) if error.is_fatal() => Err(error.into()),
            Err(_) => Ok(None),
        }
    }
}

/// §7's floating-point well-definedness exclusion for range joins, computed
/// on the reference geometry library (it concerns the *input*, not the
/// engine): a range join is only robust under rescaling when no pair sits
/// within the floating-point margin of the distance boundary. The check is
/// O(|t1|·|t2|) reference distance computations, so the AEI oracle only
/// evaluates it *after* observing a mismatch — on agreeing results it cannot
/// change the verdict.
fn range_boundary_ill_defined(spec: &DatabaseSpec, query: &QueryInstance) -> bool {
    match &query.template {
        QueryTemplate::TopoJoin { .. } | QueryTemplate::Knn { .. } => false,
        QueryTemplate::RangeJoin { function, distance } => {
            let Some(left) = spec.tables.iter().find(|t| t.name == query.table1) else {
                return false;
            };
            let Some(right) = spec.tables.iter().find(|t| t.name == query.table2) else {
                return false;
            };
            left.geometries.iter().any(|a| {
                right.geometries.iter().any(|b| {
                    let value = match function {
                        RangeFunction::DWithin => topo_distance::distance(a, b),
                        RangeFunction::DFullyWithin => topo_distance::max_distance(a, b),
                    };
                    value
                        .map(|v| topo_distance::range_boundary_ambiguous(v, *distance))
                        .unwrap_or(false)
                })
            })
        }
    }
}

/// §7's equal-distance caveat for KNN, checked eagerly (one O(n) pass over
/// the candidate table): a tie at the k-th distance makes the result set
/// ill-defined regardless of what the engines answer.
fn knn_ill_defined(spec: &DatabaseSpec, query: &QueryInstance) -> bool {
    let QueryTemplate::Knn { origin, k } = &query.template else {
        return false;
    };
    spec.tables
        .iter()
        .find(|t| t.name == query.table1)
        .map(|t| topo_distance::knn_tie_at_cutoff(origin, &t.geometries, *k))
        .unwrap_or(false)
}

/// Maps an SDB1 observation into SDB2's coordinate frame: KNN result rows
/// (WKTs of stored geometries) are pushed through the transformation plan so
/// they can be compared against SDB2's rows; counts are frame-independent.
fn map_observed_through_plan(observed: Observed, plan: &TransformPlan) -> Observed {
    match observed {
        Observed::Count(n) => Observed::Count(n),
        Observed::Rows(rows) => {
            let mut mapped: Vec<String> = rows
                .into_iter()
                .map(|wkt| match parse_wkt(&wkt) {
                    Ok(geometry) => write_wkt(&plan.apply_geometry(&geometry)),
                    Err(_) => wkt,
                })
                .collect();
            mapped.sort();
            Observed::Rows(mapped)
        }
    }
}

/// Checks the AEI property for one query on an already-loaded session pair
/// (`session1` holds `SDB1`, `session2` its affine-equivalent `SDB2`).
/// Shared between [`AeiOracle`] and [`crate::campaign::run_aei_iteration`].
pub(crate) fn check_aei_query(
    session1: &mut dyn EngineSession,
    session2: &mut dyn EngineSession,
    spec: &DatabaseSpec,
    query: &QueryInstance,
    plan: &TransformPlan,
) -> OracleOutcome {
    let Some(sql2) = query.to_sql_transformed(plan) else {
        return OracleOutcome::Skipped;
    };
    // §7's equal-distance caveat, checked up front: a KNN tie at the cutoff
    // makes the result set ill-defined even when both engines happen to
    // agree. (The range-join boundary exclusion is deferred until a mismatch
    // is observed — see `range_boundary_ill_defined`.)
    if knn_ill_defined(spec, query) {
        return OracleOutcome::Inapplicable;
    }
    let observed1 = match run_observed(session1, query, &query.to_sql()) {
        Ok(observed) => observed,
        Err(outcome) => return outcome,
    };
    let observed2 = match run_observed(session2, query, &sql2) {
        Ok(observed) => observed,
        Err(outcome) => return outcome,
    };
    match (observed1, observed2) {
        (Some(a), Some(b)) => {
            let mapped = map_observed_through_plan(a.clone(), plan);
            if mapped == b {
                OracleOutcome::Pass
            } else if range_boundary_ill_defined(spec, query) {
                // The disagreement sits on the floating-point boundary of
                // the rescaled comparison: not attributable to the engine.
                OracleOutcome::Inapplicable
            } else {
                // Describe SDB1's answer in its own frame (those WKTs exist
                // in SDB1); for row sets, also report the frame-mapped form
                // that the comparison actually used.
                let description = match &a {
                    Observed::Rows(_) => format!(
                        "{}: SDB1 returned {} (SDB2 frame: {}), affine-equivalent SDB2 returned {}",
                        query.template.function_name(),
                        a.describe(),
                        mapped.describe(),
                        b.describe()
                    ),
                    Observed::Count(_) => format!(
                        "{}: SDB1 returned {}, affine-equivalent SDB2 returned {}",
                        query.template.function_name(),
                        a.describe(),
                        b.describe()
                    ),
                };
                // Both frames ran on the *same* engine: the inconsistency is
                // the engine under test disagreeing with itself.
                OracleOutcome::LogicBug {
                    description,
                    side: DivergenceSide::Left,
                }
            }
        }
        _ => OracleOutcome::Inapplicable,
    }
}

// ---------------------------------------------------------------------------
// AEI
// ---------------------------------------------------------------------------

/// The Affine Equivalent Inputs oracle (§4.4): the same query must return the
/// same count on `SDB1` and on its canonicalized + affine-transformed
/// counterpart `SDB2`.
pub struct AeiOracle {
    /// The transformation plan that builds `SDB2` from `SDB1`.
    pub plan: TransformPlan,
    /// Scenario knobs applied identically to both frames (baseline unless a
    /// coverage-guided campaign wired its per-iteration knobs in — required
    /// so attribution re-runs replay the exact scenario that produced a
    /// finding).
    knobs: ScenarioKnobs,
}

impl AeiOracle {
    /// Creates the oracle with a given plan (baseline scenario setup).
    pub fn new(plan: TransformPlan) -> Self {
        AeiOracle {
            plan,
            knobs: ScenarioKnobs::baseline(),
        }
    }

    /// Replaces the scenario knobs (indexes, planner settings) the oracle
    /// loads into both frames.
    pub fn with_knobs(mut self, knobs: ScenarioKnobs) -> Self {
        self.knobs = knobs;
        self
    }
}

impl Oracle for AeiOracle {
    fn name(&self) -> &'static str {
        "AEI"
    }

    fn check(
        &self,
        backend: &dyn EngineBackend,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
    ) -> Vec<OracleOutcome> {
        let transformed = self.plan.apply(spec);
        let mut session1 = match open_loaded(backend, &self.knobs.setup_sql(spec)) {
            Ok(session) => session,
            Err((outcome, _)) => return vec![outcome; queries.len().max(1)],
        };
        let mut session2 = match open_loaded(backend, &self.knobs.setup_sql(&transformed)) {
            Ok(session) => session,
            Err((outcome, _)) => return vec![outcome; queries.len().max(1)],
        };
        queries
            .iter()
            .map(|query| {
                check_aei_query(
                    session1.as_mut(),
                    session2.as_mut(),
                    spec,
                    query,
                    &self.plan,
                )
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Differential testing
// ---------------------------------------------------------------------------

/// Differential testing between two engines (P. vs M. and P. vs D. of
/// Table 4). The same database and queries are loaded into both engines; a
/// disagreement on a query both engines can evaluate is reported as a bug
/// candidate.
pub struct DifferentialOracle {
    /// The comparison engine (the engine under test comes from `check`'s
    /// backend argument).
    pub other: Box<dyn EngineBackend>,
}

impl DifferentialOracle {
    /// Compares against a stock in-process engine of `other_profile` (with
    /// that profile's default seeded faults, like comparing two released
    /// SDBMSs).
    pub fn against_stock(other_profile: EngineProfile) -> Self {
        DifferentialOracle {
            other: Box::new(InProcessBackend::stock(other_profile)),
        }
    }

    /// Compares against an arbitrary engine backend (e.g. a stdio-driven
    /// out-of-process engine).
    pub fn against(other: Box<dyn EngineBackend>) -> Self {
        DifferentialOracle { other }
    }
}

impl Oracle for DifferentialOracle {
    fn name(&self) -> &'static str {
        "Differential"
    }

    fn check(
        &self,
        backend: &dyn EngineBackend,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
    ) -> Vec<OracleOutcome> {
        let mut session1 = match open_loaded(backend, &spec.to_sql()) {
            Ok(session) => session,
            Err((outcome, _)) => return vec![outcome; queries.len().max(1)],
        };
        // Failures of the *comparison* engine are not findings about the
        // engine under test.
        let mut session2 = match open_loaded(self.other.as_ref(), &spec.to_sql()) {
            Ok(session) => session,
            Err(_) => return vec![OracleOutcome::Inapplicable; queries.len().max(1)],
        };
        queries
            .iter()
            .map(|query| {
                // The queried function must exist in both engines; otherwise
                // the comparison is impossible (ST_Covers & friends).
                if !self.other.supports_function(query.template.function_name()) {
                    return OracleOutcome::Inapplicable;
                }
                let sql = query.to_sql();
                let observed1 = match run_observed(session1.as_mut(), query, &sql) {
                    Ok(observed) => observed,
                    Err(outcome) => return outcome,
                };
                let observed2 = match run_observed(session2.as_mut(), query, &sql) {
                    Ok(observed) => observed,
                    // A fatal error of the comparison engine is a finding
                    // about *it*, not about the engine under test: surface it
                    // re-sided so matrix bucketing blames the right engine.
                    Err(outcome) => return outcome.with_side(DivergenceSide::Right),
                };
                match (observed1, observed2) {
                    (Some(a), Some(b)) if a != b => OracleOutcome::LogicBug {
                        description: format!(
                            "{}: {} returned {}, {} returned {}",
                            query.template.function_name(),
                            backend.name(),
                            a.describe(),
                            self.other.name(),
                            b.describe()
                        ),
                        // Two independent engines disagree; neither answer is
                        // locally known to be wrong.
                        side: DivergenceSide::Both,
                    },
                    (Some(_), Some(_)) => OracleOutcome::Pass,
                    _ => OracleOutcome::Inapplicable,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Index oracle
// ---------------------------------------------------------------------------

/// Differential testing with and without a spatial index (the *Index* column
/// of Table 4): the same engine must return the same counts whether the plan
/// uses a sequential scan or the GiST-analog index.
pub struct IndexOracle;

impl Oracle for IndexOracle {
    fn name(&self) -> &'static str {
        "Index"
    }

    fn check(
        &self,
        backend: &dyn EngineBackend,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
    ) -> Vec<OracleOutcome> {
        let mut seq = match open_loaded(backend, &spec.to_sql()) {
            Ok(session) => session,
            Err((outcome, _)) => return vec![outcome; queries.len().max(1)],
        };
        let mut indexed = match open_loaded(backend, &spec.to_sql_with_indexes()) {
            Ok(session) => session,
            Err((outcome, _)) => return vec![outcome; queries.len().max(1)],
        };
        if indexed
            .load(&["SET enable_seqscan = false".to_string()])
            .is_err()
        {
            return vec![OracleOutcome::Inapplicable; queries.len().max(1)];
        }
        queries
            .iter()
            .map(|query| {
                let sql = query.to_sql();
                let observed_seq = match run_observed(seq.as_mut(), query, &sql) {
                    Ok(observed) => observed,
                    Err(outcome) => return outcome,
                };
                let observed_idx = match run_observed(indexed.as_mut(), query, &sql) {
                    Ok(observed) => observed,
                    Err(outcome) => return outcome,
                };
                match (observed_seq, observed_idx) {
                    (Some(a), Some(b)) if a != b => OracleOutcome::LogicBug {
                        description: format!(
                            "{}: sequential scan returned {}, index scan returned {}",
                            query.template.function_name(),
                            a.describe(),
                            b.describe()
                        ),
                        side: DivergenceSide::Left,
                    },
                    (Some(_), Some(_)) => OracleOutcome::Pass,
                    _ => OracleOutcome::Inapplicable,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// TLP
// ---------------------------------------------------------------------------

/// Ternary Logic Partitioning adapted to the join-count template: the size of
/// the cross product must equal the sum of the counts of the predicate and
/// its negation.
pub struct TlpOracle;

impl Oracle for TlpOracle {
    fn name(&self) -> &'static str {
        "TLP"
    }

    fn check(
        &self,
        backend: &dyn EngineBackend,
        spec: &DatabaseSpec,
        queries: &[QueryInstance],
    ) -> Vec<OracleOutcome> {
        let mut session = match open_loaded(backend, &spec.to_sql()) {
            Ok(session) => session,
            Err((outcome, _)) => return vec![outcome; queries.len().max(1)],
        };
        queries
            .iter()
            .map(|query| {
                // KNN queries have no boolean condition to partition.
                let Some((_, negated_sql)) = query.tlp_partition_sql() else {
                    return OracleOutcome::Inapplicable;
                };
                let rows1 = spec
                    .tables
                    .iter()
                    .find(|t| t.name == query.table1)
                    .map(|t| t.geometries.len())
                    .unwrap_or(0);
                let rows2 = spec
                    .tables
                    .iter()
                    .find(|t| t.name == query.table2)
                    .map(|t| t.geometries.len())
                    .unwrap_or(0);
                let expected_total = (rows1 * rows2) as i64;
                let positive = match run_count(session.as_mut(), &query.to_sql()) {
                    Ok(c) => c,
                    Err(outcome) => return outcome,
                };
                let negative = match run_count(session.as_mut(), &negated_sql) {
                    Ok(c) => c,
                    Err(outcome) => return outcome,
                };
                match (positive, negative) {
                    (Some(p), Some(n)) if p + n != expected_total => OracleOutcome::LogicBug {
                        description: format!(
                            "{}: {p} + NOT {n} != |cross product| {expected_total}",
                            query.template.function_name()
                        ),
                        side: DivergenceSide::Left,
                    },
                    (Some(_), Some(_)) => OracleOutcome::Pass,
                    _ => OracleOutcome::Inapplicable,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::QueryInstance;
    use crate::transform::{AffineStrategy, TransformPlan};
    use spatter_geom::wkt::parse_wkt;
    use spatter_sdb::{FaultId, FaultSet};
    use spatter_topo::predicates::NamedPredicate;

    /// An in-process backend with an explicit fault set.
    fn backend(profile: EngineProfile, faults: &FaultSet) -> InProcessBackend {
        InProcessBackend::new(profile, faults.clone())
    }

    /// The fault-free reference backend.
    fn reference(profile: EngineProfile) -> InProcessBackend {
        InProcessBackend::reference(profile)
    }

    /// The Listing 1 scenario as a database spec + query.
    fn listing1_scenario() -> (DatabaseSpec, Vec<QueryInstance>) {
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("LINESTRING(0 1,2 0)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(0.2 0.9)").unwrap());
        let queries = vec![QueryInstance::topo("t0", "t1", NamedPredicate::Covers)];
        (spec, queries)
    }

    #[test]
    fn aei_detects_the_listing1_precision_bug() {
        // The precision fault only fires for coordinate representations whose
        // displaced values round; a single random matrix may map the scenario
        // to another triggering representation, so — exactly like the real
        // campaign — several affine-equivalent databases are tried and at
        // least one of them must expose the discrepancy.
        let (spec, queries) = listing1_scenario();
        let faults = FaultSet::with([FaultId::GeosCoversPrecisionLoss]);
        let detected = (0..50).any(|seed| {
            let oracle =
                AeiOracle::new(TransformPlan::random(AffineStrategy::GeneralInteger, seed));
            oracle
                .check(
                    &backend(EngineProfile::PostgisLike, &faults),
                    &spec,
                    &queries,
                )
                .iter()
                .any(|o| o.is_logic_bug())
        });
        assert!(
            detected,
            "no affine-equivalent input exposed the Listing 1 bug"
        );
    }

    #[test]
    fn aei_passes_on_the_reference_engine() {
        let (spec, queries) = listing1_scenario();
        for seed in 0..5 {
            let oracle =
                AeiOracle::new(TransformPlan::random(AffineStrategy::GeneralInteger, seed));
            let outcomes = oracle.check(&reference(EngineProfile::PostgisLike), &spec, &queries);
            assert_eq!(outcomes[0], OracleOutcome::Pass, "seed {seed}");
        }
    }

    #[test]
    fn differential_is_inapplicable_for_postgis_only_functions() {
        let (spec, queries) = listing1_scenario();
        let oracle = DifferentialOracle::against_stock(EngineProfile::MysqlLike);
        let faults = FaultSet::with([FaultId::GeosCoversPrecisionLoss]);
        let outcomes = oracle.check(
            &backend(EngineProfile::PostgisLike, &faults),
            &spec,
            &queries,
        );
        assert_eq!(outcomes[0], OracleOutcome::Inapplicable);
    }

    #[test]
    fn differential_detects_bugs_on_shared_functions() {
        // A scenario triggering the last-one-wins fault through ST_Within,
        // which both PostGIS-like and MySQL-like support; MySQL answers
        // correctly, so the comparison reveals the bug (Table 4 row 1).
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 0)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))").unwrap());
        let queries = vec![QueryInstance::topo("t0", "t1", NamedPredicate::Within)];
        let oracle = DifferentialOracle::against(Box::new(reference(EngineProfile::MysqlLike)));
        let faults = FaultSet::with([FaultId::GeosMixedBoundaryLastOneWins]);
        let outcomes = oracle.check(
            &backend(EngineProfile::PostgisLike, &faults),
            &spec,
            &queries,
        );
        assert!(outcomes[0].is_logic_bug(), "got {:?}", outcomes[0]);
    }

    #[test]
    fn index_oracle_detects_the_gist_fault() {
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POLYGON((-5 -5,5 -5,5 5,-5 5,-5 -5))").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(-1 -1)").unwrap());
        let queries = vec![QueryInstance::topo("t0", "t1", NamedPredicate::Intersects)];
        let faults = FaultSet::with([FaultId::PostgisGistIndexDropsRows]);
        let outcomes = IndexOracle.check(
            &backend(EngineProfile::PostgisLike, &faults),
            &spec,
            &queries,
        );
        assert!(outcomes[0].is_logic_bug(), "got {:?}", outcomes[0]);
        // The reference engine agrees between the two plans.
        let outcomes = IndexOracle.check(&reference(EngineProfile::PostgisLike), &spec, &queries);
        assert_eq!(outcomes[0], OracleOutcome::Pass);
    }

    #[test]
    fn tlp_passes_on_reference_and_misses_the_covers_bug() {
        let (spec, queries) = listing1_scenario();
        let outcomes = TlpOracle.check(&reference(EngineProfile::PostgisLike), &spec, &queries);
        assert_eq!(outcomes[0], OracleOutcome::Pass);
        // The covers bug is consistent between the partitions, so TLP cannot
        // see it — the situation described in §1.
        let faults = FaultSet::with([FaultId::GeosCoversPrecisionLoss]);
        let outcomes = TlpOracle.check(
            &backend(EngineProfile::PostgisLike, &faults),
            &spec,
            &queries,
        );
        assert!(!outcomes[0].is_logic_bug(), "got {:?}", outcomes[0]);
    }

    #[test]
    fn aei_range_join_detects_the_dfullywithin_fault_under_similarity() {
        // Listing 9's fault fires only for small-magnitude geometries; a
        // similarity transform moves the coordinates out of the trigger range
        // while rescaling the distance, so SDB2 answers correctly and the
        // counts disagree.
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("LINESTRING(0 0,0 1,1 0,0 0)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POLYGON((0 0,0 1,1 0,0 0))").unwrap());
        let queries = vec![QueryInstance::range(
            "t0",
            "t1",
            crate::queries::RangeFunction::DFullyWithin,
            100.0,
        )];
        let faults = FaultSet::with([FaultId::PostgisDFullyWithinSmallCoords]);
        let detected = (0..20).any(|seed| {
            let oracle = AeiOracle::new(TransformPlan::random(
                AffineStrategy::SimilarityInteger,
                seed,
            ));
            oracle
                .check(
                    &backend(EngineProfile::PostgisLike, &faults),
                    &spec,
                    &queries,
                )
                .iter()
                .any(|o| o.is_logic_bug())
        });
        assert!(detected, "no similarity plan exposed the Listing 9 fault");
        // The reference engine passes under the same plans.
        for seed in 0..10 {
            let oracle = AeiOracle::new(TransformPlan::random(
                AffineStrategy::SimilarityInteger,
                seed,
            ));
            let outcomes = oracle.check(&reference(EngineProfile::PostgisLike), &spec, &queries);
            assert!(!outcomes[0].is_logic_bug(), "seed {seed}: {outcomes:?}");
        }
    }

    #[test]
    fn aei_knn_detects_the_empty_distance_fault() {
        // Canonicalization strips the EMPTY element from SDB2, so the faulty
        // distance recursion only derails SDB1's ordering: the KNN result
        // sets disagree.
        let mut spec = DatabaseSpec::with_tables(1);
        spec.tables[0]
            .geometries
            .push(parse_wkt("MULTIPOINT((5 0),EMPTY,(0 0))").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(1 0)").unwrap());
        let queries = vec![QueryInstance::knn(
            "t0",
            parse_wkt("POINT(0 0)").unwrap(),
            1,
        )];
        let faults = FaultSet::with([FaultId::GeosEmptyDistanceRecursion]);
        let oracle = AeiOracle::new(TransformPlan::canonicalization_only());
        let outcomes = oracle.check(
            &backend(EngineProfile::PostgisLike, &faults),
            &spec,
            &queries,
        );
        assert!(outcomes[0].is_logic_bug(), "got {:?}", outcomes[0]);
        // The reference engine agrees between the frames.
        let outcomes = oracle.check(&reference(EngineProfile::PostgisLike), &spec, &queries);
        assert_eq!(outcomes[0], OracleOutcome::Pass);
    }

    #[test]
    fn aei_skips_distance_templates_under_shear() {
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 0)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(3 4)").unwrap());
        let queries = vec![
            QueryInstance::range("t0", "t1", crate::queries::RangeFunction::DWithin, 5.0),
            QueryInstance::knn("t0", parse_wkt("POINT(1 1)").unwrap(), 1),
            QueryInstance::topo("t0", "t1", NamedPredicate::Intersects),
        ];
        // A general integer plan never exposes a uniform scale.
        let plan = TransformPlan::random(AffineStrategy::GeneralInteger, 4);
        assert_eq!(plan.uniform_scale, None);
        let oracle = AeiOracle::new(plan);
        let outcomes = oracle.check(&reference(EngineProfile::PostgisLike), &spec, &queries);
        assert!(outcomes[0].is_skipped());
        assert!(outcomes[1].is_skipped());
        assert_eq!(outcomes[2], OracleOutcome::Pass);
    }

    #[test]
    fn aei_knn_tie_at_cutoff_is_inapplicable_not_a_bug() {
        // Two candidates at exactly the same distance with k = 1: any subset
        // is correct, so the oracle must refuse to compare (§7's caveat).
        let mut spec = DatabaseSpec::with_tables(1);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(5 0)").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 5)").unwrap());
        let queries = vec![QueryInstance::knn(
            "t0",
            parse_wkt("POINT(0 0)").unwrap(),
            1,
        )];
        let oracle = AeiOracle::new(TransformPlan::random(AffineStrategy::SimilarityInteger, 2));
        let outcomes = oracle.check(&reference(EngineProfile::PostgisLike), &spec, &queries);
        assert_eq!(outcomes[0], OracleOutcome::Inapplicable);
    }

    #[test]
    fn aei_range_boundary_mismatch_is_inapplicable_not_a_bug() {
        // The pair sits exactly on the distance boundary (max distance 5,
        // d = 5), and the seeded fault makes the two frames disagree: the
        // boundary exclusion fires on the mismatch and refuses to attribute
        // a comparison this close to the rescaled threshold to the engine.
        use spatter_geom::{AffineMatrix, AffineTransform};
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("LINESTRING(0 0,0 3)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(4 0)").unwrap());
        let queries = vec![QueryInstance::range(
            "t0",
            "t1",
            crate::queries::RangeFunction::DFullyWithin,
            5.0,
        )];
        let plan = TransformPlan {
            canonicalize: true,
            transform: AffineTransform::new(AffineMatrix::scaling(20.0, 20.0)).unwrap(),
            uniform_scale: Some(20.0),
        };
        // The fault flips SDB1 (small coordinates) but not the scaled SDB2:
        // a genuine mismatch, suppressed because the input is boundary-tight.
        let faults = FaultSet::with([FaultId::PostgisDFullyWithinSmallCoords]);
        let outcomes = AeiOracle::new(plan.clone()).check(
            &backend(EngineProfile::PostgisLike, &faults),
            &spec,
            &queries,
        );
        assert_eq!(outcomes[0], OracleOutcome::Inapplicable);
        // On the reference engine the frames agree and the (lazy) boundary
        // check never runs: the outcome is a plain Pass.
        let outcomes =
            AeiOracle::new(plan).check(&reference(EngineProfile::PostgisLike), &spec, &queries);
        assert_eq!(outcomes[0], OracleOutcome::Pass);
    }

    #[test]
    fn differential_is_inapplicable_for_postgis_only_range_functions() {
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 0)").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(1 1)").unwrap());
        let queries = vec![QueryInstance::range(
            "t0",
            "t1",
            crate::queries::RangeFunction::DFullyWithin,
            10.0,
        )];
        let oracle = DifferentialOracle::against_stock(EngineProfile::MysqlLike);
        let faults = FaultSet::with([FaultId::PostgisDFullyWithinSmallCoords]);
        let outcomes = oracle.check(
            &backend(EngineProfile::PostgisLike, &faults),
            &spec,
            &queries,
        );
        assert_eq!(outcomes[0], OracleOutcome::Inapplicable);
    }

    #[test]
    fn index_oracle_compares_knn_paths() {
        let mut spec = DatabaseSpec::with_tables(1);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(-2 -2)").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(5 5)").unwrap());
        let queries = vec![QueryInstance::knn(
            "t0",
            parse_wkt("POINT(0 0)").unwrap(),
            1,
        )];
        // The faulty GiST scan drops the negative-quadrant nearest neighbour.
        let faults = FaultSet::with([FaultId::PostgisGistIndexDropsRows]);
        let outcomes = IndexOracle.check(
            &backend(EngineProfile::PostgisLike, &faults),
            &spec,
            &queries,
        );
        assert!(outcomes[0].is_logic_bug(), "got {:?}", outcomes[0]);
        // The reference engine's two plans agree.
        let outcomes = IndexOracle.check(&reference(EngineProfile::PostgisLike), &spec, &queries);
        assert_eq!(outcomes[0], OracleOutcome::Pass);
    }

    #[test]
    fn tlp_partitions_range_joins_and_skips_knn() {
        let mut spec = DatabaseSpec::with_tables(1);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 0)").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(10 10)").unwrap());
        let range = vec![QueryInstance::range(
            "t0",
            "t0",
            crate::queries::RangeFunction::DWithin,
            3.0,
        )];
        let outcomes = TlpOracle.check(&reference(EngineProfile::PostgisLike), &spec, &range);
        assert_eq!(outcomes[0], OracleOutcome::Pass);
        let knn = vec![QueryInstance::knn(
            "t0",
            parse_wkt("POINT(0 0)").unwrap(),
            1,
        )];
        let outcomes = TlpOracle.check(&reference(EngineProfile::PostgisLike), &spec, &knn);
        assert_eq!(outcomes[0], OracleOutcome::Inapplicable);
    }

    #[test]
    fn index_oracle_passes_on_knn_ties_at_the_cutoff() {
        // Tie-break audit (oracle side): two candidates tie exactly at the
        // k-th distance. The seqscan sort and the index NN scan apply the
        // same earliest-row tie-break, so the oracle's result-set comparison
        // sees identical subsets and reports Pass — a differing tie-break
        // would surface here as a spurious logic bug.
        let mut spec = DatabaseSpec::with_tables(1);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(5 0)").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 5)").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(1 1)").unwrap());
        let queries = vec![QueryInstance::knn(
            "t0",
            parse_wkt("POINT(0 0)").unwrap(),
            2,
        )];
        let outcomes = IndexOracle.check(&reference(EngineProfile::PostgisLike), &spec, &queries);
        assert_eq!(outcomes[0], OracleOutcome::Pass);
    }

    #[test]
    fn aei_oracle_with_index_knobs_matches_baseline_on_reference() {
        // Knobs load identically into both frames, so knob effects can never
        // masquerade as an AEI discrepancy: the reference engine passes a
        // knobbed scenario exactly like a baseline one.
        use crate::guidance::ScenarioKnobs;
        let mut spec = DatabaseSpec::with_tables(2);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POLYGON((-5 -5,5 -5,5 5,-5 5,-5 -5))").unwrap());
        spec.tables[1]
            .geometries
            .push(parse_wkt("POINT(-1 -1)").unwrap());
        let queries = vec![QueryInstance::topo("t0", "t1", NamedPredicate::Intersects)];
        let knobs = ScenarioKnobs {
            create_indexes: true,
            disable_seqscan: true,
            ..ScenarioKnobs::default()
        };
        let plan = TransformPlan::canonicalization_only();
        let oracle = AeiOracle::new(plan).with_knobs(knobs);
        let outcomes = oracle.check(&reference(EngineProfile::PostgisLike), &spec, &queries);
        assert_eq!(outcomes[0], OracleOutcome::Pass);
    }

    #[test]
    fn crash_faults_surface_as_crash_outcomes() {
        let mut spec = DatabaseSpec::with_tables(1);
        spec.tables[0]
            .geometries
            .push(parse_wkt("POLYGON((0 0,1 1,0 0))").unwrap());
        spec.tables[0]
            .geometries
            .push(parse_wkt("POINT(0 0)").unwrap());
        let queries = vec![QueryInstance::topo("t0", "t0", NamedPredicate::Intersects)];
        // The lax profile is used so the crash path is reached instead of the
        // strict validation rejecting the degenerate ring first.
        let faults = FaultSet::with([FaultId::GeosCrashRelateShortRing]);
        let oracle = AeiOracle::new(TransformPlan::canonicalization_only());
        let outcomes = oracle.check(&backend(EngineProfile::MysqlLike, &faults), &spec, &queries);
        assert!(outcomes[0].is_crash(), "got {:?}", outcomes[0]);
    }
}
