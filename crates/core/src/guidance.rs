//! Coverage-guided scenario generation (the ROADMAP's "Coverage-guided
//! generation" item).
//!
//! The lock-free per-probe hit counters make coverage feedback nearly free,
//! and clause-guided fuzzers (SQLaser) show that steering generation towards
//! under-exercised code paths finds logic bugs that uniform sampling misses.
//! This module turns the probe counters into *generation bias* along three
//! axes:
//!
//! 1. **Editing functions** — [`Guidance::edit_bias`] up-weights the
//!    derivative strategy's [`EditFunction`] choices towards functions whose
//!    `topo.editing.*` probes are cold;
//! 2. **Template families** — [`Guidance::template_weights`] shifts
//!    [`crate::queries::random_queries_weighted`]'s TopoJoin / RangeJoin /
//!    Knn split towards families whose characteristic engine probes
//!    (`sdb.exec.*`, `topo.distance.*`) are cold;
//! 3. **Scenario knobs** — [`Guidance::pick_knobs`] runs a small
//!    deterministic multi-armed bandit over [`ScenarioKnobs`] presets
//!    (spatial indexes on/off, planner settings, geometry-kind mix), each
//!    arm scored by how rarely its target probes were hit. The unguided
//!    AEI path never creates an index, so the index-scan arm is what first
//!    reaches `sdb.exec.join_index_scan` / `sdb.exec.knn_index_scan` and the
//!    index-build crash path in a guided campaign.
//!
//! Scoring is *rarity-weighted* rather than binary: a probe the snapshot
//! never saw carries its full boost, and a probe that was hit keeps a
//! log-decayed share of it (see [`rarity_boost`]) instead of dropping to
//! zero at the first hit — steering pressure persists on rarely-reached
//! paths. An all-cold snapshot degenerates to numerically identical weights
//! to the historical binary scheme.
//!
//! # Determinism
//!
//! Guided campaigns must produce byte-identical findings, skips and
//! attribution at any worker count — the same contract the unguided runner
//! has. Live coverage counters cannot provide that: which probes are hot at
//! the moment iteration *i* starts depends on which other iterations (and
//! which unrelated tests in the same process) happened to run first. The
//! runner therefore freezes the feedback once: a short unguided *warm-up
//! prefix* runs on the coordinating thread, its per-iteration probe deltas
//! are measured with the thread-local recorder
//! ([`spatter_topo::coverage::local`], immune to concurrent pollution) and
//! merged into one [`CoverageSnapshot`]. Every guided decision afterwards is
//! a pure function of that frozen snapshot plus the iteration sub-seed —
//! guidance reads the snapshot, never the live counters. The bandit pays for
//! this determinism by being *stationary*: arm scores do not update within a
//! campaign, exploration comes from the per-iteration seeded draw.

use crate::generator::GeneratorConfig;
use crate::rng::{split_seed, RngExt, SeedableRng, StdRng};
use crate::spec::DatabaseSpec;
use spatter_sdb::coverage::SDB_PROBES;
use spatter_topo::coverage::{ColdProbeMap, CoverageSnapshot, TOPO_PROBES};
use spatter_topo::editing::EditFunction;
use std::collections::HashSet;
use std::sync::OnceLock;

/// Whether (and how) a campaign biases generation with coverage feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuidanceMode {
    /// No guidance: byte-identical to the historical uniform campaign.
    #[default]
    Off,
    /// Cold-probe guidance: bias generation towards probes the campaign's
    /// warm-up prefix did not reach.
    ///
    /// Designed for the in-process backend, where every probe fires on the
    /// campaign's own threads. With an out-of-process backend (e.g.
    /// `StdioBackend`) the `sdb.*` probes fire inside the server process,
    /// invisible to the thread-local recorder: guidance then sees only the
    /// client-side `topo.*` probes, permanently classifies the engine
    /// probes as cold (the knob bandit keeps favouring engine-side arms),
    /// and `CampaignReport::probe_coverage` underreports engine coverage.
    /// Determinism and finding validity are unaffected — only the steering
    /// signal and the coverage report are weaker.
    ColdProbe,
}

/// Sub-seed stream index for the knob bandit (decorrelates the bandit draw
/// from the generator / query / transform streams of the same iteration).
const KNOB_STREAM: u64 = 0x6b6e_6f62; // "knob"

/// Extra weight an [`EditFunction`] gains when its probe is cold.
const COLD_EDIT_BOOST: u64 = 3;

/// Extra weight a template family gains per cold target probe.
const COLD_FAMILY_BOOST: u64 = 2;

/// Extra weight a knob arm gains per cold target probe.
const COLD_ARM_BOOST: u64 = 2;

/// Rarity-weighted steering boost: the full `base` boost for a probe the
/// snapshot never saw (exactly the historical binary cold/hot behaviour),
/// decaying with the log of the hit count once the probe has been touched —
/// `base / (1 + ⌊log2(count + 1)⌋)`, in integer arithmetic so the weights
/// are bit-identical on every platform and every worker process.
///
/// This keeps steering pressure on *rarely*-hit probes after their first
/// hit (the ROADMAP's "rarity-weighted probe scoring" follow-on): a probe
/// hit once keeps half its boost (integer-divided), while a probe hit
/// thousands of times rounds down to no boost at all — the old "hot"
/// classification. A snapshot in which every probe is cold therefore
/// produces weights numerically equal to the previous binary scheme, which
/// matters because the weighted draws consume raw RNG output: equal
/// probabilities with different totals would still change every draw.
fn rarity_boost(base: u64, count: u64) -> u64 {
    if count == 0 {
        base
    } else {
        // Saturating: a `u64::MAX` count (possible via an adversarial wire
        // snapshot) must decay to zero, not wrap to `ilog2(0)` and panic.
        base / (1 + u64::from(count.saturating_add(1).ilog2()))
    }
}

/// The probe universe guidance steers over: both instrumented layers.
pub fn probe_universe() -> Vec<&'static str> {
    TOPO_PROBES
        .iter()
        .chain(SDB_PROBES.iter())
        .copied()
        .collect()
}

/// Membership test against the probe universe (used to restrict recorded
/// per-iteration deltas to known probes).
pub fn is_universe_probe(name: &str) -> bool {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| probe_universe().into_iter().collect())
        .contains(name)
}

/// The frozen guidance context of one campaign: the warm-up snapshot's
/// per-probe hit counts. Immutable by construction — every derived bias is
/// a pure function of this state (plus a sub-seed).
#[derive(Debug, Clone)]
pub struct Guidance {
    snapshot: CoverageSnapshot,
}

impl Guidance {
    /// Builds guidance from a frozen coverage snapshot.
    pub fn from_snapshot(snapshot: &CoverageSnapshot) -> Self {
        Guidance {
            snapshot: snapshot.clone(),
        }
    }

    /// The cold-probe classification of the snapshot against the probe
    /// universe (derived on demand; the rarity-weighted boosts read the
    /// snapshot counts directly).
    pub fn cold(&self) -> ColdProbeMap {
        ColdProbeMap::from_snapshot(&self.snapshot, &probe_universe())
    }

    /// The rarity-weighted boost of one probe given a base boost: full for
    /// a cold probe, log-decayed once hit (see [`rarity_boost`]).
    fn probe_boost(&self, base: u64, probe: &str) -> u64 {
        rarity_boost(base, self.snapshot.count(probe))
    }

    /// The summed rarity boosts of a probe list.
    fn boost_in(&self, base: u64, probes: &[&str]) -> u64 {
        probes.iter().map(|p| self.probe_boost(base, p)).sum()
    }

    /// Editing-function weights for the derivative strategy: every function
    /// keeps a base weight of 1 (nothing is starved), plus the
    /// rarity-weighted share of [`COLD_EDIT_BOOST`] — the full boost while
    /// its probe is cold, a log-decayed remainder while it is merely rare.
    pub fn edit_bias(&self) -> EditBias {
        EditBias {
            weights: EditFunction::ALL
                .iter()
                .map(|&edit| {
                    (
                        edit,
                        1 + self.probe_boost(COLD_EDIT_BOOST, edit.probe_name()),
                    )
                })
                .collect(),
        }
    }

    /// Template-family weights: the unguided 60/20/20 split (doubled for
    /// integer resolution), plus the rarity-weighted share of
    /// [`COLD_FAMILY_BOOST`] per probe among each family's characteristic
    /// probes.
    pub fn template_weights(&self) -> TemplateWeights {
        TemplateWeights {
            topo: 12 + self.boost_in(COLD_FAMILY_BOOST, TOPO_FAMILY_PROBES),
            range: 4 + self.boost_in(COLD_FAMILY_BOOST, RANGE_FAMILY_PROBES),
            knn: 4 + self.boost_in(COLD_FAMILY_BOOST, KNN_FAMILY_PROBES),
        }
    }

    /// The knob bandit: one deterministic weighted draw over the
    /// [`knob_arms`] presets, keyed off the iteration sub-seed. Arms whose
    /// target probes are cold (or rarely hit) get proportionally more
    /// weight; the baseline arm keeps a constant weight so guided campaigns
    /// never stop exploring the default configuration.
    pub fn pick_knobs(&self, sub_seed: u64) -> ScenarioKnobs {
        let mut rng = StdRng::seed_from_u64(split_seed(sub_seed, KNOB_STREAM));
        let arms = knob_arms();
        let weights: Vec<u64> = arms
            .iter()
            .map(|arm| arm.base_weight + self.boost_in(COLD_ARM_BOOST, arm.targets))
            .collect();
        let total: u64 = weights.iter().sum();
        let mut draw = rng.random_range(0..total);
        for (arm, weight) in arms.iter().zip(weights.iter()) {
            if draw < *weight {
                return arm.knobs.clone();
            }
            draw -= weight;
        }
        unreachable!("weighted draw is bounded by the weight total")
    }
}

// ---------------------------------------------------------------------------
// Editing-function bias
// ---------------------------------------------------------------------------

/// Per-[`EditFunction`] selection weights for the derivative strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditBias {
    weights: Vec<(EditFunction, u64)>,
}

impl EditBias {
    /// One weighted draw (a single RNG consumption, like the uniform
    /// `choose` it replaces).
    pub fn choose(&self, rng: &mut StdRng) -> EditFunction {
        let total: u64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut draw = rng.random_range(0..total.max(1));
        for (edit, weight) in &self.weights {
            if draw < *weight {
                return *edit;
            }
            draw -= weight;
        }
        self.weights.last().expect("edit list is non-empty").0
    }

    /// The weight of one editing function (for tests and reporting).
    pub fn weight_of(&self, edit: EditFunction) -> u64 {
        self.weights
            .iter()
            .find(|(e, _)| *e == edit)
            .map(|(_, w)| *w)
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Template-family weights
// ---------------------------------------------------------------------------

/// A query-template family (the three [`crate::queries::QueryTemplate`]
/// shapes as a plain choice label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateFamily {
    /// The Figure 5 topological join-count template.
    TopoJoin,
    /// A §7 distance range join.
    RangeJoin,
    /// A §7 KNN query.
    Knn,
}

/// Relative draw weights of the three template families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateWeights {
    /// Weight of the topological join family.
    pub topo: u64,
    /// Weight of the distance range-join family.
    pub range: u64,
    /// Weight of the KNN family.
    pub knn: u64,
}

impl TemplateWeights {
    /// The historical unguided split: 60% topo / 20% range / 20% KNN. With
    /// these weights the weighted draw consumes the RNG exactly like the
    /// original `random_range(0..10)` family pick, so the unguided query
    /// stream is byte-identical to pre-guidance campaigns.
    pub fn baseline() -> Self {
        TemplateWeights {
            topo: 6,
            range: 2,
            knn: 2,
        }
    }

    /// One weighted family draw (a single RNG consumption). The walk order
    /// (topo, range, knn) is part of the determinism contract.
    pub fn choose(&self, rng: &mut StdRng) -> TemplateFamily {
        let total = (self.topo + self.range + self.knn).max(1);
        let draw = rng.random_range(0..total);
        if draw < self.topo {
            TemplateFamily::TopoJoin
        } else if draw < self.topo + self.range {
            TemplateFamily::RangeJoin
        } else {
            TemplateFamily::Knn
        }
    }
}

/// Probes characteristic of the topological-join family.
const TOPO_FAMILY_PROBES: &[&str] = &[
    "sdb.exec.join_prepared",
    "sdb.exec.join_nested_loop",
    "topo.relate.polygon_polygon",
    "topo.predicate.relate_pattern",
];

/// Probes characteristic of the range-join family.
const RANGE_FAMILY_PROBES: &[&str] = &[
    "topo.distance.dwithin",
    "topo.distance.dfullywithin",
    "topo.distance.range_margin_check",
    "topo.distance.segment",
];

/// Probes characteristic of the KNN family.
const KNN_FAMILY_PROBES: &[&str] = &[
    "sdb.exec.order_by",
    "sdb.exec.limit",
    "sdb.exec.knn_index_scan",
    "topo.distance.knn_tie_check",
];

// ---------------------------------------------------------------------------
// Scenario knobs and the bandit arms
// ---------------------------------------------------------------------------

/// Per-scenario configuration knobs a guided campaign can turn: extra setup
/// statements (indexes, planner settings) applied identically to `SDB1` and
/// its affine-equivalent `SDB2`, plus a geometry-kind adjustment for the
/// generator. The default value is the *baseline*: exactly the historical
/// scenario setup, byte for byte.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioKnobs {
    /// Create a GiST-analog index on every table.
    pub create_indexes: bool,
    /// `SET enable_seqscan = false` (drives the engine onto index paths).
    pub disable_seqscan: bool,
    /// `SET enable_prepared = false` (forces the nested-loop join).
    pub disable_prepared: bool,
    /// Overrides the generator's random-shape probability (geometry-kind
    /// mix: lower means more derived geometries).
    pub random_shape_probability: Option<f64>,
}

impl ScenarioKnobs {
    /// The historical scenario setup (no knob turned).
    pub fn baseline() -> Self {
        ScenarioKnobs::default()
    }

    /// Whether these knobs reproduce the baseline setup exactly.
    pub fn is_baseline(&self) -> bool {
        *self == ScenarioKnobs::default()
    }

    /// The setup statements for one database under these knobs. With
    /// baseline knobs this is exactly `spec.to_sql()`.
    pub fn setup_sql(&self, spec: &DatabaseSpec) -> Vec<String> {
        let mut statements = if self.create_indexes {
            spec.to_sql_with_indexes()
        } else {
            spec.to_sql()
        };
        if self.disable_seqscan {
            statements.push("SET enable_seqscan = false".to_string());
        }
        if self.disable_prepared {
            statements.push("SET enable_prepared = false".to_string());
        }
        statements
    }

    /// Applies the generator-side knobs to a generator configuration.
    pub fn apply_generator(&self, config: &mut GeneratorConfig) {
        if let Some(p) = self.random_shape_probability {
            config.random_shape_probability = p;
        }
    }
}

/// One bandit arm: a knob preset plus the probes it aims to warm up.
struct KnobArm {
    knobs: ScenarioKnobs,
    targets: &'static [&'static str],
    base_weight: u64,
}

/// The bandit's arms. Target lists are the probes each preset is uniquely
/// positioned to reach; the baseline arm targets nothing but keeps a
/// constant exploration weight.
fn knob_arms() -> Vec<KnobArm> {
    vec![
        KnobArm {
            knobs: ScenarioKnobs::baseline(),
            targets: &[],
            base_weight: 4,
        },
        // The unguided AEI scenario never creates an index, so these probes
        // stay cold until this arm fires: index builds (and the index-build
        // crash fault), the `~=` window scan, the predicate index join and
        // the best-first KNN scan.
        KnobArm {
            knobs: ScenarioKnobs {
                create_indexes: true,
                disable_seqscan: true,
                ..ScenarioKnobs::default()
            },
            targets: &[
                "sdb.exec.create_index",
                "sdb.exec.join_index_scan",
                "sdb.exec.join_distance_index",
                "sdb.exec.knn_index_scan",
                "sdb.exec.set_setting",
                "sdb.fault.crash_path",
            ],
            base_weight: 1,
        },
        // Indexes without disabling seqscan: exercises index maintenance on
        // insert-heavy scenarios while keeping sequential plans.
        KnobArm {
            knobs: ScenarioKnobs {
                create_indexes: true,
                ..ScenarioKnobs::default()
            },
            targets: &["sdb.exec.create_index", "sdb.fault.crash_path"],
            base_weight: 1,
        },
        // Forcing the nested loop reaches the general join path that the
        // prepared-geometry fast path normally shadows.
        KnobArm {
            knobs: ScenarioKnobs {
                disable_prepared: true,
                ..ScenarioKnobs::default()
            },
            targets: &["sdb.exec.join_nested_loop", "sdb.exec.set_setting"],
            base_weight: 1,
        },
        // Geometry-kind mix: a derivative-heavy database reaches the editing
        // functions and the collection/boundary machinery they feed.
        KnobArm {
            knobs: ScenarioKnobs {
                random_shape_probability: Some(0.2),
                ..ScenarioKnobs::default()
            },
            targets: &[
                "topo.editing.set_point",
                "topo.editing.polygonize",
                "topo.editing.dump_rings",
                "topo.editing.collection_extract",
                "topo.editing.point_n",
                "topo.boundary.collection",
                "topo.relate.collection",
            ],
            base_weight: 1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hit count large enough that every rarity boost rounds down to 0
    /// (`base / (1 + log2(count + 1)) = 0` for the boosts used here): the
    /// probe is not just touched but thoroughly *hot*.
    const HOT: u64 = 1 << 12;

    fn snapshot_hitting_counted(probes: &[&'static str], count: u64) -> CoverageSnapshot {
        let mut snapshot = CoverageSnapshot::new();
        let delta: Vec<(&'static str, u64)> = probes.iter().map(|&p| (p, count)).collect();
        snapshot.absorb(&delta);
        snapshot
    }

    fn snapshot_hitting(probes: &[&'static str]) -> CoverageSnapshot {
        snapshot_hitting_counted(probes, HOT)
    }

    /// A snapshot where every universe probe was hit hard (nothing cold,
    /// nothing rare).
    fn saturated_snapshot() -> CoverageSnapshot {
        let universe = probe_universe();
        snapshot_hitting(&universe)
    }

    #[test]
    fn universe_spans_both_layers_without_duplicates() {
        let universe = probe_universe();
        assert_eq!(universe.len(), TOPO_PROBES.len() + SDB_PROBES.len());
        let set: HashSet<_> = universe.iter().collect();
        assert_eq!(set.len(), universe.len());
        assert!(is_universe_probe("topo.predicate.intersects"));
        assert!(is_universe_probe("sdb.exec.knn_index_scan"));
        assert!(!is_universe_probe("not.a.probe"));
    }

    #[test]
    fn edit_bias_boosts_cold_functions_only() {
        let guidance = Guidance::from_snapshot(&snapshot_hitting(&[
            "topo.editing.boundary",
            "topo.editing.envelope",
        ]));
        let bias = guidance.edit_bias();
        assert_eq!(bias.weight_of(EditFunction::Boundary), 1);
        assert_eq!(bias.weight_of(EditFunction::Envelope), 1);
        assert_eq!(
            bias.weight_of(EditFunction::Polygonize),
            1 + COLD_EDIT_BOOST
        );
        // Nothing is starved: every function keeps a positive weight, so a
        // weighted draw can still reach the hot ones.
        for edit in EditFunction::ALL {
            assert!(bias.weight_of(edit) >= 1);
        }
    }

    #[test]
    fn rarity_boost_is_pinned_and_decays_with_log_hit_count() {
        // The pinned decay table: full boost at 0 hits, log-scaled integer
        // division afterwards. These exact values are part of the
        // determinism contract (weights feed raw RNG draws).
        assert_eq!(rarity_boost(COLD_EDIT_BOOST, 0), 3);
        assert_eq!(rarity_boost(COLD_EDIT_BOOST, 1), 1); // 3 / (1+1)
        assert_eq!(rarity_boost(COLD_EDIT_BOOST, 3), 1); // 3 / (1+2)
        assert_eq!(rarity_boost(COLD_EDIT_BOOST, 7), 0); // 3 / (1+3)
        assert_eq!(rarity_boost(COLD_FAMILY_BOOST, 0), 2);
        assert_eq!(rarity_boost(COLD_FAMILY_BOOST, 1), 1); // 2 / 2
        assert_eq!(rarity_boost(COLD_FAMILY_BOOST, 3), 0); // 2 / 3
        assert_eq!(rarity_boost(COLD_FAMILY_BOOST, HOT), 0);
        // Saturating at the top: an adversarial wire snapshot can carry a
        // u64::MAX count — it must decay to zero, never wrap and panic.
        assert_eq!(rarity_boost(COLD_EDIT_BOOST, u64::MAX), 0);
        assert_eq!(rarity_boost(u64::MAX, u64::MAX - 1), u64::MAX / 64);
        // Monotone non-increasing in the hit count.
        let boosts: Vec<u64> = (0..200).map(|c| rarity_boost(10, c)).collect();
        assert!(boosts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn rarely_hit_probes_keep_reduced_steering_pressure() {
        // A function probe hit exactly once sits between cold and hot: it
        // keeps a decayed boost instead of collapsing to the base weight.
        let guidance =
            Guidance::from_snapshot(&snapshot_hitting_counted(&["topo.editing.boundary"], 1));
        let bias = guidance.edit_bias();
        let rare = bias.weight_of(EditFunction::Boundary);
        let cold = bias.weight_of(EditFunction::Polygonize);
        assert_eq!(rare, 1 + rarity_boost(COLD_EDIT_BOOST, 1));
        assert!(rare > 1, "a rare probe keeps pressure");
        assert!(cold > rare, "a cold probe outweighs a rare one");
        // Deterministic: the same snapshot always produces the same weights.
        let again =
            Guidance::from_snapshot(&snapshot_hitting_counted(&["topo.editing.boundary"], 1));
        assert_eq!(bias, again.edit_bias());
        assert_eq!(guidance.template_weights(), again.template_weights());
    }

    #[test]
    fn all_cold_snapshot_degenerates_to_the_binary_scheme() {
        // With nothing hit, every rarity weight equals the historical binary
        // cold boost — numerically, not just proportionally, because the
        // weighted draws consume raw RNG output.
        let guidance = Guidance::from_snapshot(&CoverageSnapshot::new());
        assert_eq!(guidance.cold().len(), probe_universe().len());
        assert!(Guidance::from_snapshot(&saturated_snapshot())
            .cold()
            .is_empty());
        let bias = guidance.edit_bias();
        for edit in EditFunction::ALL {
            assert_eq!(bias.weight_of(edit), 1 + COLD_EDIT_BOOST);
        }
        let weights = guidance.template_weights();
        assert_eq!(
            weights.topo,
            12 + COLD_FAMILY_BOOST * TOPO_FAMILY_PROBES.len() as u64
        );
        assert_eq!(
            weights.range,
            4 + COLD_FAMILY_BOOST * RANGE_FAMILY_PROBES.len() as u64
        );
        assert_eq!(
            weights.knn,
            4 + COLD_FAMILY_BOOST * KNN_FAMILY_PROBES.len() as u64
        );
    }

    #[test]
    fn edit_bias_choose_is_deterministic_and_covers_all_functions() {
        let guidance = Guidance::from_snapshot(&CoverageSnapshot::new());
        let bias = guidance.edit_bias();
        let draw = |seed: u64| -> Vec<EditFunction> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200).map(|_| bias.choose(&mut rng)).collect()
        };
        assert_eq!(draw(7), draw(7));
        let seen: HashSet<_> = draw(7).into_iter().map(|e| e.function_name()).collect();
        assert!(seen.len() >= 10, "draws cover most functions: {seen:?}");
    }

    #[test]
    fn baseline_template_weights_mirror_the_unguided_split() {
        let weights = TemplateWeights::baseline();
        assert_eq!((weights.topo, weights.range, weights.knn), (6, 2, 2));
        // The baseline draw partitions 0..10 exactly like the historical
        // `random_range(0..10)` with 0..=5 / 6..=7 / 8..=9.
        let mut counts = [0usize; 3];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            match weights.choose(&mut rng) {
                TemplateFamily::TopoJoin => counts[0] += 1,
                TemplateFamily::RangeJoin => counts[1] += 1,
                TemplateFamily::Knn => counts[2] += 1,
            }
        }
        assert!(counts[0] > counts[1] && counts[0] > counts[2], "{counts:?}");
        assert!(counts[1] > 100 && counts[2] > 100, "{counts:?}");
    }

    #[test]
    fn template_weights_shift_towards_cold_families() {
        // Everything hot except the KNN probes: the KNN family gains weight,
        // the others stay at their doubled baseline.
        let hot_probes: Vec<&'static str> = probe_universe()
            .into_iter()
            .filter(|p| !KNN_FAMILY_PROBES.contains(p))
            .collect();
        let snapshot = snapshot_hitting(&hot_probes);
        let weights = Guidance::from_snapshot(&snapshot).template_weights();
        assert_eq!(weights.topo, 12);
        assert_eq!(weights.range, 4);
        assert_eq!(
            weights.knn,
            4 + COLD_FAMILY_BOOST * KNN_FAMILY_PROBES.len() as u64
        );
    }

    #[test]
    fn knob_bandit_is_deterministic_per_sub_seed() {
        let guidance = Guidance::from_snapshot(&CoverageSnapshot::new());
        for sub_seed in [0u64, 1, 99, u64::MAX / 2] {
            assert_eq!(guidance.pick_knobs(sub_seed), guidance.pick_knobs(sub_seed));
        }
        // Different sub-seeds eventually pick different arms.
        let distinct: HashSet<_> = (0..200u64)
            .map(|s| format!("{:?}", guidance.pick_knobs(s)))
            .collect();
        assert!(distinct.len() > 1, "the bandit explores several arms");
    }

    #[test]
    fn knob_bandit_favours_arms_with_cold_targets() {
        // Nothing cold → the baseline arm (weight 4 of 8) dominates.
        let hot = Guidance::from_snapshot(&saturated_snapshot());
        let baseline_picks = (0..400u64)
            .filter(|&s| hot.pick_knobs(s).is_baseline())
            .count();
        // Everything cold → the index arm (5 cold targets) outweighs the
        // baseline arm, so non-baseline picks dominate.
        let cold = Guidance::from_snapshot(&CoverageSnapshot::new());
        let guided_picks = (0..400u64)
            .filter(|&s| !cold.pick_knobs(s).is_baseline())
            .count();
        assert!(baseline_picks > 150, "{baseline_picks} baseline picks");
        assert!(guided_picks > 250, "{guided_picks} non-baseline picks");
        // The index-scan arm is reachable when its probes are cold.
        assert!(
            (0..400u64).any(|s| {
                let knobs = cold.pick_knobs(s);
                knobs.create_indexes && knobs.disable_seqscan
            }),
            "the index arm must fire for cold index probes"
        );
    }

    #[test]
    fn baseline_knobs_reproduce_the_historical_setup() {
        let spec = DatabaseSpec::with_tables(2);
        let knobs = ScenarioKnobs::baseline();
        assert!(knobs.is_baseline());
        assert_eq!(knobs.setup_sql(&spec), spec.to_sql());
        let mut config = GeneratorConfig::default();
        let before = config.clone();
        knobs.apply_generator(&mut config);
        assert_eq!(config, before);
    }

    #[test]
    fn knob_setup_sql_appends_indexes_and_settings() {
        let spec = DatabaseSpec::with_tables(2);
        let knobs = ScenarioKnobs {
            create_indexes: true,
            disable_seqscan: true,
            disable_prepared: true,
            random_shape_probability: Some(0.25),
        };
        let sql = knobs.setup_sql(&spec);
        assert!(sql.iter().any(|s| s.contains("USING GIST")));
        assert_eq!(sql[sql.len() - 2], "SET enable_seqscan = false");
        assert_eq!(sql[sql.len() - 1], "SET enable_prepared = false");
        let mut config = GeneratorConfig::default();
        knobs.apply_generator(&mut config);
        assert_eq!(config.random_shape_probability, 0.25);
    }

    #[test]
    fn every_arm_target_is_a_universe_probe() {
        for arm in knob_arms() {
            for target in arm.targets {
                assert!(is_universe_probe(target), "{target} not in universe");
            }
        }
        for probes in [TOPO_FAMILY_PROBES, RANGE_FAMILY_PROBES, KNN_FAMILY_PROBES] {
            for probe in probes {
                assert!(is_universe_probe(probe), "{probe} not in universe");
            }
        }
        for edit in EditFunction::ALL {
            assert!(is_universe_probe(edit.probe_name()));
        }
    }
}
