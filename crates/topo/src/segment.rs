//! Segment–segment intersection, the primitive underneath noding.

use crate::coverage;
use spatter_geom::orientation::{cross, orientation, point_on_segment, Orientation};
use spatter_geom::Coord;

/// The result of intersecting two closed segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmentIntersection {
    /// The segments do not intersect.
    None,
    /// The segments intersect in a single point.
    Point(Coord),
    /// The segments overlap along a collinear sub-segment.
    Overlap(Coord, Coord),
}

/// Computes the intersection of segment `a0-a1` with segment `b0-b1`.
pub fn segment_intersection(a0: Coord, a1: Coord, b0: Coord, b1: Coord) -> SegmentIntersection {
    let o1 = orientation(a0, a1, b0);
    let o2 = orientation(a0, a1, b1);
    let o3 = orientation(b0, b1, a0);
    let o4 = orientation(b0, b1, a1);

    // Proper crossing: each segment's endpoints straddle the other's line.
    if o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
    {
        coverage::hit("topo.segment.intersection_proper");
        return SegmentIntersection::Point(line_intersection_point(a0, a1, b0, b1));
    }

    // Collinear configurations: the segments may overlap in an interval.
    if o1 == Orientation::Collinear
        && o2 == Orientation::Collinear
        && o3 == Orientation::Collinear
        && o4 == Orientation::Collinear
    {
        return collinear_overlap(a0, a1, b0, b1);
    }

    // Touching configurations: an endpoint of one lies on the other segment.
    for p in [b0, b1] {
        if point_on_segment(p, a0, a1) {
            coverage::hit("topo.segment.intersection_endpoint");
            return SegmentIntersection::Point(p);
        }
    }
    for p in [a0, a1] {
        if point_on_segment(p, b0, b1) {
            coverage::hit("topo.segment.intersection_endpoint");
            return SegmentIntersection::Point(p);
        }
    }

    SegmentIntersection::None
}

/// Intersection point of the supporting lines of two properly crossing
/// segments.
fn line_intersection_point(a0: Coord, a1: Coord, b0: Coord, b1: Coord) -> Coord {
    // Solve a0 + t * (a1 - a0) = b0 + s * (b1 - b0) for t.
    let denom = cross(
        Coord::zero(),
        Coord::new(a1.x - a0.x, a1.y - a0.y),
        Coord::new(b1.x - b0.x, b1.y - b0.y),
    );
    // denom = (a1-a0) x (b1-b0); non-zero for a proper crossing.
    let t = cross(
        Coord::zero(),
        Coord::new(b0.x - a0.x, b0.y - a0.y),
        Coord::new(b1.x - b0.x, b1.y - b0.y),
    ) / denom;
    Coord::new(a0.x + t * (a1.x - a0.x), a0.y + t * (a1.y - a0.y))
}

fn collinear_overlap(a0: Coord, a1: Coord, b0: Coord, b1: Coord) -> SegmentIntersection {
    // Degenerate segments (duplicate consecutive vertices produce them) are
    // trivially "collinear" with anything, so they reach this branch even
    // when the supporting line is defined by the other segment alone; two
    // degenerate segments have no supporting line at all. Both cases must be
    // resolved by point identity, not by axis projection.
    if a0 == a1 && b0 == b1 {
        return if a0 == b0 {
            SegmentIntersection::Point(a0)
        } else {
            SegmentIntersection::None
        };
    }
    // Project onto the dominant axis of the combined direction to order the
    // points: with at least one non-degenerate segment this axis is
    // monotonic along the shared supporting line (projecting onto the
    // dominant axis of a possibly-degenerate `a` is not — it collapsed every
    // point to one parameter and reported phantom intersections).
    let dx = (a1.x - a0.x).abs().max((b1.x - b0.x).abs());
    let dy = (a1.y - a0.y).abs().max((b1.y - b0.y).abs());
    let use_x = dx >= dy;
    let param = |c: Coord| if use_x { c.x } else { c.y };

    let (amin, amax) = minmax(param(a0), param(a1));
    let (bmin, bmax) = minmax(param(b0), param(b1));
    let lo = amin.max(bmin);
    let hi = amax.min(bmax);
    if lo > hi {
        return SegmentIntersection::None;
    }
    let coord_at = |v: f64| -> Coord {
        // Pick the original endpoint that has this parameter, to avoid
        // recomputing coordinates (all candidates are endpoints of a or b).
        for c in [a0, a1, b0, b1] {
            if param(c) == v {
                return c;
            }
        }
        a0
    };
    if lo == hi {
        coverage::hit("topo.segment.intersection_endpoint");
        SegmentIntersection::Point(coord_at(lo))
    } else {
        coverage::hit("topo.segment.intersection_collinear");
        SegmentIntersection::Overlap(coord_at(lo), coord_at(hi))
    }
}

fn minmax(a: f64, b: f64) -> (f64, f64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Distance from point `p` to the closed segment `a-b`.
pub fn point_segment_distance(p: Coord, a: Coord, b: Coord) -> f64 {
    point_segment_distance_sq(p, a, b).sqrt()
}

/// Squared distance from point `p` to the closed segment `a-b`: the
/// sqrt-free comparison kernel. `point_segment_distance` is exactly its
/// square root — correctly-rounded `sqrt` is monotone, so threshold
/// comparisons against a squared bound agree with the sqrt form's ordering.
pub fn point_segment_distance_sq(p: Coord, a: Coord, b: Coord) -> f64 {
    let len_sq = a.distance_sq(&b);
    if len_sq == 0.0 {
        return p.distance_sq(&a);
    }
    let t = ((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / len_sq;
    let t = t.clamp(0.0, 1.0);
    let proj = Coord::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
    p.distance_sq(&proj)
}

/// Minimum distance between two closed segments.
pub fn segment_segment_distance(a0: Coord, a1: Coord, b0: Coord, b1: Coord) -> f64 {
    segment_segment_distance_sq(a0, a1, b0, b1).sqrt()
}

/// Squared minimum distance between two closed segments. `min` commutes
/// with the monotone `sqrt`, so `segment_segment_distance` taking the root
/// of this minimum equals the historical minimum-of-roots bit for bit.
pub fn segment_segment_distance_sq(a0: Coord, a1: Coord, b0: Coord, b1: Coord) -> f64 {
    if segment_intersection(a0, a1, b0, b1) != SegmentIntersection::None {
        return 0.0;
    }
    point_segment_distance_sq(a0, b0, b1)
        .min(point_segment_distance_sq(a1, b0, b1))
        .min(point_segment_distance_sq(b0, a0, a1))
        .min(point_segment_distance_sq(b1, a0, a1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64, y: f64) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn proper_crossing_yields_interior_point() {
        let r = segment_intersection(c(0.0, 0.0), c(2.0, 2.0), c(0.0, 2.0), c(2.0, 0.0));
        assert_eq!(r, SegmentIntersection::Point(c(1.0, 1.0)));
    }

    #[test]
    fn disjoint_segments() {
        let r = segment_intersection(c(0.0, 0.0), c(1.0, 0.0), c(0.0, 1.0), c(1.0, 1.0));
        assert_eq!(r, SegmentIntersection::None);
        let r = segment_intersection(c(0.0, 0.0), c(1.0, 1.0), c(2.0, 2.0), c(3.0, 3.0));
        assert_eq!(r, SegmentIntersection::None);
    }

    #[test]
    fn endpoint_touch() {
        let r = segment_intersection(c(0.0, 0.0), c(1.0, 1.0), c(1.0, 1.0), c(2.0, 0.0));
        assert_eq!(r, SegmentIntersection::Point(c(1.0, 1.0)));
        // T-junction: endpoint of b on interior of a.
        let r = segment_intersection(c(0.0, 0.0), c(4.0, 0.0), c(2.0, 0.0), c(2.0, 3.0));
        assert_eq!(r, SegmentIntersection::Point(c(2.0, 0.0)));
    }

    #[test]
    fn collinear_overlap_interval() {
        let r = segment_intersection(c(0.0, 0.0), c(4.0, 0.0), c(2.0, 0.0), c(6.0, 0.0));
        assert_eq!(r, SegmentIntersection::Overlap(c(2.0, 0.0), c(4.0, 0.0)));
        // Fully contained overlap.
        let r = segment_intersection(c(0.0, 0.0), c(4.0, 0.0), c(1.0, 0.0), c(2.0, 0.0));
        assert_eq!(r, SegmentIntersection::Overlap(c(1.0, 0.0), c(2.0, 0.0)));
    }

    #[test]
    fn collinear_touch_at_single_point() {
        let r = segment_intersection(c(0.0, 0.0), c(2.0, 0.0), c(2.0, 0.0), c(5.0, 0.0));
        assert_eq!(r, SegmentIntersection::Point(c(2.0, 0.0)));
    }

    #[test]
    fn collinear_disjoint() {
        let r = segment_intersection(c(0.0, 0.0), c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0));
        assert_eq!(r, SegmentIntersection::None);
    }

    #[test]
    fn vertical_collinear_overlap() {
        let r = segment_intersection(c(0.0, 0.0), c(0.0, 4.0), c(0.0, 2.0), c(0.0, 6.0));
        assert_eq!(r, SegmentIntersection::Overlap(c(0.0, 2.0), c(0.0, 4.0)));
    }

    #[test]
    fn degenerate_segments_do_not_report_phantom_intersections() {
        // A zero-length segment collinear with (but disjoint from) a vertical
        // segment: the old dominant-axis-of-a projection collapsed every
        // point to x = 11 and reported a phantom intersection point.
        let r = segment_intersection(c(11.0, -4.0), c(11.0, -4.0), c(11.0, 25.0), c(11.0, 50.0));
        assert_eq!(r, SegmentIntersection::None);
        assert_eq!(
            segment_segment_distance(c(11.0, -4.0), c(11.0, -4.0), c(11.0, 25.0), c(11.0, 50.0)),
            29.0
        );
        // A degenerate segment on the other segment is a real touch.
        let r = segment_intersection(c(11.0, 30.0), c(11.0, 30.0), c(11.0, 25.0), c(11.0, 50.0));
        assert_eq!(r, SegmentIntersection::Point(c(11.0, 30.0)));
        // Argument order does not matter.
        let r = segment_intersection(c(11.0, 25.0), c(11.0, 50.0), c(11.0, -4.0), c(11.0, -4.0));
        assert_eq!(r, SegmentIntersection::None);
        // Two degenerate segments: identical points touch, distinct do not —
        // even when they share an axis value.
        let r = segment_intersection(c(0.0, 0.0), c(0.0, 0.0), c(0.0, 5.0), c(0.0, 5.0));
        assert_eq!(r, SegmentIntersection::None);
        let r = segment_intersection(c(2.0, 3.0), c(2.0, 3.0), c(2.0, 3.0), c(2.0, 3.0));
        assert_eq!(r, SegmentIntersection::Point(c(2.0, 3.0)));
    }

    #[test]
    fn segment_distance_is_symmetric_with_degenerate_operands() {
        let d1 =
            segment_segment_distance(c(-3.0, 2.0), c(11.0, -4.0), c(11.0, 25.0), c(11.0, 50.0));
        let d2 =
            segment_segment_distance(c(11.0, 25.0), c(11.0, 50.0), c(-3.0, 2.0), c(11.0, -4.0));
        assert_eq!(d1, d2);
        // The closest pair is (11, 25) against the interior of the first
        // segment, not an endpoint pair.
        assert!((d1 - 26.65520587052368).abs() < 1e-12, "{d1}");
    }

    #[test]
    fn point_segment_distance_cases() {
        assert_eq!(
            point_segment_distance(c(0.0, 3.0), c(0.0, 0.0), c(4.0, 0.0)),
            3.0
        );
        assert_eq!(
            point_segment_distance(c(-3.0, 4.0), c(0.0, 0.0), c(4.0, 0.0)),
            5.0
        );
        assert_eq!(
            point_segment_distance(c(2.0, 0.0), c(0.0, 0.0), c(4.0, 0.0)),
            0.0
        );
        // Degenerate segment.
        assert_eq!(
            point_segment_distance(c(3.0, 4.0), c(0.0, 0.0), c(0.0, 0.0)),
            5.0
        );
    }

    #[test]
    fn segment_segment_distance_cases() {
        assert_eq!(
            segment_segment_distance(c(0.0, 0.0), c(1.0, 0.0), c(0.0, 2.0), c(1.0, 2.0)),
            2.0
        );
        assert_eq!(
            segment_segment_distance(c(0.0, 0.0), c(2.0, 2.0), c(0.0, 2.0), c(2.0, 0.0)),
            0.0
        );
    }

    #[test]
    fn listing1_point_lies_on_line() {
        // The Listing 1 geometry: LINESTRING(0 1, 2 0) covers POINT(0.2 0.9)?
        // 0.2 / 2 = 0.1 along x, and 1 - 0.1 * ... the point is NOT exactly on
        // the segment in floating point terms unless collinear; check the
        // affine-equivalent pair from Listing 2 which uses exactly
        // representable values.
        assert!(point_on_segment(c(0.9, 0.9), c(1.0, 1.0), c(0.0, 0.0)));
    }
}
