//! Point location: interior / boundary / exterior of a geometry
//! (Definitions 2.1 and 2.2 of the paper).
//!
//! This is the labelling primitive of the relate engine: after noding, every
//! node and sub-edge midpoint is located in both geometries and the DE-9IM
//! matrix accumulates the observed dimensions.
//!
//! Component results are combined following the OGC / SQL-MM conventions the
//! tested SDBMSs implement:
//!
//! * a point interior to **any** component is interior to the whole geometry;
//! * line endpoints obey the mod-2 rule: a point that is an endpoint of an
//!   odd number of linestring components is on the boundary, an even (and
//!   positive) count makes it interior;
//! * polygon ring membership makes a point a boundary point unless some other
//!   component claims it as interior.
//!
//! The "last-one-wins" strategy GEOS applied to GEOMETRYCOLLECTION boundaries
//! (the root cause of Listing 6) is *not* implemented here — the engine crate
//! injects it as a seeded fault on top of this reference behaviour.

use crate::coverage;
use crate::segment::point_segment_distance;
use spatter_geom::orientation::{orientation, Orientation};
use spatter_geom::{Coord, Geometry, LineString, Polygon};

/// Tolerant point-on-segment test used for location labelling.
///
/// Location queries run against points that may have been produced by a
/// floating-point affine transformation or by segment noding, so a purely
/// exact collinearity test would classify points that are mathematically on a
/// segment as lying off it (this is exactly the precision pathology behind
/// Listing 1). The reference engine therefore accepts points within a
/// relative tolerance of the segment; the seeded "precision loss" fault in
/// the engine crate reverts to the exact test to reproduce the bug.
pub(crate) fn on_segment_tolerant(p: Coord, a: Coord, b: Coord) -> bool {
    let scale =
        p.x.abs()
            .max(p.y.abs())
            .max(a.x.abs())
            .max(a.y.abs())
            .max(b.x.abs())
            .max(b.y.abs())
            .max(1.0);
    point_segment_distance(p, a, b) <= 1e-9 * scale
}

/// Topological location of a point relative to a geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// In the geometry's interior.
    Interior,
    /// On the geometry's boundary.
    Boundary,
    /// In the geometry's exterior.
    Exterior,
}

/// Locates `point` relative to `geometry`.
pub fn locate(point: Coord, geometry: &Geometry) -> Location {
    let mut point_or_area_interior = false;
    let mut line_interior = false;
    let mut polygon_boundary = false;
    let mut line_endpoint_count = 0usize;

    visit_components(geometry, &mut |component| match component {
        Component::Point(c) => {
            coverage::hit("topo.locate.point_component");
            if c.approx_eq(&point) {
                point_or_area_interior = true;
            }
        }
        Component::Line(line) => {
            coverage::hit("topo.locate.line_component");
            match locate_on_linestring(point, line) {
                LineLocation::Interior => line_interior = true,
                LineLocation::Endpoint => line_endpoint_count += 1,
                LineLocation::Off => {}
            }
        }
        Component::Polygon(polygon) => {
            coverage::hit("topo.locate.polygon_component");
            match locate_in_polygon(point, polygon) {
                Location::Interior => point_or_area_interior = true,
                Location::Boundary => polygon_boundary = true,
                Location::Exterior => {}
            }
        }
    });

    // Precedence: a point- or area-interior claim wins outright (this is what
    // makes Listing 6's expected result "within": the POINT member's interior
    // covers the line endpoint). Next, line endpoints follow the mod-2 rule
    // and take precedence over the interior of other line components
    // (T-junction endpoints stay on the boundary, as in JTS/GEOS).
    if point_or_area_interior {
        return Location::Interior;
    }
    if line_endpoint_count > 0 {
        coverage::hit("topo.locate.mod2_boundary");
        // Mod-2 rule: odd endpoint count => boundary, even => interior.
        return if line_endpoint_count % 2 == 1 {
            Location::Boundary
        } else {
            Location::Interior
        };
    }
    if line_interior {
        return Location::Interior;
    }
    if polygon_boundary {
        return Location::Boundary;
    }
    Location::Exterior
}

/// Basic components a geometry decomposes into for location purposes.
enum Component<'a> {
    Point(Coord),
    Line(&'a LineString),
    Polygon(&'a Polygon),
}

fn visit_components<'a>(geometry: &'a Geometry, f: &mut dyn FnMut(Component<'a>)) {
    match geometry {
        Geometry::Point(p) => {
            if let Some(c) = p.coord {
                f(Component::Point(c));
            }
        }
        Geometry::LineString(l) => {
            if !l.is_empty() {
                f(Component::Line(l));
            }
        }
        Geometry::Polygon(p) => {
            if !p.is_empty() {
                f(Component::Polygon(p));
            }
        }
        Geometry::MultiPoint(m) => {
            for p in &m.points {
                if let Some(c) = p.coord {
                    f(Component::Point(c));
                }
            }
        }
        Geometry::MultiLineString(m) => {
            for l in &m.lines {
                if !l.is_empty() {
                    f(Component::Line(l));
                }
            }
        }
        Geometry::MultiPolygon(m) => {
            for p in &m.polygons {
                if !p.is_empty() {
                    f(Component::Polygon(p));
                }
            }
        }
        Geometry::GeometryCollection(c) => {
            for g in &c.geometries {
                visit_components(g, f);
            }
        }
    }
}

/// Location of a point relative to a single linestring component.
enum LineLocation {
    /// On the line but not a (topological) endpoint.
    Interior,
    /// Coincides with a boundary endpoint of an open linestring.
    Endpoint,
    /// Not on the line.
    Off,
}

fn locate_on_linestring(point: Coord, line: &LineString) -> LineLocation {
    if line.coords.len() < 2 {
        if line
            .coords
            .first()
            .map(|c| c.approx_eq(&point))
            .unwrap_or(false)
        {
            return LineLocation::Interior;
        }
        return LineLocation::Off;
    }
    let closed = line.is_closed();
    let first = line.coords[0];
    let last = line.coords[line.coords.len() - 1];
    if !closed && (point.approx_eq(&first) || point.approx_eq(&last)) {
        return LineLocation::Endpoint;
    }
    for (a, b) in line.segments() {
        if on_segment_tolerant(point, a, b) {
            return LineLocation::Interior;
        }
    }
    LineLocation::Off
}

/// Locates a point relative to a single polygon component (shell + holes).
pub fn locate_in_polygon(point: Coord, polygon: &Polygon) -> Location {
    let Some(shell) = polygon.exterior() else {
        return Location::Exterior;
    };
    match locate_in_ring(point, shell) {
        Location::Exterior => return Location::Exterior,
        Location::Boundary => return Location::Boundary,
        Location::Interior => {}
    }
    for hole in polygon.interiors() {
        match locate_in_ring(point, hole) {
            Location::Interior => return Location::Exterior,
            Location::Boundary => return Location::Boundary,
            Location::Exterior => {}
        }
    }
    Location::Interior
}

/// Locates a point relative to a single closed ring using the crossing-number
/// algorithm, with an explicit on-boundary pre-check so the crossing count
/// never has to disambiguate degenerate configurations on the boundary
/// itself.
pub fn locate_in_ring(point: Coord, ring: &LineString) -> Location {
    coverage::hit("topo.locate.point_in_ring");
    if ring.coords.len() < 3 {
        return Location::Exterior;
    }
    for (a, b) in ring.segments() {
        if on_segment_tolerant(point, a, b) {
            return Location::Boundary;
        }
    }
    // Ensure closure for the crossing walk.
    let mut coords = ring.coords.clone();
    if !coords[0].approx_eq(&coords[coords.len() - 1]) {
        coords.push(coords[0]);
    }
    let mut inside = false;
    for w in coords.windows(2) {
        let (a, b) = (w[0], w[1]);
        // Count edges that cross the horizontal ray to the right of `point`.
        let crosses_upward = (a.y <= point.y) && (b.y > point.y);
        let crosses_downward = (b.y <= point.y) && (a.y > point.y);
        if crosses_upward || crosses_downward {
            // Orientation tells us on which side of the edge the point lies.
            let side = orientation(a, b, point);
            let to_left_of_edge = if crosses_upward {
                side == Orientation::CounterClockwise
            } else {
                side == Orientation::Clockwise
            };
            if to_left_of_edge {
                inside = !inside;
            }
        }
    }
    if inside {
        Location::Interior
    } else {
        Location::Exterior
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    fn loc(px: f64, py: f64, wkt: &str) -> Location {
        locate(Coord::new(px, py), &parse_wkt(wkt).unwrap())
    }

    #[test]
    fn locate_relative_to_point() {
        assert_eq!(loc(1.0, 2.0, "POINT(1 2)"), Location::Interior);
        assert_eq!(loc(1.0, 2.1, "POINT(1 2)"), Location::Exterior);
        assert_eq!(loc(0.0, 0.0, "POINT EMPTY"), Location::Exterior);
    }

    #[test]
    fn locate_relative_to_linestring() {
        let l = "LINESTRING(0 0,4 0,4 4)";
        assert_eq!(loc(2.0, 0.0, l), Location::Interior);
        assert_eq!(loc(4.0, 0.0, l), Location::Interior); // intermediate vertex
        assert_eq!(loc(0.0, 0.0, l), Location::Boundary); // endpoint
        assert_eq!(loc(4.0, 4.0, l), Location::Boundary); // endpoint
        assert_eq!(loc(1.0, 1.0, l), Location::Exterior);
    }

    #[test]
    fn closed_linestring_has_no_boundary() {
        let ring = "LINESTRING(0 0,4 0,4 4,0 0)";
        assert_eq!(loc(0.0, 0.0, ring), Location::Interior);
        assert_eq!(loc(2.0, 0.0, ring), Location::Interior);
        assert_eq!(loc(1.0, 2.0, ring), Location::Exterior);
    }

    #[test]
    fn mod2_rule_for_multilinestring() {
        // Two lines meeting at (1 1): shared endpoint count = 2 (even) =>
        // interior. The free endpoints stay boundary.
        let ml = "MULTILINESTRING((0 0,1 1),(1 1,2 0))";
        assert_eq!(loc(1.0, 1.0, ml), Location::Interior);
        assert_eq!(loc(0.0, 0.0, ml), Location::Boundary);
        assert_eq!(loc(2.0, 0.0, ml), Location::Boundary);
        // Three lines meeting at a point: odd => boundary.
        let star = "MULTILINESTRING((0 0,1 1),(1 1,2 0),(1 1,1 3))";
        assert_eq!(loc(1.0, 1.0, star), Location::Boundary);
    }

    #[test]
    fn locate_relative_to_polygon() {
        let p = "POLYGON((0 0,10 0,10 10,0 10,0 0))";
        assert_eq!(loc(5.0, 5.0, p), Location::Interior);
        assert_eq!(loc(0.0, 5.0, p), Location::Boundary);
        assert_eq!(loc(10.0, 10.0, p), Location::Boundary);
        assert_eq!(loc(-1.0, 5.0, p), Location::Exterior);
        assert_eq!(loc(15.0, 5.0, p), Location::Exterior);
    }

    #[test]
    fn locate_relative_to_polygon_with_hole() {
        let p = "POLYGON((0 0,10 0,10 10,0 10,0 0),(4 4,6 4,6 6,4 6,4 4))";
        assert_eq!(loc(5.0, 5.0, p), Location::Exterior); // inside the hole
        assert_eq!(loc(4.0, 5.0, p), Location::Boundary); // on the hole ring
        assert_eq!(loc(2.0, 2.0, p), Location::Interior);
    }

    #[test]
    fn locate_in_concave_polygon() {
        let p = "POLYGON((0 0,10 0,10 10,5 5,0 10,0 0))";
        assert_eq!(loc(5.0, 2.0, p), Location::Interior);
        assert_eq!(loc(5.0, 8.0, p), Location::Exterior); // in the notch
        assert_eq!(loc(5.0, 5.0, p), Location::Boundary);
    }

    #[test]
    fn locate_in_collection_interior_wins() {
        // Listing 6's geometry: the point is interior to the collection
        // because it lies in the interior of the LINESTRING member, even
        // though it is also the boundary endpoint of... no: (0 0) is an
        // endpoint of the linestring, but it is also a POINT member whose
        // interior is exactly (0 0), so interior wins.
        let g = "GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))";
        assert_eq!(loc(0.0, 0.0, g), Location::Interior);
        assert_eq!(loc(0.5, 0.0, g), Location::Interior);
        assert_eq!(loc(1.0, 0.0, g), Location::Boundary);
    }

    #[test]
    fn locate_ray_casting_vertex_grazing() {
        // The ray through y=5 passes exactly through the vertex (10, 5);
        // crossing counting must not double count.
        let p = "POLYGON((0 0,10 5,0 10,0 0))";
        assert_eq!(loc(1.0, 5.0, p), Location::Interior);
        assert_eq!(loc(11.0, 5.0, p), Location::Exterior);
    }

    #[test]
    fn locate_in_multipolygon() {
        let mp = "MULTIPOLYGON(((0 0,2 0,2 2,0 2,0 0)),((10 10,12 10,12 12,10 12,10 10)))";
        assert_eq!(loc(1.0, 1.0, mp), Location::Interior);
        assert_eq!(loc(11.0, 11.0, mp), Location::Interior);
        assert_eq!(loc(5.0, 5.0, mp), Location::Exterior);
        assert_eq!(loc(2.0, 1.0, mp), Location::Boundary);
    }
}
