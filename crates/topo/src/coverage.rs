//! Probe-based coverage instrumentation.
//!
//! The paper measures gcov line coverage of PostGIS and GEOS under three
//! configurations (Table 5) and over time (Figure 8b/8c). Since this
//! reproduction is a Rust workspace rather than an instrumented C build, the
//! same experiment is expressed with named *probes*: every component of the
//! geometry library and SQL engine registers a static probe name and calls
//! [`hit`] when it executes. Coverage is the fraction of registered probes
//! hit since the last [`reset`]. The measurement intent (which components a
//! test campaign exercises) is identical; only the unit differs.
//!
//! # Concurrency
//!
//! Probes sit on the hottest paths of the engine (every relate call, every
//! expression evaluation), and the sharded campaign runner executes
//! iterations on many worker threads at once. The registry is therefore a
//! fixed-capacity, open-addressed hash table of per-probe atomic counters:
//! recording a hit after the first registration of a name is one relaxed
//! load plus one relaxed `fetch_add` on that probe's own counter — no lock,
//! no shared cache line between distinct probes. The previous implementation
//! (a global `Mutex<HashSet>`) serialized every probe hit across all workers.
//!
//! Every query — membership, counting, snapshotting — verifies the **full
//! probe name** against the stored key, never just the slot index: an
//! open-addressing collision can place two names in adjacent slots, and a
//! slot-only check would report a never-hit name as hit whenever it collides
//! with a hot one (the phantom-hit bug the collision regression test below
//! pins down).
//!
//! # Scoped measurement
//!
//! The global counters accumulate hits from every thread of the process —
//! fine for the Figure 8 coverage fractions, useless for asking "which
//! probes did *this* iteration hit?" when other workers (or unrelated tests
//! in the same binary) run concurrently. The [`local`] module provides a
//! thread-local delta recorder for that question: between [`local::start`]
//! and [`local::take`], every `hit` on the calling thread is also tallied
//! privately, so a campaign iteration that executes entirely on one worker
//! thread measures its own probe delta exactly, regardless of what the rest
//! of the process is doing. The coverage-guided campaign runner builds its
//! [`CoverageSnapshot`]s from these deltas, which is what keeps guided
//! generation deterministic across worker counts.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// The complete list of probes in the `spatter-topo` crate ("GEOS analog"
/// component). Keeping the list static gives a stable denominator.
pub const TOPO_PROBES: &[&str] = &[
    "topo.relate.empty_case",
    "topo.relate.noding",
    "topo.relate.node_labelling",
    "topo.relate.edge_labelling",
    "topo.relate.area_side_analysis",
    "topo.relate.point_point",
    "topo.relate.point_line",
    "topo.relate.point_polygon",
    "topo.relate.line_line",
    "topo.relate.line_polygon",
    "topo.relate.polygon_polygon",
    "topo.relate.collection",
    "topo.locate.point_component",
    "topo.locate.line_component",
    "topo.locate.polygon_component",
    "topo.locate.mod2_boundary",
    "topo.locate.point_in_ring",
    "topo.boundary.point",
    "topo.boundary.linestring",
    "topo.boundary.polygon",
    "topo.boundary.multilinestring",
    "topo.boundary.multipolygon",
    "topo.boundary.collection",
    "topo.predicate.intersects",
    "topo.predicate.disjoint",
    "topo.predicate.contains",
    "topo.predicate.within",
    "topo.predicate.covers",
    "topo.predicate.covered_by",
    "topo.predicate.crosses",
    "topo.predicate.overlaps",
    "topo.predicate.touches",
    "topo.predicate.equals",
    "topo.predicate.relate_pattern",
    "topo.distance.point_point",
    "topo.distance.segment",
    "topo.distance.polygon_containment",
    "topo.distance.multi_recursion",
    "topo.distance.dwithin",
    "topo.distance.dfullywithin",
    "topo.distance.knn_tie_check",
    "topo.distance.range_margin_check",
    "topo.convex_hull",
    "topo.centroid",
    "topo.measures.area",
    "topo.measures.length",
    "topo.editing.set_point",
    "topo.editing.polygonize",
    "topo.editing.dump_rings",
    "topo.editing.force_polygon_cw",
    "topo.editing.geometry_n",
    "topo.editing.collection_extract",
    "topo.editing.boundary",
    "topo.editing.convex_hull",
    "topo.editing.envelope",
    "topo.editing.reverse",
    "topo.editing.point_n",
    "topo.editing.collect",
    "topo.prepared.build",
    "topo.prepared.predicate",
    "topo.segment.intersection_proper",
    "topo.segment.intersection_collinear",
    "topo.segment.intersection_endpoint",
];

/// One registered probe: its name and its hit counter. Entries are leaked on
/// first registration and live for the process lifetime, so `&'static`
/// references to them can be handed out freely.
struct ProbeEntry {
    name: &'static str,
    count: AtomicU64,
}

/// Slot count of the open-addressed table. Power of two, comfortably above
/// the ~100 static probes of the workspace plus test-only names; the table
/// panics rather than silently dropping probes if it ever fills up.
const TABLE_SLOTS: usize = 1024;

/// The global probe table. A null slot is empty; a non-null slot points at a
/// leaked [`ProbeEntry`] and is never unlinked (resets only zero counters),
/// so readers never observe a dangling pointer.
static TABLE: [AtomicPtr<ProbeEntry>; TABLE_SLOTS] =
    [const { AtomicPtr::new(ptr::null_mut()) }; TABLE_SLOTS];

fn hash(name: &str) -> usize {
    // FNV-1a; cheap and good enough for short dotted probe names.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as usize & (TABLE_SLOTS - 1)
}

/// Read-only lookup: walks the probe chain of `name` and returns its entry
/// only when the **stored key matches the full name**. Colliding names that
/// landed in the chain are stepped over, and a never-registered name returns
/// `None` — it can never alias another probe's counter.
fn find(name: &str) -> Option<&'static ProbeEntry> {
    let mut slot = hash(name);
    for _ in 0..TABLE_SLOTS {
        let current = TABLE[slot].load(Ordering::Acquire);
        if current.is_null() {
            return None;
        }
        // Safety: non-null slots point at leaked, immortal entries.
        let existing = unsafe { &*current };
        if existing.name == name {
            return Some(existing);
        }
        slot = (slot + 1) & (TABLE_SLOTS - 1);
    }
    None
}

/// Finds the entry for `name`, registering it first if needed.
fn find_or_register(name: &'static str) -> &'static ProbeEntry {
    let mut slot = hash(name);
    for _ in 0..TABLE_SLOTS {
        let current = TABLE[slot].load(Ordering::Acquire);
        if current.is_null() {
            let entry = Box::into_raw(Box::new(ProbeEntry {
                name,
                count: AtomicU64::new(0),
            }));
            match TABLE[slot].compare_exchange(
                ptr::null_mut(),
                entry,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                // Safety: the entry was just leaked and is never freed.
                Ok(_) => return unsafe { &*entry },
                Err(_) => {
                    // Lost the race; free our candidate and re-examine the
                    // slot (the winner may have registered this very name).
                    drop(unsafe { Box::from_raw(entry) });
                    continue;
                }
            }
        }
        // Safety: non-null slots point at leaked, immortal entries.
        let existing = unsafe { &*current };
        if existing.name == name {
            return existing;
        }
        slot = (slot + 1) & (TABLE_SLOTS - 1);
    }
    panic!("coverage probe table is full ({TABLE_SLOTS} slots)");
}

/// Records that the probe `name` executed. Unknown probe names are recorded
/// too (they simply do not count towards the static denominator).
pub fn hit(name: &'static str) {
    let entry = find_or_register(name);
    entry.count.fetch_add(1, Ordering::Relaxed);
    local::record(entry);
}

/// How often `name` was hit since the last [`reset`].
pub fn hit_count(name: &'static str) -> u64 {
    hit_count_of(name)
}

/// [`hit_count`] for names that are not `'static` (snapshot captures, report
/// tooling). Never-registered names count 0.
pub fn hit_count_of(name: &str) -> u64 {
    find(name).map_or(0, |e| e.count.load(Ordering::Relaxed))
}

/// Clears all recorded probe hits (names stay registered; counters go to 0).
pub fn reset() {
    for slot in &TABLE {
        let current = slot.load(Ordering::Acquire);
        if !current.is_null() {
            // Safety: non-null slots point at leaked, immortal entries.
            unsafe { &*current }.count.store(0, Ordering::Relaxed);
        }
    }
}

/// Returns the set of probes hit since the last reset.
pub fn hits() -> HashSet<&'static str> {
    let mut set = HashSet::new();
    for slot in &TABLE {
        let current = slot.load(Ordering::Acquire);
        if !current.is_null() {
            // Safety: non-null slots point at leaked, immortal entries.
            let entry = unsafe { &*current };
            if entry.count.load(Ordering::Relaxed) > 0 {
                set.insert(entry.name);
            }
        }
    }
    set
}

/// Number of probes of a given list that were hit. Each name is looked up
/// individually with the full key verified, so a never-hit (or never even
/// registered) probe name always counts 0 — a slot collision with a hot
/// probe cannot manufacture a phantom hit.
pub fn hit_count_in(probes: &[&str]) -> usize {
    probes.iter().filter(|p| hit_count_of(p) > 0).count()
}

/// Coverage summary of this crate's probes: `(hit, total, fraction)`.
pub fn topo_coverage() -> (usize, usize, f64) {
    let hit = hit_count_in(TOPO_PROBES);
    let total = TOPO_PROBES.len();
    (hit, total, hit as f64 / total as f64)
}

// ---------------------------------------------------------------------------
// Snapshots and cold-probe maps
// ---------------------------------------------------------------------------

/// An immutable per-probe hit-count snapshot.
///
/// Snapshots are plain sorted maps, cheap to diff and merge, and carry no
/// connection to the live registry: code that consumes one (the
/// coverage-guided campaign runner) sees a frozen view, never the
/// still-moving global counters. They are built by absorbing the
/// thread-local deltas of [`local::take`] — deliberately *not* by reading
/// the global counters, whose state depends on what every other thread in
/// the process happens to be doing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageSnapshot {
    counts: BTreeMap<&'static str, u64>,
}

impl CoverageSnapshot {
    /// An empty snapshot (every probe cold).
    pub fn new() -> Self {
        CoverageSnapshot::default()
    }

    /// Adds a delta (e.g. one iteration's [`local::take`] tally) into this
    /// snapshot.
    pub fn absorb(&mut self, delta: &[(&'static str, u64)]) {
        for &(name, count) in delta {
            *self.counts.entry(name).or_insert(0) += count;
        }
    }

    /// The recorded count for `name` (0 when absent).
    pub fn count(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Every recorded `(probe, count)` entry, in sorted probe order. Used
    /// by the distributed campaign wire codec, which ships the frozen
    /// warm-up snapshot to worker processes verbatim.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&name, &count)| (name, count))
    }

    /// Probes recorded with a non-zero count, in sorted order.
    pub fn hit_probes(&self) -> Vec<&'static str> {
        self.counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Probe names whose count grew relative to `earlier` (including probes
    /// absent there), in sorted order — the "what did the last span of work
    /// newly exercise" diff.
    pub fn newly_hit_since(&self, earlier: &CoverageSnapshot) -> Vec<&'static str> {
        self.counts
            .iter()
            .filter(|(name, &count)| count > earlier.count(name))
            .map(|(&n, _)| n)
            .collect()
    }
}

/// The cold-probe classification of a [`CoverageSnapshot`] against a probe
/// universe: a probe is *cold* when the snapshot never saw it hit. This is
/// the signal the coverage-guided generator steers towards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColdProbeMap {
    cold: BTreeSet<&'static str>,
}

impl ColdProbeMap {
    /// Classifies every probe of `universe` against the snapshot.
    pub fn from_snapshot(snapshot: &CoverageSnapshot, universe: &[&'static str]) -> Self {
        ColdProbeMap {
            cold: universe
                .iter()
                .copied()
                .filter(|p| snapshot.count(p) == 0)
                .collect(),
        }
    }

    /// Whether `name` is cold (in the universe and never hit).
    pub fn is_cold(&self, name: &str) -> bool {
        self.cold.contains(name)
    }

    /// How many of the given probes are cold.
    pub fn cold_count_in(&self, probes: &[&str]) -> usize {
        probes.iter().filter(|p| self.is_cold(p)).count()
    }

    /// Number of cold probes.
    pub fn len(&self) -> usize {
        self.cold.len()
    }

    /// Whether every universe probe was hit.
    pub fn is_empty(&self) -> bool {
        self.cold.is_empty()
    }

    /// The cold probes, in sorted order.
    pub fn cold_probes(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.cold.iter().copied()
    }
}

// ---------------------------------------------------------------------------
// Thread-local delta recording
// ---------------------------------------------------------------------------

/// Scoped, thread-local probe-delta recording (see the module docs).
///
/// Probes fire per row-pair inside join scans, so the recorder's per-hit
/// cost matters: one thread-local access and a borrow-flag check when
/// inactive (every engine user outside a campaign pays only that), plus one
/// `Vec` push of the immortal entry reference when active — no hashing, no
/// branching on probe identity. Aggregation (group by entry address,
/// resolve names, sort) is deferred to [`take`], which runs once per
/// campaign iteration instead of once per hit.
pub mod local {
    use super::ProbeEntry;
    use std::cell::RefCell;

    thread_local! {
        static LOG: RefCell<Option<Vec<&'static ProbeEntry>>> = const { RefCell::new(None) };
    }

    /// Starts (or restarts, discarding any running log) recording probe
    /// hits of the calling thread.
    pub fn start() {
        LOG.with(|l| *l.borrow_mut() = Some(Vec::new()));
    }

    /// Stops recording and returns the per-probe tally sorted by probe
    /// name. Returns an empty vector when [`start`] was never called on
    /// this thread.
    pub fn take() -> Vec<(&'static str, u64)> {
        let mut entries: Vec<&'static ProbeEntry> =
            LOG.with(|l| l.borrow_mut().take()).unwrap_or_default();
        // Entries are unique per name (the registry dedups on registration),
        // so grouping by address is grouping by probe.
        entries.sort_unstable_by_key(|e| *e as *const ProbeEntry as usize);
        let mut delta: Vec<(&'static str, u64)> = Vec::new();
        let mut i = 0;
        while i < entries.len() {
            let first = entries[i];
            let mut count = 0u64;
            while i < entries.len() && std::ptr::eq(entries[i], first) {
                count += 1;
                i += 1;
            }
            delta.push((first.name, count));
        }
        delta.sort_unstable();
        delta
    }

    /// Runs `f` with recording active and returns its value alongside the
    /// probe delta it produced — the [`start`]/[`take`] pair as one scoped
    /// measurement. Any recording already active on the calling thread is
    /// discarded, exactly as a bare [`start`] would.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Vec<(&'static str, u64)>) {
        start();
        let value = f();
        (value, take())
    }

    /// Called by [`super::hit`] with the probe's immortal registry entry:
    /// one thread-local access, one borrow-flag check, one `Vec` push.
    pub(super) fn record(entry: &'static ProbeEntry) {
        LOG.with(|l| {
            if let Some(log) = l.borrow_mut().as_mut() {
                log.push(entry);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests below mutate the process-global registry; serialize them so the
    /// default multi-threaded test harness cannot interleave their resets.
    static EXCLUSIVE: Mutex<()> = Mutex::new(());

    #[test]
    fn hits_accumulate_and_reset() {
        let _guard = EXCLUSIVE.lock().unwrap();
        // Unique names so concurrently-running relate/predicate tests (which
        // legitimately hit the real probes) cannot perturb the counts.
        reset();
        hit("cov.unit.a");
        hit("cov.unit.a");
        hit("cov.unit.b");
        assert_eq!(hit_count("cov.unit.a"), 2);
        assert_eq!(hit_count("cov.unit.b"), 1);
        hit("topo.predicate.intersects");
        let (h, total, frac) = topo_coverage();
        assert!(h >= 1);
        assert_eq!(total, TOPO_PROBES.len());
        assert!(frac > 0.0 && frac <= 1.0);
        reset();
        assert_eq!(hit_count("cov.unit.a"), 0);
        assert_eq!(hit_count("cov.unit.b"), 0);
    }

    #[test]
    fn unknown_probes_do_not_inflate_coverage() {
        let _guard = EXCLUSIVE.lock().unwrap();
        hit("not.a.real.probe");
        assert!(hits().contains("not.a.real.probe"));
        // Unknown names are recorded but can never count towards the static
        // denominator, which only ever tallies the TOPO_PROBES list.
        assert!(!TOPO_PROBES.contains(&"not.a.real.probe"));
        // Only the name that was actually hit counts; a never-hit name
        // counts 0 even alongside a hot one, and a never-registered list
        // reports a clean zero.
        assert_eq!(hit_count_in(&["not.a.real.probe", "also.not.real"]), 1);
        assert_eq!(hit_count_in(&["also.not.real"]), 0);
        assert_eq!(hit_count_of("also.not.real"), 0);
        assert_eq!(
            hit_count_in(&["never.registered.1", "never.registered.2"]),
            0
        );
    }

    #[test]
    fn colliding_probe_names_never_alias() {
        let _guard = EXCLUSIVE.lock().unwrap();
        // These three names share one open-addressing slot (FNV-1a mod 1024),
        // so they occupy a single probe chain. Counting and membership must
        // still verify the full key: hitting one of them must not make its
        // chain neighbours look hit (the phantom-hit regression).
        let colliding: [&'static str; 3] =
            ["cov.collide.0", "cov.collide.1214", "cov.collide.2228"];
        assert!(
            colliding.iter().all(|n| hash(n) == hash(colliding[0])),
            "test names no longer collide; recompute them"
        );
        reset();
        hit(colliding[0]);
        hit(colliding[0]);
        assert_eq!(hit_count(colliding[0]), 2);
        assert_eq!(hit_count(colliding[1]), 0);
        assert_eq!(hit_count(colliding[2]), 0);
        assert_eq!(hit_count_in(&colliding), 1);
        // Each colliding probe keeps its own independent counter.
        hit(colliding[2]);
        assert_eq!(hit_count(colliding[0]), 2);
        assert_eq!(hit_count(colliding[1]), 0);
        assert_eq!(hit_count(colliding[2]), 1);
        assert_eq!(hit_count_in(&colliding), 2);
    }

    #[test]
    fn probe_names_are_unique() {
        let set: HashSet<_> = TOPO_PROBES.iter().collect();
        assert_eq!(set.len(), TOPO_PROBES.len());
    }

    #[test]
    fn concurrent_hits_are_all_counted() {
        // Contention-free counting: every worker hammers its own probe plus
        // one shared probe; the totals must be exact, not approximate.
        let _guard = EXCLUSIVE.lock().unwrap();
        reset();
        let names: &[&'static str] = &[
            "cov.test.worker0",
            "cov.test.worker1",
            "cov.test.worker2",
            "cov.test.worker3",
        ];
        std::thread::scope(|scope| {
            for name in names {
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        hit(name);
                        hit("cov.test.shared");
                    }
                });
            }
        });
        for name in names {
            assert_eq!(hit_count(name), 10_000);
        }
        assert_eq!(hit_count("cov.test.shared"), 40_000);
    }

    #[test]
    fn snapshots_diff_and_classify_cold_probes() {
        let universe: [&'static str; 3] = ["cov.snap.a", "cov.snap.b", "cov.snap.c"];
        let mut before = CoverageSnapshot::new();
        before.absorb(&[("cov.snap.a", 1)]);
        assert_eq!(before.count("cov.snap.a"), 1);
        assert_eq!(before.count("cov.snap.b"), 0);
        assert_eq!(before.hit_probes(), vec!["cov.snap.a"]);

        let mut after = before.clone();
        after.absorb(&[("cov.snap.a", 1), ("cov.snap.b", 1)]);
        assert_eq!(
            after.newly_hit_since(&before),
            vec!["cov.snap.a", "cov.snap.b"]
        );

        let cold = ColdProbeMap::from_snapshot(&after, &universe);
        assert!(!cold.is_cold("cov.snap.a"));
        assert!(!cold.is_cold("cov.snap.b"));
        assert!(cold.is_cold("cov.snap.c"));
        assert!(!cold.is_cold("cov.not.in.universe"));
        assert_eq!(cold.len(), 1);
        assert_eq!(cold.cold_count_in(&universe), 1);
        assert_eq!(cold.cold_probes().collect::<Vec<_>>(), vec!["cov.snap.c"]);
    }

    #[test]
    fn snapshot_absorbs_deltas() {
        let mut snapshot = CoverageSnapshot::new();
        snapshot.absorb(&[("cov.delta.a", 2), ("cov.delta.b", 1)]);
        snapshot.absorb(&[("cov.delta.a", 3)]);
        assert_eq!(snapshot.count("cov.delta.a"), 5);
        assert_eq!(snapshot.count("cov.delta.b"), 1);
        assert_eq!(snapshot.count("cov.delta.c"), 0);
    }

    #[test]
    fn local_recorder_is_scoped_to_the_thread() {
        // No EXCLUSIVE guard needed: the recorder is thread-local by design,
        // which is exactly what this test demonstrates.
        local::start();
        hit("cov.local.mine");
        hit("cov.local.mine");
        let other = std::thread::spawn(|| {
            // Hits on another thread are invisible to this thread's tally
            // (and that thread never started recording, so its hits only go
            // to the global counters).
            hit("cov.local.other");
        });
        other.join().unwrap();
        let delta = local::take();
        assert_eq!(delta, vec![("cov.local.mine", 2)]);
        // Recording stopped: further hits are not tallied.
        hit("cov.local.mine");
        assert_eq!(local::take(), Vec::new());
    }

    #[test]
    fn measure_scopes_a_recording_around_a_closure() {
        let (value, delta) = local::measure(|| {
            hit("cov.local.measured");
            hit("cov.local.measured");
            7
        });
        assert_eq!(value, 7);
        assert_eq!(delta, vec![("cov.local.measured", 2)]);
        // The recording ended with the closure.
        hit("cov.local.measured");
        assert_eq!(local::take(), Vec::new());
    }
}
