//! Probe-based coverage instrumentation.
//!
//! The paper measures gcov line coverage of PostGIS and GEOS under three
//! configurations (Table 5) and over time (Figure 8b/8c). Since this
//! reproduction is a Rust workspace rather than an instrumented C build, the
//! same experiment is expressed with named *probes*: every component of the
//! geometry library and SQL engine registers a static probe name and calls
//! [`hit`] when it executes. Coverage is the fraction of registered probes
//! hit since the last [`reset`]. The measurement intent (which components a
//! test campaign exercises) is identical; only the unit differs.

use parking_lot::Mutex;
use std::collections::HashSet;

/// The complete list of probes in the `spatter-topo` crate ("GEOS analog"
/// component). Keeping the list static gives a stable denominator.
pub const TOPO_PROBES: &[&str] = &[
    "topo.relate.empty_case",
    "topo.relate.noding",
    "topo.relate.node_labelling",
    "topo.relate.edge_labelling",
    "topo.relate.area_side_analysis",
    "topo.relate.point_point",
    "topo.relate.point_line",
    "topo.relate.point_polygon",
    "topo.relate.line_line",
    "topo.relate.line_polygon",
    "topo.relate.polygon_polygon",
    "topo.relate.collection",
    "topo.locate.point_component",
    "topo.locate.line_component",
    "topo.locate.polygon_component",
    "topo.locate.mod2_boundary",
    "topo.locate.point_in_ring",
    "topo.boundary.point",
    "topo.boundary.linestring",
    "topo.boundary.polygon",
    "topo.boundary.multilinestring",
    "topo.boundary.multipolygon",
    "topo.boundary.collection",
    "topo.predicate.intersects",
    "topo.predicate.disjoint",
    "topo.predicate.contains",
    "topo.predicate.within",
    "topo.predicate.covers",
    "topo.predicate.covered_by",
    "topo.predicate.crosses",
    "topo.predicate.overlaps",
    "topo.predicate.touches",
    "topo.predicate.equals",
    "topo.predicate.relate_pattern",
    "topo.distance.point_point",
    "topo.distance.segment",
    "topo.distance.polygon_containment",
    "topo.distance.multi_recursion",
    "topo.distance.dwithin",
    "topo.distance.dfullywithin",
    "topo.convex_hull",
    "topo.centroid",
    "topo.measures.area",
    "topo.measures.length",
    "topo.editing.set_point",
    "topo.editing.polygonize",
    "topo.editing.dump_rings",
    "topo.editing.force_polygon_cw",
    "topo.editing.geometry_n",
    "topo.editing.collection_extract",
    "topo.editing.boundary",
    "topo.editing.convex_hull",
    "topo.editing.envelope",
    "topo.editing.reverse",
    "topo.editing.point_n",
    "topo.editing.collect",
    "topo.prepared.build",
    "topo.prepared.predicate",
    "topo.segment.intersection_proper",
    "topo.segment.intersection_collinear",
    "topo.segment.intersection_endpoint",
];

static HITS: Mutex<Option<HashSet<&'static str>>> = Mutex::new(None);

/// Records that the probe `name` executed. Unknown probe names are recorded
/// too (they simply do not count towards the static denominator).
pub fn hit(name: &'static str) {
    let mut guard = HITS.lock();
    guard.get_or_insert_with(HashSet::new).insert(name);
}

/// Clears all recorded probe hits.
pub fn reset() {
    *HITS.lock() = Some(HashSet::new());
}

/// Returns the set of probes hit since the last reset.
pub fn hits() -> HashSet<&'static str> {
    HITS.lock().clone().unwrap_or_default()
}

/// Number of probes hit that belong to a given probe list.
pub fn hit_count_in(probes: &[&str]) -> usize {
    let hits = hits();
    probes.iter().filter(|p| hits.contains(*p)).count()
}

/// Coverage summary of this crate's probes: `(hit, total, fraction)`.
pub fn topo_coverage() -> (usize, usize, f64) {
    let hit = hit_count_in(TOPO_PROBES);
    let total = TOPO_PROBES.len();
    (hit, total, hit as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_accumulate_and_reset() {
        reset();
        assert_eq!(topo_coverage().0, 0);
        hit("topo.predicate.intersects");
        hit("topo.predicate.intersects");
        hit("topo.predicate.disjoint");
        let (h, total, frac) = topo_coverage();
        assert!(h >= 2);
        assert_eq!(total, TOPO_PROBES.len());
        assert!(frac > 0.0 && frac < 1.0);
        reset();
        assert_eq!(topo_coverage().0, 0);
    }

    #[test]
    fn unknown_probes_do_not_inflate_coverage() {
        reset();
        hit("not.a.real.probe");
        assert_eq!(topo_coverage().0, 0);
        assert!(hits().contains("not.a.real.probe"));
    }

    #[test]
    fn probe_names_are_unique() {
        let set: HashSet<_> = TOPO_PROBES.iter().collect();
        assert_eq!(set.len(), TOPO_PROBES.len());
    }
}
