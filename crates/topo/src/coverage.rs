//! Probe-based coverage instrumentation.
//!
//! The paper measures gcov line coverage of PostGIS and GEOS under three
//! configurations (Table 5) and over time (Figure 8b/8c). Since this
//! reproduction is a Rust workspace rather than an instrumented C build, the
//! same experiment is expressed with named *probes*: every component of the
//! geometry library and SQL engine registers a static probe name and calls
//! [`hit`] when it executes. Coverage is the fraction of registered probes
//! hit since the last [`reset`]. The measurement intent (which components a
//! test campaign exercises) is identical; only the unit differs.
//!
//! # Concurrency
//!
//! Probes sit on the hottest paths of the engine (every relate call, every
//! expression evaluation), and the sharded campaign runner executes
//! iterations on many worker threads at once. The registry is therefore a
//! fixed-capacity, open-addressed hash table of per-probe atomic counters:
//! recording a hit after the first registration of a name is one relaxed
//! load plus one relaxed `fetch_add` on that probe's own counter — no lock,
//! no shared cache line between distinct probes. The previous implementation
//! (a global `Mutex<HashSet>`) serialized every probe hit across all workers.

use std::collections::HashSet;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// The complete list of probes in the `spatter-topo` crate ("GEOS analog"
/// component). Keeping the list static gives a stable denominator.
pub const TOPO_PROBES: &[&str] = &[
    "topo.relate.empty_case",
    "topo.relate.noding",
    "topo.relate.node_labelling",
    "topo.relate.edge_labelling",
    "topo.relate.area_side_analysis",
    "topo.relate.point_point",
    "topo.relate.point_line",
    "topo.relate.point_polygon",
    "topo.relate.line_line",
    "topo.relate.line_polygon",
    "topo.relate.polygon_polygon",
    "topo.relate.collection",
    "topo.locate.point_component",
    "topo.locate.line_component",
    "topo.locate.polygon_component",
    "topo.locate.mod2_boundary",
    "topo.locate.point_in_ring",
    "topo.boundary.point",
    "topo.boundary.linestring",
    "topo.boundary.polygon",
    "topo.boundary.multilinestring",
    "topo.boundary.multipolygon",
    "topo.boundary.collection",
    "topo.predicate.intersects",
    "topo.predicate.disjoint",
    "topo.predicate.contains",
    "topo.predicate.within",
    "topo.predicate.covers",
    "topo.predicate.covered_by",
    "topo.predicate.crosses",
    "topo.predicate.overlaps",
    "topo.predicate.touches",
    "topo.predicate.equals",
    "topo.predicate.relate_pattern",
    "topo.distance.point_point",
    "topo.distance.segment",
    "topo.distance.polygon_containment",
    "topo.distance.multi_recursion",
    "topo.distance.dwithin",
    "topo.distance.dfullywithin",
    "topo.distance.knn_tie_check",
    "topo.distance.range_margin_check",
    "topo.convex_hull",
    "topo.centroid",
    "topo.measures.area",
    "topo.measures.length",
    "topo.editing.set_point",
    "topo.editing.polygonize",
    "topo.editing.dump_rings",
    "topo.editing.force_polygon_cw",
    "topo.editing.geometry_n",
    "topo.editing.collection_extract",
    "topo.editing.boundary",
    "topo.editing.convex_hull",
    "topo.editing.envelope",
    "topo.editing.reverse",
    "topo.editing.point_n",
    "topo.editing.collect",
    "topo.prepared.build",
    "topo.prepared.predicate",
    "topo.segment.intersection_proper",
    "topo.segment.intersection_collinear",
    "topo.segment.intersection_endpoint",
];

/// One registered probe: its name and its hit counter. Entries are leaked on
/// first registration and live for the process lifetime, so `&'static`
/// references to them can be handed out freely.
struct ProbeEntry {
    name: &'static str,
    count: AtomicU64,
}

/// Slot count of the open-addressed table. Power of two, comfortably above
/// the ~100 static probes of the workspace plus test-only names; the table
/// panics rather than silently dropping probes if it ever fills up.
const TABLE_SLOTS: usize = 1024;

/// The global probe table. A null slot is empty; a non-null slot points at a
/// leaked [`ProbeEntry`] and is never unlinked (resets only zero counters),
/// so readers never observe a dangling pointer.
static TABLE: [AtomicPtr<ProbeEntry>; TABLE_SLOTS] =
    [const { AtomicPtr::new(ptr::null_mut()) }; TABLE_SLOTS];

fn hash(name: &str) -> usize {
    // FNV-1a; cheap and good enough for short dotted probe names.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as usize & (TABLE_SLOTS - 1)
}

/// Finds the entry for `name`, registering it when `insert` is true.
fn lookup(name: &'static str, insert: bool) -> Option<&'static ProbeEntry> {
    let mut slot = hash(name);
    for _ in 0..TABLE_SLOTS {
        let current = TABLE[slot].load(Ordering::Acquire);
        if current.is_null() {
            if !insert {
                return None;
            }
            let entry = Box::into_raw(Box::new(ProbeEntry {
                name,
                count: AtomicU64::new(0),
            }));
            match TABLE[slot].compare_exchange(
                ptr::null_mut(),
                entry,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                // Safety: the entry was just leaked and is never freed.
                Ok(_) => return Some(unsafe { &*entry }),
                Err(_) => {
                    // Lost the race; free our candidate and re-examine the
                    // slot (the winner may have registered this very name).
                    drop(unsafe { Box::from_raw(entry) });
                    continue;
                }
            }
        }
        // Safety: non-null slots point at leaked, immortal entries.
        let existing = unsafe { &*current };
        if existing.name == name {
            return Some(existing);
        }
        slot = (slot + 1) & (TABLE_SLOTS - 1);
    }
    panic!("coverage probe table is full ({TABLE_SLOTS} slots)");
}

/// Records that the probe `name` executed. Unknown probe names are recorded
/// too (they simply do not count towards the static denominator).
pub fn hit(name: &'static str) {
    if let Some(entry) = lookup(name, true) {
        entry.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// How often `name` was hit since the last [`reset`].
pub fn hit_count(name: &'static str) -> u64 {
    lookup(name, false).map_or(0, |e| e.count.load(Ordering::Relaxed))
}

/// Clears all recorded probe hits (names stay registered; counters go to 0).
pub fn reset() {
    for slot in &TABLE {
        let current = slot.load(Ordering::Acquire);
        if !current.is_null() {
            // Safety: non-null slots point at leaked, immortal entries.
            unsafe { &*current }.count.store(0, Ordering::Relaxed);
        }
    }
}

/// Returns the set of probes hit since the last reset.
pub fn hits() -> HashSet<&'static str> {
    let mut set = HashSet::new();
    for slot in &TABLE {
        let current = slot.load(Ordering::Acquire);
        if !current.is_null() {
            // Safety: non-null slots point at leaked, immortal entries.
            let entry = unsafe { &*current };
            if entry.count.load(Ordering::Relaxed) > 0 {
                set.insert(entry.name);
            }
        }
    }
    set
}

/// Number of probes hit that belong to a given probe list.
pub fn hit_count_in(probes: &[&str]) -> usize {
    let hits = hits();
    probes.iter().filter(|p| hits.contains(*p)).count()
}

/// Coverage summary of this crate's probes: `(hit, total, fraction)`.
pub fn topo_coverage() -> (usize, usize, f64) {
    let hit = hit_count_in(TOPO_PROBES);
    let total = TOPO_PROBES.len();
    (hit, total, hit as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests below mutate the process-global registry; serialize them so the
    /// default multi-threaded test harness cannot interleave their resets.
    static EXCLUSIVE: Mutex<()> = Mutex::new(());

    #[test]
    fn hits_accumulate_and_reset() {
        let _guard = EXCLUSIVE.lock().unwrap();
        // Unique names so concurrently-running relate/predicate tests (which
        // legitimately hit the real probes) cannot perturb the counts.
        reset();
        hit("cov.unit.a");
        hit("cov.unit.a");
        hit("cov.unit.b");
        assert_eq!(hit_count("cov.unit.a"), 2);
        assert_eq!(hit_count("cov.unit.b"), 1);
        hit("topo.predicate.intersects");
        let (h, total, frac) = topo_coverage();
        assert!(h >= 1);
        assert_eq!(total, TOPO_PROBES.len());
        assert!(frac > 0.0 && frac <= 1.0);
        reset();
        assert_eq!(hit_count("cov.unit.a"), 0);
        assert_eq!(hit_count("cov.unit.b"), 0);
    }

    #[test]
    fn unknown_probes_do_not_inflate_coverage() {
        let _guard = EXCLUSIVE.lock().unwrap();
        hit("not.a.real.probe");
        assert!(hits().contains("not.a.real.probe"));
        // Unknown names are recorded but can never count towards the static
        // denominator, which only ever tallies the TOPO_PROBES list.
        assert!(!TOPO_PROBES.contains(&"not.a.real.probe"));
        assert_eq!(hit_count_in(&["not.a.real.probe", "also.not.real"]), 1);
    }

    #[test]
    fn probe_names_are_unique() {
        let set: HashSet<_> = TOPO_PROBES.iter().collect();
        assert_eq!(set.len(), TOPO_PROBES.len());
    }

    #[test]
    fn concurrent_hits_are_all_counted() {
        // Contention-free counting: every worker hammers its own probe plus
        // one shared probe; the totals must be exact, not approximate.
        let _guard = EXCLUSIVE.lock().unwrap();
        reset();
        let names: &[&'static str] = &[
            "cov.test.worker0",
            "cov.test.worker1",
            "cov.test.worker2",
            "cov.test.worker3",
        ];
        std::thread::scope(|scope| {
            for name in names {
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        hit(name);
                        hit("cov.test.shared");
                    }
                });
            }
        });
        for name in names {
            assert_eq!(hit_count(name), 10_000);
        }
        assert_eq!(hit_count("cov.test.shared"), 40_000);
    }
}
