//! Centroid computation (`ST_Centroid`).
//!
//! Follows the usual dimensional hierarchy: if the geometry has areal parts
//! the centroid is the area-weighted centroid of those parts; otherwise, if
//! it has linear parts, the length-weighted centroid; otherwise the average
//! of the points.

use crate::coverage;
use spatter_geom::orientation::signed_area;
use spatter_geom::{Coord, Geometry, LineString, Point, Polygon};

/// Computes the centroid of a geometry; `None` for EMPTY input.
pub fn centroid(geometry: &Geometry) -> Option<Point> {
    coverage::hit("topo.centroid");
    let mut acc = Accumulator::default();
    acc.add(geometry);
    acc.finish().map(Point::from_coord)
}

#[derive(Default)]
struct Accumulator {
    area_sum: f64,
    area_cx: f64,
    area_cy: f64,
    len_sum: f64,
    len_cx: f64,
    len_cy: f64,
    pt_count: usize,
    pt_cx: f64,
    pt_cy: f64,
}

impl Accumulator {
    fn add(&mut self, geometry: &Geometry) {
        match geometry {
            Geometry::Point(p) => {
                if let Some(c) = p.coord {
                    self.pt_count += 1;
                    self.pt_cx += c.x;
                    self.pt_cy += c.y;
                }
            }
            Geometry::MultiPoint(m) => {
                for p in &m.points {
                    if let Some(c) = p.coord {
                        self.pt_count += 1;
                        self.pt_cx += c.x;
                        self.pt_cy += c.y;
                    }
                }
            }
            Geometry::LineString(l) => self.add_line(l),
            Geometry::MultiLineString(m) => m.lines.iter().for_each(|l| self.add_line(l)),
            Geometry::Polygon(p) => self.add_polygon(p),
            Geometry::MultiPolygon(m) => m.polygons.iter().for_each(|p| self.add_polygon(p)),
            Geometry::GeometryCollection(c) => c.geometries.iter().for_each(|g| self.add(g)),
        }
    }

    fn add_line(&mut self, line: &LineString) {
        for (a, b) in line.segments() {
            let len = a.distance(&b);
            let mid = a.midpoint(&b);
            self.len_sum += len;
            self.len_cx += mid.x * len;
            self.len_cy += mid.y * len;
        }
    }

    fn add_polygon(&mut self, polygon: &Polygon) {
        for (idx, ring) in polygon.rings.iter().enumerate() {
            if ring.coords.len() < 3 {
                continue;
            }
            let signed = signed_area(ring);
            let weight = if idx == 0 {
                signed.abs()
            } else {
                -signed.abs()
            };
            if let Some(c) = ring_centroid(ring) {
                self.area_sum += weight;
                self.area_cx += c.x * weight;
                self.area_cy += c.y * weight;
            }
        }
    }

    fn finish(&self) -> Option<Coord> {
        if self.area_sum.abs() > 0.0 {
            return Some(Coord::new(
                self.area_cx / self.area_sum,
                self.area_cy / self.area_sum,
            ));
        }
        if self.len_sum > 0.0 {
            return Some(Coord::new(
                self.len_cx / self.len_sum,
                self.len_cy / self.len_sum,
            ));
        }
        if self.pt_count > 0 {
            return Some(Coord::new(
                self.pt_cx / self.pt_count as f64,
                self.pt_cy / self.pt_count as f64,
            ));
        }
        None
    }
}

/// Area centroid of a single ring via the standard shoelace-weighted formula.
fn ring_centroid(ring: &LineString) -> Option<Coord> {
    let coords = &ring.coords;
    if coords.len() < 3 {
        return None;
    }
    let origin = coords[0];
    let mut area2 = 0.0;
    let mut cx = 0.0;
    let mut cy = 0.0;
    let n = coords.len() - 1;
    for i in 0..n {
        let p = coords[i];
        let q = coords[i + 1];
        let a = (p.x - origin.x) * (q.y - origin.y) - (q.x - origin.x) * (p.y - origin.y);
        area2 += a;
        cx += (p.x + q.x - 2.0 * origin.x) * a;
        cy += (p.y + q.y - 2.0 * origin.y) * a;
    }
    if area2 == 0.0 {
        return None;
    }
    Some(Coord::new(
        origin.x + cx / (3.0 * area2),
        origin.y + cy / (3.0 * area2),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    fn c(wkt: &str) -> Option<Coord> {
        centroid(&parse_wkt(wkt).unwrap()).and_then(|p| p.coord)
    }

    #[test]
    fn centroid_of_point_is_itself() {
        assert_eq!(c("POINT(3 7)"), Some(Coord::new(3.0, 7.0)));
    }

    #[test]
    fn centroid_of_multipoint_is_average() {
        assert_eq!(
            c("MULTIPOINT((0 0),(4 0),(4 4),(0 4))"),
            Some(Coord::new(2.0, 2.0))
        );
    }

    #[test]
    fn centroid_of_segment_is_midpoint() {
        assert_eq!(c("LINESTRING(0 0,4 0)"), Some(Coord::new(2.0, 0.0)));
    }

    #[test]
    fn centroid_of_square_is_center() {
        assert_eq!(
            c("POLYGON((0 0,4 0,4 4,0 4,0 0))"),
            Some(Coord::new(2.0, 2.0))
        );
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert_eq!(c("POINT EMPTY"), None);
        assert_eq!(c("GEOMETRYCOLLECTION EMPTY"), None);
    }

    #[test]
    fn areal_parts_dominate_lower_dimensions() {
        // The far-away point does not move the centroid of the polygon.
        assert_eq!(
            c("GEOMETRYCOLLECTION(POLYGON((0 0,4 0,4 4,0 4,0 0)),POINT(1000 1000))"),
            Some(Coord::new(2.0, 2.0))
        );
    }

    #[test]
    fn length_weighted_line_centroid() {
        // Two segments of lengths 4 and 2: centroid weighted towards the
        // longer one.
        let got = c("MULTILINESTRING((0 0,4 0),(0 0,0 2))").unwrap();
        assert!((got.x - (2.0 * 4.0 / 6.0)).abs() < 1e-12);
        assert!((got.y - (1.0 * 2.0 / 6.0)).abs() < 1e-12);
    }
}
