//! Named topological relationships (§2.2) expressed as DE-9IM patterns.
//!
//! These are the `<TopoRlt>` conditions Spatter's query template instantiates
//! (Figure 5). The set covers the OGC core (`ST_Intersects`, `ST_Disjoint`,
//! `ST_Contains`, `ST_Within`, `ST_Crosses`, `ST_Overlaps`, `ST_Touches`,
//! `ST_Equals`) plus the PostGIS/DuckDB-specific extensions the paper uses
//! (`ST_Covers`, `ST_CoveredBy`), and `ST_Relate` pattern matching.

use crate::coverage;
use crate::de9im::{IntersectionMatrix, Position};
use crate::relate::relate;
use spatter_geom::{Dimension, Geometry};

/// The named topological relationship predicates supported by the engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedPredicate {
    /// `ST_Intersects`
    Intersects,
    /// `ST_Disjoint`
    Disjoint,
    /// `ST_Contains`
    Contains,
    /// `ST_Within`
    Within,
    /// `ST_Covers` (PostGIS / DuckDB Spatial extension)
    Covers,
    /// `ST_CoveredBy` (PostGIS / DuckDB Spatial extension)
    CoveredBy,
    /// `ST_Crosses`
    Crosses,
    /// `ST_Overlaps`
    Overlaps,
    /// `ST_Touches`
    Touches,
    /// `ST_Equals`
    Equals,
}

impl NamedPredicate {
    /// Every named predicate.
    pub const ALL: [NamedPredicate; 10] = [
        NamedPredicate::Intersects,
        NamedPredicate::Disjoint,
        NamedPredicate::Contains,
        NamedPredicate::Within,
        NamedPredicate::Covers,
        NamedPredicate::CoveredBy,
        NamedPredicate::Crosses,
        NamedPredicate::Overlaps,
        NamedPredicate::Touches,
        NamedPredicate::Equals,
    ];

    /// The SQL function name (`ST_*`).
    pub fn function_name(&self) -> &'static str {
        match self {
            NamedPredicate::Intersects => "ST_Intersects",
            NamedPredicate::Disjoint => "ST_Disjoint",
            NamedPredicate::Contains => "ST_Contains",
            NamedPredicate::Within => "ST_Within",
            NamedPredicate::Covers => "ST_Covers",
            NamedPredicate::CoveredBy => "ST_CoveredBy",
            NamedPredicate::Crosses => "ST_Crosses",
            NamedPredicate::Overlaps => "ST_Overlaps",
            NamedPredicate::Touches => "ST_Touches",
            NamedPredicate::Equals => "ST_Equals",
        }
    }

    /// Parses a predicate from its SQL function name (case insensitive).
    pub fn from_function_name(name: &str) -> Option<NamedPredicate> {
        let upper = name.to_ascii_uppercase();
        NamedPredicate::ALL
            .into_iter()
            .find(|p| p.function_name().to_ascii_uppercase() == upper)
    }

    /// Whether an envelope-intersection index probe (R-tree / GiST `&&`
    /// strategy) can serve as a prefilter for this predicate: a pair can
    /// only satisfy it when the two envelopes interact. `ST_Disjoint` is the
    /// one supported predicate without index support — it holds precisely on
    /// pairs the index would prune, which is why real engines never plan an
    /// index scan for it.
    pub fn has_index_support(&self) -> bool {
        !matches!(self, NamedPredicate::Disjoint)
    }

    /// Evaluates the predicate on a pair of geometries.
    pub fn evaluate(&self, a: &Geometry, b: &Geometry) -> bool {
        match self {
            NamedPredicate::Intersects => intersects(a, b),
            NamedPredicate::Disjoint => disjoint(a, b),
            NamedPredicate::Contains => contains(a, b),
            NamedPredicate::Within => within(a, b),
            NamedPredicate::Covers => covers(a, b),
            NamedPredicate::CoveredBy => covered_by(a, b),
            NamedPredicate::Crosses => crosses(a, b),
            NamedPredicate::Overlaps => overlaps(a, b),
            NamedPredicate::Touches => touches(a, b),
            NamedPredicate::Equals => equals(a, b),
        }
    }
}

/// `ST_Intersects`: the geometries share at least one point.
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    coverage::hit("topo.predicate.intersects");
    !disjoint_matrix(&relate(a, b))
}

/// `ST_Disjoint`: the geometries share no point.
pub fn disjoint(a: &Geometry, b: &Geometry) -> bool {
    coverage::hit("topo.predicate.disjoint");
    disjoint_matrix(&relate(a, b))
}

fn disjoint_matrix(m: &IntersectionMatrix) -> bool {
    m.matches("FF*FF****").unwrap_or(false)
}

/// `ST_Within`: every point of `a` lies in `b` and the interiors share a
/// point.
pub fn within(a: &Geometry, b: &Geometry) -> bool {
    coverage::hit("topo.predicate.within");
    relate(a, b).matches("T*F**F***").unwrap_or(false)
}

/// `ST_Contains`: the converse of [`within`].
pub fn contains(a: &Geometry, b: &Geometry) -> bool {
    coverage::hit("topo.predicate.contains");
    relate(a, b).matches("T*****FF*").unwrap_or(false)
}

/// `ST_Covers`: no point of `b` lies outside `a`.
pub fn covers(a: &Geometry, b: &Geometry) -> bool {
    coverage::hit("topo.predicate.covers");
    let m = relate(a, b);
    if a.is_empty() || b.is_empty() {
        return false;
    }
    // At least one of the four interior/boundary intersections is non-empty
    // and nothing of b lies in a's exterior.
    let touches_somewhere = m.get(Position::Interior, Position::Interior).is_non_empty()
        || m.get(Position::Interior, Position::Boundary).is_non_empty()
        || m.get(Position::Boundary, Position::Interior).is_non_empty()
        || m.get(Position::Boundary, Position::Boundary).is_non_empty();
    let nothing_outside = !m.get(Position::Exterior, Position::Interior).is_non_empty()
        && !m.get(Position::Exterior, Position::Boundary).is_non_empty();
    touches_somewhere && nothing_outside
}

/// `ST_CoveredBy`: no point of `a` lies outside `b`.
pub fn covered_by(a: &Geometry, b: &Geometry) -> bool {
    coverage::hit("topo.predicate.covered_by");
    covers(b, a)
}

/// `ST_Crosses`: the geometries share interior points, but neither is
/// contained in the other, and the intersection has lower dimension than the
/// higher-dimensional operand.
pub fn crosses(a: &Geometry, b: &Geometry) -> bool {
    coverage::hit("topo.predicate.crosses");
    let da = a.dimension();
    let db = b.dimension();
    let m = relate(a, b);
    if da < db {
        m.matches("T*T******").unwrap_or(false)
    } else if da > db {
        m.matches("T*****T**").unwrap_or(false)
    } else if da == Dimension::One && db == Dimension::One {
        m.matches("0********").unwrap_or(false)
    } else {
        false
    }
}

/// `ST_Overlaps`: the geometries have the same dimension, share interior
/// points, and neither is contained in the other.
pub fn overlaps(a: &Geometry, b: &Geometry) -> bool {
    coverage::hit("topo.predicate.overlaps");
    let da = a.dimension();
    let db = b.dimension();
    if da != db {
        return false;
    }
    let m = relate(a, b);
    if da == Dimension::One {
        m.matches("1*T***T**").unwrap_or(false)
    } else {
        m.matches("T*T***T**").unwrap_or(false)
    }
}

/// `ST_Touches`: the geometries intersect, but only on their boundaries.
pub fn touches(a: &Geometry, b: &Geometry) -> bool {
    coverage::hit("topo.predicate.touches");
    let m = relate(a, b);
    m.matches("FT*******").unwrap_or(false)
        || m.matches("F**T*****").unwrap_or(false)
        || m.matches("F***T****").unwrap_or(false)
}

/// `ST_Equals`: the geometries represent the same point set.
pub fn equals(a: &Geometry, b: &Geometry) -> bool {
    coverage::hit("topo.predicate.equals");
    relate(a, b).matches("T*F**FFF*").unwrap_or(false)
}

/// `ST_Relate(a, b)`: the full DE-9IM string.
pub fn relate_string(a: &Geometry, b: &Geometry) -> String {
    relate(a, b).to_relate_string()
}

/// `ST_Relate(a, b, pattern)`: pattern matching against the matrix.
pub fn relate_pattern(a: &Geometry, b: &Geometry, pattern: &str) -> Option<bool> {
    coverage::hit("topo.predicate.relate_pattern");
    relate(a, b).matches(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    fn g(wkt: &str) -> Geometry {
        parse_wkt(wkt).unwrap()
    }

    #[test]
    fn listing1_covers_expected_result() {
        // The correct expectation of Listing 1: the line covers the point.
        assert!(covers(&g("LINESTRING(0 1,2 0)"), &g("POINT(0.2 0.9)")));
        // And the affine-equivalent pair of Listing 2.
        assert!(covers(&g("LINESTRING(1 1,0 0)"), &g("POINT(0.9 0.9)")));
    }

    #[test]
    fn intersects_and_disjoint_are_complementary() {
        let a = g("POLYGON((0 0,4 0,4 4,0 4,0 0))");
        let b = g("LINESTRING(-1 2,5 2)");
        let c = g("POINT(100 100)");
        assert!(intersects(&a, &b));
        assert!(!disjoint(&a, &b));
        assert!(disjoint(&a, &c));
        assert!(!intersects(&a, &c));
    }

    #[test]
    fn contains_and_within_are_converses() {
        let outer = g("POLYGON((0 0,10 0,10 10,0 10,0 0))");
        let inner = g("POLYGON((2 2,4 2,4 4,2 4,2 2))");
        assert!(contains(&outer, &inner));
        assert!(within(&inner, &outer));
        assert!(!contains(&inner, &outer));
        assert!(!within(&outer, &inner));
    }

    #[test]
    fn contains_excludes_boundary_only_cases() {
        // A point on the boundary is covered but not contained.
        let poly = g("POLYGON((0 0,4 0,4 4,0 4,0 0))");
        let p = g("POINT(0 2)");
        assert!(!contains(&poly, &p));
        assert!(covers(&poly, &p));
        assert!(!within(&p, &poly));
        assert!(covered_by(&p, &poly));
    }

    #[test]
    fn covers_differs_from_contains_on_boundary_lines() {
        let poly = g("POLYGON((0 0,4 0,4 4,0 4,0 0))");
        let edge = g("LINESTRING(0 0,4 0)");
        assert!(covers(&poly, &edge));
        assert!(!contains(&poly, &edge));
    }

    #[test]
    fn crosses_line_through_polygon() {
        let poly = g("POLYGON((0 0,4 0,4 4,0 4,0 0))");
        let line = g("LINESTRING(-1 2,5 2)");
        assert!(crosses(&line, &poly));
        assert!(crosses(&poly, &line));
        // A line fully inside the polygon does not cross it.
        let inside = g("LINESTRING(1 1,3 3)");
        assert!(!crosses(&inside, &poly));
    }

    #[test]
    fn crosses_lines_at_point() {
        assert!(crosses(
            &g("LINESTRING(0 0,4 4)"),
            &g("LINESTRING(0 4,4 0)")
        ));
        // Collinear overlap is not a crossing.
        assert!(!crosses(
            &g("LINESTRING(0 0,3 0)"),
            &g("LINESTRING(1 0,5 0)")
        ));
    }

    #[test]
    fn mysql_crosses_definition_listing3_expected() {
        // Listing 3's expected result: the multilinestring does NOT cross the
        // collection that contains it, because the intersection equals the
        // first geometry.
        let g1 = g("MULTILINESTRING((990 280,100 20))");
        let g2 = g("GEOMETRYCOLLECTION(MULTILINESTRING((990 280,100 20)),POLYGON((360 60,850 620,850 420,360 60)))");
        assert!(!crosses(&g1, &g2));
    }

    #[test]
    fn overlaps_requires_equal_dimensions_listing4_expected() {
        // Listing 4: the intersection of g2 and g1 equals g1, so they do not
        // overlap (expected result 0).
        let g1 = g("POLYGON((614 445,30 26,80 30,614 445))");
        let g2 = g("GEOMETRYCOLLECTION(POLYGON((614 445,30 26,80 30,614 445)),POLYGON((190 1010,40 90,90 40,190 1010)))");
        assert!(!overlaps(&g2, &g1));
        // And the property is invariant under swapping the axes.
        let g1s = g("POLYGON((445 614,26 30,30 80,445 614))");
        let g2s = g("GEOMETRYCOLLECTION(POLYGON((445 614,26 30,30 80,445 614)),POLYGON((1010 190,90 40,40 90,1010 190)))");
        assert!(!overlaps(&g2s, &g1s));
    }

    #[test]
    fn overlaps_of_partially_overlapping_squares() {
        let a = g("POLYGON((0 0,4 0,4 4,0 4,0 0))");
        let b = g("POLYGON((2 2,6 2,6 6,2 6,2 2))");
        assert!(overlaps(&a, &b));
        assert!(overlaps(&b, &a));
        // Dimension mismatch never overlaps.
        assert!(!overlaps(&a, &g("LINESTRING(-1 2,5 2)")));
    }

    #[test]
    fn touches_shares_only_boundary() {
        let a = g("POLYGON((0 0,4 0,4 4,0 4,0 0))");
        let b = g("POLYGON((4 0,8 0,8 4,4 4,4 0))");
        assert!(touches(&a, &b));
        let c = g("POLYGON((2 2,6 2,6 6,2 6,2 2))");
        assert!(!touches(&a, &c));
        // A point touching a line's endpoint.
        assert!(touches(&g("POINT(0 0)"), &g("LINESTRING(0 0,1 1)")));
        assert!(!touches(&g("POINT(0.5 0.5)"), &g("LINESTRING(0 0,1 1)")));
    }

    #[test]
    fn equals_ignores_representation() {
        assert!(equals(
            &g("LINESTRING(0 0,4 0)"),
            &g("LINESTRING(4 0,2 0,0 0)")
        ));
        assert!(equals(
            &g("POLYGON((0 0,4 0,4 4,0 4,0 0))"),
            &g("POLYGON((4 4,0 4,0 0,4 0,4 4))")
        ));
        assert!(!equals(
            &g("LINESTRING(0 0,4 0)"),
            &g("LINESTRING(0 0,3 0)")
        ));
    }

    #[test]
    fn relate_pattern_matches_relate_string() {
        let a = g("POLYGON((0 0,4 0,4 4,0 4,0 0))");
        let b = g("LINESTRING(-2 0,6 0)");
        assert_eq!(relate_string(&a, &b), "FF21F1102");
        assert_eq!(relate_pattern(&a, &b, "FF2*F****"), Some(true));
        assert_eq!(relate_pattern(&a, &b, "T********"), Some(false));
        assert_eq!(relate_pattern(&a, &b, "bad"), None);
    }

    #[test]
    fn empty_geometries_are_never_covered_or_covering() {
        let p = g("POINT(1 1)");
        let e = g("POINT EMPTY");
        assert!(!covers(&p, &e));
        assert!(!covers(&e, &p));
        assert!(!covered_by(&e, &p));
        assert!(disjoint(&p, &e));
        assert!(!intersects(&p, &e));
    }

    #[test]
    fn predicate_round_trip_by_name() {
        for p in NamedPredicate::ALL {
            assert_eq!(
                NamedPredicate::from_function_name(p.function_name()),
                Some(p)
            );
            assert_eq!(
                NamedPredicate::from_function_name(&p.function_name().to_lowercase()),
                Some(p)
            );
        }
        assert_eq!(NamedPredicate::from_function_name("ST_Buffer"), None);
    }

    #[test]
    fn evaluate_dispatches_to_the_right_predicate() {
        let a = g("POLYGON((0 0,4 0,4 4,0 4,0 0))");
        let b = g("POINT(2 2)");
        assert!(NamedPredicate::Contains.evaluate(&a, &b));
        assert!(NamedPredicate::Within.evaluate(&b, &a));
        assert!(NamedPredicate::Intersects.evaluate(&a, &b));
        assert!(!NamedPredicate::Disjoint.evaluate(&a, &b));
        assert!(!NamedPredicate::Touches.evaluate(&a, &b));
    }
}
