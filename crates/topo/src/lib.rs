//! # spatter-topo
//!
//! The computational-geometry half of the shared geometry library (the "GEOS
//! analog") used by the spatial SQL engine and the Spatter tester.
//!
//! The centerpiece is the DE-9IM relate engine (§2.2 of the paper,
//! Definitions 2.1–2.3): [`relate::relate`] computes the full
//! [`de9im::IntersectionMatrix`] between two geometries by noding the
//! geometries' segments, labelling every resulting node and sub-edge with its
//! location (interior / boundary / exterior) in each geometry, and adding the
//! area-interaction entries through ring-side analysis. On top of it,
//! [`predicates`] exposes the named topological relationships
//! (ST_Intersects, ST_Contains, ST_Covers, …) as matrix patterns.
//!
//! The crate also provides the spatial measurements and editing functions the
//! paper's derivative strategy applies (Table 1): boundary, convex hull,
//! centroid, envelope, DumpRings, GeometryN, CollectionExtract, SetPoint,
//! Polygonize, ForcePolygonCW, plus distance / DWithin / DFullyWithin used by
//! the RANGE functionality (§7), and a [`prepared::PreparedGeometry`]
//! optimization mirroring the component in which GEOS bugs were found
//! (Listing 7).
//!
//! Every non-trivial entry point records a named coverage probe
//! ([`coverage`]), which the benchmark harness uses to regenerate the
//! coverage experiments (Table 5, Figure 8).

pub mod boundary;
pub mod centroid;
pub mod convex_hull;
pub mod coverage;
pub mod de9im;
pub mod distance;
pub mod editing;
pub mod locate;
pub mod measures;
pub mod predicates;
pub mod prepared;
pub mod relate;
pub mod segment;

pub use de9im::IntersectionMatrix;
pub use locate::Location;
pub use predicates::NamedPredicate;
