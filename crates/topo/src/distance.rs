//! Distance computations and the RANGE predicates (`ST_Distance`,
//! `ST_DWithin`, `ST_DFullyWithin`), the functionality behind Listing 5 and
//! Listing 9.

use crate::coverage;
use crate::locate::{locate_in_polygon, Location};
use crate::segment::{point_segment_distance_sq, segment_segment_distance_sq};
use spatter_geom::{Coord, Envelope, Geometry, LineString, Polygon};

/// Minimum distance between two geometries.
///
/// EMPTY geometries and EMPTY elements are skipped entirely, matching the
/// fixed PostGIS behaviour of Listing 5 (the faulty recursion that returned 3
/// instead of 2 is a seeded fault in the engine crate). Returns `None` when
/// either geometry has no non-EMPTY content.
///
/// Exactly the square root of [`distance_sq`]: a minimum of square roots
/// equals the root of the minimum because correctly-rounded `sqrt` is
/// monotone, so delegating to the sqrt-free kernel is bit-identical to the
/// historical per-pair `sqrt` formulation.
pub fn distance(a: &Geometry, b: &Geometry) -> Option<f64> {
    distance_sq(a, b).map(f64::sqrt)
}

/// Squared minimum distance between two geometries — the comparison kernel
/// behind `ST_DWithin`: range predicates compare it against `d * d` without
/// ever taking a square root.
pub fn distance_sq(a: &Geometry, b: &Geometry) -> Option<f64> {
    let pa = Primitives::build(a);
    let pb = Primitives::build(b);
    if pa.is_empty() || pb.is_empty() {
        return None;
    }
    coverage::hit("topo.distance.multi_recursion");
    let mut best = f64::INFINITY;

    // Point-to-point / point-to-segment / segment-to-segment distances.
    for &p in &pa.points {
        for &q in &pb.points {
            coverage::hit("topo.distance.point_point");
            best = best.min(p.distance_sq(&q));
        }
        for seg in &pb.segments {
            coverage::hit("topo.distance.segment");
            best = best.min(point_segment_distance_sq(p, seg.0, seg.1));
        }
    }
    for seg in &pa.segments {
        for &q in &pb.points {
            coverage::hit("topo.distance.segment");
            best = best.min(point_segment_distance_sq(q, seg.0, seg.1));
        }
        for other in &pb.segments {
            coverage::hit("topo.distance.segment");
            best = best.min(segment_segment_distance_sq(seg.0, seg.1, other.0, other.1));
        }
    }

    // Containment: anything inside a polygon is at distance zero even if it
    // is far from the polygon's rings.
    if best > 0.0 {
        coverage::hit("topo.distance.polygon_containment");
        if pa.contains_any_point_of(&pb) || pb.contains_any_point_of(&pa) {
            best = 0.0;
        }
    }
    Some(best)
}

/// The shared envelope screen of the range predicates: `Err(verdict)` when
/// the envelope bounds already decide `<kernel> <= d*d`, `Ok(d_sq)` when the
/// exact kernel must run.
///
/// The reject test (`envelope min distance > d²`) is *the same comparison*
/// the R-tree distance probe applies per entry, which is what makes the
/// index join's candidate set a sound prefilter for both predicates: a pair
/// the probe prunes is a pair this screen rejects, for `ST_DWithin` because
/// the minimum distance is at least the envelope distance, and for
/// `ST_DFullyWithin` because the maximum distance is at least the minimum.
/// The accept test uses the corner-separation upper bound, which dominates
/// both kernels. EMPTY operands (infinite envelope distance) and negative
/// or NaN thresholds are rejected outright, matching `distance() <= d`
/// being false for them.
fn envelope_screen(env_a: &Envelope, env_b: &Envelope, d: f64) -> Result<f64, bool> {
    if d < 0.0 || env_a.is_empty() || env_b.is_empty() {
        return Err(false);
    }
    let d_sq = d * d;
    if env_a.distance_sq(env_b) > d_sq {
        return Err(false);
    }
    // The accept shortcut needs a finite d²: once the square overflows to
    // infinity every bound trivially "passes" while the sqrt-scale
    // comparison may still fail (an infinite distance is not within any
    // finite `d`), so overflowing thresholds go to the exact kernel.
    if d_sq < f64::INFINITY && env_a.max_distance_sq(env_b) <= d_sq {
        return Err(true);
    }
    Ok(d_sq)
}

/// `ST_DWithin`: the minimum distance does not exceed `d`.
pub fn dwithin(a: &Geometry, b: &Geometry, d: f64) -> bool {
    coverage::hit("topo.distance.dwithin");
    match envelope_screen(&a.envelope(), &b.envelope(), d) {
        Err(verdict) => verdict,
        Ok(d_sq) if d_sq.is_finite() => {
            matches!(distance_sq(a, b), Some(dist_sq) if dist_sq <= d_sq)
        }
        // d² overflowed (or d is NaN): compare on the sqrt scale, where the
        // threshold still resolves.
        Ok(_) => matches!(distance(a, b), Some(dist) if dist <= d),
    }
}

/// Maximum distance from any vertex of one geometry to the other geometry
/// (and vice versa), i.e. a symmetric vertex-based Hausdorff distance.
///
/// For the piecewise-linear geometries this crate supports, the maximum of
/// the distance-to-a-set function over a segment is attained at a vertex for
/// convex targets; for concave targets this is a documented approximation
/// (the same one mainstream engines use for `ST_MaxDistance`).
pub fn max_distance(a: &Geometry, b: &Geometry) -> Option<f64> {
    max_distance_sq(a, b).map(f64::sqrt)
}

/// Squared variant of [`max_distance`] — the comparison kernel behind
/// `ST_DFullyWithin`. A maximum of square roots equals the root of the
/// maximum (monotone `sqrt`), so [`max_distance`] delegating here is
/// bit-identical to the historical formulation.
pub fn max_distance_sq(a: &Geometry, b: &Geometry) -> Option<f64> {
    let pa = Primitives::build(a);
    let pb = Primitives::build(b);
    if pa.is_empty() || pb.is_empty() {
        return None;
    }
    let mut worst: f64 = 0.0;
    for &p in pa.all_vertices().iter() {
        worst = worst.max(point_to_primitives_sq(p, &pb));
    }
    for &q in pb.all_vertices().iter() {
        worst = worst.max(point_to_primitives_sq(q, &pa));
    }
    Some(worst)
}

/// `ST_DFullyWithin`: every point of each geometry lies within `d` of the
/// other geometry.
pub fn dfully_within(a: &Geometry, b: &Geometry, d: f64) -> bool {
    coverage::hit("topo.distance.dfullywithin");
    match envelope_screen(&a.envelope(), &b.envelope(), d) {
        Err(verdict) => verdict,
        Ok(d_sq) if d_sq.is_finite() => {
            matches!(max_distance_sq(a, b), Some(worst_sq) if worst_sq <= d_sq)
        }
        Ok(_) => matches!(max_distance(a, b), Some(worst) if worst <= d),
    }
}

/// Relative floating-point margin used by the well-definedness checks below.
const DISTANCE_MARGIN: f64 = 1e-9;

/// Whether two distance values are too close to order reliably once an exact
/// integer similarity transformation (and the engine's own floating-point
/// distance pipeline) is applied to both sides.
fn ambiguously_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= DISTANCE_MARGIN * a.abs().max(b.abs()).max(1.0)
}

/// §7's equal-distance caveat: a KNN query `ORDER BY distance(c, origin)
/// LIMIT k` only has a well-defined *result set* when the k-th and (k+1)-th
/// nearest candidates are at distinct distances — with a tie at the cutoff,
/// any subset of the tied candidates is a correct answer and no metamorphic
/// comparison is meaningful. Candidates with undefined distance (fully EMPTY
/// geometries) sort after every defined one and never create a tie.
pub fn knn_tie_at_cutoff(origin: &Geometry, candidates: &[Geometry], k: usize) -> bool {
    coverage::hit("topo.distance.knn_tie_check");
    if k == 0 {
        return false;
    }
    let mut distances: Vec<f64> = candidates
        .iter()
        .filter_map(|c| distance(origin, c))
        .collect();
    if distances.len() <= k {
        return false;
    }
    distances.sort_by(f64::total_cmp);
    ambiguously_close(distances[k - 1], distances[k])
}

/// Whether a range predicate `distance <= d` sits too close to its boundary
/// to survive an exact similarity rescaling: rescaling multiplies both sides
/// by the same factor in exact arithmetic, but the engine evaluates the
/// transformed side through floating point, so comparisons within the margin
/// are excluded from metamorphic checks rather than reported as findings.
pub fn range_boundary_ambiguous(value: f64, threshold: f64) -> bool {
    coverage::hit("topo.distance.range_margin_check");
    ambiguously_close(value, threshold)
}

fn point_to_primitives_sq(p: Coord, prims: &Primitives) -> f64 {
    let mut best = f64::INFINITY;
    for &q in &prims.points {
        best = best.min(p.distance_sq(&q));
    }
    for seg in &prims.segments {
        best = best.min(point_segment_distance_sq(p, seg.0, seg.1));
    }
    if best > 0.0 && prims.contains_point(p) {
        best = 0.0;
    }
    best
}

/// The geometric primitives of a geometry, with EMPTY parts skipped.
struct Primitives {
    points: Vec<Coord>,
    segments: Vec<(Coord, Coord)>,
    polygons: Vec<Polygon>,
}

impl Primitives {
    fn build(geometry: &Geometry) -> Primitives {
        let mut prims = Primitives {
            points: Vec::new(),
            segments: Vec::new(),
            polygons: Vec::new(),
        };
        prims.add(geometry);
        prims
    }

    fn add(&mut self, geometry: &Geometry) {
        match geometry {
            Geometry::Point(p) => {
                if let Some(c) = p.coord {
                    self.points.push(c);
                }
            }
            Geometry::MultiPoint(m) => {
                for p in &m.points {
                    if let Some(c) = p.coord {
                        self.points.push(c);
                    }
                }
            }
            Geometry::LineString(l) => self.add_line(l),
            Geometry::MultiLineString(m) => m.lines.iter().for_each(|l| self.add_line(l)),
            Geometry::Polygon(p) => self.add_polygon(p),
            Geometry::MultiPolygon(m) => m.polygons.iter().for_each(|p| self.add_polygon(p)),
            Geometry::GeometryCollection(c) => c.geometries.iter().for_each(|g| self.add(g)),
        }
    }

    fn add_line(&mut self, line: &LineString) {
        if line.coords.len() == 1 {
            self.points.push(line.coords[0]);
            return;
        }
        for (a, b) in line.segments() {
            self.segments.push((a, b));
        }
    }

    fn add_polygon(&mut self, polygon: &Polygon) {
        if polygon.is_empty() {
            return;
        }
        self.polygons.push(polygon.clone());
        for ring in &polygon.rings {
            for (a, b) in ring.segments() {
                self.segments.push((a, b));
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.points.is_empty() && self.segments.is_empty() && self.polygons.is_empty()
    }

    fn all_vertices(&self) -> Vec<Coord> {
        let mut out = self.points.clone();
        for (a, b) in &self.segments {
            out.push(*a);
            out.push(*b);
        }
        out
    }

    fn contains_point(&self, p: Coord) -> bool {
        self.polygons
            .iter()
            .any(|poly| locate_in_polygon(p, poly) != Location::Exterior)
    }

    fn contains_any_point_of(&self, other: &Primitives) -> bool {
        if self.polygons.is_empty() {
            return false;
        }
        other
            .points
            .iter()
            .copied()
            .chain(other.segments.iter().map(|(a, _)| *a))
            .any(|p| self.contains_point(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    fn g(wkt: &str) -> Geometry {
        parse_wkt(wkt).unwrap()
    }

    #[test]
    fn point_to_point_distance() {
        assert_eq!(distance(&g("POINT(0 0)"), &g("POINT(3 4)")), Some(5.0));
    }

    #[test]
    fn point_to_line_distance() {
        assert_eq!(
            distance(&g("POINT(2 3)"), &g("LINESTRING(0 0,4 0)")),
            Some(3.0)
        );
    }

    #[test]
    fn listing5_multipoint_with_empty_element() {
        // ST_Distance('MULTIPOINT((1 0),(0 0))', 'MULTIPOINT((-2 0),EMPTY)')
        // must be 2 (the EMPTY element is skipped), not 3.
        assert_eq!(
            distance(
                &g("MULTIPOINT((1 0),(0 0))"),
                &g("MULTIPOINT((-2 0),EMPTY)")
            ),
            Some(2.0)
        );
        assert_eq!(
            distance(&g("MULTIPOINT((1 0),(0 0))"), &g("POINT(-2 0)")),
            Some(2.0)
        );
    }

    #[test]
    fn distance_to_fully_empty_geometry_is_undefined() {
        assert_eq!(distance(&g("POINT(0 0)"), &g("MULTIPOINT(EMPTY)")), None);
        assert_eq!(distance(&g("POINT EMPTY"), &g("POINT(0 0)")), None);
    }

    #[test]
    fn distance_inside_polygon_is_zero() {
        let poly = g("POLYGON((0 0,10 0,10 10,0 10,0 0))");
        assert_eq!(distance(&poly, &g("POINT(5 5)")), Some(0.0));
        assert_eq!(distance(&g("POINT(5 5)"), &poly), Some(0.0));
        assert_eq!(distance(&poly, &g("POINT(15 10)")), Some(5.0));
    }

    #[test]
    fn distance_between_disjoint_polygons() {
        let a = g("POLYGON((0 0,1 0,1 1,0 1,0 0))");
        let b = g("POLYGON((4 0,5 0,5 1,4 1,4 0))");
        assert_eq!(distance(&a, &b), Some(3.0));
    }

    #[test]
    fn dwithin_threshold() {
        let a = g("POINT(0 0)");
        let b = g("POINT(3 4)");
        assert!(dwithin(&a, &b, 5.0));
        assert!(dwithin(&a, &b, 6.0));
        assert!(!dwithin(&a, &b, 4.9));
        assert!(!dwithin(&a, &g("POINT EMPTY"), 100.0));
    }

    #[test]
    fn distance_sq_is_the_square_of_distance() {
        let cases = [
            ("POINT(0 0)", "POINT(3 4)"),
            ("POINT(2 3)", "LINESTRING(0 0,4 0)"),
            ("LINESTRING(0 0,4 4)", "LINESTRING(0 4,4 0)"),
            (
                "POLYGON((0 0,1 0,1 1,0 1,0 0))",
                "POLYGON((4 0,5 0,5 1,4 1,4 0))",
            ),
            ("POLYGON((0 0,10 0,10 10,0 10,0 0))", "POINT(5 5)"),
            ("MULTIPOINT((1 0),(0 0))", "MULTIPOINT((-2 0),EMPTY)"),
        ];
        for (wa, wb) in cases {
            let (a, b) = (g(wa), g(wb));
            let dist = distance(&a, &b).unwrap();
            let dist_sq = distance_sq(&a, &b).unwrap();
            assert_eq!(dist, dist_sq.sqrt(), "{wa} vs {wb}");
            let worst = max_distance(&a, &b).unwrap();
            let worst_sq = max_distance_sq(&a, &b).unwrap();
            assert_eq!(worst, worst_sq.sqrt(), "{wa} vs {wb}");
        }
        assert_eq!(distance_sq(&g("POINT EMPTY"), &g("POINT(0 0)")), None);
        assert_eq!(max_distance_sq(&g("POINT EMPTY"), &g("POINT(0 0)")), None);
    }

    #[test]
    fn dwithin_zero_threshold() {
        // d = 0 holds exactly when the geometries touch or intersect.
        assert!(dwithin(&g("POINT(1 1)"), &g("POINT(1 1)"), 0.0));
        assert!(dwithin(&g("POINT(2 0)"), &g("LINESTRING(0 0,4 0)"), 0.0));
        assert!(!dwithin(&g("POINT(0 0)"), &g("POINT(0 1)"), 0.0));
        // IEEE quirk pinned: -0.0 compares equal to 0.0, so a negative-zero
        // threshold behaves exactly like zero (dist <= -0.0 iff dist == 0).
        assert!(dwithin(&g("POINT(1 1)"), &g("POINT(1 1)"), -0.0));
        assert!(dfully_within(&g("POINT(1 1)"), &g("POINT(1 1)"), 0.0));
        assert!(!dfully_within(
            &g("LINESTRING(0 0,1 0)"),
            &g("POINT(0 0)"),
            0.0
        ));
    }

    #[test]
    fn dwithin_exact_boundary_is_inclusive() {
        // dist == d must hold (`<=`, not `<`) on every path, including the
        // envelope accept shortcut (point-point pairs are decided by it).
        assert!(dwithin(&g("POINT(0 0)"), &g("POINT(3 4)"), 5.0));
        assert!(!dwithin(
            &g("POINT(0 0)"),
            &g("POINT(3 4)"),
            5.0_f64.next_down()
        ));
        // A segment pair whose nearest distance equals the threshold: decided
        // by the exact kernel, not the envelope bounds.
        assert!(dwithin(
            &g("LINESTRING(0 3,10 3)"),
            &g("LINESTRING(0 0,10 0)"),
            3.0
        ));
        assert!(!dwithin(
            &g("LINESTRING(0 3,10 3)"),
            &g("LINESTRING(0 0,10 0)"),
            3.0_f64.next_down()
        ));
        assert!(dfully_within(
            &g("LINESTRING(0 0,10 0)"),
            &g("POINT(0 0)"),
            10.0
        ));
        assert!(!dfully_within(
            &g("LINESTRING(0 0,10 0)"),
            &g("POINT(0 0)"),
            10.0_f64.next_down()
        ));
    }

    #[test]
    fn dwithin_nan_and_negative_thresholds_never_hold() {
        let (a, b) = (g("POINT(0 0)"), g("POINT(0 0)"));
        assert!(!dwithin(&a, &b, f64::NAN));
        assert!(!dfully_within(&a, &b, f64::NAN));
        assert!(!dwithin(&a, &b, -1.0));
        assert!(!dfully_within(&a, &b, -1.0));
        // An infinite threshold holds for anything non-EMPTY and for nothing
        // EMPTY (EMPTY has no distance at all).
        assert!(dwithin(&a, &g("POINT(1e9 -1e9)"), f64::INFINITY));
        assert!(!dwithin(&a, &g("POINT EMPTY"), f64::INFINITY));
        assert!(!dfully_within(&g("LINESTRING EMPTY"), &b, f64::INFINITY));
    }

    #[test]
    fn dwithin_nan_distance_never_holds() {
        // A geometry with a non-finite coordinate produces a NaN distance
        // (inf - inf inside the kernels); `NaN <= d` is false on every path,
        // including the envelope screen (NaN bounds neither reject nor
        // accept).
        use spatter_geom::{Geometry, Point};
        let weird = Geometry::Point(Point::new(f64::INFINITY, 0.0));
        let origin = g("POINT(0 0)");
        assert!(!dwithin(&weird, &origin, 1e300));
        assert!(!dfully_within(&weird, &origin, 1e300));
    }

    #[test]
    fn dwithin_matches_distance_comparison_on_a_seeded_sweep() {
        // The envelope-screened squared kernel must agree with the plain
        // `distance() <= d` formulation across a mixed sweep (points,
        // segments, polygons, EMPTY parts, thresholds straddling the
        // boundary).
        let shapes = [
            "POINT(0 0)",
            "POINT(7 -3)",
            "POINT EMPTY",
            "LINESTRING(0 0,4 0)",
            "LINESTRING(-5 2,-1 2,-1 8)",
            "POLYGON((0 0,6 0,6 6,0 6,0 0))",
            "POLYGON((10 10,14 10,14 14,10 14,10 10))",
            "MULTIPOINT((1 0),EMPTY)",
            "GEOMETRYCOLLECTION(POINT(2 2),LINESTRING(8 0,8 4))",
        ];
        let thresholds = [0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 25.0];
        for wa in &shapes {
            for wb in &shapes {
                let (a, b) = (g(wa), g(wb));
                for &d in &thresholds {
                    let expected = matches!(distance(&a, &b), Some(dist) if dist <= d);
                    assert_eq!(dwithin(&a, &b, d), expected, "{wa} / {wb} / {d}");
                    let expected_full = matches!(max_distance(&a, &b), Some(worst) if worst <= d);
                    assert_eq!(dfully_within(&a, &b, d), expected_full, "{wa} / {wb} / {d}");
                }
            }
        }
    }

    #[test]
    fn listing9_dfullywithin_expected_true() {
        // ST_DFullyWithin(LINESTRING(0 0,0 1,1 0,0 0), POLYGON((0 0,0 1,1 0,0 0)), 100)
        // must be true: everything is within distance 100.
        assert!(dfully_within(
            &g("LINESTRING(0 0,0 1,1 0,0 0)"),
            &g("POLYGON((0 0,0 1,1 0,0 0))"),
            100.0
        ));
    }

    #[test]
    fn dfullywithin_tight_threshold() {
        let a = g("LINESTRING(0 0,10 0)");
        let b = g("POINT(0 0)");
        // The far end of the line is 10 away from the point.
        assert!(dfully_within(&a, &b, 10.0));
        assert!(!dfully_within(&a, &b, 9.0));
    }

    #[test]
    fn max_distance_is_symmetric() {
        let a = g("LINESTRING(0 0,10 0)");
        let b = g("LINESTRING(0 5,10 5)");
        assert_eq!(max_distance(&a, &b), max_distance(&b, &a));
        assert_eq!(max_distance(&a, &b), Some(5.0));
    }

    #[test]
    fn knn_tie_detection_flags_equal_cutoff_distances() {
        let origin = g("POINT(0 0)");
        // Distances 1, 2, 2: the cutoff between rank 2 and rank 3 is tied,
        // the cutoff between rank 1 and rank 2 is not.
        let candidates = [g("POINT(1 0)"), g("POINT(2 0)"), g("POINT(0 2)")];
        assert!(knn_tie_at_cutoff(&origin, &candidates, 2));
        assert!(!knn_tie_at_cutoff(&origin, &candidates, 1));
        // k covering every candidate can never be cut off mid-tie.
        assert!(!knn_tie_at_cutoff(&origin, &candidates, 3));
        assert!(!knn_tie_at_cutoff(&origin, &candidates, 0));
        // EMPTY candidates have no distance and never participate in ties.
        let with_empty = [g("POINT(1 0)"), g("POINT EMPTY"), g("POINT(0 1)")];
        assert!(knn_tie_at_cutoff(&origin, &with_empty, 1));
    }

    #[test]
    fn range_boundary_margin() {
        assert!(range_boundary_ambiguous(5.0, 5.0));
        assert!(range_boundary_ambiguous(5.0 + 1e-12, 5.0));
        assert!(!range_boundary_ambiguous(5.0, 5.1));
        assert!(!range_boundary_ambiguous(0.0, 1.0));
    }

    #[test]
    fn distance_of_crossing_lines_is_zero() {
        assert_eq!(
            distance(&g("LINESTRING(0 0,4 4)"), &g("LINESTRING(0 4,4 0)")),
            Some(0.0)
        );
    }
}
