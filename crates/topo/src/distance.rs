//! Distance computations and the RANGE predicates (`ST_Distance`,
//! `ST_DWithin`, `ST_DFullyWithin`), the functionality behind Listing 5 and
//! Listing 9.

use crate::coverage;
use crate::locate::{locate_in_polygon, Location};
use crate::segment::{point_segment_distance, segment_segment_distance};
use spatter_geom::{Coord, Geometry, LineString, Polygon};

/// Minimum distance between two geometries.
///
/// EMPTY geometries and EMPTY elements are skipped entirely, matching the
/// fixed PostGIS behaviour of Listing 5 (the faulty recursion that returned 3
/// instead of 2 is a seeded fault in the engine crate). Returns `None` when
/// either geometry has no non-EMPTY content.
pub fn distance(a: &Geometry, b: &Geometry) -> Option<f64> {
    let pa = Primitives::build(a);
    let pb = Primitives::build(b);
    if pa.is_empty() || pb.is_empty() {
        return None;
    }
    coverage::hit("topo.distance.multi_recursion");
    let mut best = f64::INFINITY;

    // Point-to-point / point-to-segment / segment-to-segment distances.
    for &p in &pa.points {
        for &q in &pb.points {
            coverage::hit("topo.distance.point_point");
            best = best.min(p.distance(&q));
        }
        for seg in &pb.segments {
            coverage::hit("topo.distance.segment");
            best = best.min(point_segment_distance(p, seg.0, seg.1));
        }
    }
    for seg in &pa.segments {
        for &q in &pb.points {
            coverage::hit("topo.distance.segment");
            best = best.min(point_segment_distance(q, seg.0, seg.1));
        }
        for other in &pb.segments {
            coverage::hit("topo.distance.segment");
            best = best.min(segment_segment_distance(seg.0, seg.1, other.0, other.1));
        }
    }

    // Containment: anything inside a polygon is at distance zero even if it
    // is far from the polygon's rings.
    if best > 0.0 {
        coverage::hit("topo.distance.polygon_containment");
        if pa.contains_any_point_of(&pb) || pb.contains_any_point_of(&pa) {
            best = 0.0;
        }
    }
    Some(best)
}

/// `ST_DWithin`: the minimum distance does not exceed `d`.
pub fn dwithin(a: &Geometry, b: &Geometry, d: f64) -> bool {
    coverage::hit("topo.distance.dwithin");
    match distance(a, b) {
        Some(dist) => dist <= d,
        None => false,
    }
}

/// Maximum distance from any vertex of one geometry to the other geometry
/// (and vice versa), i.e. a symmetric vertex-based Hausdorff distance.
///
/// For the piecewise-linear geometries this crate supports, the maximum of
/// the distance-to-a-set function over a segment is attained at a vertex for
/// convex targets; for concave targets this is a documented approximation
/// (the same one mainstream engines use for `ST_MaxDistance`).
pub fn max_distance(a: &Geometry, b: &Geometry) -> Option<f64> {
    let pa = Primitives::build(a);
    let pb = Primitives::build(b);
    if pa.is_empty() || pb.is_empty() {
        return None;
    }
    let mut worst: f64 = 0.0;
    for &p in pa.all_vertices().iter() {
        worst = worst.max(point_to_primitives(p, &pb));
    }
    for &q in pb.all_vertices().iter() {
        worst = worst.max(point_to_primitives(q, &pa));
    }
    Some(worst)
}

/// `ST_DFullyWithin`: every point of each geometry lies within `d` of the
/// other geometry.
pub fn dfully_within(a: &Geometry, b: &Geometry, d: f64) -> bool {
    coverage::hit("topo.distance.dfullywithin");
    match max_distance(a, b) {
        Some(dist) => dist <= d,
        None => false,
    }
}

/// Relative floating-point margin used by the well-definedness checks below.
const DISTANCE_MARGIN: f64 = 1e-9;

/// Whether two distance values are too close to order reliably once an exact
/// integer similarity transformation (and the engine's own floating-point
/// distance pipeline) is applied to both sides.
fn ambiguously_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= DISTANCE_MARGIN * a.abs().max(b.abs()).max(1.0)
}

/// §7's equal-distance caveat: a KNN query `ORDER BY distance(c, origin)
/// LIMIT k` only has a well-defined *result set* when the k-th and (k+1)-th
/// nearest candidates are at distinct distances — with a tie at the cutoff,
/// any subset of the tied candidates is a correct answer and no metamorphic
/// comparison is meaningful. Candidates with undefined distance (fully EMPTY
/// geometries) sort after every defined one and never create a tie.
pub fn knn_tie_at_cutoff(origin: &Geometry, candidates: &[Geometry], k: usize) -> bool {
    coverage::hit("topo.distance.knn_tie_check");
    if k == 0 {
        return false;
    }
    let mut distances: Vec<f64> = candidates
        .iter()
        .filter_map(|c| distance(origin, c))
        .collect();
    if distances.len() <= k {
        return false;
    }
    distances.sort_by(f64::total_cmp);
    ambiguously_close(distances[k - 1], distances[k])
}

/// Whether a range predicate `distance <= d` sits too close to its boundary
/// to survive an exact similarity rescaling: rescaling multiplies both sides
/// by the same factor in exact arithmetic, but the engine evaluates the
/// transformed side through floating point, so comparisons within the margin
/// are excluded from metamorphic checks rather than reported as findings.
pub fn range_boundary_ambiguous(value: f64, threshold: f64) -> bool {
    coverage::hit("topo.distance.range_margin_check");
    ambiguously_close(value, threshold)
}

fn point_to_primitives(p: Coord, prims: &Primitives) -> f64 {
    let mut best = f64::INFINITY;
    for &q in &prims.points {
        best = best.min(p.distance(&q));
    }
    for seg in &prims.segments {
        best = best.min(point_segment_distance(p, seg.0, seg.1));
    }
    if best > 0.0 && prims.contains_point(p) {
        best = 0.0;
    }
    best
}

/// The geometric primitives of a geometry, with EMPTY parts skipped.
struct Primitives {
    points: Vec<Coord>,
    segments: Vec<(Coord, Coord)>,
    polygons: Vec<Polygon>,
}

impl Primitives {
    fn build(geometry: &Geometry) -> Primitives {
        let mut prims = Primitives {
            points: Vec::new(),
            segments: Vec::new(),
            polygons: Vec::new(),
        };
        prims.add(geometry);
        prims
    }

    fn add(&mut self, geometry: &Geometry) {
        match geometry {
            Geometry::Point(p) => {
                if let Some(c) = p.coord {
                    self.points.push(c);
                }
            }
            Geometry::MultiPoint(m) => {
                for p in &m.points {
                    if let Some(c) = p.coord {
                        self.points.push(c);
                    }
                }
            }
            Geometry::LineString(l) => self.add_line(l),
            Geometry::MultiLineString(m) => m.lines.iter().for_each(|l| self.add_line(l)),
            Geometry::Polygon(p) => self.add_polygon(p),
            Geometry::MultiPolygon(m) => m.polygons.iter().for_each(|p| self.add_polygon(p)),
            Geometry::GeometryCollection(c) => c.geometries.iter().for_each(|g| self.add(g)),
        }
    }

    fn add_line(&mut self, line: &LineString) {
        if line.coords.len() == 1 {
            self.points.push(line.coords[0]);
            return;
        }
        for (a, b) in line.segments() {
            self.segments.push((a, b));
        }
    }

    fn add_polygon(&mut self, polygon: &Polygon) {
        if polygon.is_empty() {
            return;
        }
        self.polygons.push(polygon.clone());
        for ring in &polygon.rings {
            for (a, b) in ring.segments() {
                self.segments.push((a, b));
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.points.is_empty() && self.segments.is_empty() && self.polygons.is_empty()
    }

    fn all_vertices(&self) -> Vec<Coord> {
        let mut out = self.points.clone();
        for (a, b) in &self.segments {
            out.push(*a);
            out.push(*b);
        }
        out
    }

    fn contains_point(&self, p: Coord) -> bool {
        self.polygons
            .iter()
            .any(|poly| locate_in_polygon(p, poly) != Location::Exterior)
    }

    fn contains_any_point_of(&self, other: &Primitives) -> bool {
        if self.polygons.is_empty() {
            return false;
        }
        other
            .points
            .iter()
            .copied()
            .chain(other.segments.iter().map(|(a, _)| *a))
            .any(|p| self.contains_point(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    fn g(wkt: &str) -> Geometry {
        parse_wkt(wkt).unwrap()
    }

    #[test]
    fn point_to_point_distance() {
        assert_eq!(distance(&g("POINT(0 0)"), &g("POINT(3 4)")), Some(5.0));
    }

    #[test]
    fn point_to_line_distance() {
        assert_eq!(
            distance(&g("POINT(2 3)"), &g("LINESTRING(0 0,4 0)")),
            Some(3.0)
        );
    }

    #[test]
    fn listing5_multipoint_with_empty_element() {
        // ST_Distance('MULTIPOINT((1 0),(0 0))', 'MULTIPOINT((-2 0),EMPTY)')
        // must be 2 (the EMPTY element is skipped), not 3.
        assert_eq!(
            distance(
                &g("MULTIPOINT((1 0),(0 0))"),
                &g("MULTIPOINT((-2 0),EMPTY)")
            ),
            Some(2.0)
        );
        assert_eq!(
            distance(&g("MULTIPOINT((1 0),(0 0))"), &g("POINT(-2 0)")),
            Some(2.0)
        );
    }

    #[test]
    fn distance_to_fully_empty_geometry_is_undefined() {
        assert_eq!(distance(&g("POINT(0 0)"), &g("MULTIPOINT(EMPTY)")), None);
        assert_eq!(distance(&g("POINT EMPTY"), &g("POINT(0 0)")), None);
    }

    #[test]
    fn distance_inside_polygon_is_zero() {
        let poly = g("POLYGON((0 0,10 0,10 10,0 10,0 0))");
        assert_eq!(distance(&poly, &g("POINT(5 5)")), Some(0.0));
        assert_eq!(distance(&g("POINT(5 5)"), &poly), Some(0.0));
        assert_eq!(distance(&poly, &g("POINT(15 10)")), Some(5.0));
    }

    #[test]
    fn distance_between_disjoint_polygons() {
        let a = g("POLYGON((0 0,1 0,1 1,0 1,0 0))");
        let b = g("POLYGON((4 0,5 0,5 1,4 1,4 0))");
        assert_eq!(distance(&a, &b), Some(3.0));
    }

    #[test]
    fn dwithin_threshold() {
        let a = g("POINT(0 0)");
        let b = g("POINT(3 4)");
        assert!(dwithin(&a, &b, 5.0));
        assert!(dwithin(&a, &b, 6.0));
        assert!(!dwithin(&a, &b, 4.9));
        assert!(!dwithin(&a, &g("POINT EMPTY"), 100.0));
    }

    #[test]
    fn listing9_dfullywithin_expected_true() {
        // ST_DFullyWithin(LINESTRING(0 0,0 1,1 0,0 0), POLYGON((0 0,0 1,1 0,0 0)), 100)
        // must be true: everything is within distance 100.
        assert!(dfully_within(
            &g("LINESTRING(0 0,0 1,1 0,0 0)"),
            &g("POLYGON((0 0,0 1,1 0,0 0))"),
            100.0
        ));
    }

    #[test]
    fn dfullywithin_tight_threshold() {
        let a = g("LINESTRING(0 0,10 0)");
        let b = g("POINT(0 0)");
        // The far end of the line is 10 away from the point.
        assert!(dfully_within(&a, &b, 10.0));
        assert!(!dfully_within(&a, &b, 9.0));
    }

    #[test]
    fn max_distance_is_symmetric() {
        let a = g("LINESTRING(0 0,10 0)");
        let b = g("LINESTRING(0 5,10 5)");
        assert_eq!(max_distance(&a, &b), max_distance(&b, &a));
        assert_eq!(max_distance(&a, &b), Some(5.0));
    }

    #[test]
    fn knn_tie_detection_flags_equal_cutoff_distances() {
        let origin = g("POINT(0 0)");
        // Distances 1, 2, 2: the cutoff between rank 2 and rank 3 is tied,
        // the cutoff between rank 1 and rank 2 is not.
        let candidates = [g("POINT(1 0)"), g("POINT(2 0)"), g("POINT(0 2)")];
        assert!(knn_tie_at_cutoff(&origin, &candidates, 2));
        assert!(!knn_tie_at_cutoff(&origin, &candidates, 1));
        // k covering every candidate can never be cut off mid-tie.
        assert!(!knn_tie_at_cutoff(&origin, &candidates, 3));
        assert!(!knn_tie_at_cutoff(&origin, &candidates, 0));
        // EMPTY candidates have no distance and never participate in ties.
        let with_empty = [g("POINT(1 0)"), g("POINT EMPTY"), g("POINT(0 1)")];
        assert!(knn_tie_at_cutoff(&origin, &with_empty, 1));
    }

    #[test]
    fn range_boundary_margin() {
        assert!(range_boundary_ambiguous(5.0, 5.0));
        assert!(range_boundary_ambiguous(5.0 + 1e-12, 5.0));
        assert!(!range_boundary_ambiguous(5.0, 5.1));
        assert!(!range_boundary_ambiguous(0.0, 1.0));
    }

    #[test]
    fn distance_of_crossing_lines_is_zero() {
        assert_eq!(
            distance(&g("LINESTRING(0 0,4 4)"), &g("LINESTRING(0 4,4 0)")),
            Some(0.0)
        );
    }
}
