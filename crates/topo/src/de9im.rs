//! The Dimensionally Extended 9-Intersection Model matrix (§2.2,
//! Definition 2.3, Figure 3).

use spatter_geom::Dimension;
use std::fmt;

/// Row/column index of the matrix: interior, boundary, exterior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Position {
    /// The geometry's interior.
    Interior,
    /// The geometry's boundary.
    Boundary,
    /// The geometry's exterior.
    Exterior,
}

impl Position {
    /// All three positions in matrix order.
    pub const ALL: [Position; 3] = [Position::Interior, Position::Boundary, Position::Exterior];

    fn index(self) -> usize {
        match self {
            Position::Interior => 0,
            Position::Boundary => 1,
            Position::Exterior => 2,
        }
    }
}

/// A 3×3 DE-9IM matrix of intersection dimensions.
///
/// Entry `(row, col)` is the dimension of the intersection of the first
/// geometry's `row` part with the second geometry's `col` part. The string
/// form reads the matrix row-major, e.g. `FF21F1102` for Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntersectionMatrix {
    entries: [[Dimension; 3]; 3],
}

impl Default for IntersectionMatrix {
    fn default() -> Self {
        IntersectionMatrix::empty()
    }
}

impl IntersectionMatrix {
    /// A matrix with every entry `F`.
    pub fn empty() -> Self {
        IntersectionMatrix {
            entries: [[Dimension::Empty; 3]; 3],
        }
    }

    /// Parses a matrix from its 9-character string form (`F`, `0`, `1`, `2`).
    pub fn from_string(s: &str) -> Option<IntersectionMatrix> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 9 {
            return None;
        }
        let mut m = IntersectionMatrix::empty();
        for (i, c) in chars.iter().enumerate() {
            let dim = Dimension::from_char(*c)?;
            m.entries[i / 3][i % 3] = dim;
        }
        Some(m)
    }

    /// Reads an entry.
    pub fn get(&self, row: Position, col: Position) -> Dimension {
        self.entries[row.index()][col.index()]
    }

    /// Sets an entry.
    pub fn set(&mut self, row: Position, col: Position, dim: Dimension) {
        self.entries[row.index()][col.index()] = dim;
    }

    /// Raises an entry to at least `dim` (entries accumulate as the maximum
    /// dimension observed, per Definition 2.3's dimension calculator).
    pub fn set_at_least(&mut self, row: Position, col: Position, dim: Dimension) {
        let e = &mut self.entries[row.index()][col.index()];
        if dim > *e {
            *e = dim;
        }
    }

    /// The transposed matrix, i.e. the matrix of the arguments swapped.
    pub fn transposed(&self) -> IntersectionMatrix {
        let mut t = IntersectionMatrix::empty();
        for r in Position::ALL {
            for c in Position::ALL {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// The 9-character string form (`ST_Relate` output).
    pub fn to_relate_string(&self) -> String {
        let mut s = String::with_capacity(9);
        for row in &self.entries {
            for d in row {
                s.push(d.to_char());
            }
        }
        s
    }

    /// Whether the matrix satisfies a DE-9IM pattern.
    ///
    /// Pattern characters: `T` (non-empty), `F` (empty), `*` (anything),
    /// `0`/`1`/`2` (exact dimension). Returns `None` for malformed patterns.
    pub fn matches(&self, pattern: &str) -> Option<bool> {
        let chars: Vec<char> = pattern.chars().collect();
        if chars.len() != 9 {
            return None;
        }
        for (i, pc) in chars.iter().enumerate() {
            let entry = self.entries[i / 3][i % 3];
            let ok = match pc {
                '*' => true,
                'T' | 't' => entry.is_non_empty(),
                'F' | 'f' => entry == Dimension::Empty,
                '0' => entry == Dimension::Zero,
                '1' => entry == Dimension::One,
                '2' => entry == Dimension::Two,
                _ => return None,
            };
            if !ok {
                return Some(false);
            }
        }
        Some(true)
    }
}

impl fmt::Display for IntersectionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_relate_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_is_all_f() {
        assert_eq!(IntersectionMatrix::empty().to_relate_string(), "FFFFFFFFF");
    }

    #[test]
    fn figure3_matrix_round_trips() {
        let m = IntersectionMatrix::from_string("FF21F1102").unwrap();
        assert_eq!(m.to_relate_string(), "FF21F1102");
        assert_eq!(
            m.get(Position::Interior, Position::Exterior),
            Dimension::Two
        );
        assert_eq!(
            m.get(Position::Boundary, Position::Interior),
            Dimension::One
        );
        assert_eq!(
            m.get(Position::Exterior, Position::Exterior),
            Dimension::Two
        );
    }

    #[test]
    fn from_string_rejects_bad_input() {
        assert!(IntersectionMatrix::from_string("FF21F110").is_none());
        assert!(IntersectionMatrix::from_string("FF21F110X").is_none());
    }

    #[test]
    fn set_at_least_keeps_maximum() {
        let mut m = IntersectionMatrix::empty();
        m.set_at_least(Position::Interior, Position::Interior, Dimension::One);
        m.set_at_least(Position::Interior, Position::Interior, Dimension::Zero);
        assert_eq!(
            m.get(Position::Interior, Position::Interior),
            Dimension::One
        );
        m.set_at_least(Position::Interior, Position::Interior, Dimension::Two);
        assert_eq!(
            m.get(Position::Interior, Position::Interior),
            Dimension::Two
        );
    }

    #[test]
    fn transpose_swaps_roles() {
        let m = IntersectionMatrix::from_string("FF21F1102").unwrap();
        let t = m.transposed();
        assert_eq!(
            t.get(Position::Exterior, Position::Interior),
            Dimension::Two
        );
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn pattern_matching() {
        let m = IntersectionMatrix::from_string("FF21F1102").unwrap();
        assert_eq!(m.matches("FF*******"), Some(true));
        assert_eq!(m.matches("T********"), Some(false));
        assert_eq!(m.matches("FF2TF11*2"), Some(true));
        assert_eq!(m.matches("*********"), Some(true));
        assert_eq!(m.matches("********"), None);
        assert_eq!(m.matches("????????X"), None);
    }

    #[test]
    fn display_is_relate_string() {
        let m = IntersectionMatrix::from_string("0FFFFF102").unwrap();
        assert_eq!(m.to_string(), "0FFFFF102");
    }
}
