//! The DE-9IM relate engine (§2.2, Definition 2.3).
//!
//! The computation follows the classic noding-and-labelling strategy:
//!
//! 1. **Decompose** both geometries into isolated points, line segments and
//!    polygon rings (ring segments remember on which side the polygon's
//!    interior lies).
//! 2. **Node** all segments of both geometries against each other: every
//!    segment is split at its intersections with every other segment and at
//!    isolated points lying on it, so the resulting sub-edges have no
//!    crossings and a uniform location in either geometry.
//! 3. **Label** every node (dimension 0) and every sub-edge midpoint
//!    (dimension 1) with its [`Location`] in each geometry and accumulate the
//!    observed dimensions into the [`IntersectionMatrix`].
//! 4. **Area analysis** adds the dimension-2 entries: for each ring sub-edge
//!    the polygon interior adjacent to it is classified against the other
//!    geometry's polygonal part, using exact side comparisons when two
//!    boundaries run along each other (no epsilon probing).
//!
//! The engine is exact for the integer-coordinate geometries Spatter
//! generates (proper crossings introduce the only rounding, and only in the
//! coordinates of the crossing node itself).

use crate::coverage;
use crate::de9im::{IntersectionMatrix, Position};
use crate::locate::{locate, locate_in_polygon, Location};
use crate::segment::{segment_intersection, SegmentIntersection};
use spatter_geom::orientation::{
    orientation, point_on_segment, ring_orientation, Orientation, RingOrientation,
};
use spatter_geom::{Coord, Dimension, Geometry, LineString, Polygon};

/// Computes the DE-9IM intersection matrix of `a` against `b`.
pub fn relate(a: &Geometry, b: &Geometry) -> IntersectionMatrix {
    record_pair_probe(a, b);

    let a_empty = a.is_empty();
    let b_empty = b.is_empty();
    let mut im = IntersectionMatrix::empty();
    // The exteriors of two bounded geometries always share the unbounded part
    // of the plane.
    im.set(Position::Exterior, Position::Exterior, Dimension::Two);

    if a_empty || b_empty {
        coverage::hit("topo.relate.empty_case");
        if !b_empty {
            im.set(
                Position::Exterior,
                Position::Interior,
                interior_dimension(b),
            );
            im.set(
                Position::Exterior,
                Position::Boundary,
                boundary_dimension(b),
            );
        }
        if !a_empty {
            im.set(
                Position::Interior,
                Position::Exterior,
                interior_dimension(a),
            );
            im.set(
                Position::Boundary,
                Position::Exterior,
                boundary_dimension(a),
            );
        }
        return im;
    }

    let da = Decomposed::build(a);
    let db = Decomposed::build(b);

    // --- Noding ------------------------------------------------------------
    coverage::hit("topo.relate.noding");
    let sub_edges_a = node_segments(&da, &db);
    let sub_edges_b = node_segments(&db, &da);

    // --- Node labelling ----------------------------------------------------
    coverage::hit("topo.relate.node_labelling");
    let mut nodes: Vec<Coord> = Vec::new();
    let push_node = |c: Coord, nodes: &mut Vec<Coord>| {
        if !nodes.iter().any(|n| n.approx_eq(&c)) {
            nodes.push(c);
        }
    };
    for edge in sub_edges_a.iter().chain(sub_edges_b.iter()) {
        push_node(edge.p0, &mut nodes);
        push_node(edge.p1, &mut nodes);
    }
    for &p in da.points.iter().chain(db.points.iter()) {
        push_node(p, &mut nodes);
    }
    for node in &nodes {
        let loc_a = locate(*node, a);
        let loc_b = locate(*node, b);
        im.set_at_least(position(loc_a), position(loc_b), Dimension::Zero);
    }

    // --- Sub-edge labelling ------------------------------------------------
    coverage::hit("topo.relate.edge_labelling");
    for edge in sub_edges_a.iter().chain(sub_edges_b.iter()) {
        let m = edge.p0.midpoint(&edge.p1);
        let loc_a = locate(m, a);
        let loc_b = locate(m, b);
        im.set_at_least(position(loc_a), position(loc_b), Dimension::One);
    }

    // --- Area (dimension 2) analysis ---------------------------------------
    if da.has_area && !db.has_area {
        im.set_at_least(Position::Interior, Position::Exterior, Dimension::Two);
    }
    if db.has_area && !da.has_area {
        im.set_at_least(Position::Exterior, Position::Interior, Dimension::Two);
    }
    if da.has_area && db.has_area {
        coverage::hit("topo.relate.area_side_analysis");
        area_analysis(&mut im, &sub_edges_a, &da, &db, false);
        area_analysis(&mut im, &sub_edges_b, &db, &da, true);
    }

    im
}

/// Dimension of a geometry's interior (for the empty-case rows/columns).
fn interior_dimension(g: &Geometry) -> Dimension {
    g.dimension()
}

/// Dimension of a geometry's boundary.
fn boundary_dimension(g: &Geometry) -> Dimension {
    crate::boundary::boundary(g).dimension()
}

fn position(loc: Location) -> Position {
    match loc {
        Location::Interior => Position::Interior,
        Location::Boundary => Position::Boundary,
        Location::Exterior => Position::Exterior,
    }
}

fn record_pair_probe(a: &Geometry, b: &Geometry) {
    let da = a.dimension();
    let db = b.dimension();
    let has_collection = matches!(a, Geometry::GeometryCollection(_))
        || matches!(b, Geometry::GeometryCollection(_));
    if has_collection {
        coverage::hit("topo.relate.collection");
    }
    let (lo, hi) = if da <= db { (da, db) } else { (db, da) };
    let probe = match (lo, hi) {
        (Dimension::Zero, Dimension::Zero) => "topo.relate.point_point",
        (Dimension::Zero, Dimension::One) => "topo.relate.point_line",
        (Dimension::Zero, Dimension::Two) => "topo.relate.point_polygon",
        (Dimension::One, Dimension::One) => "topo.relate.line_line",
        (Dimension::One, Dimension::Two) => "topo.relate.line_polygon",
        (Dimension::Two, Dimension::Two) => "topo.relate.polygon_polygon",
        _ => return,
    };
    coverage::hit(probe);
}

// ---------------------------------------------------------------------------
// Decomposition
// ---------------------------------------------------------------------------

/// A line segment extracted from a geometry, with polygon-boundary metadata.
#[derive(Debug, Clone, Copy)]
struct Seg {
    p0: Coord,
    p1: Coord,
    /// For ring segments: whether the owning polygon's interior lies on the
    /// left of the directed segment `p0 -> p1`.
    interior_on_left: Option<bool>,
}

/// A geometry decomposed into the primitives the relate engine works on.
struct Decomposed {
    points: Vec<Coord>,
    segments: Vec<Seg>,
    /// The polygonal components only, for the dimension-2 analysis.
    polygons: Vec<Polygon>,
    has_area: bool,
}

impl Decomposed {
    fn build(geometry: &Geometry) -> Decomposed {
        let mut d = Decomposed {
            points: Vec::new(),
            segments: Vec::new(),
            polygons: Vec::new(),
            has_area: false,
        };
        d.add(geometry);
        d
    }

    fn add(&mut self, geometry: &Geometry) {
        match geometry {
            Geometry::Point(p) => {
                if let Some(c) = p.coord {
                    self.points.push(c);
                }
            }
            Geometry::MultiPoint(m) => {
                for p in &m.points {
                    if let Some(c) = p.coord {
                        self.points.push(c);
                    }
                }
            }
            Geometry::LineString(l) => self.add_line(l),
            Geometry::MultiLineString(m) => {
                for l in &m.lines {
                    self.add_line(l);
                }
            }
            Geometry::Polygon(p) => self.add_polygon(p),
            Geometry::MultiPolygon(m) => {
                for p in &m.polygons {
                    self.add_polygon(p);
                }
            }
            Geometry::GeometryCollection(c) => {
                for g in &c.geometries {
                    self.add(g);
                }
            }
        }
    }

    fn add_line(&mut self, line: &LineString) {
        if line.coords.len() == 1 {
            // A degenerate single-vertex linestring behaves like a point.
            self.points.push(line.coords[0]);
            return;
        }
        for (p0, p1) in line.segments() {
            if p0.approx_eq(&p1) {
                continue;
            }
            self.segments.push(Seg {
                p0,
                p1,
                interior_on_left: None,
            });
        }
    }

    fn add_polygon(&mut self, polygon: &Polygon) {
        if polygon.is_empty() {
            return;
        }
        self.has_area = true;
        self.polygons.push(polygon.clone());
        for (ring_idx, ring) in polygon.rings.iter().enumerate() {
            if ring.is_empty() {
                continue;
            }
            let is_shell = ring_idx == 0;
            let is_ccw = match ring_orientation(ring) {
                RingOrientation::CounterClockwise => true,
                RingOrientation::Clockwise => false,
                RingOrientation::Degenerate => {
                    // A degenerate ring contributes segments without side
                    // information; the area analysis skips them.
                    for (p0, p1) in ring.segments() {
                        if !p0.approx_eq(&p1) {
                            self.segments.push(Seg {
                                p0,
                                p1,
                                interior_on_left: None,
                            });
                        }
                    }
                    continue;
                }
            };
            // Shell CCW or hole CW => polygon interior on the left of each
            // directed ring segment.
            let interior_on_left = is_shell == is_ccw;
            for (p0, p1) in ring.segments() {
                if p0.approx_eq(&p1) {
                    continue;
                }
                self.segments.push(Seg {
                    p0,
                    p1,
                    interior_on_left: Some(interior_on_left),
                });
            }
        }
    }

    /// Location of a point relative to the union of the polygonal components
    /// only (exterior when there are none).
    fn locate_area(&self, point: Coord) -> Location {
        let mut boundary = false;
        for polygon in &self.polygons {
            match locate_in_polygon(point, polygon) {
                Location::Interior => return Location::Interior,
                Location::Boundary => boundary = true,
                Location::Exterior => {}
            }
        }
        if boundary {
            Location::Boundary
        } else {
            Location::Exterior
        }
    }
}

// ---------------------------------------------------------------------------
// Noding
// ---------------------------------------------------------------------------

/// A noded sub-edge of one geometry: no other segment of either geometry
/// crosses its interior.
#[derive(Debug, Clone, Copy)]
struct SubEdge {
    p0: Coord,
    p1: Coord,
    interior_on_left: Option<bool>,
}

/// Splits every segment of `own` at its intersections with all segments of
/// both geometries and at isolated points lying on it.
fn node_segments(own: &Decomposed, other: &Decomposed) -> Vec<SubEdge> {
    let mut out = Vec::new();
    for seg in &own.segments {
        let mut params: Vec<f64> = vec![0.0, 1.0];
        let add_point = |c: Coord, params: &mut Vec<f64>| {
            if let Some(t) = param_on_segment(c, seg.p0, seg.p1) {
                params.push(t);
            }
        };
        for other_seg in own.segments.iter().chain(other.segments.iter()) {
            if std::ptr::eq(other_seg, seg) {
                continue;
            }
            if other_seg.p0.approx_eq(&seg.p0) && other_seg.p1.approx_eq(&seg.p1) {
                continue;
            }
            match segment_intersection(seg.p0, seg.p1, other_seg.p0, other_seg.p1) {
                SegmentIntersection::None => {}
                SegmentIntersection::Point(c) => add_point(c, &mut params),
                SegmentIntersection::Overlap(c0, c1) => {
                    add_point(c0, &mut params);
                    add_point(c1, &mut params);
                }
            }
        }
        for &p in own.points.iter().chain(other.points.iter()) {
            add_point(p, &mut params);
        }

        params.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        params.dedup_by(|x, y| (*x - *y).abs() < 1e-12);

        for w in params.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t1 - t0 <= 1e-12 {
                continue;
            }
            let c0 = point_at(seg.p0, seg.p1, t0);
            let c1 = point_at(seg.p0, seg.p1, t1);
            if c0.approx_eq(&c1) {
                continue;
            }
            out.push(SubEdge {
                p0: c0,
                p1: c1,
                interior_on_left: seg.interior_on_left,
            });
        }
    }
    out
}

/// Parameter of point `c` along segment `a-b` if it lies on it.
///
/// Intersection points of properly crossing segments are computed with
/// floating-point division, so they are generally *not* exactly collinear
/// with the segments that produced them; a tolerant distance check is used so
/// noding still splits segments at such points.
fn param_on_segment(c: Coord, a: Coord, b: Coord) -> Option<f64> {
    let scale =
        c.x.abs()
            .max(c.y.abs())
            .max(a.x.abs())
            .max(a.y.abs())
            .max(b.x.abs())
            .max(b.y.abs())
            .max(1.0);
    if crate::segment::point_segment_distance(c, a, b) > 1e-9 * scale {
        return None;
    }
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let t = if dx.abs() >= dy.abs() {
        if dx == 0.0 {
            0.0
        } else {
            (c.x - a.x) / dx
        }
    } else {
        (c.y - a.y) / dy
    };
    Some(t.clamp(0.0, 1.0))
}

fn point_at(a: Coord, b: Coord, t: f64) -> Coord {
    if t == 0.0 {
        a
    } else if t == 1.0 {
        b
    } else {
        Coord::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
    }
}

// ---------------------------------------------------------------------------
// Area analysis
// ---------------------------------------------------------------------------

/// Adds the dimension-2 matrix entries contributed by the polygon interiors
/// adjacent to the ring sub-edges of one geometry.
///
/// `edges` are the noded sub-edges of the geometry whose rows (or columns,
/// when `swapped`) we are filling; `own` / `other` are the two
/// decompositions. When `swapped` is false the edges belong to geometry A.
fn area_analysis(
    im: &mut IntersectionMatrix,
    edges: &[SubEdge],
    own: &Decomposed,
    other: &Decomposed,
    swapped: bool,
) {
    // Helper writing an entry with the row/column order corrected for the
    // direction of the pass.
    let set = |im: &mut IntersectionMatrix, own_pos: Position, other_pos: Position| {
        if swapped {
            im.set_at_least(other_pos, own_pos, Dimension::Two);
        } else {
            im.set_at_least(own_pos, other_pos, Dimension::Two);
        }
    };

    for edge in edges {
        let Some(own_interior_left) = edge.interior_on_left else {
            continue;
        };
        let m = edge.p0.midpoint(&edge.p1);
        // When polygon components of the *same* geometry overlap (possible
        // for invalid inputs and for GEOMETRYCOLLECTIONs such as Listing 4's
        // g2), the side of this ring edge facing away from its own component
        // may still lie in the geometry's interior: in that case the edge does
        // not border the geometry's exterior, and the exterior-side claims
        // must be suppressed.
        let borders_own_exterior = own.locate_area(m) != Location::Interior;
        match other.locate_area(m) {
            Location::Exterior => {
                // The polygon interior adjacent to this ring edge pokes into
                // the other geometry's exterior.
                set(im, Position::Interior, Position::Exterior);
            }
            Location::Interior => {
                // Both sides of the ring edge are in the other polygon's
                // interior: the interiors overlap and, when the edge borders
                // this geometry's exterior, so does the other interior with
                // this geometry's exterior.
                set(im, Position::Interior, Position::Interior);
                if borders_own_exterior {
                    set(im, Position::Exterior, Position::Interior);
                }
            }
            Location::Boundary => {
                // Shared boundary piece: compare on which side each
                // geometry's interior lies.
                for other_seg in &other.segments {
                    let Some(other_interior_left) = other_seg.interior_on_left else {
                        continue;
                    };
                    if !point_on_segment(m, other_seg.p0, other_seg.p1) {
                        continue;
                    }
                    if orientation(other_seg.p0, other_seg.p1, edge.p0) != Orientation::Collinear
                        || orientation(other_seg.p0, other_seg.p1, edge.p1)
                            != Orientation::Collinear
                    {
                        continue;
                    }
                    let same_direction = (edge.p1.x - edge.p0.x)
                        * (other_seg.p1.x - other_seg.p0.x)
                        + (edge.p1.y - edge.p0.y) * (other_seg.p1.y - other_seg.p0.y)
                        > 0.0;
                    let other_left_relative_to_edge = if same_direction {
                        other_interior_left
                    } else {
                        !other_interior_left
                    };
                    if other_left_relative_to_edge == own_interior_left {
                        set(im, Position::Interior, Position::Interior);
                    } else {
                        set(im, Position::Interior, Position::Exterior);
                        if borders_own_exterior {
                            set(im, Position::Exterior, Position::Interior);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    fn rel(a: &str, b: &str) -> String {
        relate(&parse_wkt(a).unwrap(), &parse_wkt(b).unwrap()).to_relate_string()
    }

    #[test]
    fn equal_points() {
        assert_eq!(rel("POINT(1 1)", "POINT(1 1)"), "0FFFFFFF2");
    }

    #[test]
    fn distinct_points() {
        assert_eq!(rel("POINT(1 1)", "POINT(2 2)"), "FF0FFF0F2");
    }

    #[test]
    fn point_on_line_interior() {
        assert_eq!(rel("POINT(2 0)", "LINESTRING(0 0,4 0)"), "0FFFFF102");
    }

    #[test]
    fn point_on_line_endpoint() {
        assert_eq!(rel("POINT(0 0)", "LINESTRING(0 0,4 0)"), "F0FFFF102");
    }

    #[test]
    fn point_off_line() {
        assert_eq!(rel("POINT(2 1)", "LINESTRING(0 0,4 0)"), "FF0FFF102");
    }

    #[test]
    fn point_inside_polygon() {
        assert_eq!(
            rel("POINT(2 2)", "POLYGON((0 0,4 0,4 4,0 4,0 0))"),
            "0FFFFF212"
        );
    }

    #[test]
    fn point_on_polygon_boundary() {
        assert_eq!(
            rel("POINT(0 2)", "POLYGON((0 0,4 0,4 4,0 4,0 0))"),
            "F0FFFF212"
        );
    }

    #[test]
    fn polygon_contains_point_figure_order() {
        assert_eq!(
            rel("POLYGON((0 0,4 0,4 4,0 4,0 0))", "POINT(2 2)"),
            "0F2FF1FF2"
        );
    }

    #[test]
    fn identical_lines() {
        assert_eq!(
            rel("LINESTRING(0 0,4 0)", "LINESTRING(0 0,4 0)"),
            "1FFF0FFF2"
        );
        // Opposite direction is still the same point set.
        assert_eq!(
            rel("LINESTRING(0 0,4 0)", "LINESTRING(4 0,0 0)"),
            "1FFF0FFF2"
        );
    }

    #[test]
    fn crossing_lines() {
        assert_eq!(
            rel("LINESTRING(0 0,4 4)", "LINESTRING(0 4,4 0)"),
            "0F1FF0102"
        );
    }

    #[test]
    fn touching_lines_at_endpoints() {
        assert_eq!(
            rel("LINESTRING(0 0,2 2)", "LINESTRING(2 2,4 0)"),
            "FF1F00102"
        );
    }

    #[test]
    fn line_within_line() {
        assert_eq!(
            rel("LINESTRING(1 0,3 0)", "LINESTRING(0 0,4 0)"),
            "1FF0FF102"
        );
    }

    #[test]
    fn overlapping_collinear_lines() {
        assert_eq!(
            rel("LINESTRING(0 0,3 0)", "LINESTRING(1 0,5 0)"),
            "1010F0102"
        );
    }

    #[test]
    fn figure3_polygon_and_linestring() {
        // The worked example of Figure 3: DE-9IM code FF21F1102.
        assert_eq!(
            rel("POLYGON((0 0,4 0,4 4,0 4,0 0))", "LINESTRING(-2 0,6 0)"),
            "FF21F1102"
        );
    }

    #[test]
    fn line_crossing_polygon() {
        assert_eq!(
            rel("POLYGON((0 0,4 0,4 4,0 4,0 0))", "LINESTRING(-1 2,5 2)"),
            "1F20F1102"
        );
    }

    #[test]
    fn line_inside_polygon() {
        assert_eq!(
            rel("POLYGON((0 0,4 0,4 4,0 4,0 0))", "LINESTRING(1 1,3 3)"),
            "102FF1FF2"
        );
    }

    #[test]
    fn listing1_line_covers_point_affine_pair() {
        // Listing 2's geometries (the affine-equivalent pair of Listing 1):
        // the point lies on the line, so the line covers the point.
        assert_eq!(rel("LINESTRING(1 1,0 0)", "POINT(0.9 0.9)"), "0F1FF0FF2");
    }

    #[test]
    fn identical_polygons() {
        assert_eq!(
            rel(
                "POLYGON((0 0,4 0,4 4,0 4,0 0))",
                "POLYGON((0 0,4 0,4 4,0 4,0 0))"
            ),
            "2FFF1FFF2"
        );
        // Same polygon written with the ring in the opposite direction.
        assert_eq!(
            rel(
                "POLYGON((0 0,4 0,4 4,0 4,0 0))",
                "POLYGON((0 0,0 4,4 4,4 0,0 0))"
            ),
            "2FFF1FFF2"
        );
    }

    #[test]
    fn overlapping_polygons() {
        assert_eq!(
            rel(
                "POLYGON((0 0,4 0,4 4,0 4,0 0))",
                "POLYGON((2 2,6 2,6 6,2 6,2 2))"
            ),
            "212101212"
        );
    }

    #[test]
    fn disjoint_polygons() {
        assert_eq!(
            rel(
                "POLYGON((0 0,1 0,1 1,0 1,0 0))",
                "POLYGON((5 5,6 5,6 6,5 6,5 5))"
            ),
            "FF2FF1212"
        );
    }

    #[test]
    fn polygons_touching_along_edge() {
        assert_eq!(
            rel(
                "POLYGON((0 0,4 0,4 4,0 4,0 0))",
                "POLYGON((4 0,8 0,8 4,4 4,4 0))"
            ),
            "FF2F11212"
        );
    }

    #[test]
    fn polygons_touching_at_point() {
        assert_eq!(
            rel(
                "POLYGON((0 0,4 0,4 4,0 4,0 0))",
                "POLYGON((4 4,8 4,8 8,4 8,4 4))"
            ),
            "FF2F01212"
        );
    }

    #[test]
    fn polygon_within_polygon() {
        assert_eq!(
            rel(
                "POLYGON((1 1,3 1,3 3,1 3,1 1))",
                "POLYGON((0 0,4 0,4 4,0 4,0 0))"
            ),
            "2FF1FF212"
        );
        assert_eq!(
            rel(
                "POLYGON((0 0,4 0,4 4,0 4,0 0))",
                "POLYGON((1 1,3 1,3 3,1 3,1 1))"
            ),
            "212FF1FF2"
        );
    }

    #[test]
    fn polygon_inside_hole_is_disjoint() {
        assert_eq!(
            rel(
                "POLYGON((4 4,6 4,6 6,4 6,4 4))",
                "POLYGON((0 0,10 0,10 10,0 10,0 0),(3 3,7 3,7 7,3 7,3 3))"
            ),
            "FF2FF1212"
        );
    }

    #[test]
    fn polygon_filling_hole_touches() {
        // The inner polygon exactly fills the hole: boundaries share the hole
        // ring, interiors stay disjoint.
        assert_eq!(
            rel(
                "POLYGON((3 3,7 3,7 7,3 7,3 3))",
                "POLYGON((0 0,10 0,10 10,0 10,0 0),(3 3,7 3,7 7,3 7,3 3))"
            ),
            "FF2F1F212"
        );
    }

    #[test]
    fn hole_inside_other_polygon_interior() {
        // B's hole lies strictly inside A, so part of A's interior is in B's
        // exterior even though A is inside B's outer shell.
        assert_eq!(
            rel(
                "POLYGON((2 2,8 2,8 8,2 8,2 2))",
                "POLYGON((0 0,10 0,10 10,0 10,0 0),(4 4,6 4,6 6,4 6,4 4))"
            ),
            "2121FF212"
        );
    }

    #[test]
    fn multipoint_against_polygon() {
        assert_eq!(
            rel("MULTIPOINT((1 1),(5 5))", "POLYGON((0 0,4 0,4 4,0 4,0 0))"),
            "0F0FFF212"
        );
    }

    #[test]
    fn empty_geometry_relations() {
        assert_eq!(rel("POINT EMPTY", "POINT(1 1)"), "FFFFFF0F2");
        assert_eq!(rel("POINT EMPTY", "POINT EMPTY"), "FFFFFFFF2");
        assert_eq!(rel("POINT(1 1)", "POINT EMPTY"), "FF0FFFFF2");
        assert_eq!(
            rel("POINT EMPTY", "POLYGON((0 0,4 0,4 4,0 4,0 0))"),
            "FFFFFF212"
        );
        assert_eq!(rel("LINESTRING(0 0,1 1)", "LINESTRING EMPTY"), "FF1FF0FF2");
    }

    #[test]
    fn collection_vs_point_listing6() {
        // Listing 6: POINT(0 0) should be *within* the collection because the
        // collection's interior (the POINT member) contains it.
        let m = relate(
            &parse_wkt("POINT(0 0)").unwrap(),
            &parse_wkt("GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))").unwrap(),
        );
        assert_eq!(
            m.get(Position::Interior, Position::Interior),
            Dimension::Zero
        );
        assert_eq!(
            m.get(Position::Interior, Position::Exterior),
            Dimension::Empty
        );
        assert_eq!(
            m.get(Position::Boundary, Position::Exterior),
            Dimension::Empty
        );
    }

    #[test]
    fn relate_is_consistent_under_transposition() {
        let pairs = [
            ("POLYGON((0 0,4 0,4 4,0 4,0 0))", "LINESTRING(-2 0,6 0)"),
            ("LINESTRING(0 0,4 4)", "LINESTRING(0 4,4 0)"),
            ("POINT(2 2)", "POLYGON((0 0,4 0,4 4,0 4,0 0))"),
            (
                "POLYGON((0 0,4 0,4 4,0 4,0 0))",
                "POLYGON((2 2,6 2,6 6,2 6,2 2))",
            ),
        ];
        for (a, b) in pairs {
            let ab = relate(&parse_wkt(a).unwrap(), &parse_wkt(b).unwrap());
            let ba = relate(&parse_wkt(b).unwrap(), &parse_wkt(a).unwrap());
            assert_eq!(ab.transposed(), ba, "transpose consistency for {a} / {b}");
        }
    }
}
