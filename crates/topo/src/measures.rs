//! Scalar measurements: area, length, number of points.

use crate::coverage;
use spatter_geom::orientation::signed_area;
use spatter_geom::{Geometry, Polygon};

/// Area of a geometry. Points and lines have zero area; polygon holes are
/// subtracted; collections sum their members.
pub fn area(geometry: &Geometry) -> f64 {
    coverage::hit("topo.measures.area");
    match geometry {
        Geometry::Polygon(p) => polygon_area(p),
        Geometry::MultiPolygon(m) => m.polygons.iter().map(polygon_area).sum(),
        Geometry::GeometryCollection(c) => c.geometries.iter().map(area).sum(),
        _ => 0.0,
    }
}

fn polygon_area(p: &Polygon) -> f64 {
    let mut total = 0.0;
    for (idx, ring) in p.rings.iter().enumerate() {
        let a = signed_area(ring).abs();
        if idx == 0 {
            total += a;
        } else {
            total -= a;
        }
    }
    total.max(0.0)
}

/// Length of a geometry: the total length of all linear parts (polygon rings
/// do not count towards `ST_Length`, matching PostGIS).
pub fn length(geometry: &Geometry) -> f64 {
    coverage::hit("topo.measures.length");
    match geometry {
        Geometry::LineString(l) => l.length(),
        Geometry::MultiLineString(m) => m.lines.iter().map(|l| l.length()).sum(),
        Geometry::GeometryCollection(c) => c.geometries.iter().map(length).sum(),
        _ => 0.0,
    }
}

/// Perimeter of the areal parts of a geometry (ring lengths).
pub fn perimeter(geometry: &Geometry) -> f64 {
    match geometry {
        Geometry::Polygon(p) => p.rings.iter().map(|r| r.length()).sum(),
        Geometry::MultiPolygon(m) => m
            .polygons
            .iter()
            .flat_map(|p| p.rings.iter())
            .map(|r| r.length())
            .sum(),
        Geometry::GeometryCollection(c) => c.geometries.iter().map(perimeter).sum(),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    fn g(wkt: &str) -> Geometry {
        parse_wkt(wkt).unwrap()
    }

    #[test]
    fn area_of_square() {
        assert_eq!(area(&g("POLYGON((0 0,4 0,4 4,0 4,0 0))")), 16.0);
        // Orientation does not matter.
        assert_eq!(area(&g("POLYGON((0 0,0 4,4 4,4 0,0 0))")), 16.0);
    }

    #[test]
    fn area_subtracts_holes() {
        assert_eq!(
            area(&g(
                "POLYGON((0 0,10 0,10 10,0 10,0 0),(2 2,4 2,4 4,2 4,2 2))"
            )),
            96.0
        );
    }

    #[test]
    fn area_of_non_areal_geometries_is_zero() {
        assert_eq!(area(&g("POINT(1 1)")), 0.0);
        assert_eq!(area(&g("LINESTRING(0 0,5 5)")), 0.0);
        assert_eq!(area(&g("POLYGON EMPTY")), 0.0);
    }

    #[test]
    fn area_of_collection_sums_members() {
        assert_eq!(
            area(&g("GEOMETRYCOLLECTION(POLYGON((0 0,2 0,2 2,0 2,0 0)),POLYGON((10 10,11 10,11 11,10 11,10 10)),POINT(5 5))")),
            5.0
        );
    }

    #[test]
    fn length_of_lines() {
        assert_eq!(length(&g("LINESTRING(0 0,3 4)")), 5.0);
        assert_eq!(length(&g("MULTILINESTRING((0 0,1 0),(0 0,0 2))")), 3.0);
        assert_eq!(length(&g("POLYGON((0 0,4 0,4 4,0 4,0 0))")), 0.0);
    }

    #[test]
    fn perimeter_of_polygons() {
        assert_eq!(perimeter(&g("POLYGON((0 0,4 0,4 4,0 4,0 0))")), 16.0);
        assert_eq!(perimeter(&g("LINESTRING(0 0,4 0)")), 0.0);
    }
}
