//! Convex hull (`ST_ConvexHull`), one of the generic editing functions of
//! Table 1 used by the derivative strategy.

use crate::coverage;
use spatter_geom::orientation::cross;
use spatter_geom::{Coord, Geometry, GeometryCollection, LineString, Point, Polygon};

/// Computes the convex hull of a geometry using Andrew's monotone chain.
///
/// Degenerate inputs degrade gracefully: an EMPTY input yields
/// `GEOMETRYCOLLECTION EMPTY`, a single point yields a POINT, collinear
/// points yield a LINESTRING.
pub fn convex_hull(geometry: &Geometry) -> Geometry {
    coverage::hit("topo.convex_hull");
    let mut coords: Vec<Coord> = Vec::new();
    geometry.for_each_coord(&mut |c| coords.push(*c));
    // Deduplicate identical coordinates.
    coords.sort_by(|a, b| a.lex_cmp(b));
    coords.dedup_by(|a, b| a.approx_eq(b));

    match coords.len() {
        0 => Geometry::GeometryCollection(GeometryCollection::empty()),
        1 => Geometry::Point(Point::from_coord(coords[0])),
        2 => Geometry::LineString(LineString::new(coords)),
        _ => {
            let hull = monotone_chain(&coords);
            if hull.len() <= 2 {
                // All points collinear: the hull is the extreme segment.
                return Geometry::LineString(LineString::new(vec![
                    coords[0],
                    coords[coords.len() - 1],
                ]));
            }
            let mut ring = hull;
            ring.push(ring[0]);
            Geometry::Polygon(Polygon::from_exterior(LineString::new(ring)))
        }
    }
}

/// Monotone chain on lexicographically sorted, deduplicated points. Returns
/// the hull in counter-clockwise order without the closing vertex.
fn monotone_chain(sorted: &[Coord]) -> Vec<Coord> {
    let n = sorted.len();
    let mut hull: Vec<Coord> = Vec::with_capacity(2 * n);

    // Lower hull.
    for &p in sorted {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in sorted.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop();
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::{parse_wkt, write_wkt};

    fn hull(wkt: &str) -> String {
        write_wkt(&convex_hull(&parse_wkt(wkt).unwrap()))
    }

    #[test]
    fn hull_of_empty_is_empty() {
        assert_eq!(hull("POINT EMPTY"), "GEOMETRYCOLLECTION EMPTY");
        assert_eq!(hull("GEOMETRYCOLLECTION EMPTY"), "GEOMETRYCOLLECTION EMPTY");
    }

    #[test]
    fn hull_of_point_is_point() {
        assert_eq!(hull("POINT(3 4)"), "POINT(3 4)");
        assert_eq!(hull("MULTIPOINT((3 4),(3 4))"), "POINT(3 4)");
    }

    #[test]
    fn hull_of_two_points_is_segment() {
        assert_eq!(hull("MULTIPOINT((0 0),(2 3))"), "LINESTRING(0 0,2 3)");
    }

    #[test]
    fn hull_of_collinear_points_is_segment() {
        assert_eq!(
            hull("MULTIPOINT((0 0),(1 1),(2 2),(3 3))"),
            "LINESTRING(0 0,3 3)"
        );
    }

    #[test]
    fn hull_of_square_plus_interior_point() {
        let out = hull("MULTIPOINT((0 0),(4 0),(4 4),(0 4),(2 2))");
        let g = parse_wkt(&out).unwrap();
        // The hull is a quadrilateral: 4 distinct vertices + closing vertex.
        assert_eq!(g.num_coords(), 5);
        // The interior point is not a hull vertex.
        assert!(!out.contains("2 2"));
    }

    #[test]
    fn hull_vertices_are_subset_of_input() {
        let input = parse_wkt("LINESTRING(0 0,5 1,3 7,-2 4,1 1)").unwrap();
        let out = convex_hull(&input);
        let mut input_coords = Vec::new();
        input.for_each_coord(&mut |c| input_coords.push(*c));
        out.for_each_coord(&mut |c| {
            assert!(
                input_coords.iter().any(|i| i.approx_eq(c)),
                "hull vertex {c:?} not in input"
            );
        });
    }

    #[test]
    fn hull_contains_all_input_points() {
        use crate::predicates::covers;
        let input = parse_wkt("MULTIPOINT((0 0),(4 0),(4 4),(0 4),(2 2),(1 3))").unwrap();
        let out = convex_hull(&input);
        assert!(covers(&out, &input));
    }

    #[test]
    fn hull_of_polygon_with_notch_is_its_bounding_triangle_shape() {
        // A concave polygon's hull drops the reflex vertex.
        let out = hull("POLYGON((0 0,10 0,10 10,5 5,0 10,0 0))");
        assert!(!out.contains("5 5"));
    }
}
