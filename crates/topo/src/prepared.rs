//! Prepared geometry: a cached, reusable acceleration structure for repeated
//! predicate evaluation against the same geometry.
//!
//! Mirrors the GEOS "prepared geometry" component in which the paper found a
//! logic bug (Listing 7): engines prepare the left-hand geometry of a spatial
//! join once and evaluate the predicate against every right-hand row. The
//! paper quotes a GEOS developer: "every prepared variant should return the
//! same as the non-prepared variant" — this reference implementation keeps
//! that property (the envelope check is a *conservative* short circuit); the
//! seeded fault in the engine crate breaks it the same way the real bug did.

use crate::coverage;
use crate::predicates::NamedPredicate;
use spatter_geom::{Envelope, Geometry};

/// A geometry plus cached data for fast repeated predicate evaluation.
#[derive(Debug, Clone)]
pub struct PreparedGeometry {
    geometry: Geometry,
    envelope: Envelope,
}

impl PreparedGeometry {
    /// Prepares a geometry.
    pub fn new(geometry: Geometry) -> Self {
        coverage::hit("topo.prepared.build");
        let envelope = geometry.envelope();
        PreparedGeometry { geometry, envelope }
    }

    /// The wrapped geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The cached envelope.
    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    /// Evaluates a named predicate with this prepared geometry as the left
    /// argument. Envelope-based short circuits are applied only when they are
    /// sound for the predicate in question.
    pub fn evaluate(&self, predicate: NamedPredicate, other: &Geometry) -> bool {
        coverage::hit("topo.prepared.predicate");
        let other_env = other.envelope();
        let envelopes_interact = self.envelope.intersects(&other_env);
        match predicate {
            // These predicates require the point sets to share at least one
            // point, so non-interacting envelopes decide them immediately.
            NamedPredicate::Intersects
            | NamedPredicate::Crosses
            | NamedPredicate::Overlaps
            | NamedPredicate::Touches
            | NamedPredicate::Equals => {
                if !envelopes_interact {
                    return false;
                }
                predicate.evaluate(&self.geometry, other)
            }
            NamedPredicate::Disjoint => {
                if !envelopes_interact {
                    return true;
                }
                predicate.evaluate(&self.geometry, other)
            }
            // Containment-style predicates additionally require the envelope
            // of the contained geometry to lie inside the container's.
            NamedPredicate::Contains | NamedPredicate::Covers => {
                if !other.is_empty() && !self.envelope.contains_envelope(&other_env) {
                    return false;
                }
                predicate.evaluate(&self.geometry, other)
            }
            NamedPredicate::Within | NamedPredicate::CoveredBy => {
                if !self.geometry.is_empty() && !other_env.contains_envelope(&self.envelope) {
                    return false;
                }
                predicate.evaluate(&self.geometry, other)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::parse_wkt;

    fn g(wkt: &str) -> Geometry {
        parse_wkt(wkt).unwrap()
    }

    #[test]
    fn prepared_matches_plain_predicates() {
        let cases = [
            ("POLYGON((0 0,4 0,4 4,0 4,0 0))", "POINT(2 2)"),
            ("POLYGON((0 0,4 0,4 4,0 4,0 0))", "POINT(9 9)"),
            ("LINESTRING(0 0,4 4)", "LINESTRING(0 4,4 0)"),
            (
                "MULTIPOLYGON(((0 0,5 0,0 5,0 0)))",
                "GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)))",
            ),
            (
                "POLYGON((0 0,4 0,4 4,0 4,0 0))",
                "POLYGON((4 0,8 0,8 4,4 4,4 0))",
            ),
        ];
        for (a, b) in cases {
            let ga = g(a);
            let gb = g(b);
            let prepared = PreparedGeometry::new(ga.clone());
            for p in NamedPredicate::ALL {
                assert_eq!(
                    prepared.evaluate(p, &gb),
                    p.evaluate(&ga, &gb),
                    "{} on {a} / {b}",
                    p.function_name()
                );
            }
        }
    }

    #[test]
    fn listing7_contains_pair_is_found_by_prepared_path() {
        // The pair the real prepared-geometry bug dropped: the triangle
        // contains the multipoint collection.
        let triangle = g("MULTIPOLYGON(((0 0,5 0,0 5,0 0)))");
        let points = g("GEOMETRYCOLLECTION(MULTIPOINT((0 0),(3 1)))");
        let prepared = PreparedGeometry::new(triangle.clone());
        assert!(NamedPredicate::Contains.evaluate(&triangle, &points));
        assert!(prepared.evaluate(NamedPredicate::Contains, &points));
    }

    #[test]
    fn envelope_short_circuit_is_exercised() {
        let prepared = PreparedGeometry::new(g("POLYGON((0 0,1 0,1 1,0 1,0 0))"));
        // Far away: decided by envelopes alone.
        assert!(!prepared.evaluate(NamedPredicate::Intersects, &g("POINT(100 100)")));
        assert!(prepared.evaluate(NamedPredicate::Disjoint, &g("POINT(100 100)")));
        assert!(!prepared.evaluate(
            NamedPredicate::Contains,
            &g("POLYGON((0 0,9 0,9 9,0 9,0 0))")
        ));
    }

    #[test]
    fn prepared_geometry_exposes_its_parts() {
        let prepared = PreparedGeometry::new(g("LINESTRING(0 0,2 2)"));
        assert_eq!(prepared.geometry(), &g("LINESTRING(0 0,2 2)"));
        assert_eq!(prepared.envelope().max_x(), 2.0);
    }
}
