//! The boundary operator (`ST_Boundary`) per Definition 2.1/2.2.
//!
//! * POINT / MULTIPOINT → empty;
//! * LINESTRING / MULTILINESTRING → the endpoints occurring an odd number of
//!   times (mod-2 rule); closed rings have an empty boundary;
//! * POLYGON / MULTIPOLYGON → the rings, as (MULTI)LINESTRING;
//! * GEOMETRYCOLLECTION → the union of member boundaries with the mod-2 rule
//!   applied across the line members (the reference behaviour; the
//!   "last-one-wins" strategy that caused the GEOS bug of Listing 6 is a
//!   seeded fault in the engine crate, not implemented here).

use crate::coverage;
use spatter_geom::{
    Coord, Geometry, GeometryCollection, LineString, MultiLineString, MultiPoint, Point,
};

/// Computes the topological boundary of a geometry.
pub fn boundary(geometry: &Geometry) -> Geometry {
    match geometry {
        Geometry::Point(_) | Geometry::MultiPoint(_) => {
            coverage::hit("topo.boundary.point");
            Geometry::GeometryCollection(GeometryCollection::empty())
        }
        Geometry::LineString(l) => {
            coverage::hit("topo.boundary.linestring");
            boundary_of_lines(std::slice::from_ref(l))
        }
        Geometry::MultiLineString(m) => {
            coverage::hit("topo.boundary.multilinestring");
            boundary_of_lines(&m.lines)
        }
        Geometry::Polygon(p) => {
            coverage::hit("topo.boundary.polygon");
            let rings: Vec<LineString> =
                p.rings.iter().filter(|r| !r.is_empty()).cloned().collect();
            rings_as_lines(rings)
        }
        Geometry::MultiPolygon(m) => {
            coverage::hit("topo.boundary.multipolygon");
            let rings: Vec<LineString> = m
                .polygons
                .iter()
                .flat_map(|p| p.rings.iter())
                .filter(|r| !r.is_empty())
                .cloned()
                .collect();
            rings_as_lines(rings)
        }
        Geometry::GeometryCollection(c) => {
            coverage::hit("topo.boundary.collection");
            boundary_of_collection(c.geometries.as_slice())
        }
    }
}

fn rings_as_lines(rings: Vec<LineString>) -> Geometry {
    match rings.len() {
        0 => Geometry::LineString(LineString::empty()),
        1 => Geometry::LineString(rings.into_iter().next().expect("len checked")),
        _ => Geometry::MultiLineString(MultiLineString::new(rings)),
    }
}

/// Mod-2 boundary of a set of linestrings: the endpoints that appear an odd
/// number of times across all open components.
fn boundary_of_lines(lines: &[LineString]) -> Geometry {
    let mut counts: Vec<(Coord, usize)> = Vec::new();
    let mut bump = |c: Coord| {
        if let Some(entry) = counts.iter_mut().find(|(e, _)| e.approx_eq(&c)) {
            entry.1 += 1;
        } else {
            counts.push((c, 1));
        }
    };
    for line in lines {
        if line.is_empty() || line.coords.len() < 2 || line.is_closed() {
            continue;
        }
        bump(line.coords[0]);
        bump(line.coords[line.coords.len() - 1]);
    }
    let odd: Vec<Point> = counts
        .into_iter()
        .filter(|(_, n)| n % 2 == 1)
        .map(|(c, _)| Point::from_coord(c))
        .collect();
    match odd.len() {
        0 => Geometry::MultiPoint(MultiPoint::empty()),
        1 => Geometry::Point(odd.into_iter().next().expect("len checked")),
        _ => Geometry::MultiPoint(MultiPoint::new(odd)),
    }
}

/// Reference boundary of a mixed collection: collect the boundaries of the
/// members, then apply the mod-2 cancellation across point boundaries coming
/// from line members.
fn boundary_of_collection(members: &[Geometry]) -> Geometry {
    let mut lines: Vec<LineString> = Vec::new();
    let mut all_line_members: Vec<LineString> = Vec::new();
    for member in members {
        match member {
            Geometry::LineString(l) => all_line_members.push(l.clone()),
            Geometry::MultiLineString(m) => all_line_members.extend(m.lines.iter().cloned()),
            Geometry::Polygon(p) => lines.extend(p.rings.iter().filter(|r| !r.is_empty()).cloned()),
            Geometry::MultiPolygon(m) => lines.extend(
                m.polygons
                    .iter()
                    .flat_map(|p| p.rings.iter())
                    .filter(|r| !r.is_empty())
                    .cloned(),
            ),
            Geometry::GeometryCollection(c) => match boundary_of_collection(&c.geometries) {
                Geometry::GeometryCollection(inner) => {
                    for g in inner.geometries {
                        match g {
                            Geometry::LineString(l) => lines.push(l),
                            Geometry::MultiLineString(m) => lines.extend(m.lines),
                            Geometry::Point(p) => {
                                if let Some(c) = p.coord {
                                    lines.push(LineString::new(vec![c, c]));
                                }
                            }
                            _ => {}
                        }
                    }
                }
                Geometry::LineString(l) => lines.push(l),
                Geometry::MultiLineString(m) => lines.extend(m.lines),
                _ => {}
            },
            // Points contribute nothing to the boundary.
            Geometry::Point(_) | Geometry::MultiPoint(_) => {}
        }
    }

    let point_boundary = boundary_of_lines(&all_line_members);
    let mut parts: Vec<Geometry> = Vec::new();
    match point_boundary {
        Geometry::MultiPoint(mp) if mp.points.is_empty() => {}
        other => parts.push(other),
    }
    if !lines.is_empty() {
        parts.push(rings_as_lines(lines));
    }
    match parts.len() {
        0 => Geometry::GeometryCollection(GeometryCollection::empty()),
        1 => parts.into_iter().next().expect("len checked"),
        _ => Geometry::GeometryCollection(GeometryCollection::new(parts)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::{parse_wkt, write_wkt};

    fn bdy(wkt: &str) -> String {
        write_wkt(&boundary(&parse_wkt(wkt).unwrap()))
    }

    #[test]
    fn point_boundary_is_empty() {
        assert_eq!(bdy("POINT(1 2)"), "GEOMETRYCOLLECTION EMPTY");
        assert_eq!(bdy("MULTIPOINT((1 2),(3 4))"), "GEOMETRYCOLLECTION EMPTY");
    }

    #[test]
    fn open_linestring_boundary_is_its_endpoints() {
        assert_eq!(bdy("LINESTRING(0 0,4 0,4 4)"), "MULTIPOINT((0 0),(4 4))");
    }

    #[test]
    fn closed_linestring_boundary_is_empty() {
        assert_eq!(bdy("LINESTRING(0 0,4 0,4 4,0 0)"), "MULTIPOINT EMPTY");
    }

    #[test]
    fn multilinestring_mod2_cancellation() {
        // The shared endpoint (1 1) appears twice and cancels.
        assert_eq!(
            bdy("MULTILINESTRING((0 0,1 1),(1 1,2 0))"),
            "MULTIPOINT((0 0),(2 0))"
        );
        // A three-way junction stays in the boundary (odd count). The output
        // lists endpoints in first-seen order.
        assert_eq!(
            bdy("MULTILINESTRING((0 0,1 1),(1 1,2 0),(1 1,1 3))"),
            "MULTIPOINT((0 0),(1 1),(2 0),(1 3))"
        );
    }

    #[test]
    fn polygon_boundary_is_rings() {
        assert_eq!(
            bdy("POLYGON((0 0,4 0,4 4,0 4,0 0))"),
            "LINESTRING(0 0,4 0,4 4,0 4,0 0)"
        );
        assert_eq!(
            bdy("POLYGON((0 0,10 0,10 10,0 10,0 0),(2 2,4 2,4 4,2 4,2 2))"),
            "MULTILINESTRING((0 0,10 0,10 10,0 10,0 0),(2 2,4 2,4 4,2 4,2 2))"
        );
    }

    #[test]
    fn multipolygon_boundary_collects_all_rings() {
        assert_eq!(
            bdy("MULTIPOLYGON(((0 0,1 0,1 1,0 0)),((5 5,6 5,6 6,5 5)))"),
            "MULTILINESTRING((0 0,1 0,1 1,0 0),(5 5,6 5,6 6,5 5))"
        );
    }

    #[test]
    fn collection_boundary_mixes_dimensions() {
        let out = bdy("GEOMETRYCOLLECTION(LINESTRING(0 0,1 0),POLYGON((2 0,3 0,3 1,2 0)))");
        assert_eq!(
            out,
            "GEOMETRYCOLLECTION(MULTIPOINT((0 0),(1 0)),LINESTRING(2 0,3 0,3 1,2 0))"
        );
    }

    #[test]
    fn collection_boundary_of_point_members_is_empty() {
        assert_eq!(
            bdy("GEOMETRYCOLLECTION(POINT(0 0),MULTIPOINT((1 1)))"),
            "GEOMETRYCOLLECTION EMPTY"
        );
    }

    #[test]
    fn collection_mod2_applies_across_members() {
        // Two separate linestring members sharing an endpoint: the shared
        // endpoint cancels out across members.
        assert_eq!(
            bdy("GEOMETRYCOLLECTION(LINESTRING(0 0,1 1),LINESTRING(1 1,2 0))"),
            "MULTIPOINT((0 0),(2 0))"
        );
    }

    #[test]
    fn empty_geometries_have_empty_boundaries() {
        assert_eq!(bdy("LINESTRING EMPTY"), "MULTIPOINT EMPTY");
        assert_eq!(bdy("POLYGON EMPTY"), "LINESTRING EMPTY");
        assert_eq!(bdy("GEOMETRYCOLLECTION EMPTY"), "GEOMETRYCOLLECTION EMPTY");
    }
}
