//! The editing functions of the derivative strategy (Table 1 of the paper).
//!
//! The derivative strategy derives a new geometry from existing ones by
//! applying SDBMS editing functions; failures produce an EMPTY geometry
//! (Algorithm 1, lines 21–22). The same functions are exposed by the SQL
//! engine as `ST_*` scalar functions.

use crate::boundary;
use crate::convex_hull;
use crate::coverage;
use spatter_geom::error::{GeomError, GeomResult};
use spatter_geom::orientation::{ring_orientation, RingOrientation};
use spatter_geom::{
    Coord, Geometry, GeometryCollection, GeometryType, LineString, MultiLineString, MultiPoint,
    MultiPolygon, Point, Polygon,
};

/// The catalogue of editing functions, grouped exactly as Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EditFunction {
    // --- Line-based -------------------------------------------------------
    /// Replace a specific point of an input LINESTRING with a given point.
    SetPoint,
    /// Create a GEOMETRYCOLLECTION containing the polygons formed by the line.
    Polygonize,
    // --- Polygon-based ----------------------------------------------------
    /// Extract the rings of an input POLYGON.
    DumpRings,
    /// Force a POLYGON / MULTIPOLYGON to clockwise exterior rings.
    ForcePolygonCW,
    // --- Multi-dimensional ------------------------------------------------
    /// Fetch the Nth element (1-based) from a MULTI or MIXED geometry.
    GeometryN,
    /// Extract the elements of a given type from a MULTI or MIXED geometry.
    CollectionExtract,
    // --- Generic ----------------------------------------------------------
    /// Retrieve the boundary of the input geometry.
    Boundary,
    /// Generate the convex hull of the input geometry.
    ConvexHull,
    /// The bounding box of the input geometry, as a polygon.
    Envelope,
    /// Reverse the vertex order of the input geometry.
    Reverse,
    /// The Nth vertex of a LINESTRING (1-based).
    PointN,
    /// Combine two geometries into a collection.
    Collect,
}

impl EditFunction {
    /// All editing functions.
    pub const ALL: [EditFunction; 12] = [
        EditFunction::SetPoint,
        EditFunction::Polygonize,
        EditFunction::DumpRings,
        EditFunction::ForcePolygonCW,
        EditFunction::GeometryN,
        EditFunction::CollectionExtract,
        EditFunction::Boundary,
        EditFunction::ConvexHull,
        EditFunction::Envelope,
        EditFunction::Reverse,
        EditFunction::PointN,
        EditFunction::Collect,
    ];

    /// The number of geometry arguments the function consumes (Algorithm 1,
    /// line 18: "the geometry number editFunc needed").
    pub fn arity(&self) -> usize {
        match self {
            EditFunction::SetPoint | EditFunction::Collect => 2,
            _ => 1,
        }
    }

    /// The SQL name of the function.
    pub fn function_name(&self) -> &'static str {
        match self {
            EditFunction::SetPoint => "ST_SetPoint",
            EditFunction::Polygonize => "ST_Polygonize",
            EditFunction::DumpRings => "ST_DumpRings",
            EditFunction::ForcePolygonCW => "ST_ForcePolygonCW",
            EditFunction::GeometryN => "ST_GeometryN",
            EditFunction::CollectionExtract => "ST_CollectionExtract",
            EditFunction::Boundary => "ST_Boundary",
            EditFunction::ConvexHull => "ST_ConvexHull",
            EditFunction::Envelope => "ST_Envelope",
            EditFunction::Reverse => "ST_Reverse",
            EditFunction::PointN => "ST_PointN",
            EditFunction::Collect => "ST_Collect",
        }
    }

    /// The Table 1 category of this function.
    pub fn category(&self) -> &'static str {
        match self {
            EditFunction::SetPoint | EditFunction::Polygonize => "Line-Based",
            EditFunction::DumpRings | EditFunction::ForcePolygonCW => "Polygon-Based",
            EditFunction::GeometryN | EditFunction::CollectionExtract => "Multi-Dimensional",
            _ => "Generic",
        }
    }

    /// The coverage probe this function's implementation hits — the handle
    /// the coverage-guided generator uses to steer the derivative strategy
    /// towards editing functions whose code paths are still cold.
    pub fn probe_name(&self) -> &'static str {
        match self {
            EditFunction::SetPoint => "topo.editing.set_point",
            EditFunction::Polygonize => "topo.editing.polygonize",
            EditFunction::DumpRings => "topo.editing.dump_rings",
            EditFunction::ForcePolygonCW => "topo.editing.force_polygon_cw",
            EditFunction::GeometryN => "topo.editing.geometry_n",
            EditFunction::CollectionExtract => "topo.editing.collection_extract",
            EditFunction::Boundary => "topo.editing.boundary",
            EditFunction::ConvexHull => "topo.editing.convex_hull",
            EditFunction::Envelope => "topo.editing.envelope",
            EditFunction::Reverse => "topo.editing.reverse",
            EditFunction::PointN => "topo.editing.point_n",
            EditFunction::Collect => "topo.editing.collect",
        }
    }
}

/// `ST_SetPoint`: replace the `index`-th (0-based) vertex of a LINESTRING.
pub fn set_point(line: &Geometry, index: usize, point: &Geometry) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.set_point");
    let Geometry::LineString(l) = line else {
        return Err(GeomError::UnsupportedType {
            operation: "ST_SetPoint",
            geometry_type: line.geometry_type().wkt_name(),
        });
    };
    let Geometry::Point(p) = point else {
        return Err(GeomError::UnsupportedType {
            operation: "ST_SetPoint",
            geometry_type: point.geometry_type().wkt_name(),
        });
    };
    let Some(coord) = p.coord else {
        return Err(GeomError::InvalidGeometry(
            "cannot set an EMPTY point".into(),
        ));
    };
    if index >= l.coords.len() {
        return Err(GeomError::InvalidGeometry(format!(
            "point index {index} out of range for linestring with {} points",
            l.coords.len()
        )));
    }
    let mut coords = l.coords.clone();
    coords[index] = coord;
    Ok(Geometry::LineString(LineString::new(coords)))
}

/// `ST_Polygonize`: form polygons from closed linework. The simplified
/// implementation turns every closed linestring (of the input or its
/// elements) into a polygon and returns them wrapped in a collection.
pub fn polygonize(geometry: &Geometry) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.polygonize");
    let mut polygons: Vec<Geometry> = Vec::new();
    for part in geometry.flatten() {
        if let Geometry::LineString(l) = part {
            if l.is_closed() {
                polygons.push(Geometry::Polygon(Polygon::from_exterior(l)));
            }
        }
    }
    Ok(Geometry::GeometryCollection(GeometryCollection::new(
        polygons,
    )))
}

/// `ST_DumpRings`: the rings of a polygon, each as a single-ring polygon,
/// wrapped in a collection.
pub fn dump_rings(geometry: &Geometry) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.dump_rings");
    let rings: Vec<Geometry> = match geometry {
        Geometry::Polygon(p) => p
            .rings
            .iter()
            .filter(|r| !r.is_empty())
            .map(|r| Geometry::Polygon(Polygon::from_exterior(r.clone())))
            .collect(),
        Geometry::MultiPolygon(m) => m
            .polygons
            .iter()
            .flat_map(|p| p.rings.iter())
            .filter(|r| !r.is_empty())
            .map(|r| Geometry::Polygon(Polygon::from_exterior(r.clone())))
            .collect(),
        other => {
            return Err(GeomError::UnsupportedType {
                operation: "ST_DumpRings",
                geometry_type: other.geometry_type().wkt_name(),
            })
        }
    };
    Ok(Geometry::GeometryCollection(GeometryCollection::new(rings)))
}

/// `ST_ForcePolygonCW`: clockwise exterior rings and counter-clockwise holes.
pub fn force_polygon_cw(geometry: &Geometry) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.force_polygon_cw");
    fn fix(polygon: &Polygon) -> Polygon {
        let rings = polygon
            .rings
            .iter()
            .enumerate()
            .map(|(idx, ring)| {
                let orientation = ring_orientation(ring);
                let want_cw = idx == 0;
                let is_cw = orientation == RingOrientation::Clockwise;
                if orientation == RingOrientation::Degenerate || is_cw == want_cw {
                    ring.clone()
                } else {
                    ring.reversed()
                }
            })
            .collect();
        Polygon::new(rings)
    }
    match geometry {
        Geometry::Polygon(p) => Ok(Geometry::Polygon(fix(p))),
        Geometry::MultiPolygon(m) => Ok(Geometry::MultiPolygon(MultiPolygon::new(
            m.polygons.iter().map(fix).collect(),
        ))),
        other => Err(GeomError::UnsupportedType {
            operation: "ST_ForcePolygonCW",
            geometry_type: other.geometry_type().wkt_name(),
        }),
    }
}

/// `ST_GeometryN`: the `n`-th (1-based) element of a MULTI or MIXED geometry.
pub fn geometry_n(geometry: &Geometry, n: usize) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.geometry_n");
    geometry.geometry_n(n).ok_or_else(|| {
        GeomError::InvalidGeometry(format!(
            "element {n} out of range for geometry with {} elements",
            geometry.num_geometries()
        ))
    })
}

/// `ST_CollectionExtract`: the elements of a given basic type, as the
/// corresponding MULTI geometry.
pub fn collection_extract(geometry: &Geometry, target: GeometryType) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.collection_extract");
    let flat = geometry.flatten();
    match target {
        GeometryType::Point => Ok(Geometry::MultiPoint(MultiPoint::new(
            flat.into_iter()
                .filter_map(|g| match g {
                    Geometry::Point(p) if !p.is_empty() => Some(p),
                    _ => None,
                })
                .collect(),
        ))),
        GeometryType::LineString => Ok(Geometry::MultiLineString(MultiLineString::new(
            flat.into_iter()
                .filter_map(|g| match g {
                    Geometry::LineString(l) if !l.is_empty() => Some(l),
                    _ => None,
                })
                .collect(),
        ))),
        GeometryType::Polygon => Ok(Geometry::MultiPolygon(MultiPolygon::new(
            flat.into_iter()
                .filter_map(|g| match g {
                    Geometry::Polygon(p) if !p.is_empty() => Some(p),
                    _ => None,
                })
                .collect(),
        ))),
        other => Err(GeomError::UnsupportedType {
            operation: "ST_CollectionExtract",
            geometry_type: other.wkt_name(),
        }),
    }
}

/// `ST_Boundary`.
pub fn boundary_of(geometry: &Geometry) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.boundary");
    Ok(boundary::boundary(geometry))
}

/// `ST_ConvexHull`.
pub fn convex_hull_of(geometry: &Geometry) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.convex_hull");
    Ok(convex_hull::convex_hull(geometry))
}

/// `ST_Envelope`: the bounding box as a polygon (degenerate inputs yield a
/// point or a line, as in PostGIS).
pub fn envelope_of(geometry: &Geometry) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.envelope");
    let env = geometry.envelope();
    if env.is_empty() {
        return Ok(Geometry::Polygon(Polygon::empty()));
    }
    let (x0, y0, x1, y1) = (env.min_x(), env.min_y(), env.max_x(), env.max_y());
    if x0 == x1 && y0 == y1 {
        return Ok(Geometry::Point(Point::new(x0, y0)));
    }
    if x0 == x1 || y0 == y1 {
        return Ok(Geometry::LineString(LineString::new(vec![
            Coord::new(x0, y0),
            Coord::new(x1, y1),
        ])));
    }
    Ok(Geometry::Polygon(Polygon::from_exterior(LineString::new(
        vec![
            Coord::new(x0, y0),
            Coord::new(x1, y0),
            Coord::new(x1, y1),
            Coord::new(x0, y1),
            Coord::new(x0, y0),
        ],
    ))))
}

/// `ST_Reverse`: reverse vertex order everywhere.
pub fn reverse(geometry: &Geometry) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.reverse");
    fn rev(geometry: &Geometry) -> Geometry {
        match geometry {
            Geometry::LineString(l) => Geometry::LineString(l.reversed()),
            Geometry::Polygon(p) => {
                Geometry::Polygon(Polygon::new(p.rings.iter().map(|r| r.reversed()).collect()))
            }
            Geometry::MultiLineString(m) => Geometry::MultiLineString(MultiLineString::new(
                m.lines.iter().map(|l| l.reversed()).collect(),
            )),
            Geometry::MultiPolygon(m) => Geometry::MultiPolygon(MultiPolygon::new(
                m.polygons
                    .iter()
                    .map(|p| Polygon::new(p.rings.iter().map(|r| r.reversed()).collect()))
                    .collect(),
            )),
            Geometry::GeometryCollection(c) => Geometry::GeometryCollection(
                GeometryCollection::new(c.geometries.iter().map(rev).collect()),
            ),
            other => other.clone(),
        }
    }
    Ok(rev(geometry))
}

/// `ST_PointN`: the `n`-th (1-based) vertex of a LINESTRING.
pub fn point_n(geometry: &Geometry, n: usize) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.point_n");
    let Geometry::LineString(l) = geometry else {
        return Err(GeomError::UnsupportedType {
            operation: "ST_PointN",
            geometry_type: geometry.geometry_type().wkt_name(),
        });
    };
    if n == 0 || n > l.coords.len() {
        return Err(GeomError::InvalidGeometry(format!(
            "vertex {n} out of range for linestring with {} points",
            l.coords.len()
        )));
    }
    Ok(Geometry::Point(Point::from_coord(l.coords[n - 1])))
}

/// `ST_Collect`: combine two geometries. Two geometries of the same basic
/// type produce the corresponding MULTI geometry; anything else produces a
/// GEOMETRYCOLLECTION.
pub fn collect(a: &Geometry, b: &Geometry) -> GeomResult<Geometry> {
    coverage::hit("topo.editing.collect");
    match (a, b) {
        (Geometry::Point(pa), Geometry::Point(pb)) => {
            Ok(Geometry::MultiPoint(MultiPoint::new(vec![
                pa.clone(),
                pb.clone(),
            ])))
        }
        (Geometry::LineString(la), Geometry::LineString(lb)) => {
            Ok(Geometry::MultiLineString(MultiLineString::new(vec![
                la.clone(),
                lb.clone(),
            ])))
        }
        (Geometry::Polygon(pa), Geometry::Polygon(pb)) => {
            Ok(Geometry::MultiPolygon(MultiPolygon::new(vec![
                pa.clone(),
                pb.clone(),
            ])))
        }
        _ => Ok(Geometry::GeometryCollection(GeometryCollection::new(vec![
            a.clone(),
            b.clone(),
        ]))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::wkt::{parse_wkt, write_wkt};

    fn g(wkt: &str) -> Geometry {
        parse_wkt(wkt).unwrap()
    }

    #[test]
    fn set_point_replaces_vertex() {
        let out = set_point(&g("LINESTRING(0 0,1 1,2 2)"), 1, &g("POINT(5 5)")).unwrap();
        assert_eq!(write_wkt(&out), "LINESTRING(0 0,5 5,2 2)");
        assert!(set_point(&g("LINESTRING(0 0,1 1)"), 5, &g("POINT(5 5)")).is_err());
        assert!(set_point(&g("POINT(0 0)"), 0, &g("POINT(5 5)")).is_err());
        assert!(set_point(&g("LINESTRING(0 0,1 1)"), 0, &g("POINT EMPTY")).is_err());
    }

    #[test]
    fn polygonize_closed_lines() {
        let out = polygonize(&g("LINESTRING(0 0,4 0,4 4,0 0)")).unwrap();
        assert_eq!(
            write_wkt(&out),
            "GEOMETRYCOLLECTION(POLYGON((0 0,4 0,4 4,0 0)))"
        );
        // An open line produces an empty collection.
        let out = polygonize(&g("LINESTRING(0 0,4 0)")).unwrap();
        assert_eq!(write_wkt(&out), "GEOMETRYCOLLECTION EMPTY");
    }

    #[test]
    fn dump_rings_extracts_holes_too() {
        let out = dump_rings(&g(
            "POLYGON((0 0,10 0,10 10,0 10,0 0),(2 2,4 2,4 4,2 4,2 2))",
        ))
        .unwrap();
        assert_eq!(out.num_geometries(), 2);
        assert!(dump_rings(&g("LINESTRING(0 0,1 1)")).is_err());
    }

    #[test]
    fn force_polygon_cw_flips_ccw_shells() {
        let out = force_polygon_cw(&g("POLYGON((0 0,4 0,4 4,0 4,0 0))")).unwrap();
        assert_eq!(write_wkt(&out), "POLYGON((0 0,0 4,4 4,4 0,0 0))");
        // An already-CW polygon is unchanged.
        let out2 = force_polygon_cw(&out).unwrap();
        assert_eq!(out2, out);
        assert!(force_polygon_cw(&g("POINT(0 0)")).is_err());
    }

    #[test]
    fn force_polygon_cw_makes_holes_ccw() {
        let out = force_polygon_cw(&g(
            "POLYGON((0 0,0 10,10 10,10 0,0 0),(2 2,2 4,4 4,4 2,2 2))",
        ))
        .unwrap();
        match out {
            Geometry::Polygon(p) => {
                assert_eq!(ring_orientation(&p.rings[0]), RingOrientation::Clockwise);
                assert_eq!(
                    ring_orientation(&p.rings[1]),
                    RingOrientation::CounterClockwise
                );
            }
            _ => panic!("expected polygon"),
        }
    }

    #[test]
    fn geometry_n_is_one_based_and_bounded() {
        let mp = g("MULTIPOINT((0 0),(1 1),(2 2))");
        assert_eq!(write_wkt(&geometry_n(&mp, 2).unwrap()), "POINT(1 1)");
        assert!(geometry_n(&mp, 0).is_err());
        assert!(geometry_n(&mp, 4).is_err());
    }

    #[test]
    fn collection_extract_by_type() {
        let gc = g("GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 1),POLYGON((0 0,1 0,1 1,0 0)),POINT(5 5))");
        assert_eq!(
            write_wkt(&collection_extract(&gc, GeometryType::Point).unwrap()),
            "MULTIPOINT((0 0),(5 5))"
        );
        assert_eq!(
            write_wkt(&collection_extract(&gc, GeometryType::LineString).unwrap()),
            "MULTILINESTRING((0 0,1 1))"
        );
        assert_eq!(
            write_wkt(&collection_extract(&gc, GeometryType::Polygon).unwrap()),
            "MULTIPOLYGON(((0 0,1 0,1 1,0 0)))"
        );
        assert!(collection_extract(&gc, GeometryType::MultiPoint).is_err());
    }

    #[test]
    fn envelope_shapes() {
        assert_eq!(
            write_wkt(&envelope_of(&g("LINESTRING(1 1,3 4)")).unwrap()),
            "POLYGON((1 1,3 1,3 4,1 4,1 1))"
        );
        assert_eq!(
            write_wkt(&envelope_of(&g("POINT(2 2)")).unwrap()),
            "POINT(2 2)"
        );
        assert_eq!(
            write_wkt(&envelope_of(&g("LINESTRING(0 0,5 0)")).unwrap()),
            "LINESTRING(0 0,5 0)"
        );
        assert_eq!(
            write_wkt(&envelope_of(&g("POLYGON EMPTY")).unwrap()),
            "POLYGON EMPTY"
        );
    }

    #[test]
    fn reverse_round_trips() {
        let original = g("GEOMETRYCOLLECTION(LINESTRING(0 0,1 1,2 2),POLYGON((0 0,4 0,4 4,0 0)))");
        let reversed = reverse(&original).unwrap();
        assert_ne!(reversed, original);
        assert_eq!(reverse(&reversed).unwrap(), original);
    }

    #[test]
    fn point_n_accesses_vertices() {
        let l = g("LINESTRING(0 0,1 1,2 2)");
        assert_eq!(write_wkt(&point_n(&l, 1).unwrap()), "POINT(0 0)");
        assert_eq!(write_wkt(&point_n(&l, 3).unwrap()), "POINT(2 2)");
        assert!(point_n(&l, 4).is_err());
        assert!(point_n(&g("POINT(0 0)"), 1).is_err());
    }

    #[test]
    fn collect_builds_multi_or_collection() {
        assert_eq!(
            write_wkt(&collect(&g("POINT(0 0)"), &g("POINT(1 1)")).unwrap()),
            "MULTIPOINT((0 0),(1 1))"
        );
        assert_eq!(
            write_wkt(&collect(&g("POINT(0 0)"), &g("LINESTRING(0 0,1 1)")).unwrap()),
            "GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 1))"
        );
    }

    #[test]
    fn edit_function_metadata() {
        assert_eq!(EditFunction::SetPoint.arity(), 2);
        assert_eq!(EditFunction::Boundary.arity(), 1);
        assert_eq!(EditFunction::ALL.len(), 12);
        assert_eq!(EditFunction::Polygonize.category(), "Line-Based");
        assert_eq!(EditFunction::DumpRings.category(), "Polygon-Based");
        assert_eq!(EditFunction::GeometryN.category(), "Multi-Dimensional");
        assert_eq!(EditFunction::ConvexHull.category(), "Generic");
        assert_eq!(EditFunction::Collect.function_name(), "ST_Collect");
        // Every editing function advertises a probe that exists in the
        // static probe list (the guided generator keys off these names).
        for edit in EditFunction::ALL {
            assert!(
                crate::coverage::TOPO_PROBES.contains(&edit.probe_name()),
                "{} probe missing from TOPO_PROBES",
                edit.function_name()
            );
        }
    }

    #[test]
    fn boundary_and_hull_wrappers_delegate() {
        assert_eq!(
            write_wkt(&boundary_of(&g("LINESTRING(0 0,1 0)")).unwrap()),
            "MULTIPOINT((0 0),(1 0))"
        );
        assert_eq!(
            write_wkt(&convex_hull_of(&g("POINT(1 1)")).unwrap()),
            "POINT(1 1)"
        );
    }
}
