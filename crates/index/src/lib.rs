//! # spatter-index
//!
//! An R-tree spatial index over envelopes, playing the role of the GiST index
//! the paper's engines use for indexed spatial joins (Listing 8 creates such
//! an index and toggles `enable_seqscan`). The tester's *Index* oracle
//! (Table 4) compares results computed with and without it.
//!
//! The tree is a quadratic-split R-tree storing `(Envelope, payload)` pairs;
//! queries return every payload whose envelope intersects the probe envelope.
//! Because envelopes of EMPTY geometries are empty rectangles that intersect
//! nothing, the index by construction never returns EMPTY geometries — the
//! engine layer is responsible for handling them (this is exactly the class
//! of discrepancy behind Listing 8's bug, seeded as a fault there).

pub mod rtree;

pub use rtree::RTree;
