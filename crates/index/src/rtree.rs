//! A quadratic-split R-tree over [`Envelope`]s, with window queries and a
//! branch-and-bound nearest-neighbour search (the GiST `<->` analog used by
//! the engine's index-accelerated KNN path).

use spatter_geom::Envelope;
use std::collections::BinaryHeap;

/// Maximum number of entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum number of entries in a node after a split.
const MIN_ENTRIES: usize = 3;

/// An R-tree mapping envelopes to payload values.
///
/// Entries with empty envelopes (e.g. EMPTY geometries) are accepted but are
/// never returned by window queries, mirroring how GiST indexes key geometries
/// by their (possibly empty) bounding boxes.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
    empty_entries: Vec<T>,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { entries: Vec<(Envelope, T)> },
    Internal { children: Vec<(Envelope, Node<T>)> },
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
            empty_entries: Vec::new(),
        }
    }

    /// Builds a tree from an iterator of entries.
    pub fn bulk_load(items: impl IntoIterator<Item = (Envelope, T)>) -> Self {
        let mut tree = RTree::new();
        for (env, value) in items {
            tree.insert(env, value);
        }
        tree
    }

    /// Number of indexed entries (including entries with empty envelopes).
    pub fn len(&self) -> usize {
        self.len + self.empty_entries.len()
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an entry.
    pub fn insert(&mut self, envelope: Envelope, value: T) {
        if envelope.is_empty() {
            self.empty_entries.push(value);
            return;
        }
        self.len += 1;
        if let Some((left, right)) = insert_recursive(&mut self.root, envelope, value) {
            // Root split: grow the tree by one level.
            let left_env = node_envelope(&left);
            let right_env = node_envelope(&right);
            self.root = Node::Internal {
                children: vec![(left_env, left), (right_env, right)],
            };
        }
    }

    /// Returns every payload whose envelope intersects `query`, in insertion-
    /// independent (tree) order.
    pub fn query_intersects(&self, query: &Envelope) -> Vec<&T> {
        let mut out = Vec::new();
        if query.is_empty() {
            return out;
        }
        collect_intersecting(&self.root, query, &mut out);
        out
    }

    /// Returns payloads whose envelope equals `query` exactly (the `~=`
    /// same-bounding-box operator of Listing 8).
    pub fn query_same_box(&self, query: &Envelope) -> Vec<&T> {
        let mut out = Vec::new();
        if query.is_empty() {
            return out;
        }
        collect_same_box(&self.root, query, &mut out);
        out
    }

    /// Payloads of entries that were indexed with an empty envelope.
    pub fn empty_envelope_entries(&self) -> &[T] {
        &self.empty_entries
    }

    /// Buffer-reusing variant of [`RTree::query_intersects`]: clears `out`
    /// and fills it with the payloads whose envelope intersects `query`, in
    /// the same tree order. Callers probing in a loop (the engine's index
    /// joins) keep one buffer alive instead of allocating a vector per
    /// outer row.
    pub fn query_intersects_into(&self, query: &Envelope, out: &mut Vec<T>)
    where
        T: Copy,
    {
        out.clear();
        if query.is_empty() {
            return;
        }
        collect_intersecting_copied(&self.root, query, out);
    }

    /// Expanded-envelope distance probe (buffer-reusing): clears `out` and
    /// fills it with every payload whose envelope lies within squared
    /// distance `d_sq` of `probe`, boundary inclusive — the candidate set of
    /// a distance join with threshold `sqrt(d_sq)`.
    ///
    /// Subtrees are pruned with the same [`Envelope::distance_sq`] kernel the
    /// leaf test uses; a parent envelope contains its children, so its
    /// distance to the probe never exceeds theirs and pruning is exact: the
    /// result equals the linear-scan filter
    /// `entry_env.distance_sq(probe) <= d_sq` even at floating-point
    /// boundaries (no literal `max_x + d` arithmetic is performed, so no
    /// rounding can widen or narrow the candidate set). Entries with empty
    /// envelopes are never returned — their distance is infinite. A NaN
    /// `d_sq` matches nothing.
    pub fn query_within_distance_into(&self, probe: &Envelope, d_sq: f64, out: &mut Vec<T>)
    where
        T: Copy,
    {
        out.clear();
        if probe.is_empty() {
            return;
        }
        collect_within_distance(&self.root, probe, d_sq, out);
    }

    /// Best-first nearest-neighbour search (Hjaltason & Samet): returns the
    /// entries closest to `probe` in ascending distance order, where the real
    /// distance of an entry is supplied by `exact_distance` (the envelope
    /// stored in the tree only provides the lower bound used for pruning, so
    /// `exact_distance(t)` must be `>=` the envelope distance). Entries for
    /// which the closure returns `None` are excluded.
    ///
    /// The result contains at least `k` entries when that many are reachable,
    /// **plus every entry tied with the k-th distance** — callers that need
    /// exactly `k` apply their own deterministic tie-break, which is what
    /// keeps an index KNN scan consistent with a stable `ORDER BY` sort.
    ///
    /// Priorities are compared with `f64::total_cmp`, so a **positive** NaN
    /// distance orders after every finite distance (it is never pruned by
    /// the cutoff — `NaN > cutoff` is false — and pops last): such entries
    /// surface after all finite ones, matching an engine sort that places
    /// NaN keys last. Callers whose distance function can produce a
    /// *negative* NaN must canonicalize it (e.g. to `f64::NAN`) first, since
    /// `total_cmp` orders negative NaN before `-inf`.
    pub fn nearest_with<F>(
        &self,
        probe: &Envelope,
        k: usize,
        mut exact_distance: F,
    ) -> Vec<(f64, &T)>
    where
        F: FnMut(&T) -> Option<f64>,
    {
        let mut results: Vec<(f64, &T)> = Vec::new();
        if k == 0 || probe.is_empty() {
            return results;
        }
        let mut heap: BinaryHeap<NearestItem<'_, T>> = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(NearestItem {
            priority: node_envelope(&self.root).distance(probe),
            seq,
            kind: NearestKind::Node(&self.root),
        });
        let mut cutoff = f64::INFINITY;
        while let Some(item) = heap.pop() {
            if results.len() >= k && item.priority > cutoff {
                break;
            }
            match item.kind {
                NearestKind::Node(Node::Leaf { entries }) => {
                    for (env, value) in entries {
                        let lower = env.distance(probe);
                        if results.len() >= k && lower > cutoff {
                            continue;
                        }
                        if let Some(distance) = exact_distance(value) {
                            seq += 1;
                            heap.push(NearestItem {
                                priority: distance,
                                seq,
                                kind: NearestKind::Entry(value),
                            });
                        }
                    }
                }
                NearestKind::Node(Node::Internal { children }) => {
                    for (env, child) in children {
                        let lower = env.distance(probe);
                        if results.len() >= k && lower > cutoff {
                            continue;
                        }
                        seq += 1;
                        heap.push(NearestItem {
                            priority: lower,
                            seq,
                            kind: NearestKind::Node(child),
                        });
                    }
                }
                NearestKind::Entry(value) => {
                    results.push((item.priority, value));
                    if results.len() == k {
                        cutoff = item.priority;
                    }
                }
            }
        }
        results
    }

    /// Removes one entry whose stored envelope equals `envelope` and whose
    /// payload equals `value`. Returns `true` if an entry was removed.
    ///
    /// Underfull nodes along the removal path are condensed (their surviving
    /// entries collected and reinserted) and node envelopes are recomputed
    /// exactly, so a tree after `remove` answers every query identically to a
    /// freshly built tree over the surviving entries — the property the
    /// mutation-workload sweep pins.
    pub fn remove(&mut self, envelope: &Envelope, value: &T) -> bool
    where
        T: PartialEq,
    {
        if envelope.is_empty() {
            if let Some(pos) = self.empty_entries.iter().position(|v| v == value) {
                self.empty_entries.remove(pos);
                return true;
            }
            return false;
        }
        let mut orphans: Vec<(Envelope, T)> = Vec::new();
        if !remove_recursive(&mut self.root, envelope, value, &mut orphans) {
            return false;
        }
        self.len -= 1;
        // Shrink the root: a single-child internal root loses a level, an
        // empty internal root collapses back to an empty leaf.
        loop {
            match &mut self.root {
                Node::Internal { children } if children.len() == 1 => {
                    let (_, child) = children.pop().expect("one child");
                    self.root = child;
                }
                Node::Internal { children } if children.is_empty() => {
                    self.root = Node::Leaf {
                        entries: Vec::new(),
                    };
                }
                _ => break,
            }
        }
        // Reinsert entries orphaned by condensed nodes. They were already
        // counted in `len` and `insert` counts them again, so settle first.
        self.len -= orphans.len();
        for (env, v) in orphans {
            self.insert(env, v);
        }
        true
    }

    /// Moves an entry: removes it under `old` and reinserts it under `new`.
    /// Returns `false` (leaving the tree untouched) when no entry matched.
    pub fn reinsert(&mut self, old: &Envelope, new: Envelope, value: T) -> bool
    where
        T: PartialEq,
    {
        if !self.remove(old, &value) {
            return false;
        }
        self.insert(new, value);
        true
    }

    /// Depth of the tree (1 for a single leaf), exposed for testing and
    /// diagnostics.
    pub fn depth(&self) -> usize {
        fn depth_of<T>(node: &Node<T>) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Internal { children } => {
                    1 + children.iter().map(|(_, c)| depth_of(c)).max().unwrap_or(0)
                }
            }
        }
        depth_of(&self.root)
    }
}

/// One item of the best-first nearest-neighbour queue: either a subtree
/// (priority = envelope lower bound) or a concrete entry (priority = exact
/// distance). Ordered as a min-heap with insertion order as tie-break so the
/// traversal is deterministic.
struct NearestItem<'a, T> {
    priority: f64,
    seq: u64,
    kind: NearestKind<'a, T>,
}

enum NearestKind<'a, T> {
    Node(&'a Node<T>),
    Entry(&'a T),
}

impl<T> PartialEq for NearestItem<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for NearestItem<'_, T> {}

impl<T> PartialOrd for NearestItem<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for NearestItem<'_, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, the search needs a min-heap.
        other
            .priority
            .total_cmp(&self.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

fn node_envelope<T>(node: &Node<T>) -> Envelope {
    match node {
        Node::Leaf { entries } => {
            let mut env = Envelope::empty();
            for (e, _) in entries {
                env.expand_envelope(e);
            }
            env
        }
        Node::Internal { children } => {
            let mut env = Envelope::empty();
            for (e, _) in children {
                env.expand_envelope(e);
            }
            env
        }
    }
}

/// Inserts into the subtree; returns `Some((left, right))` when the node had
/// to split.
fn insert_recursive<T>(
    node: &mut Node<T>,
    envelope: Envelope,
    value: T,
) -> Option<(Node<T>, Node<T>)> {
    match node {
        Node::Leaf { entries } => {
            entries.push((envelope, value));
            if entries.len() > MAX_ENTRIES {
                let (a, b) = quadratic_split(std::mem::take(entries));
                Some((Node::Leaf { entries: a }, Node::Leaf { entries: b }))
            } else {
                None
            }
        }
        Node::Internal { children } => {
            // Choose the child whose envelope needs the least enlargement.
            let mut best_idx = 0;
            let mut best_enlargement = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for (idx, (child_env, _)) in children.iter().enumerate() {
                let enlarged = child_env.union(&envelope);
                let enlargement = enlarged.area() - child_env.area();
                let area = child_env.area();
                if enlargement < best_enlargement
                    || (enlargement == best_enlargement && area < best_area)
                {
                    best_enlargement = enlargement;
                    best_area = area;
                    best_idx = idx;
                }
            }
            let (child_env, child) = &mut children[best_idx];
            *child_env = child_env.union(&envelope);
            if let Some((left, right)) = insert_recursive(child, envelope, value) {
                let left_env = node_envelope(&left);
                let right_env = node_envelope(&right);
                children[best_idx] = (left_env, left);
                children.push((right_env, right));
                if children.len() > MAX_ENTRIES {
                    let (a, b) = quadratic_split(std::mem::take(children));
                    return Some((
                        Node::Internal { children: a },
                        Node::Internal { children: b },
                    ));
                }
            }
            None
        }
    }
}

/// Removes one matching entry from the subtree, condensing underfull nodes
/// along the path into `orphans`. Returns `true` when an entry was removed.
fn remove_recursive<T: PartialEq>(
    node: &mut Node<T>,
    envelope: &Envelope,
    value: &T,
    orphans: &mut Vec<(Envelope, T)>,
) -> bool {
    match node {
        Node::Leaf { entries } => {
            if let Some(pos) = entries
                .iter()
                .position(|(e, v)| e.same_box(envelope) && v == value)
            {
                entries.remove(pos);
                true
            } else {
                false
            }
        }
        Node::Internal { children } => {
            for idx in 0..children.len() {
                // Node envelopes contain every entry below them (inserts
                // union them in, removals recompute them exactly), so this
                // prune never skips the subtree holding the entry.
                if !children[idx].0.contains_envelope(envelope) {
                    continue;
                }
                if remove_recursive(&mut children[idx].1, envelope, value, orphans) {
                    let underfull = match &children[idx].1 {
                        Node::Leaf { entries } => entries.len() < MIN_ENTRIES,
                        Node::Internal { children } => children.len() < MIN_ENTRIES,
                    };
                    if underfull {
                        let (_, child) = children.remove(idx);
                        gather_entries(child, orphans);
                    } else {
                        children[idx].0 = node_envelope(&children[idx].1);
                    }
                    return true;
                }
            }
            false
        }
    }
}

/// Collects every leaf entry of a condensed subtree for reinsertion.
fn gather_entries<T>(node: Node<T>, out: &mut Vec<(Envelope, T)>) {
    match node {
        Node::Leaf { entries } => out.extend(entries),
        Node::Internal { children } => {
            for (_, child) in children {
                gather_entries(child, out);
            }
        }
    }
}

/// A list of enveloped items (entries or child nodes) being partitioned.
type EnvelopedItems<E> = Vec<(Envelope, E)>;

/// Guttman's quadratic split over a list of enveloped items.
fn quadratic_split<E>(items: EnvelopedItems<E>) -> (EnvelopedItems<E>, EnvelopedItems<E>) {
    debug_assert!(items.len() >= 2);
    // Pick the pair of seeds that wastes the most area when combined.
    let mut seed_a = 0;
    let mut seed_b = 1;
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let combined = items[i].0.union(&items[j].0);
            let waste = combined.area() - items[i].0.area() - items[j].0.area();
            if waste > worst_waste {
                worst_waste = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut group_a: Vec<(Envelope, E)> = Vec::new();
    let mut group_b: Vec<(Envelope, E)> = Vec::new();
    let mut env_a = items[seed_a].0;
    let mut env_b = items[seed_b].0;

    let mut remaining: Vec<(Envelope, E)> = Vec::new();
    for (idx, item) in items.into_iter().enumerate() {
        if idx == seed_a {
            group_a.push(item);
        } else if idx == seed_b {
            group_b.push(item);
        } else {
            remaining.push(item);
        }
    }

    let total = remaining.len() + 2;
    for item in remaining {
        // If one group must take all remaining entries to reach MIN_ENTRIES,
        // assign directly.
        if group_a.len() + (total - group_a.len() - group_b.len()) <= MIN_ENTRIES {
            env_a = env_a.union(&item.0);
            group_a.push(item);
            continue;
        }
        if group_b.len() + (total - group_a.len() - group_b.len()) <= MIN_ENTRIES {
            env_b = env_b.union(&item.0);
            group_b.push(item);
            continue;
        }
        let grow_a = env_a.union(&item.0).area() - env_a.area();
        let grow_b = env_b.union(&item.0).area() - env_b.area();
        if grow_a < grow_b || (grow_a == grow_b && group_a.len() <= group_b.len()) {
            env_a = env_a.union(&item.0);
            group_a.push(item);
        } else {
            env_b = env_b.union(&item.0);
            group_b.push(item);
        }
    }
    (group_a, group_b)
}

fn collect_intersecting<'a, T>(node: &'a Node<T>, query: &Envelope, out: &mut Vec<&'a T>) {
    match node {
        Node::Leaf { entries } => {
            for (env, value) in entries {
                if env.intersects(query) {
                    out.push(value);
                }
            }
        }
        Node::Internal { children } => {
            for (env, child) in children {
                if env.intersects(query) {
                    collect_intersecting(child, query, out);
                }
            }
        }
    }
}

fn collect_intersecting_copied<T: Copy>(node: &Node<T>, query: &Envelope, out: &mut Vec<T>) {
    match node {
        Node::Leaf { entries } => {
            for (env, value) in entries {
                if env.intersects(query) {
                    out.push(*value);
                }
            }
        }
        Node::Internal { children } => {
            for (env, child) in children {
                if env.intersects(query) {
                    collect_intersecting_copied(child, query, out);
                }
            }
        }
    }
}

fn collect_within_distance<T: Copy>(node: &Node<T>, probe: &Envelope, d_sq: f64, out: &mut Vec<T>) {
    match node {
        Node::Leaf { entries } => {
            for (env, value) in entries {
                if env.distance_sq(probe) <= d_sq {
                    out.push(*value);
                }
            }
        }
        Node::Internal { children } => {
            for (env, child) in children {
                if env.distance_sq(probe) <= d_sq {
                    collect_within_distance(child, probe, d_sq, out);
                }
            }
        }
    }
}

fn collect_same_box<'a, T>(node: &'a Node<T>, query: &Envelope, out: &mut Vec<&'a T>) {
    match node {
        Node::Leaf { entries } => {
            for (env, value) in entries {
                if env.same_box(query) {
                    out.push(value);
                }
            }
        }
        Node::Internal { children } => {
            for (env, child) in children {
                if env.contains_envelope(query) || env.same_box(query) {
                    collect_same_box(child, query, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatter_geom::Coord;

    fn boxed(x0: f64, y0: f64, x1: f64, y1: f64) -> Envelope {
        Envelope::from_bounds(x0, y0, x1, y1)
    }

    #[test]
    fn empty_tree_queries_nothing() {
        let tree: RTree<usize> = RTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree
            .query_intersects(&boxed(0.0, 0.0, 10.0, 10.0))
            .is_empty());
    }

    #[test]
    fn insert_and_query_small() {
        let mut tree = RTree::new();
        tree.insert(boxed(0.0, 0.0, 1.0, 1.0), "a");
        tree.insert(boxed(5.0, 5.0, 6.0, 6.0), "b");
        tree.insert(boxed(0.5, 0.5, 5.5, 5.5), "c");
        assert_eq!(tree.len(), 3);
        let hits = tree.query_intersects(&boxed(0.0, 0.0, 2.0, 2.0));
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&&"a") && hits.contains(&&"c"));
        let hits = tree.query_intersects(&boxed(10.0, 10.0, 11.0, 11.0));
        assert!(hits.is_empty());
    }

    #[test]
    fn split_preserves_all_entries() {
        let mut tree = RTree::new();
        let n = 200;
        for i in 0..n {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            tree.insert(boxed(x, y, x + 0.5, y + 0.5), i);
        }
        assert_eq!(tree.len(), n);
        assert!(tree.depth() > 1, "tree should have split");
        // A query covering everything returns every entry exactly once.
        let all = tree.query_intersects(&boxed(-1.0, -1.0, 30.0, 30.0));
        assert_eq!(all.len(), n);
        let mut seen: Vec<usize> = all.into_iter().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), n);
    }

    /// Deterministic pseudo-random stream for test layouts (this crate sits
    /// below `spatter-core`, so its rng is not available here).
    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        }
    }

    #[test]
    fn window_query_matches_linear_scan() {
        let mut tree = RTree::new();
        let mut entries = Vec::new();
        let mut raw = lcg(42);
        let mut next = move || (raw() % 1000) as f64 / 10.0;
        for i in 0..150usize {
            let x = next();
            let y = next();
            let w = next() / 10.0;
            let h = next() / 10.0;
            let env = boxed(x, y, x + w, y + h);
            entries.push((env, i));
            tree.insert(env, i);
        }
        let query = boxed(20.0, 20.0, 60.0, 60.0);
        let mut expected: Vec<usize> = entries
            .iter()
            .filter(|(e, _)| e.intersects(&query))
            .map(|(_, i)| *i)
            .collect();
        let mut got: Vec<usize> = tree.query_intersects(&query).into_iter().copied().collect();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn query_intersects_into_reuses_the_buffer() {
        let mut tree = RTree::new();
        let mut entries = Vec::new();
        let mut raw = lcg(11);
        let mut next = move || (raw() % 1000) as f64 / 10.0;
        for i in 0..150usize {
            let x = next();
            let y = next();
            let env = boxed(x, y, x + 1.5, y + 1.5);
            entries.push((env, i));
            tree.insert(env, i);
        }
        let mut buffer: Vec<usize> = Vec::new();
        for window in [
            boxed(0.0, 0.0, 30.0, 30.0),
            boxed(50.0, 50.0, 55.0, 55.0),
            boxed(200.0, 200.0, 201.0, 201.0),
        ] {
            tree.query_intersects_into(&window, &mut buffer);
            let mut got = buffer.clone();
            let mut expected: Vec<usize> = tree
                .query_intersects(&window)
                .into_iter()
                .copied()
                .collect();
            got.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got, expected);
        }
        // The buffer is cleared per probe, so a miss leaves it empty.
        tree.query_intersects_into(&boxed(500.0, 500.0, 501.0, 501.0), &mut buffer);
        assert!(buffer.is_empty());
    }

    #[test]
    fn query_within_distance_matches_linear_scan() {
        let mut tree = RTree::new();
        let mut entries = Vec::new();
        let mut raw = lcg(23);
        let mut next = move || (raw() % 400) as f64 / 2.0 - 100.0;
        for i in 0..150usize {
            let x = next();
            let y = next();
            let env = boxed(x, y, x + 2.0, y + 2.0);
            entries.push((env, i));
            tree.insert(env, i);
        }
        tree.insert(Envelope::empty(), 999);
        let mut buffer: Vec<usize> = Vec::new();
        for (probe, d) in [
            (boxed(0.0, 0.0, 1.0, 1.0), 10.0),
            (boxed(-50.0, 20.0, -49.0, 21.0), 0.0),
            (boxed(30.0, -80.0, 35.0, -75.0), 55.5),
        ] {
            let d_sq = d * d;
            tree.query_within_distance_into(&probe, d_sq, &mut buffer);
            let mut got = buffer.clone();
            let mut expected: Vec<usize> = entries
                .iter()
                .filter(|(env, _)| env.distance_sq(&probe) <= d_sq)
                .map(|(_, i)| *i)
                .collect();
            got.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got, expected, "d={d}");
            // The empty-envelope entry is never a distance candidate.
            assert!(!got.contains(&999));
        }
        // Empty probes and NaN thresholds match nothing.
        tree.query_within_distance_into(&Envelope::empty(), 100.0, &mut buffer);
        assert!(buffer.is_empty());
        tree.query_within_distance_into(&boxed(0.0, 0.0, 1.0, 1.0), f64::NAN, &mut buffer);
        assert!(buffer.is_empty());
    }

    #[test]
    fn same_box_query() {
        let mut tree = RTree::new();
        tree.insert(boxed(0.0, 0.0, 1.0, 1.0), 1);
        tree.insert(boxed(0.0, 0.0, 1.0, 1.0), 2);
        tree.insert(boxed(0.0, 0.0, 2.0, 2.0), 3);
        let hits = tree.query_same_box(&boxed(0.0, 0.0, 1.0, 1.0));
        let mut ids: Vec<i32> = hits.into_iter().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn empty_envelopes_are_kept_aside() {
        let mut tree = RTree::new();
        tree.insert(Envelope::empty(), "empty-geom");
        tree.insert(Envelope::from_coord(Coord::new(1.0, 1.0)), "point");
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.empty_envelope_entries(), &["empty-geom"]);
        // The empty-envelope entry is never returned by window queries: this
        // is the behaviour the engine must compensate for (Listing 8).
        let hits = tree.query_intersects(&boxed(0.0, 0.0, 5.0, 5.0));
        assert_eq!(hits, vec![&"point"]);
    }

    #[test]
    fn bulk_load_equals_incremental_inserts() {
        let items: Vec<(Envelope, usize)> = (0..50)
            .map(|i| (boxed(i as f64, 0.0, i as f64 + 1.0, 1.0), i))
            .collect();
        let tree = RTree::bulk_load(items.clone());
        assert_eq!(tree.len(), 50);
        let hits = tree.query_intersects(&boxed(10.0, 0.0, 12.0, 1.0));
        assert_eq!(hits.len(), 4); // boxes 9..=12 touch the window
    }

    #[test]
    fn nearest_with_matches_brute_force() {
        let mut tree = RTree::new();
        let mut entries: Vec<(Envelope, usize)> = Vec::new();
        let mut raw = lcg(7);
        let mut next = move || (raw() % 200) as f64 - 100.0;
        for i in 0..120usize {
            let x = next();
            let y = next();
            let env = boxed(x, y, x + 2.0, y + 2.0);
            entries.push((env, i));
            tree.insert(env, i);
        }
        let probe = Envelope::from_coord(Coord::new(3.0, -7.0));
        for k in [1usize, 3, 10, 120, 500] {
            let mut got: Vec<(f64, usize)> = tree
                .nearest_with(&probe, k, |&i| Some(entries[i].0.distance(&probe)))
                .into_iter()
                .map(|(d, &i)| (d, i))
                .collect();
            got.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut expected: Vec<(f64, usize)> = entries
                .iter()
                .map(|(e, i)| (e.distance(&probe), *i))
                .collect();
            expected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            // At least k results (ties may add more); the first k distances
            // agree with the brute-force ranking.
            assert!(got.len() >= k.min(entries.len()), "k={k}");
            for (g, e) in got.iter().zip(expected.iter()).take(k.min(entries.len())) {
                assert_eq!(g.0, e.0, "k={k}");
            }
            // Every returned entry is within the k-th brute-force distance.
            let cutoff = expected[k.min(entries.len()) - 1].0;
            assert!(got.iter().all(|(d, _)| *d <= cutoff), "k={k}");
            // And every entry at or under the cutoff is present (ties kept).
            let expected_ids: Vec<usize> = expected
                .iter()
                .filter(|(d, _)| *d <= cutoff)
                .map(|(_, i)| *i)
                .collect();
            let got_ids: Vec<usize> = got.iter().map(|(_, i)| *i).collect();
            assert_eq!(got_ids.len(), expected_ids.len(), "k={k}");
            assert!(expected_ids.iter().all(|i| got_ids.contains(i)), "k={k}");
        }
    }

    #[test]
    fn nearest_with_respects_exact_distance_filter() {
        let mut tree = RTree::new();
        for i in 0..10 {
            tree.insert(Envelope::from_coord(Coord::new(i as f64, 0.0)), i);
        }
        let probe = Envelope::from_coord(Coord::new(0.0, 0.0));
        // Excluding even payloads: the nearest surviving entries are 1, 3.
        let got: Vec<i32> = tree
            .nearest_with(
                &probe,
                2,
                |&i| {
                    if i % 2 == 0 {
                        None
                    } else {
                        Some(i as f64)
                    }
                },
            )
            .into_iter()
            .map(|(_, &i)| i)
            .collect();
        assert_eq!(got, vec![1, 3]);
        // k = 0 and empty probes return nothing.
        assert!(tree.nearest_with(&probe, 0, |&i| Some(i as f64)).is_empty());
        assert!(tree
            .nearest_with(&Envelope::empty(), 3, |&i| Some(i as f64))
            .is_empty());
    }

    #[test]
    fn nearest_with_returns_boundary_ties() {
        let mut tree = RTree::new();
        // Two entries at distance 5, one at distance 0.
        tree.insert(Envelope::from_coord(Coord::new(5.0, 0.0)), 0);
        tree.insert(Envelope::from_coord(Coord::new(0.0, 5.0)), 1);
        tree.insert(Envelope::from_coord(Coord::new(0.0, 0.0)), 2);
        let probe = Envelope::from_coord(Coord::new(0.0, 0.0));
        let got = tree.nearest_with(&probe, 2, |&i| {
            Some(match i {
                0 | 1 => 5.0,
                _ => 0.0,
            })
        });
        // k = 2 but both distance-5 entries are returned (tie at the cutoff).
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 0.0);
    }

    #[test]
    fn nearest_with_orders_nan_distances_last() {
        // Entries whose exact distance is (positive) NaN behave like
        // "farther than everything": finite-distance entries come first and
        // in distance order, NaN entries surface after them. This mirrors
        // the engine's NaN-last ORDER BY semantics so the index KNN path and
        // the seqscan sort can never disagree over a NaN key.
        let mut tree = RTree::new();
        for i in 0..6 {
            tree.insert(Envelope::from_coord(Coord::new(i as f64, 0.0)), i);
        }
        let probe = Envelope::from_coord(Coord::new(0.0, 0.0));
        let exact = |i: &i32| Some(if i % 2 == 0 { f64::NAN } else { *i as f64 });
        let got = tree.nearest_with(&probe, 4, exact);
        assert!(got.len() >= 4);
        let (finite, nan): (Vec<_>, Vec<_>) = got.iter().partition(|(d, _)| d.is_finite());
        let finite_ids: Vec<i32> = finite.iter().map(|(_, &i)| i).collect();
        assert_eq!(finite_ids, vec![1, 3, 5]);
        // All NaN entries come after every finite entry.
        let first_nan = got.iter().position(|(d, _)| d.is_nan());
        if let Some(pos) = first_nan {
            assert!(got[..pos].iter().all(|(d, _)| d.is_finite()));
            assert!(got[pos..].iter().all(|(d, _)| d.is_nan()));
        }
        assert!(!nan.is_empty(), "NaN entries are returned, not dropped");
    }

    #[test]
    fn remove_takes_out_exactly_one_entry() {
        let mut tree = RTree::new();
        tree.insert(boxed(0.0, 0.0, 1.0, 1.0), 1);
        tree.insert(boxed(0.0, 0.0, 1.0, 1.0), 2);
        tree.insert(boxed(5.0, 5.0, 6.0, 6.0), 3);
        assert!(tree.remove(&boxed(0.0, 0.0, 1.0, 1.0), &1));
        assert_eq!(tree.len(), 2);
        // The twin entry with the same envelope survives.
        let hits: Vec<i32> = tree
            .query_intersects(&boxed(0.0, 0.0, 1.0, 1.0))
            .into_iter()
            .copied()
            .collect();
        assert_eq!(hits, vec![2]);
        // A second removal of the same entry is a no-op.
        assert!(!tree.remove(&boxed(0.0, 0.0, 1.0, 1.0), &1));
        assert_eq!(tree.len(), 2);
        // Wrong envelope for an existing payload does not remove.
        assert!(!tree.remove(&boxed(9.0, 9.0, 10.0, 10.0), &3));
    }

    #[test]
    fn remove_handles_empty_envelope_entries() {
        let mut tree = RTree::new();
        tree.insert(Envelope::empty(), 7);
        tree.insert(boxed(0.0, 0.0, 1.0, 1.0), 8);
        assert!(tree.remove(&Envelope::empty(), &7));
        assert!(tree.empty_envelope_entries().is_empty());
        assert!(!tree.remove(&Envelope::empty(), &7));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn remove_condenses_down_to_an_empty_tree() {
        let mut tree = RTree::new();
        let n = 200usize;
        let mut envs = Vec::new();
        for i in 0..n {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            let env = boxed(x, y, x + 0.5, y + 0.5);
            envs.push(env);
            tree.insert(env, i);
        }
        assert!(tree.depth() > 1);
        for (i, env) in envs.iter().enumerate() {
            assert!(tree.remove(env, &i), "entry {i} must be removable");
        }
        assert!(tree.is_empty());
        assert_eq!(tree.depth(), 1, "root collapses back to a leaf");
        assert!(tree
            .query_intersects(&boxed(-10.0, -10.0, 30.0, 30.0))
            .is_empty());
    }

    #[test]
    fn reinsert_moves_an_entry() {
        let mut tree = RTree::new();
        tree.insert(boxed(0.0, 0.0, 1.0, 1.0), 4);
        assert!(tree.reinsert(&boxed(0.0, 0.0, 1.0, 1.0), boxed(8.0, 8.0, 9.0, 9.0), 4));
        assert!(tree.query_intersects(&boxed(0.0, 0.0, 2.0, 2.0)).is_empty());
        assert_eq!(tree.query_intersects(&boxed(8.0, 8.0, 9.0, 9.0)), vec![&4]);
        // A miss leaves the tree untouched.
        assert!(!tree.reinsert(&boxed(0.0, 0.0, 1.0, 1.0), Envelope::empty(), 99));
        assert_eq!(tree.len(), 1);
    }

    /// Satellite sweep: after arbitrary seeded delete/insert interleavings the
    /// churned tree answers window, same-box and distance queries identically
    /// to a tree freshly built over the surviving entries — EMPTY envelopes
    /// included.
    #[test]
    fn churned_tree_matches_freshly_built_tree() {
        for seed in [3u64, 17, 101, 9000] {
            let mut raw = lcg(seed);
            let mut tree = RTree::new();
            let mut live: Vec<(Envelope, usize)> = Vec::new();
            let mut next_id = 0usize;
            let spawn = |raw: &mut dyn FnMut() -> u64, id: usize| {
                if raw().is_multiple_of(10) {
                    (Envelope::empty(), id)
                } else {
                    let x = (raw() % 400) as f64 / 2.0 - 100.0;
                    let y = (raw() % 400) as f64 / 2.0 - 100.0;
                    let w = (raw() % 40) as f64 / 10.0;
                    let h = (raw() % 40) as f64 / 10.0;
                    (boxed(x, y, x + w, y + h), id)
                }
            };
            for _ in 0..80 {
                let (env, id) = spawn(&mut raw, next_id);
                next_id += 1;
                tree.insert(env, id);
                live.push((env, id));
            }
            // 400 interleaved operations: ~half deletes, ~half inserts.
            for _ in 0..400 {
                if raw().is_multiple_of(2) && !live.is_empty() {
                    let victim = (raw() as usize) % live.len();
                    let (env, id) = live.remove(victim);
                    assert!(tree.remove(&env, &id), "live entry {id} must remove");
                } else {
                    let (env, id) = spawn(&mut raw, next_id);
                    next_id += 1;
                    tree.insert(env, id);
                    live.push((env, id));
                }
            }
            let fresh = RTree::bulk_load(live.clone());
            assert_eq!(tree.len(), fresh.len(), "seed {seed}");
            let sorted = |mut v: Vec<usize>| {
                v.sort_unstable();
                v
            };
            let mut empties_churned = tree.empty_envelope_entries().to_vec();
            let mut empties_fresh = fresh.empty_envelope_entries().to_vec();
            empties_churned.sort_unstable();
            empties_fresh.sort_unstable();
            assert_eq!(empties_churned, empties_fresh, "seed {seed}");
            let windows = [
                boxed(-100.0, -100.0, 100.0, 100.0),
                boxed(-10.0, -10.0, 10.0, 10.0),
                boxed(40.0, -60.0, 80.0, -20.0),
                boxed(500.0, 500.0, 501.0, 501.0),
            ];
            for window in &windows {
                assert_eq!(
                    sorted(tree.query_intersects(window).into_iter().copied().collect()),
                    sorted(
                        fresh
                            .query_intersects(window)
                            .into_iter()
                            .copied()
                            .collect()
                    ),
                    "seed {seed} window {window:?}"
                );
                assert_eq!(
                    sorted(tree.query_same_box(window).into_iter().copied().collect()),
                    sorted(fresh.query_same_box(window).into_iter().copied().collect()),
                    "seed {seed} same-box {window:?}"
                );
            }
            let mut got = Vec::new();
            let mut want = Vec::new();
            for (probe, d) in [
                (boxed(0.0, 0.0, 1.0, 1.0), 25.0),
                (boxed(-80.0, 60.0, -79.0, 61.0), 0.0),
                (boxed(30.0, -30.0, 31.0, -29.0), 70.5),
            ] {
                let d_sq = d * d;
                tree.query_within_distance_into(&probe, d_sq, &mut got);
                fresh.query_within_distance_into(&probe, d_sq, &mut want);
                assert_eq!(
                    sorted(got.clone()),
                    sorted(want.clone()),
                    "seed {seed} d {d}"
                );
            }
        }
    }

    #[test]
    fn degenerate_point_envelopes_are_searchable() {
        let mut tree = RTree::new();
        for i in 0..20 {
            tree.insert(Envelope::from_coord(Coord::new(i as f64, i as f64)), i);
        }
        let hits = tree.query_intersects(&boxed(5.0, 5.0, 7.0, 7.0));
        let mut ids: Vec<i32> = hits.into_iter().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![5, 6, 7]);
    }
}
